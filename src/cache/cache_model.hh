/**
 * @file
 * Generic set-associative write-back cache model with true-LRU
 * replacement, used for each GPU's L2. The aggregate-capacity effect the
 * paper reports for EQWP (L2 hit rate rising from 55% to 68% at 4 GPUs)
 * emerges from this model when the per-GPU working set shrinks.
 */

#ifndef GPS_CACHE_CACHE_MODEL_HH
#define GPS_CACHE_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** Result of one cache access. */
struct CacheResult
{
    bool hit = false;

    /** Bytes written back to DRAM due to a dirty eviction (0 or line). */
    std::uint32_t writebackBytes = 0;
};

/** Set-associative write-back cache (tag-only functional+stats model). */
class CacheModel : public SimObject
{
  public:
    /**
     * @param name component name
     * @param capacity_bytes total data capacity
     * @param line_bytes cache line size (Table 1: 128 B)
     * @param ways associativity
     */
    CacheModel(std::string name, std::uint64_t capacity_bytes,
               std::uint32_t line_bytes, std::uint32_t ways);

    /**
     * Access the line containing @p addr, allocating on miss.
     * @param addr byte address
     * @param is_write marks the line dirty
     */
    CacheResult access(Addr addr, bool is_write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Invalidate every line of the page containing @p addr.
     * @return bytes of dirty data dropped/written back. */
    std::uint64_t invalidatePage(Addr page_base, std::uint64_t page_bytes);

    /** Drop all lines; dirty lines count as writebacks.
     * @return writeback bytes. */
    std::uint64_t flushAll();

    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint64_t capacityBytes() const { return capacityBytes_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double hitRate() const;

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;
    void resetStats() override;

    /** Serialize every line, the LRU clock, and the counters. */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("cache");
        out.u64(lines_.size());
        for (const Line& l : lines_) {
            out.u64(l.tag);
            out.b(l.valid);
            out.b(l.dirty);
            out.u64(l.lastUse);
        }
        out.u64(useClock_);
        out.u64(hits_);
        out.u64(misses_);
        out.u64(evictions_);
        out.u64(writebacks_);
    }

    /** Counterpart of saveState; geometry must match this instance. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("cache");
        if (in.u64() != lines_.size())
            throw snapshot::SnapshotError(
                "snapshot cache geometry differs from the configured "
                "cache");
        for (Line& l : lines_) {
            l.tag = in.u64();
            l.valid = in.b();
            l.dirty = in.b();
            l.lastUse = in.u64();
        }
        useClock_ = in.u64();
        hits_ = in.u64();
        misses_ = in.u64();
        evictions_ = in.u64();
        writebacks_ = in.u64();
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t lineNum(Addr addr) const { return addr / lineBytes_; }
    std::size_t setIndex(std::uint64_t line) const { return line % sets_; }

    std::uint64_t capacityBytes_;
    std::uint32_t lineBytes_;
    std::uint32_t ways_;
    std::size_t sets_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace gps

#endif // GPS_CACHE_CACHE_MODEL_HH
