#include "cache/cache_model.hh"

#include "common/logging.hh"
#include "obs/metric_registry.hh"

namespace gps
{

CacheModel::CacheModel(std::string name, std::uint64_t capacity_bytes,
                       std::uint32_t line_bytes, std::uint32_t ways)
    : SimObject(std::move(name)), capacityBytes_(capacity_bytes),
      lineBytes_(line_bytes), ways_(ways),
      sets_(capacity_bytes / line_bytes / ways),
      lines_(sets_ * ways)
{
    gps_assert(sets_ > 0, "cache too small: ", capacity_bytes, " bytes");
    gps_assert(capacity_bytes % (static_cast<std::uint64_t>(line_bytes) *
                                 ways) == 0,
               "cache capacity not divisible by line*ways");
}

CacheResult
CacheModel::access(Addr addr, bool is_write)
{
    const std::uint64_t line = lineNum(addr);
    const std::uint64_t tag = line / sets_;
    Line* set = &lines_[setIndex(line) * ways_];

    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++useClock_;
            set[w].dirty |= is_write;
            ++hits_;
            return {true, 0};
        }
    }

    ++misses_;
    Line* victim = &set[0];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }

    CacheResult result{false, 0};
    if (victim->valid) {
        ++evictions_;
        if (victim->dirty) {
            ++writebacks_;
            result.writebackBytes = lineBytes_;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lastUse = ++useClock_;
    return result;
}

bool
CacheModel::contains(Addr addr) const
{
    const std::uint64_t line = lineNum(addr);
    const std::uint64_t tag = line / sets_;
    const Line* set = &lines_[setIndex(line) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

std::uint64_t
CacheModel::invalidatePage(Addr page_base, std::uint64_t page_bytes)
{
    std::uint64_t writeback = 0;
    const std::uint64_t first = lineNum(page_base);
    const std::uint64_t count = page_bytes / lineBytes_;
    for (std::uint64_t l = first; l < first + count; ++l) {
        const std::uint64_t tag = l / sets_;
        Line* set = &lines_[setIndex(l) * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (set[w].valid && set[w].tag == tag) {
                if (set[w].dirty) {
                    ++writebacks_;
                    writeback += lineBytes_;
                }
                set[w].valid = false;
            }
        }
    }
    return writeback;
}

std::uint64_t
CacheModel::flushAll()
{
    std::uint64_t writeback = 0;
    for (auto& line : lines_) {
        if (line.valid && line.dirty) {
            ++writebacks_;
            writeback += lineBytes_;
        }
        line.valid = false;
        line.dirty = false;
    }
    return writeback;
}

double
CacheModel::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
}

void
CacheModel::exportStats(StatSet& out) const
{
    out.set(name() + ".hits", static_cast<double>(hits_));
    out.set(name() + ".misses", static_cast<double>(misses_));
    out.set(name() + ".evictions", static_cast<double>(evictions_));
    out.set(name() + ".writebacks", static_cast<double>(writebacks_));
    out.set(name() + ".hit_rate", hitRate());
}

void
CacheModel::registerMetrics(MetricRegistry& reg) const
{
    const std::string p = name() + '.';
    reg.counter(p + "hits", "events",
                [this] { return static_cast<double>(hits_); });
    reg.counter(p + "misses", "events",
                [this] { return static_cast<double>(misses_); });
    reg.counter(p + "evictions", "events",
                [this] { return static_cast<double>(evictions_); });
    reg.counter(p + "writebacks", "events",
                [this] { return static_cast<double>(writebacks_); });
    reg.gauge(p + "hit_rate", "ratio", [this] { return hitRate(); });
}

void
CacheModel::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    writebacks_ = 0;
}

} // namespace gps
