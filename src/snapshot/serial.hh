/**
 * @file
 * Bounds-checked binary serialization primitives for simulator
 * snapshots.
 *
 * Fixed-width little-endian encoding, independent of host struct
 * layout, so snapshot bytes are stable across compilers and build
 * flags. Every read is range-checked; malformed input raises
 * SnapshotError rather than reading past the buffer, and section tags
 * catch writer/reader drift with a message naming the section instead
 * of a silent misparse.
 */

#ifndef GPS_SNAPSHOT_SERIAL_HH
#define GPS_SNAPSHOT_SERIAL_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace gps::snapshot
{

/** Raised on any malformed, truncated, or mismatched snapshot. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string& what)
        : std::runtime_error(what)
    {}
};

/** Append-only little-endian encoder. */
class Serializer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void b(bool v) { u8(v ? 1 : 0); }

    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string& s)
    {
        u64(s.size());
        buf_.append(s);
    }

    /** Start a named section; the reader must consume the same tag. */
    void section(const std::string& name) { str(name); }

    const std::string& bytes() const { return buf_; }

  private:
    std::string buf_;
};

/** Range-checked decoder over an immutable byte buffer. */
class Deserializer
{
  public:
    explicit Deserializer(const std::string& bytes)
        : buf_(&bytes)
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>((*buf_)[pos_++]);
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>((*buf_)[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>((*buf_)[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    bool
    b()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw SnapshotError("corrupt snapshot: bool byte " +
                                std::to_string(v));
        return v == 1;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t len = u64();
        need(len);
        std::string s = buf_->substr(pos_, len);
        pos_ += len;
        return s;
    }

    /** Consume a section tag, failing loudly on drift. */
    void
    section(const std::string& expected)
    {
        const std::string got = str();
        if (got != expected)
            throw SnapshotError("corrupt snapshot: expected section '" +
                                expected + "', found '" + got + "'");
    }

    /**
     * Read an element count bounded by @p max, so a corrupt length
     * cannot drive a multi-gigabyte allocation.
     */
    std::uint64_t
    count(std::uint64_t max)
    {
        const std::uint64_t n = u64();
        if (n > max)
            throw SnapshotError(
                "corrupt snapshot: element count " + std::to_string(n) +
                " exceeds limit " + std::to_string(max));
        return n;
    }

    bool atEnd() const { return pos_ == buf_->size(); }
    std::size_t pos() const { return pos_; }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > buf_->size() - pos_)
            throw SnapshotError(
                "truncated snapshot: need " + std::to_string(n) +
                " bytes at offset " + std::to_string(pos_) + ", have " +
                std::to_string(buf_->size() - pos_));
    }

    const std::string* buf_;
    std::size_t pos_ = 0;
};

} // namespace gps::snapshot

#endif // GPS_SNAPSHOT_SERIAL_HH
