/**
 * @file
 * Versioned, CRC-guarded whole-simulator snapshots.
 *
 * A snapshot freezes one run at a quiescent point (the event queue
 * drained, all write queues flushed by the preceding kernel ends) so it
 * can resume later — in another process, after a crash, or forked into
 * sibling configurations by the warm-started sweep runner — and produce
 * a RunResult byte-identical to the uninterrupted run.
 *
 * File layout:
 *   "GPSSNAP\0"  8-byte magic
 *   u32          format version (snapshotVersion)
 *   u32          CRC-32 of the body
 *   u64          body length in bytes
 *   body         Serializer-encoded sections (meta, progress, machine
 *                state, functional summary)
 *
 * Every restore is verified before the run resumes: the functional
 * summary (per-page driver state, frame accounting, GPS queue and table
 * occupancy) captured at save time is rebuilt from the restored live
 * structures and byte-compared, then the structural invariant suite
 * from src/check/ runs. A snapshot that fails either check is rejected
 * with SnapshotError — never half-restored.
 */

#ifndef GPS_SNAPSHOT_SNAPSHOT_HH
#define GPS_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/kernel_counters.hh"
#include "snapshot/serial.hh"

namespace gps
{
class MultiGpuSystem;
class Paradigm;
class FaultEngine;
} // namespace gps

namespace gps::snapshot
{

inline constexpr std::uint32_t snapshotVersion = 2;

/** Where in a run a snapshot is (or was) taken. */
enum class AtKind : std::uint8_t {
    None,    ///< no capture requested
    Iter,    ///< top of iteration N (end of iteration N-1)
    Phase,   ///< after the N-th executed phase, counted globally
    Profile, ///< end of iteration 0's phases, before cuGPSTrackingStop
};

/** Parsed --snapshot-at specification. */
struct SnapshotPoint
{
    AtKind kind = AtKind::None;
    std::uint64_t n = 0;

    bool active() const { return kind != AtKind::None; }
};

/**
 * Parse "iter:N", "phase:N" (N >= 1) or "profile".
 * @return false on malformed input, leaving @p out untouched
 */
bool parseSnapshotPoint(const std::string& text, SnapshotPoint& out);

/** Render a point back to its --snapshot-at spelling. */
std::string to_string(const SnapshotPoint& point);

/** Identity echo: what run this snapshot belongs to. */
struct SnapshotMeta
{
    std::string workload;
    std::uint8_t paradigm = 0; ///< ParadigmKind as integer
    std::uint32_t numGpus = 0;
    std::uint64_t pageBytes = 0;
    double scale = 1.0;

    /**
     * Warm-sweep state key (see warmKey in api/sweep.hh): every config
     * field that influenced the captured state. Informational for
     * file snapshots; the sweep forker uses it as a sanity check.
     */
    std::string stateKey;
};

/** Runner-loop position and accumulators at the capture point. */
struct RunnerProgress
{
    std::uint64_t resumeIter = 0;  ///< iteration to resume in
    std::uint64_t resumePhase = 0; ///< phase index to resume at
    std::uint64_t globalPhases = 0;

    /** Current iteration's start tick / wire bytes (mid-iteration). */
    Tick tBefore = 0;
    std::uint64_t bBefore = 0;

    KernelCounters totals;
    std::vector<Tick> iterTime;
    std::vector<std::uint64_t> iterBytes;

    bool hasSubscriberHist = false;
    std::vector<std::uint64_t> histBuckets;

    /**
     * Serialized Observability collector state (sampler series,
     * timeline, causal graph) when the captured run had observability
     * on; empty otherwise.
     */
    bool hasObs = false;
    std::string obsState;
};

/** Decoded, CRC-verified snapshot, not yet applied to a system. */
struct Snapshot
{
    SnapshotMeta meta;
    RunnerProgress progress;

    /** Full body bytes; applyState() re-walks them section by section. */
    std::string body;
};

/**
 * Encode the current quiescent state of @p system / @p paradigm /
 * @p faults (nullptr when no fault engine is active) into complete
 * snapshot file bytes (header + body).
 */
std::string encodeSnapshot(MultiGpuSystem& system,
                           const Paradigm& paradigm,
                           const FaultEngine* faults,
                           const SnapshotMeta& meta,
                           const RunnerProgress& progress);

/**
 * Validate the header (magic, version, length, CRC) and decode the
 * meta and progress sections.
 * @throws SnapshotError on any truncation, corruption or version skew
 */
Snapshot decodeSnapshot(const std::string& bytes);

/** Read and decode a snapshot file. @throws SnapshotError */
Snapshot readSnapshotFile(const std::string& path);

/**
 * Atomically publish @p bytes at @p path: unique temp file, fwrite,
 * fflush, fsync, rename. A crash mid-write leaves at most a temp file,
 * never a torn snapshot under the final name.
 * @throws SnapshotError when any step fails
 */
void writeSnapshotFile(const std::string& path, const std::string& bytes);

/**
 * Deterministic text rendering of the functionally relevant live state:
 * every driver page record, per-GPU frame accounting, and (under GPS)
 * write-queue occupancy and page-table residency. Captured into the
 * snapshot and rebuilt at restore for byte comparison.
 */
std::string buildSummary(MultiGpuSystem& system, const Paradigm& paradigm);

/**
 * Overwrite a freshly constructed and set-up system with the machine
 * state in @p snap, then verify: the stored functional summary must
 * byte-match the restored live state, and the structural invariant
 * suite must pass.
 * @param faults the run's fault engine, or nullptr; presence must
 *               match the snapshot
 * @param mutateForTest perturb one page's driver state after the
 *        restore so verification must fail (divergence-detection tests)
 * @throws SnapshotError on any mismatch, leaving the run unstarted
 */
void applyState(const Snapshot& snap, MultiGpuSystem& system,
                Paradigm& paradigm, FaultEngine* faults,
                bool mutateForTest = false);

} // namespace gps::snapshot

#endif // GPS_SNAPSHOT_SNAPSHOT_HH
