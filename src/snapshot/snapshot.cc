#include "snapshot/snapshot.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "api/system.hh"
#include "check/invariants.hh"
#include "common/crc32.hh"
#include "core/gps_paradigm.hh"
#include "fault/fault_engine.hh"
#include "paradigm/paradigm.hh"

namespace gps::snapshot
{

namespace
{

constexpr char magic[8] = {'G', 'P', 'S', 'S', 'N', 'A', 'P', '\0'};
constexpr std::size_t headerBytes = sizeof(magic) + 4 + 4 + 8;

/** Parse a strict decimal suffix for "iter:N" / "phase:N". */
bool
parseDecimal(const std::string& text, std::uint64_t& out)
{
    if (text.empty() || text.size() > 19)
        return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = value;
    return true;
}

void
saveCounters(Serializer& out, const KernelCounters& c)
{
    out.u64(c.computeInstrs);
    out.u64(c.accesses);
    out.u64(c.loads);
    out.u64(c.stores);
    out.u64(c.atomics);
    out.u64(c.l2Hits);
    out.u64(c.l2Misses);
    out.u64(c.dramBytes);
    out.u64(c.remoteLoads);
    out.u64(c.remoteLoadBytes);
    out.u64(c.remoteAtomics);
    out.u64(c.pushedStoreBytes);
    out.u64(c.tlbMisses);
    out.u64(c.pageFaults);
    out.u64(c.pageMigrations);
    out.u64(c.migrationBytes);
    out.u64(c.tlbShootdowns);
    out.u64(c.wqInserts);
    out.u64(c.wqCoalesced);
    out.u64(c.wqDrains);
    out.u64(c.wqAtomicBypass);
    out.u64(c.smCoalesced);
    out.u64(c.gpsTlbHits);
    out.u64(c.gpsTlbMisses);
    out.u64(c.sysCollapses);
    out.u64(c.wqStallDrains);
    out.u64(c.wqStallTicks);
}

void
restoreCounters(Deserializer& in, KernelCounters& c)
{
    c.computeInstrs = in.u64();
    c.accesses = in.u64();
    c.loads = in.u64();
    c.stores = in.u64();
    c.atomics = in.u64();
    c.l2Hits = in.u64();
    c.l2Misses = in.u64();
    c.dramBytes = in.u64();
    c.remoteLoads = in.u64();
    c.remoteLoadBytes = in.u64();
    c.remoteAtomics = in.u64();
    c.pushedStoreBytes = in.u64();
    c.tlbMisses = in.u64();
    c.pageFaults = in.u64();
    c.pageMigrations = in.u64();
    c.migrationBytes = in.u64();
    c.tlbShootdowns = in.u64();
    c.wqInserts = in.u64();
    c.wqCoalesced = in.u64();
    c.wqDrains = in.u64();
    c.wqAtomicBypass = in.u64();
    c.smCoalesced = in.u64();
    c.gpsTlbHits = in.u64();
    c.gpsTlbMisses = in.u64();
    c.sysCollapses = in.u64();
    c.wqStallDrains = in.u64();
    c.wqStallTicks = in.u64();
}

void
saveMeta(Serializer& out, const SnapshotMeta& meta)
{
    out.section("meta");
    out.str(meta.workload);
    out.u8(meta.paradigm);
    out.u32(meta.numGpus);
    out.u64(meta.pageBytes);
    out.f64(meta.scale);
    out.str(meta.stateKey);
}

void
restoreMeta(Deserializer& in, SnapshotMeta& meta)
{
    in.section("meta");
    meta.workload = in.str();
    meta.paradigm = in.u8();
    meta.numGpus = in.u32();
    meta.pageBytes = in.u64();
    meta.scale = in.f64();
    meta.stateKey = in.str();
}

void
saveProgress(Serializer& out, const RunnerProgress& p)
{
    out.section("progress");
    out.u64(p.resumeIter);
    out.u64(p.resumePhase);
    out.u64(p.globalPhases);
    out.u64(p.tBefore);
    out.u64(p.bBefore);
    saveCounters(out, p.totals);
    out.u64(p.iterTime.size());
    for (const Tick t : p.iterTime)
        out.u64(t);
    out.u64(p.iterBytes.size());
    for (const std::uint64_t b : p.iterBytes)
        out.u64(b);
    out.b(p.hasSubscriberHist);
    out.u64(p.histBuckets.size());
    for (const std::uint64_t b : p.histBuckets)
        out.u64(b);
    out.b(p.hasObs);
    out.str(p.obsState);
}

void
restoreProgress(Deserializer& in, RunnerProgress& p)
{
    in.section("progress");
    p.resumeIter = in.u64();
    p.resumePhase = in.u64();
    p.globalPhases = in.u64();
    p.tBefore = in.u64();
    p.bBefore = in.u64();
    restoreCounters(in, p.totals);
    p.iterTime.assign(in.count(1ULL << 32), 0);
    for (Tick& t : p.iterTime)
        t = in.u64();
    p.iterBytes.assign(in.count(1ULL << 32), 0);
    for (std::uint64_t& b : p.iterBytes)
        b = in.u64();
    p.hasSubscriberHist = in.b();
    p.histBuckets.assign(in.count(1ULL << 16), 0);
    for (std::uint64_t& b : p.histBuckets)
        b = in.u64();
    p.hasObs = in.b();
    p.obsState = in.str();
}

/** The GPS paradigm behind @p paradigm, or nullptr for others. */
const GpsParadigm*
asGps(const Paradigm& paradigm)
{
    return paradigm.kind() == ParadigmKind::Gps
               ? static_cast<const GpsParadigm*>(&paradigm)
               : nullptr;
}

bool
fsyncFile(std::FILE* f)
{
    return ::fsync(::fileno(f)) == 0;
}

} // namespace

bool
parseSnapshotPoint(const std::string& text, SnapshotPoint& out)
{
    if (text == "profile") {
        out.kind = AtKind::Profile;
        out.n = 0;
        return true;
    }
    std::uint64_t n = 0;
    if (text.rfind("iter:", 0) == 0 && parseDecimal(text.substr(5), n) &&
        n >= 1) {
        out.kind = AtKind::Iter;
        out.n = n;
        return true;
    }
    if (text.rfind("phase:", 0) == 0 &&
        parseDecimal(text.substr(6), n) && n >= 1) {
        out.kind = AtKind::Phase;
        out.n = n;
        return true;
    }
    return false;
}

std::string
to_string(const SnapshotPoint& point)
{
    switch (point.kind) {
      case AtKind::None: return "none";
      case AtKind::Iter: return "iter:" + std::to_string(point.n);
      case AtKind::Phase: return "phase:" + std::to_string(point.n);
      case AtKind::Profile: return "profile";
    }
    return "none";
}

std::string
buildSummary(MultiGpuSystem& system, const Paradigm& paradigm)
{
    std::ostringstream os;
    system.driver().pageStates().forEach(
        [&os](PageNum vpn, const PageState& st) {
            os << "page " << vpn << " kind="
               << static_cast<unsigned>(st.kind)
               << " loc=" << st.location << " mapped=" << st.mapped
               << " backed=" << st.backed << " subs=" << st.subscribers
               << " collapsed=" << (st.collapsed ? 1 : 0)
               << " lastWriter=" << st.lastWriter << '\n';
        });
    for (std::size_t g = 0; g < system.numGpus(); ++g) {
        const PhysicalMemory& mem =
            system.gpu(static_cast<GpuId>(g)).memory();
        os << "gpu " << g << " inuse=" << mem.framesInUse()
           << " retired=" << mem.framesRetired()
           << " free=" << mem.framesFree() << '\n';
    }
    if (const GpsParadigm* gps = asGps(paradigm)) {
        for (std::size_t g = 0; g < system.numGpus(); ++g) {
            const RemoteWriteQueue& wq =
                const_cast<GpsParadigm*>(gps)->writeQueue(
                    static_cast<GpuId>(g));
            os << "wq " << g << " occ=" << wq.occupancy()
               << " resident=" << wq.residentEntries()
               << " weight=" << wq.weightSum() << '\n';
        }
        os << "gpstable live="
           << const_cast<GpsParadigm*>(gps)->gpsPageTable().size()
           << '\n';
    }
    return os.str();
}

std::string
encodeSnapshot(MultiGpuSystem& system, const Paradigm& paradigm,
               const FaultEngine* faults, const SnapshotMeta& meta,
               const RunnerProgress& progress)
{
    Serializer body;
    saveMeta(body, meta);
    saveProgress(body, progress);
    system.events().saveState(body);
    system.topology().saveState(body);
    for (std::size_t g = 0; g < system.numGpus(); ++g)
        system.gpu(static_cast<GpuId>(g)).saveState(body);
    system.driver().saveState(body);
    body.b(faults != nullptr);
    if (faults != nullptr)
        faults->saveState(body);
    paradigm.saveState(body);
    body.section("summary");
    body.str(buildSummary(system, paradigm));

    Serializer file;
    for (const char c : magic)
        file.u8(static_cast<std::uint8_t>(c));
    file.u32(snapshotVersion);
    file.u32(crc32Of(body.bytes()));
    file.u64(body.bytes().size());
    std::string out = file.bytes();
    out += body.bytes();
    return out;
}

Snapshot
decodeSnapshot(const std::string& bytes)
{
    if (bytes.size() < headerBytes)
        throw SnapshotError("truncated snapshot: " +
                            std::to_string(bytes.size()) +
                            " bytes is smaller than the header");
    if (std::memcmp(bytes.data(), magic, sizeof(magic)) != 0)
        throw SnapshotError("not a GPS snapshot (bad magic)");
    Deserializer header(bytes);
    for (std::size_t i = 0; i < sizeof(magic); ++i)
        header.u8();
    const std::uint32_t version = header.u32();
    if (version != snapshotVersion)
        throw SnapshotError(
            "unsupported snapshot version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(snapshotVersion) + ")");
    const std::uint32_t crc_stored = header.u32();
    const std::uint64_t body_len = header.u64();
    if (bytes.size() - headerBytes != body_len)
        throw SnapshotError(
            "truncated snapshot: header promises " +
            std::to_string(body_len) + " body bytes, file has " +
            std::to_string(bytes.size() - headerBytes));

    Snapshot snap;
    snap.body = bytes.substr(headerBytes);
    if (crc32Of(snap.body) != crc_stored)
        throw SnapshotError("corrupt snapshot: body CRC mismatch");

    Deserializer body(snap.body);
    restoreMeta(body, snap.meta);
    restoreProgress(body, snap.progress);
    return snap;
}

Snapshot
readSnapshotFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw SnapshotError("cannot open snapshot '" + path +
                            "': " + std::strerror(errno));
    std::string bytes;
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, got);
    const bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err)
        throw SnapshotError("cannot read snapshot '" + path + "'");
    try {
        return decodeSnapshot(bytes);
    } catch (const SnapshotError& e) {
        throw SnapshotError("snapshot '" + path + "': " + e.what());
    }
}

void
writeSnapshotFile(const std::string& path, const std::string& bytes)
{
    static std::atomic<std::uint64_t> seq{0};
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + '.' +
                            std::to_string(++seq);
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        throw SnapshotError("cannot create snapshot temp '" + tmp +
                            "': " + std::strerror(errno));
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
              bytes.size();
    // User-space flush, then device flush, then rename: the snapshot
    // only becomes visible under its final name once its bytes are
    // durable (same ordering as RunStore::publish).
    ok = ok && std::fflush(f) == 0 && fsyncFile(f);
    if (std::fclose(f) != 0)
        ok = false;
    if (!ok) {
        const std::string reason = std::strerror(errno);
        ::unlink(tmp.c_str());
        throw SnapshotError("cannot write snapshot '" + path +
                            "': " + reason);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string reason = std::strerror(errno);
        ::unlink(tmp.c_str());
        throw SnapshotError("cannot publish snapshot '" + path +
                            "': " + reason);
    }
}

void
applyState(const Snapshot& snap, MultiGpuSystem& system,
           Paradigm& paradigm, FaultEngine* faults, bool mutateForTest)
{
    Deserializer in(snap.body);
    SnapshotMeta meta;
    RunnerProgress progress;
    restoreMeta(in, meta);
    restoreProgress(in, progress);

    system.events().restoreState(in);
    system.topology().restoreState(in);
    for (std::size_t g = 0; g < system.numGpus(); ++g)
        system.gpu(static_cast<GpuId>(g)).restoreState(in);
    system.driver().restoreState(in);
    const bool had_faults = in.b();
    if (had_faults != (faults != nullptr))
        throw SnapshotError(
            had_faults
                ? "snapshot has fault-injection state but this run has "
                  "no fault plan"
                : "this run has a fault plan but the snapshot has no "
                  "fault-injection state");
    if (faults != nullptr)
        faults->restoreState(in);
    paradigm.restoreState(in);

    in.section("summary");
    const std::string stored = in.str();
    if (!in.atEnd())
        throw SnapshotError("corrupt snapshot: trailing bytes after "
                            "the summary section");

    if (mutateForTest) {
        // Seeded divergence for the verification tests: flip one bit of
        // a page's subscriber set so the summary comparison must trip.
        PageNum victim = 0;
        bool found = false;
        system.driver().pageStates().forEach(
            [&victim, &found](PageNum vpn, const PageState&) {
                if (!found) {
                    victim = vpn;
                    found = true;
                }
            });
        if (found)
            system.driver().state(victim).subscribers ^= gpuBit(0);
    }

    const std::string live = buildSummary(system, paradigm);
    if (live != stored) {
        // Name the first differing line so the error localizes the
        // divergence instead of just declaring it.
        std::istringstream a(stored), b(live);
        std::string la, lb;
        while (std::getline(a, la) && std::getline(b, lb))
            if (la != lb)
                break;
        throw SnapshotError(
            "restore verification failed: live state diverges from the "
            "snapshot summary (snapshot: '" + la + "', live: '" + lb +
            "')");
    }

    CheckReport report;
    InvariantChecker checker(
        system, const_cast<GpsParadigm*>(asGps(paradigm)));
    checker.runAll("restore", report);
    if (!report.ok())
        throw SnapshotError(
            "restore verification failed: invariant violation: " +
            describe(report.findings.empty() ? CheckFinding{}
                                             : report.findings.front()));
}

} // namespace gps::snapshot
