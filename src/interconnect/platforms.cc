#include "interconnect/platforms.hh"

namespace gps
{

const std::vector<PlatformSpec>&
figure3Platforms()
{
    // Values follow the vendor-quoted figures the paper plots: remote
    // bandwidth improves 38x from PCIe 3.0 (16 GB/s) to NVLink3+NVSwitch
    // (600 GB/s) while a ~3x local/remote gap persists.
    static const std::vector<PlatformSpec> platforms = {
        {"Discrete/Kepler/PCIe", 288.0, 16.0},
        {"DGX-1/Pascal/NVLink1", 732.0, 160.0},
        {"DGX-1V/Volta/NVLink2", 900.0, 300.0},
        {"DGX-2/Volta/NVLink2+NVSwitch", 900.0, 300.0},
        {"DGX-A100/Ampere/NVLink3+NVSwitch", 1555.0, 600.0},
    };
    return platforms;
}

} // namespace gps
