#include "interconnect/platforms.hh"

#include "common/units.hh"

namespace gps
{

const std::vector<PlatformSpec>&
figure3Platforms()
{
    // Values follow the vendor-quoted figures the paper plots: remote
    // bandwidth improves 38x from PCIe 3.0 (16 GB/s) to NVLink3+NVSwitch
    // (600 GB/s) while a ~3x local/remote gap persists.
    static const std::vector<PlatformSpec> platforms = {
        {"Discrete/Kepler/PCIe", 288.0, 16.0},
        {"DGX-1/Pascal/NVLink1", 732.0, 160.0},
        {"DGX-1V/Volta/NVLink2", 900.0, 300.0},
        {"DGX-2/Volta/NVLink2+NVSwitch", 900.0, 300.0},
        {"DGX-A100/Ampere/NVLink3+NVSwitch", 1555.0, 600.0},
    };
    return platforms;
}

const std::vector<InterconnectSpec>&
interNodeFabrics()
{
    // Per-direction payload bandwidth of one node uplink. InfiniBand
    // quotes signalling rate per port: HDR 200 Gb/s ~ 25 GB/s, NDR
    // 400 Gb/s ~ 50 GB/s. Latencies are one-way through one fabric
    // switch hop; headers approximate the IB transport / PCIe TLP
    // overhead per message.
    static const std::vector<InterconnectSpec> fabrics = {
        {InterconnectKind::IbHdr, "InfiniBand HDR", 25.0 * GBps,
         nsToTicks(1000), 30, false},
        {InterconnectKind::IbNdr, "InfiniBand NDR", 50.0 * GBps,
         nsToTicks(900), 30, false},
        {InterconnectKind::PcieFabric, "PCIe fabric", 32.0 * GBps,
         nsToTicks(800), 24, false},
    };
    return fabrics;
}

bool
isInterNodeKind(InterconnectKind kind)
{
    for (const InterconnectSpec& spec : interNodeFabrics())
        if (spec.kind == kind)
            return true;
    return false;
}

} // namespace gps
