#include "interconnect/topology.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace gps
{

std::uint64_t
TrafficMatrix::egress(GpuId src) const
{
    std::uint64_t sum = 0;
    for (std::size_t dst = 0; dst < n_; ++dst)
        sum += bytes_[src * n_ + dst];
    return sum;
}

std::uint64_t
TrafficMatrix::ingress(GpuId dst) const
{
    std::uint64_t sum = 0;
    for (std::size_t src = 0; src < n_; ++src)
        sum += bytes_[src * n_ + dst];
    return sum;
}

std::uint64_t
TrafficMatrix::total() const
{
    std::uint64_t sum = 0;
    for (auto b : bytes_)
        sum += b;
    return sum;
}

void
TrafficMatrix::clear()
{
    std::fill(bytes_.begin(), bytes_.end(), 0);
    payload_ = 0;
}

Topology::Topology(std::string name, std::size_t num_gpus,
                   InterconnectKind kind)
    : SimObject(std::move(name)), numGpus_(num_gpus),
      spec_(&interconnectSpec(kind))
{
    gps_assert(num_gpus >= 1, "topology needs at least one GPU");
    for (std::size_t g = 0; g < num_gpus; ++g) {
        egress_.push_back(std::make_unique<Link>(
            this->name() + ".gpu" + std::to_string(g) + ".egress",
            *spec_));
        ingress_.push_back(std::make_unique<Link>(
            this->name() + ".gpu" + std::to_string(g) + ".ingress",
            *spec_));
    }
}

Tick
Topology::applyPhaseTraffic(const TrafficMatrix& traffic)
{
    gps_assert(traffic.numGpus() == numGpus_,
               "traffic matrix size mismatch");
    Tick worst = 0;
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const std::uint64_t out = traffic.egress(static_cast<GpuId>(g));
        const std::uint64_t in = traffic.ingress(static_cast<GpuId>(g));
        const Tick out_time = linkTime(out);
        const Tick in_time = linkTime(in);
        egress_[g]->record(out, out_time);
        ingress_[g]->record(in, in_time);
        worst = std::max({worst, out_time, in_time});
        totalBytes_ += out;
    }
    totalPayload_ += traffic.payload();
    return worst;
}

Tick
Topology::linkTime(std::uint64_t bytes) const
{
    if (spec_->infinite)
        return 0;
    return transferTicks(bytes, spec_->bandwidth);
}

void
Topology::exportStats(StatSet& out) const
{
    out.set(name() + ".total_bytes", static_cast<double>(totalBytes_));
    for (const auto& link : egress_)
        link->exportStats(out);
    for (const auto& link : ingress_)
        link->exportStats(out);
}

void
Topology::resetStats()
{
    totalBytes_ = 0;
    for (auto& link : egress_)
        link->resetStats();
    for (auto& link : ingress_)
        link->resetStats();
}

} // namespace gps
