#include "interconnect/topology.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"
#include "fault/fault_plan.hh"
#include "obs/causal/causal.hh"
#include "obs/metric_registry.hh"
#include "obs/profile.hh"
#include "obs/timeline.hh"

namespace gps
{

std::uint64_t
TrafficMatrix::egress(GpuId src) const
{
    std::uint64_t sum = 0;
    for (std::size_t dst = 0; dst < n_; ++dst)
        sum += bytes_[src * n_ + dst];
    return sum;
}

std::uint64_t
TrafficMatrix::ingress(GpuId dst) const
{
    std::uint64_t sum = 0;
    for (std::size_t src = 0; src < n_; ++src)
        sum += bytes_[src * n_ + dst];
    return sum;
}

std::uint64_t
TrafficMatrix::total() const
{
    std::uint64_t sum = 0;
    for (auto b : bytes_)
        sum += b;
    return sum;
}

void
TrafficMatrix::clear()
{
    std::fill(bytes_.begin(), bytes_.end(), 0);
    payload_ = 0;
}

std::uint64_t
TrafficMatrix::takeWire(GpuId src, GpuId dst)
{
    const std::uint64_t bytes = bytes_[src * n_ + dst];
    bytes_[src * n_ + dst] = 0;
    return bytes;
}

Topology::Topology(std::string name, std::size_t num_gpus,
                   InterconnectKind kind, double bandwidth_scale)
    : SimObject(std::move(name)), numGpus_(num_gpus),
      spec_(&interconnectSpec(kind))
{
    gps_assert(num_gpus >= 1, "topology needs at least one GPU");
    gps_assert(bandwidth_scale > 0.0,
               "link bandwidth scale must be positive");
    if (bandwidth_scale != 1.0 && !spec_->infinite) {
        ownedSpec_ = *spec_;
        ownedSpec_.bandwidth *= bandwidth_scale;
        spec_ = &ownedSpec_;
    }
    for (std::size_t g = 0; g < num_gpus; ++g) {
        egress_.push_back(std::make_unique<Link>(
            this->name() + ".gpu" + std::to_string(g) + ".egress",
            *spec_));
        ingress_.push_back(std::make_unique<Link>(
            this->name() + ".gpu" + std::to_string(g) + ".ingress",
            *spec_));
    }
}

Tick
Topology::applyPhaseTraffic(const TrafficMatrix& traffic)
{
    gps_assert(traffic.numGpus() == numGpus_,
               "traffic matrix size mismatch");
    Tick worst = 0;
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const std::uint64_t out = traffic.egress(static_cast<GpuId>(g));
        const std::uint64_t in = traffic.ingress(static_cast<GpuId>(g));
        const Tick out_time = linkTime(out);
        const Tick in_time = linkTime(in);
        egress_[g]->record(out, out_time);
        ingress_[g]->record(in, in_time);
        worst = std::max({worst, out_time, in_time});
        totalBytes_ += out;
        if (causal_ != nullptr && out > 0)
            causal_->noteDep(CausalEdge::LinkToRwqInsert);
        if (profile_ != nullptr) {
            if (out > 0)
                profile_->noteLinkBusy(out_time);
            if (in > 0)
                profile_->noteLinkBusy(in_time);
        }
        if (recorder_ != nullptr) {
            const int tid = static_cast<int>(g);
            if (out > 0)
                recorder_->complete(
                    tid, "egress", "link", recorder_->now(), out_time,
                    {{"bytes", static_cast<double>(out)}});
            if (in > 0)
                recorder_->complete(
                    tid, "ingress", "link", recorder_->now(), in_time,
                    {{"bytes", static_cast<double>(in)}});
        }
    }
    totalPayload_ += traffic.payload();
    return worst;
}

Tick
Topology::linkTime(std::uint64_t bytes) const
{
    if (spec_->infinite)
        return 0;
    return transferTicks(bytes, spec_->bandwidth);
}

void
Topology::setPathState(GpuId a, GpuId b, PathHealth health, double factor)
{
    // Fatal rather than assert: bad endpoints can arrive straight from a
    // user's --fault spec.
    if (a >= numGpus_ || b >= numGpus_ || a == b)
        gps_fatal("bad path endpoints ", a, "-", b);
    if (factor <= 0.0 || factor > 1.0)
        gps_fatal("degrade factor out of (0, 1]: ", factor);
    if (health == PathHealth::Healthy) {
        paths_.erase(pathKey(a, b));
        return;
    }
    paths_[pathKey(a, b)] = PathState{
        health, health == PathHealth::Degraded ? factor : 1.0};
}

PathState
Topology::pathState(GpuId a, GpuId b) const
{
    const auto it = paths_.find(pathKey(a, b));
    return it == paths_.end() ? PathState{} : it->second;
}

GpuId
Topology::findRelay(GpuId src, GpuId dst) const
{
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId relay = static_cast<GpuId>(g);
        if (relay == src || relay == dst)
            continue;
        if (pathState(src, relay).health != PathHealth::Down &&
            pathState(relay, dst).health != PathHealth::Down)
            return relay;
    }
    return invalidGpu;
}

namespace
{

/** Wire bytes needed to keep transfer time constant at reduced speed. */
std::uint64_t
inflate(std::uint64_t bytes, double factor)
{
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(bytes) / factor));
}

} // namespace

void
Topology::routeAroundFaults(TrafficMatrix& traffic,
                            FaultReport& report) const
{
    if (paths_.empty())
        return;
    gps_assert(traffic.numGpus() == numGpus_,
               "traffic matrix size mismatch");

    // Host-staged fallback path: both directions share the host bridge,
    // so a dead peer pair effectively sees half of a PCIe 3.0 link.
    const double fallback_bw =
        interconnectSpec(InterconnectKind::Pcie3).bandwidth / 2.0;

    // Snapshot semantics: collect all adjustments against the original
    // matrix first, then apply, so relayed flows are never re-penalized
    // by the degraded-path pass.
    struct Extra {
        GpuId src;
        GpuId dst;
        std::uint64_t wire;
    };
    std::vector<Extra> extras;

    for (std::size_t s = 0; s < numGpus_; ++s) {
        for (std::size_t d = 0; d < numGpus_; ++d) {
            if (s == d)
                continue;
            const GpuId src = static_cast<GpuId>(s);
            const GpuId dst = static_cast<GpuId>(d);
            const std::uint64_t bytes = traffic.at(src, dst);
            if (bytes == 0)
                continue;
            const PathState state = pathState(src, dst);
            if (state.health == PathHealth::Healthy)
                continue;

            if (state.health == PathHealth::Degraded) {
                extras.push_back(
                    {src, dst, inflate(bytes, state.factor) - bytes});
                continue;
            }

            // Down: the flow must leave this path entirely.
            traffic.takeWire(src, dst);
            const GpuId relay = findRelay(src, dst);
            if (relay != invalidGpu) {
                const PathState hop1 = pathState(src, relay);
                const PathState hop2 = pathState(relay, dst);
                extras.push_back({src, relay,
                                  inflate(bytes, hop1.factor)});
                extras.push_back({relay, dst,
                                  inflate(bytes, hop2.factor)});
                ++report.reroutes;
                report.reroutedBytes += bytes;
                continue;
            }
            if (!pcieFallback_)
                gps_fatal("no path between GPU ", src, " and GPU ", dst,
                          " and PCIe fallback is disabled: partition ",
                          "unreachable");
            // Keep the flow on the pair's links but inflate its wire
            // occupancy to what the host-staged path would cost.
            std::uint64_t staged = bytes;
            if (!spec_->infinite && spec_->bandwidth > fallback_bw)
                staged = static_cast<std::uint64_t>(
                    std::ceil(static_cast<double>(bytes) *
                              spec_->bandwidth / fallback_bw));
            extras.push_back({src, dst, staged});
            ++report.pcieFallbacks;
            report.pcieFallbackBytes += bytes;
        }
    }

    for (const Extra& extra : extras)
        traffic.addWire(extra.src, extra.dst, extra.wire);
}

void
Topology::exportStats(StatSet& out) const
{
    out.set(name() + ".total_bytes", static_cast<double>(totalBytes_));
    out.set(name() + ".total_payload_bytes",
            static_cast<double>(totalPayload_));
    for (const auto& link : egress_)
        link->exportStats(out);
    for (const auto& link : ingress_)
        link->exportStats(out);
}

void
Topology::registerMetrics(MetricRegistry& reg) const
{
    const std::string p = name() + '.';
    reg.counter(p + "total_bytes", "bytes",
                [this] { return static_cast<double>(totalBytes_); });
    reg.counter(p + "total_payload_bytes", "bytes",
                [this] { return static_cast<double>(totalPayload_); });
    reg.gauge(p + "path_faults", "paths",
              [this] { return static_cast<double>(paths_.size()); });
    for (const auto& link : egress_)
        link->registerMetrics(reg);
    for (const auto& link : ingress_)
        link->registerMetrics(reg);
}

void
Topology::resetStats()
{
    totalBytes_ = 0;
    totalPayload_ = 0;
    for (auto& link : egress_)
        link->resetStats();
    for (auto& link : ingress_)
        link->resetStats();
}

} // namespace gps
