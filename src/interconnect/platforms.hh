/**
 * @file
 * Historical multi-GPU platform survey behind the paper's Figure 3:
 * local HBM/GDDR bandwidth vs. remote (inter-GPU) bandwidth per platform.
 */

#ifndef GPS_INTERCONNECT_PLATFORMS_HH
#define GPS_INTERCONNECT_PLATFORMS_HH

#include <string>
#include <vector>

#include "interconnect/pcie.hh"

namespace gps
{

/** One row of the Figure 3 platform survey. */
struct PlatformSpec
{
    std::string name;          ///< platform / GPU / interconnect
    double localGBps;          ///< local memory bandwidth, GB/s
    double remoteGBps;         ///< inter-GPU bandwidth, GB/s

    double gap() const { return localGBps / remoteGBps; }
};

/** The five platforms plotted in Figure 3, in chronological order. */
const std::vector<PlatformSpec>& figure3Platforms();

/**
 * Inter-node fabric spec rows: the per-node uplinks that join
 * NVLink/NVSwitch islands in a hierarchical (DGX-pod-style) system.
 * Resolved through interconnectSpec() like the intra-node generations.
 */
const std::vector<InterconnectSpec>& interNodeFabrics();

/** Whether @p kind names an inter-node fabric (vs. an intra-node link). */
bool isInterNodeKind(InterconnectKind kind);

} // namespace gps

#endif // GPS_INTERCONNECT_PLATFORMS_HH
