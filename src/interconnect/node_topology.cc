#include "interconnect/node_topology.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"
#include "interconnect/platforms.hh"
#include "obs/metric_registry.hh"
#include "obs/profile.hh"
#include "obs/timeline.hh"

namespace gps
{

NodeTopology::NodeTopology(std::string name, std::size_t num_gpus,
                           std::size_t num_nodes,
                           InterconnectKind intra_kind,
                           InterconnectKind inter_kind,
                           double bandwidth_scale)
    : Topology(std::move(name), num_gpus, intra_kind, bandwidth_scale),
      numNodes_(num_nodes),
      gpusPerNode_(num_nodes > 0 ? num_gpus / num_nodes : 0),
      interSpec_(&interconnectSpec(inter_kind))
{
    if (num_nodes < 1)
        gps_fatal("node topology needs at least one node");
    if (num_gpus % num_nodes != 0)
        gps_fatal("GPU count ", num_gpus,
                  " not divisible by node count ", num_nodes);
    if (bandwidth_scale != 1.0 && !interSpec_->infinite) {
        ownedInterSpec_ = *interSpec_;
        ownedInterSpec_.bandwidth *= bandwidth_scale;
        interSpec_ = &ownedInterSpec_;
    }
    for (std::size_t n = 0; n < numNodes_; ++n) {
        upEgress_.push_back(std::make_unique<Link>(
            this->name() + ".node" + std::to_string(n) +
                ".uplink.egress",
            *interSpec_));
        upIngress_.push_back(std::make_unique<Link>(
            this->name() + ".node" + std::to_string(n) +
                ".uplink.ingress",
            *interSpec_));
    }
    cross_.assign(numNodes_ * numNodes_, 0);
    uplinkFaults_.assign(numNodes_, PathState{});
}

std::uint64_t
NodeTopology::totalCrossNodeBytes() const
{
    std::uint64_t sum = 0;
    for (const std::uint64_t b : cross_)
        sum += b;
    return sum;
}

void
NodeTopology::setUplinkState(std::size_t node, PathHealth health,
                             double factor)
{
    // Fatal rather than assert: bad node ids can arrive straight from a
    // user's fault spec.
    if (node >= numNodes_)
        gps_fatal("bad uplink node ", node, " (", numNodes_, " nodes)");
    if (factor <= 0.0 || factor > 1.0)
        gps_fatal("degrade factor out of (0, 1]: ", factor);
    uplinkFaults_[node] = PathState{
        health, health == PathHealth::Degraded ? factor : 1.0};
}

Tick
NodeTopology::uplinkTime(std::size_t node, std::uint64_t bytes) const
{
    if (bytes == 0 || interSpec_->infinite)
        return 0;
    const PathState& fault = uplinkFaults_[node];
    double bw = interSpec_->bandwidth;
    if (fault.health == PathHealth::Degraded) {
        bw *= fault.factor;
    } else if (fault.health == PathHealth::Down) {
        // Host-staged fallback: both directions share the host bridge,
        // so a dead uplink effectively sees half of a PCIe 3.0 link.
        if (!pcieFallback_)
            gps_fatal("node ", node, " uplink is down and PCIe fallback ",
                      "is disabled: partition unreachable");
        bw = interconnectSpec(InterconnectKind::Pcie3).bandwidth / 2.0;
    }
    return interSpec_->latency + transferTicks(bytes, bw);
}

std::uint64_t
NodeTopology::crossEgress(const TrafficMatrix& traffic,
                          std::size_t node) const
{
    std::uint64_t sum = 0;
    const GpuId first = static_cast<GpuId>(node * gpusPerNode_);
    for (GpuId src = first; src < first + gpusPerNode_; ++src) {
        sum += traffic.egress(src);
        // Subtract the intra-node share so only cross-node flows remain.
        for (GpuId dst = first; dst < first + gpusPerNode_; ++dst)
            sum -= traffic.at(src, dst);
    }
    return sum;
}

std::uint64_t
NodeTopology::crossIngress(const TrafficMatrix& traffic,
                           std::size_t node) const
{
    std::uint64_t sum = 0;
    const GpuId first = static_cast<GpuId>(node * gpusPerNode_);
    for (GpuId dst = first; dst < first + gpusPerNode_; ++dst) {
        sum += traffic.ingress(dst);
        for (GpuId src = first; src < first + gpusPerNode_; ++src)
            sum -= traffic.at(src, dst);
    }
    return sum;
}

Tick
NodeTopology::egressTime(const TrafficMatrix& traffic, GpuId gpu) const
{
    const std::size_t node = nodeOf(gpu);
    return std::max(linkTime(traffic.egress(gpu)),
                    uplinkTime(node, crossEgress(traffic, node)));
}

Tick
NodeTopology::ingressTime(const TrafficMatrix& traffic, GpuId gpu) const
{
    const std::size_t node = nodeOf(gpu);
    return std::max(linkTime(traffic.ingress(gpu)),
                    uplinkTime(node, crossIngress(traffic, node)));
}

Tick
NodeTopology::applyPhaseTraffic(const TrafficMatrix& traffic)
{
    Tick worst = Topology::applyPhaseTraffic(traffic);
    for (std::size_t s = 0; s < numNodes_; ++s) {
        // Node->node wire bytes feed both the uplink accounting and the
        // lifetime cross matrix the conservation law checks against.
        std::uint64_t out = 0;
        for (std::size_t d = 0; d < numNodes_; ++d) {
            if (s == d)
                continue;
            std::uint64_t pair = 0;
            for (std::size_t sg = 0; sg < gpusPerNode_; ++sg)
                for (std::size_t dg = 0; dg < gpusPerNode_; ++dg)
                    pair += traffic.at(
                        static_cast<GpuId>(s * gpusPerNode_ + sg),
                        static_cast<GpuId>(d * gpusPerNode_ + dg));
            cross_[s * numNodes_ + d] += pair;
            out += pair;
        }
        const std::uint64_t in = crossIngress(traffic, s);
        const Tick out_time = uplinkTime(s, out);
        const Tick in_time = uplinkTime(s, in);
        upEgress_[s]->record(out, out_time);
        upIngress_[s]->record(in, in_time);
        worst = std::max({worst, out_time, in_time});
        if (profile_ != nullptr) {
            if (out > 0)
                profile_->noteLinkBusy(out_time);
            if (in > 0)
                profile_->noteLinkBusy(in_time);
        }
        if (recorder_ != nullptr) {
            const int tid =
                TimelineRecorder::uplinkTidBase + static_cast<int>(s);
            if (out > 0)
                recorder_->complete(
                    tid, "uplink.egress", "link", recorder_->now(),
                    out_time, {{"bytes", static_cast<double>(out)}});
            if (in > 0)
                recorder_->complete(
                    tid, "uplink.ingress", "link", recorder_->now(),
                    in_time, {{"bytes", static_cast<double>(in)}});
        }
    }
    return worst;
}

void
NodeTopology::exportStats(StatSet& out) const
{
    Topology::exportStats(out);
    out.set(name() + ".cross_node_bytes",
            static_cast<double>(totalCrossNodeBytes()));
    for (const auto& link : upEgress_)
        link->exportStats(out);
    for (const auto& link : upIngress_)
        link->exportStats(out);
}

void
NodeTopology::registerMetrics(MetricRegistry& reg) const
{
    Topology::registerMetrics(reg);
    const std::string p = name() + '.';
    reg.counter(p + "cross_node_bytes", "bytes", [this] {
        return static_cast<double>(totalCrossNodeBytes());
    });
    reg.gauge(p + "uplink_faults", "uplinks", [this] {
        std::size_t n = 0;
        for (const PathState& st : uplinkFaults_)
            if (st.health != PathHealth::Healthy)
                ++n;
        return static_cast<double>(n);
    });
    for (const auto& link : upEgress_)
        link->registerMetrics(reg);
    for (const auto& link : upIngress_)
        link->registerMetrics(reg);
}

void
NodeTopology::resetStats()
{
    Topology::resetStats();
    std::fill(cross_.begin(), cross_.end(), 0);
    for (auto& link : upEgress_)
        link->resetStats();
    for (auto& link : upIngress_)
        link->resetStats();
}

void
NodeTopology::attachRecorder(TimelineRecorder* recorder)
{
    Topology::attachRecorder(recorder);
    if (recorder == nullptr)
        return;
    for (std::size_t n = 0; n < numNodes_; ++n)
        recorder->nameTrack(
            TimelineRecorder::uplinkTidBase + static_cast<int>(n),
            "node" + std::to_string(n) + ".uplink");
}

void
NodeTopology::saveState(snapshot::Serializer& out) const
{
    Topology::saveState(out);
    out.section("nodetopology");
    out.u64(numNodes_);
    for (const auto& link : upEgress_)
        link->saveState(out);
    for (const auto& link : upIngress_)
        link->saveState(out);
    for (const std::uint64_t b : cross_)
        out.u64(b);
    for (const PathState& st : uplinkFaults_) {
        out.u8(static_cast<std::uint8_t>(st.health));
        out.f64(st.factor);
    }
}

void
NodeTopology::restoreState(snapshot::Deserializer& in)
{
    Topology::restoreState(in);
    in.section("nodetopology");
    if (in.u64() != numNodes_)
        throw snapshot::SnapshotError(
            "snapshot node count differs from the configured topology");
    for (auto& link : upEgress_)
        link->restoreState(in);
    for (auto& link : upIngress_)
        link->restoreState(in);
    for (std::uint64_t& b : cross_)
        b = in.u64();
    for (PathState& st : uplinkFaults_) {
        st.health = decodePathHealth(in.u8());
        st.factor = in.f64();
    }
}

} // namespace gps
