/**
 * @file
 * Inter-GPU interconnect specifications.
 *
 * The paper evaluates PCIe 3.0 through a projected PCIe 6.0 (quoted at
 * 128 GB/s) plus a hypothetical infinite-bandwidth interconnect; Figure 3
 * additionally surveys NVLink generations. Bandwidths are per direction
 * per GPU (x16 equivalent).
 */

#ifndef GPS_INTERCONNECT_PCIE_HH
#define GPS_INTERCONNECT_PCIE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace gps
{

/** Supported interconnect models. */
enum class InterconnectKind : std::uint8_t {
    Pcie3,
    Pcie4,
    Pcie5,
    Pcie6,      ///< projected, 128 GB/s per the paper
    NvLink2,
    NvLink3,
    Infinite,   ///< zero transfer time, upper-bound comparison

    // Inter-node fabrics (see platforms.cc): per-node uplinks joining
    // NVLink/NVSwitch islands in a hierarchical topology.
    IbHdr,      ///< InfiniBand HDR, 200 Gb/s per port
    IbNdr,      ///< InfiniBand NDR, 400 Gb/s per port
    PcieFabric, ///< PCIe-switch fabric between nodes
};

/** Static description of one interconnect generation. */
struct InterconnectSpec
{
    InterconnectKind kind = InterconnectKind::Pcie3;
    std::string name;

    /** Per-direction bandwidth of one GPU's link, bytes/second. */
    double bandwidth = 0.0;

    /** One-way link latency in ticks. */
    Tick latency = 0;

    /** Protocol overhead added to every message, bytes. */
    std::uint32_t headerBytes = 0;

    /** True for the infinite-bandwidth upper bound. */
    bool infinite = false;
};

/** Spec for a given interconnect kind. */
const InterconnectSpec& interconnectSpec(InterconnectKind kind);

/** All PCIe generations in the paper's Figure 13 sweep, plus Infinite. */
std::vector<InterconnectKind> figure13Sweep();

std::string to_string(InterconnectKind kind);

} // namespace gps

#endif // GPS_INTERCONNECT_PCIE_HH
