/**
 * @file
 * Hierarchical two-tier interconnect: NVLink/NVSwitch islands per node,
 * joined by a thinner inter-node fabric (InfiniBand / PCIe fabric).
 *
 * GPUs [0, gpusPerNode) form node 0, the next gpusPerNode form node 1,
 * and so on. Intra-node flows behave exactly like the flat switched
 * topology; a cross-node flow additionally serializes through its source
 * node's uplink egress and the destination node's uplink ingress — one
 * shared full-duplex uplink per node, so every GPU in a node contends
 * for the same inter-node bandwidth (the first-order effect that makes
 * hierarchical subscription pay off past one node).
 *
 * Fault injection works at both tiers: the inherited per-GPU-pair
 * `setPathState`/`routeAroundFaults` machinery covers the intra-node
 * tier, and `setUplinkState` degrades or downs a node's uplink (a Down
 * uplink falls back to host-staged PCIe like an unreachable GPU pair).
 */

#ifndef GPS_INTERCONNECT_NODE_TOPOLOGY_HH
#define GPS_INTERCONNECT_NODE_TOPOLOGY_HH

#include "interconnect/topology.hh"

namespace gps
{

/** Two-tier topology: per-node switched islands plus node uplinks. */
class NodeTopology : public Topology
{
  public:
    /**
     * @param num_nodes must divide @p num_gpus evenly
     * @param inter_kind the uplink fabric (see interNodeFabrics())
     * @param bandwidth_scale what-if multiplier applied to both tiers
     */
    NodeTopology(std::string name, std::size_t num_gpus,
                 std::size_t num_nodes, InterconnectKind intra_kind,
                 InterconnectKind inter_kind,
                 double bandwidth_scale = 1.0);

    std::size_t numNodes() const { return numNodes_; }
    std::size_t gpusPerNode() const { return gpusPerNode_; }

    /** Node hosting @p gpu. */
    std::size_t
    nodeOf(GpuId gpu) const
    {
        return gpu / gpusPerNode_;
    }

    /** The inter-node fabric spec (post bandwidth scaling). */
    const InterconnectSpec& interSpec() const { return *interSpec_; }

    Link& uplinkEgress(std::size_t node) { return *upEgress_.at(node); }
    Link& uplinkIngress(std::size_t node) { return *upIngress_.at(node); }

    /** Lifetime wire bytes sent from node @p src to node @p dst. */
    std::uint64_t
    crossNodeBytes(std::size_t src, std::size_t dst) const
    {
        return cross_.at(src * numNodes_ + dst);
    }

    /** Lifetime wire bytes over all uplinks. */
    std::uint64_t totalCrossNodeBytes() const;

    // --- Tier-2 fault state ---

    /**
     * Set the health of one node's uplink (both directions). Degraded
     * uplinks move the same bytes at factor x bandwidth; a Down uplink
     * falls back to the host-staged PCIe path (or is fatal when the
     * fallback is disabled).
     */
    void setUplinkState(std::size_t node, PathHealth health,
                        double factor = 1.0);

    /** Current uplink state (Healthy when never faulted). */
    PathState
    uplinkState(std::size_t node) const
    {
        return uplinkFaults_.at(node);
    }

    Tick applyPhaseTraffic(const TrafficMatrix& traffic) override;
    Tick egressTime(const TrafficMatrix& traffic,
                    GpuId gpu) const override;
    Tick ingressTime(const TrafficMatrix& traffic,
                     GpuId gpu) const override;

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;
    void resetStats() override;
    void attachRecorder(TimelineRecorder* recorder) override;

    void saveState(snapshot::Serializer& out) const override;
    void restoreState(snapshot::Deserializer& in) override;

  private:
    /**
     * Time to move @p bytes over node @p node's uplink (one direction),
     * including the fabric's one-way latency once per non-empty
     * transfer and any Degraded/Down fault penalty.
     */
    Tick uplinkTime(std::size_t node, std::uint64_t bytes) const;

    /** Wire bytes @p traffic moves from @p node to other nodes. */
    std::uint64_t crossEgress(const TrafficMatrix& traffic,
                              std::size_t node) const;

    /** Wire bytes @p traffic moves into @p node from other nodes. */
    std::uint64_t crossIngress(const TrafficMatrix& traffic,
                               std::size_t node) const;

    std::size_t numNodes_;
    std::size_t gpusPerNode_;

    /** Scaled copy backing interSpec_ when bandwidth_scale != 1.0. */
    InterconnectSpec ownedInterSpec_;
    const InterconnectSpec* interSpec_;

    std::vector<std::unique_ptr<Link>> upEgress_;
    std::vector<std::unique_ptr<Link>> upIngress_;

    /** Lifetime node->node wire bytes, row-major numNodes_ x numNodes_. */
    std::vector<std::uint64_t> cross_;

    /** Per-node uplink fault state. */
    std::vector<PathState> uplinkFaults_;
};

} // namespace gps

#endif // GPS_INTERCONNECT_NODE_TOPOLOGY_HH
