/**
 * @file
 * A single direction of one GPU's interconnect attachment (egress or
 * ingress through the switch). Tracks lifetime bytes and busy time; the
 * phase executor reserves bandwidth per phase and reads back the transfer
 * time.
 */

#ifndef GPS_INTERCONNECT_LINK_HH
#define GPS_INTERCONNECT_LINK_HH

#include <cstdint>

#include "common/types.hh"
#include "interconnect/pcie.hh"
#include "sim/sim_object.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** One direction of one GPU's link to the interconnect switch. */
class Link : public SimObject
{
  public:
    Link(std::string name, const InterconnectSpec& spec)
        : SimObject(std::move(name)), spec_(&spec)
    {}

    /** Time to move @p bytes over this link (0 for infinite BW). */
    Tick transferTime(std::uint64_t bytes) const;

    /** Account @p bytes of traffic taking @p busy ticks. */
    void
    record(std::uint64_t bytes, Tick busy)
    {
        totalBytes_ += bytes;
        busyTime_ += busy;
    }

    const InterconnectSpec& spec() const { return *spec_; }
    std::uint64_t totalBytes() const { return totalBytes_; }
    Tick busyTime() const { return busyTime_; }

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;
    void resetStats() override;

    /** Serialize lifetime byte/busy accounting. */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.u64(totalBytes_);
        out.u64(busyTime_);
    }

    /** Counterpart of saveState. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        totalBytes_ = in.u64();
        busyTime_ = in.u64();
    }

  private:
    const InterconnectSpec* spec_;
    std::uint64_t totalBytes_ = 0;
    Tick busyTime_ = 0;
};

} // namespace gps

#endif // GPS_INTERCONNECT_LINK_HH
