#include "interconnect/link.hh"

#include "common/units.hh"
#include "obs/metric_registry.hh"

namespace gps
{

Tick
Link::transferTime(std::uint64_t bytes) const
{
    if (spec_->infinite)
        return 0;
    return transferTicks(bytes, spec_->bandwidth);
}

void
Link::exportStats(StatSet& out) const
{
    out.set(name() + ".bytes", static_cast<double>(totalBytes_));
    out.set(name() + ".busy_us", ticksToUs(busyTime_));
}

void
Link::registerMetrics(MetricRegistry& reg) const
{
    const std::string p = name() + '.';
    reg.counter(p + "bytes", "bytes",
                [this] { return static_cast<double>(totalBytes_); });
    reg.counter(p + "busy_us", "us",
                [this] { return ticksToUs(busyTime_); });
}

void
Link::resetStats()
{
    totalBytes_ = 0;
    busyTime_ = 0;
}

} // namespace gps
