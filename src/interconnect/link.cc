#include "interconnect/link.hh"

#include "common/units.hh"

namespace gps
{

Tick
Link::transferTime(std::uint64_t bytes) const
{
    if (spec_->infinite)
        return 0;
    return transferTicks(bytes, spec_->bandwidth);
}

void
Link::exportStats(StatSet& out) const
{
    out.set(name() + ".bytes", static_cast<double>(totalBytes_));
    out.set(name() + ".busy_us", ticksToUs(busyTime_));
}

void
Link::resetStats()
{
    totalBytes_ = 0;
    busyTime_ = 0;
}

} // namespace gps
