#include "interconnect/pcie.hh"

#include <array>

#include "common/logging.hh"
#include "common/units.hh"
#include "interconnect/platforms.hh"

namespace gps
{

namespace
{

// Latencies: PCIe peer access round trips measure ~1.2-1.5 us on real
// systems; we charge the one-way latency here and the GPU model composes
// request+response. NVLink is substantially lower. Header: PCIe TLP ~24 B;
// NVLink flit overhead ~16 B.
const std::array<InterconnectSpec, 7> specs = {{
    {InterconnectKind::Pcie3, "PCIe 3.0", 16.0 * GBps, nsToTicks(600), 24,
     false},
    {InterconnectKind::Pcie4, "PCIe 4.0", 32.0 * GBps, nsToTicks(550), 24,
     false},
    {InterconnectKind::Pcie5, "PCIe 5.0", 64.0 * GBps, nsToTicks(500), 24,
     false},
    {InterconnectKind::Pcie6, "PCIe 6.0 (projected)", 128.0 * GBps,
     nsToTicks(450), 24, false},
    {InterconnectKind::NvLink2, "NVLink 2", 150.0 * GBps, nsToTicks(300),
     16, false},
    {InterconnectKind::NvLink3, "NVLink 3", 300.0 * GBps, nsToTicks(250),
     16, false},
    {InterconnectKind::Infinite, "Infinite BW", 0.0, 0, 0, true},
}};

} // namespace

const InterconnectSpec&
interconnectSpec(InterconnectKind kind)
{
    for (const auto& spec : specs) {
        if (spec.kind == kind)
            return spec;
    }
    for (const auto& spec : interNodeFabrics()) {
        if (spec.kind == kind)
            return spec;
    }
    gps_panic("unknown interconnect kind");
}

std::vector<InterconnectKind>
figure13Sweep()
{
    return {InterconnectKind::Pcie3, InterconnectKind::Pcie4,
            InterconnectKind::Pcie5, InterconnectKind::Pcie6};
}

std::string
to_string(InterconnectKind kind)
{
    return interconnectSpec(kind).name;
}

} // namespace gps
