/**
 * @file
 * Switch-based all-to-all interconnect topology plus per-phase traffic
 * accounting.
 *
 * Every GPU attaches to a central switch through one full-duplex link
 * (egress + ingress modeled separately). Contention therefore appears when
 * one GPU broadcasts to many subscribers (egress serialization) or when
 * many GPUs target one destination (ingress serialization) — the
 * first-order effects behind all of the paper's bandwidth results.
 */

#ifndef GPS_INTERCONNECT_TOPOLOGY_HH
#define GPS_INTERCONNECT_TOPOLOGY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "interconnect/link.hh"
#include "interconnect/pcie.hh"
#include "sim/sim_object.hh"

namespace gps
{

/**
 * Per-phase source->destination byte matrix. Wire bytes (payload plus
 * protocol headers) drive timing; payload bytes are tracked separately
 * because the paper's Figure 10 reports data moved, not wire occupancy.
 */
class TrafficMatrix
{
  public:
    explicit TrafficMatrix(std::size_t num_gpus)
        : n_(num_gpus), bytes_(num_gpus * num_gpus, 0)
    {}

    /**
     * Account a transfer.
     * @param bytes wire bytes (payload + headers)
     * @param payload payload bytes; defaults to @p bytes
     */
    void
    add(GpuId src, GpuId dst, std::uint64_t bytes,
        std::uint64_t payload = std::uint64_t(-1))
    {
        bytes_[src * n_ + dst] += bytes;
        payload_ += payload == std::uint64_t(-1) ? bytes : payload;
    }

    std::uint64_t
    at(GpuId src, GpuId dst) const
    {
        return bytes_[src * n_ + dst];
    }

    /** Total payload bytes recorded. */
    std::uint64_t payload() const { return payload_; }

    /** Total bytes leaving @p src. */
    std::uint64_t egress(GpuId src) const;

    /** Total bytes arriving at @p dst. */
    std::uint64_t ingress(GpuId dst) const;

    /** Total bytes moved. */
    std::uint64_t total() const;

    std::size_t numGpus() const { return n_; }

    void clear();

  private:
    std::size_t n_;
    std::vector<std::uint64_t> bytes_;
    std::uint64_t payload_ = 0;
};

/** The system interconnect: one full-duplex link per GPU, via a switch. */
class Topology : public SimObject
{
  public:
    Topology(std::string name, std::size_t num_gpus,
             InterconnectKind kind);

    const InterconnectSpec& spec() const { return *spec_; }
    std::size_t numGpus() const { return numGpus_; }

    Link& egressLink(GpuId gpu) { return *egress_.at(gpu); }
    Link& ingressLink(GpuId gpu) { return *ingress_.at(gpu); }

    /**
     * Account a phase's traffic matrix against the links and return the
     * time the busiest link needs: max over GPUs of
     * max(egress_time, ingress_time).
     */
    Tick applyPhaseTraffic(const TrafficMatrix& traffic);

    /** Time to move @p bytes over one link direction. */
    Tick linkTime(std::uint64_t bytes) const;

    /** One-way message latency. */
    Tick latency() const { return spec_->latency; }

    /** Lifetime wire bytes moved over the whole interconnect. */
    std::uint64_t totalBytes() const { return totalBytes_; }

    /** Lifetime payload bytes (the Figure 10 "data moved" metric). */
    std::uint64_t totalPayloadBytes() const { return totalPayload_; }

    void exportStats(StatSet& out) const override;
    void resetStats() override;

  private:
    std::size_t numGpus_;
    const InterconnectSpec* spec_;
    std::vector<std::unique_ptr<Link>> egress_;
    std::vector<std::unique_ptr<Link>> ingress_;
    std::uint64_t totalBytes_ = 0;
    std::uint64_t totalPayload_ = 0;
};

} // namespace gps

#endif // GPS_INTERCONNECT_TOPOLOGY_HH
