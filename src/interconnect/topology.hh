/**
 * @file
 * Switch-based all-to-all interconnect topology plus per-phase traffic
 * accounting.
 *
 * Every GPU attaches to a central switch through one full-duplex link
 * (egress + ingress modeled separately). Contention therefore appears when
 * one GPU broadcasts to many subscribers (egress serialization) or when
 * many GPUs target one destination (ingress serialization) — the
 * first-order effects behind all of the paper's bandwidth results.
 */

#ifndef GPS_INTERCONNECT_TOPOLOGY_HH
#define GPS_INTERCONNECT_TOPOLOGY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include <algorithm>

#include "common/types.hh"
#include "interconnect/link.hh"
#include "interconnect/pcie.hh"
#include "sim/sim_object.hh"
#include "snapshot/serial.hh"

namespace gps
{

struct FaultReport;
class TimelineRecorder;
class ProfileCollector;
class CausalRecorder;

/** Health of the switched path between one pair of GPUs. */
enum class PathHealth : std::uint8_t {
    Healthy,  ///< Full bandwidth.
    Degraded, ///< Working at a fraction of nominal bandwidth.
    Down,     ///< Carries no traffic; flows must reroute.
};

/** Fault state of one GPU pair's path. */
struct PathState
{
    PathHealth health = PathHealth::Healthy;

    /** Usable bandwidth fraction while Degraded, in (0, 1]. */
    double factor = 1.0;
};

/**
 * Per-phase source->destination byte matrix. Wire bytes (payload plus
 * protocol headers) drive timing; payload bytes are tracked separately
 * because the paper's Figure 10 reports data moved, not wire occupancy.
 */
class TrafficMatrix
{
  public:
    explicit TrafficMatrix(std::size_t num_gpus)
        : n_(num_gpus), bytes_(num_gpus * num_gpus, 0)
    {}

    /**
     * Account a transfer.
     * @param bytes wire bytes (payload + headers)
     * @param payload payload bytes; defaults to @p bytes
     */
    void
    add(GpuId src, GpuId dst, std::uint64_t bytes,
        std::uint64_t payload = std::uint64_t(-1))
    {
        bytes_[src * n_ + dst] += bytes;
        payload_ += payload == std::uint64_t(-1) ? bytes : payload;
    }

    std::uint64_t
    at(GpuId src, GpuId dst) const
    {
        return bytes_[src * n_ + dst];
    }

    /** Total payload bytes recorded. */
    std::uint64_t payload() const { return payload_; }

    /** Total bytes leaving @p src. */
    std::uint64_t egress(GpuId src) const;

    /** Total bytes arriving at @p dst. */
    std::uint64_t ingress(GpuId dst) const;

    /** Total bytes moved. */
    std::uint64_t total() const;

    std::size_t numGpus() const { return n_; }

    void clear();

    /**
     * Remove and return the wire bytes of one cell without touching the
     * payload total; used by fault rerouting, which moves wire occupancy
     * but not the "data moved" metric.
     */
    std::uint64_t takeWire(GpuId src, GpuId dst);

    /** Add wire bytes without affecting the payload total. */
    void
    addWire(GpuId src, GpuId dst, std::uint64_t bytes)
    {
        bytes_[src * n_ + dst] += bytes;
    }

  private:
    std::size_t n_;
    std::vector<std::uint64_t> bytes_;
    std::uint64_t payload_ = 0;
};

/** The system interconnect: one full-duplex link per GPU, via a switch. */
class Topology : public SimObject
{
  public:
    /**
     * @param bandwidth_scale what-if multiplier on the spec's link
     *        bandwidth; at exactly 1.0 the topology keeps pointing at
     *        the static spec (byte-identical fast path).
     */
    Topology(std::string name, std::size_t num_gpus,
             InterconnectKind kind, double bandwidth_scale = 1.0);

    ~Topology() override = default;

    const InterconnectSpec& spec() const { return *spec_; }
    std::size_t numGpus() const { return numGpus_; }

    Link& egressLink(GpuId gpu) { return *egress_.at(gpu); }
    Link& ingressLink(GpuId gpu) { return *ingress_.at(gpu); }

    /**
     * Account a phase's traffic matrix against the links and return the
     * time the busiest link needs: max over GPUs of
     * max(egress_time, ingress_time).
     */
    virtual Tick applyPhaseTraffic(const TrafficMatrix& traffic);

    /**
     * Time @p gpu needs to push its share of @p traffic out: the egress
     * link serialization, plus (in tiered topologies) any shared uplink
     * serialization its cross-node flows contend for.
     */
    virtual Tick
    egressTime(const TrafficMatrix& traffic, GpuId gpu) const
    {
        return linkTime(traffic.egress(gpu));
    }

    /** Ingress-side counterpart of egressTime. */
    virtual Tick
    ingressTime(const TrafficMatrix& traffic, GpuId gpu) const
    {
        return linkTime(traffic.ingress(gpu));
    }

    /** Time to move @p bytes over one link direction. */
    Tick linkTime(std::uint64_t bytes) const;

    /** One-way message latency. */
    Tick latency() const { return spec_->latency; }

    /** Lifetime wire bytes moved over the whole interconnect. */
    std::uint64_t totalBytes() const { return totalBytes_; }

    /** Lifetime payload bytes (the Figure 10 "data moved" metric). */
    std::uint64_t totalPayloadBytes() const { return totalPayload_; }

    // --- Fault state (see src/fault/) ---

    /**
     * Set the health of the path between @p a and @p b (symmetric).
     * Healthy erases the entry, so a fault-free topology stays fault-free
     * in the fast-path check below.
     */
    void setPathState(GpuId a, GpuId b, PathHealth health,
                      double factor = 1.0);

    /** Current state of the pair's path (Healthy when never faulted). */
    PathState pathState(GpuId a, GpuId b) const;

    /** Whether any path currently carries fault state. */
    bool anyPathFault() const { return !paths_.empty(); }

    /** Allow/forbid host-staged PCIe fallback for dead partitions. */
    void setPcieFallback(bool allow) { pcieFallback_ = allow; }

    /**
     * Rewrite @p traffic so no flow crosses a Down path and Degraded
     * paths pay their bandwidth penalty as inflated wire bytes. Down
     * flows move to a relay GPU when one is reachable, else to the PCIe
     * fallback; fatal when a partition is unreachable and the fallback is
     * disabled. No-op when no path carries fault state.
     */
    void routeAroundFaults(TrafficMatrix& traffic,
                           FaultReport& report) const;

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;
    void resetStats() override;

    /**
     * Attach the timeline recorder (nullptr detaches). Per-link
     * transfers are then recorded as complete events at the recorder's
     * current stamp (the enclosing phase's start tick).
     */
    virtual void attachRecorder(TimelineRecorder* recorder)
    {
        recorder_ = recorder;
    }

    /**
     * Attach the profile collector (nullptr detaches); each non-idle
     * link direction then feeds its per-phase busy time into the
     * link-delay histogram.
     */
    void attachProfile(ProfileCollector* profile) { profile_ = profile; }

    /**
     * Attach the causal recorder (nullptr detaches); each non-idle
     * egress direction then contributes a link-transfer dependency
     * edge to the activity graph.
     */
    void attachCausal(CausalRecorder* causal) { causal_ = causal; }

    /**
     * Serialize link accounting, lifetime totals, and fault path state
     * (sorted by path key — the unordered map feeds only key-addressed
     * lookups, but snapshot bytes must be deterministic).
     */
    virtual void
    saveState(snapshot::Serializer& out) const
    {
        out.section("topology");
        out.u64(numGpus_);
        for (const auto& link : egress_)
            link->saveState(out);
        for (const auto& link : ingress_)
            link->saveState(out);
        out.u64(totalBytes_);
        out.u64(totalPayload_);
        std::vector<std::uint32_t> keys;
        keys.reserve(paths_.size());
        for (const auto& [key, st] : paths_)
            keys.push_back(key);
        std::sort(keys.begin(), keys.end());
        out.u64(keys.size());
        for (const std::uint32_t key : keys) {
            const PathState& st = paths_.at(key);
            out.u32(key);
            out.u8(static_cast<std::uint8_t>(st.health));
            out.f64(st.factor);
        }
        out.b(pcieFallback_);
    }

    /** Counterpart of saveState. */
    virtual void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("topology");
        if (in.u64() != numGpus_)
            throw snapshot::SnapshotError(
                "snapshot GPU count differs from the configured "
                "topology");
        for (auto& link : egress_)
            link->restoreState(in);
        for (auto& link : ingress_)
            link->restoreState(in);
        totalBytes_ = in.u64();
        totalPayload_ = in.u64();
        paths_.clear();
        const std::uint64_t n = in.count(1ULL << 32);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint32_t key = in.u32();
            PathState st;
            st.health = decodePathHealth(in.u8());
            st.factor = in.f64();
            paths_.emplace(key, st);
        }
        pcieFallback_ = in.b();
    }

  protected:
    /**
     * Validate a serialized PathHealth: a corrupt or hand-edited
     * snapshot must not resume with an out-of-range enum (every switch
     * over the health would be undefined behavior).
     */
    static PathHealth
    decodePathHealth(std::uint8_t raw)
    {
        if (raw > static_cast<std::uint8_t>(PathHealth::Down))
            throw snapshot::SnapshotError(
                "corrupt snapshot: path health value out of range");
        return static_cast<PathHealth>(raw);
    }

    static std::uint32_t
    pathKey(GpuId a, GpuId b)
    {
        const std::uint32_t lo = a < b ? a : b;
        const std::uint32_t hi = a < b ? b : a;
        return (lo << 16) | hi;
    }

    /** First GPU both endpoints can still reach; invalidGpu if none. */
    GpuId findRelay(GpuId src, GpuId dst) const;

    std::size_t numGpus_;

    /** Scaled copy backing spec_ when bandwidth_scale != 1.0. */
    InterconnectSpec ownedSpec_;
    const InterconnectSpec* spec_;
    std::vector<std::unique_ptr<Link>> egress_;
    std::vector<std::unique_ptr<Link>> ingress_;
    std::uint64_t totalBytes_ = 0;
    std::uint64_t totalPayload_ = 0;
    std::unordered_map<std::uint32_t, PathState> paths_;
    bool pcieFallback_ = true;
    TimelineRecorder* recorder_ = nullptr;
    ProfileCollector* profile_ = nullptr;
    CausalRecorder* causal_ = nullptr;
};

} // namespace gps

#endif // GPS_INTERCONNECT_TOPOLOGY_HH
