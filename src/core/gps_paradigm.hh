/**
 * @file
 * The GPS memory-management paradigm: the paper's contribution.
 *
 * Loads to GPS pages are serviced from the local replica (or forwarded
 * from the remote write queue / a remote subscriber in the non-subscriber
 * corner case). Weak stores write the local replica, pass the SM store
 * coalescer, coalesce in the per-GPU remote write queue, and drain through
 * the GPS address translation unit to every remote subscriber. Sys-scoped
 * stores collapse the page (Section 5.3). Automatic subscription profiles
 * TLB misses through the access tracking unit and unsubscribes untouched
 * GPUs at cuGPSTrackingStop() (Section 5.2).
 */

#ifndef GPS_CORE_GPS_PARADIGM_HH
#define GPS_CORE_GPS_PARADIGM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/access_tracker.hh"
#include "core/gps_config.hh"
#include "core/gps_page_table.hh"
#include "core/gps_translation_unit.hh"
#include "core/remote_write_queue.hh"
#include "core/subscription.hh"
#include "paradigm/paradigm.hh"

namespace gps
{

class NodeTopology;

/** Publish-subscribe multi-GPU memory management. */
class GpsParadigm : public Paradigm
{
  public:
    explicit GpsParadigm(MultiGpuSystem& system);

    ParadigmKind kind() const override { return ParadigmKind::Gps; }
    MemKind sharedKind() const override { return MemKind::Gps; }

    void onSetupComplete() override;
    void endKernel(GpuId gpu, KernelCounters& counters,
                   TrafficMatrix& traffic) override;
    void trackingStart() override;
    void trackingStop(KernelCounters& counters) override;
    bool fillSubscriberHistogram(Histogram& hist) const override;

    /**
     * Replica loss: free frames are retired first; beyond that, replicas
     * on @p gpu are evicted through the §5.3 swap-out machinery and the
     * GPU degrades to remote accesses for those pages (with optional
     * re-subscription after resubscribeAfter accesses).
     */
    void onFaultPageRetire(GpuId gpu, std::uint64_t count,
                           FaultReport& report) override;

    /** RWQ backpressure: saturate/restore the GPU's write queue(s). */
    void onFaultWqSaturate(GpuId gpu, bool saturated,
                           FaultReport& report) override;

    /** Manual subscription API (CU_MEM_ADVISE_GPS_SUBSCRIBE). */
    void manualSubscribe(Addr base, std::uint64_t len, GpuId gpu);

    /** Manual unsubscription (CU_MEM_ADVISE_GPS_UNSUBSCRIBE). */
    UnsubscribeResult manualUnsubscribe(Addr base, std::uint64_t len,
                                        GpuId gpu);

    void
    adviseSubscribe(Addr base, std::uint64_t len, GpuId gpu) override
    {
        manualSubscribe(base, len, gpu);
    }

    bool
    adviseUnsubscribe(Addr base, std::uint64_t len, GpuId gpu) override
    {
        return manualUnsubscribe(base, len, gpu) !=
               UnsubscribeResult::LastSubscriber;
    }

    SubscriptionManager& subscriptions() { return *subs_; }
    const SubscriptionManager& subscriptions() const { return *subs_; }
    GpsPageTable& gpsPageTable() { return *gpsTable_; }
    AccessTracker& tracker() { return *tracker_; }
    RemoteWriteQueue& writeQueue(GpuId gpu) { return *queues_.at(gpu); }
    GpsTranslationUnit& translationUnit(GpuId gpu)
    {
        return *units_.at(gpu);
    }

    /** Aggregate write-queue hit rate across all GPUs (Fig. 14). */
    double wqHitRate() const;

    /**
     * Remote-write messages whose source and destination GPU live in
     * different nodes (drains and atomic bypasses). On a hierarchical
     * subscription this is one per remote node per forwarded line; flat
     * forwarding pays one per remote-node subscriber. Always 0 on a
     * single-node topology.
     */
    std::uint64_t uplinkForwards() const { return uplinkForwards_; }

    /** Aggregate GPS-TLB hit rate (Section 7.4). */
    double gpsTlbHitRate() const;

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;

    /** Forward the recorder to every GPU's remote write queue. */
    void attachRecorder(TimelineRecorder* recorder) override;

    /**
     * Forward the profile collector to the write queues and the
     * subscription manager, and feed remote-write heat from drains.
     */
    void attachProfile(ProfileCollector* profile) override;

    /**
     * Forward the differential-validation sink to the subscription
     * manager and mirror sys-flush / saturation events into it.
     */
    void attachChecker(GpsCheckSink* sink) override;

    /**
     * Forward the causal recorder to every GPU's remote write queue and
     * note migration->stall edges from §5.3 re-subscriptions.
     */
    void attachCausal(CausalRecorder* causal) override;

    /**
     * Serialize the full publish-subscribe machine: GPS page table,
     * subscription counters, access tracker, per-GPU write queues and
     * translation units, the degraded-page access counts, and the
     * per-GPU stall-drain charge cursors.
     */
    void saveState(snapshot::Serializer& out) const override;
    void restoreState(snapshot::Deserializer& in) override;

  protected:
    void accessShared(GpuId gpu, const MemAccess& access, PageNum vpn,
                      PageState& st, bool tlb_miss,
                      KernelCounters& counters,
                      TrafficMatrix& traffic) override;

  private:
    void onDrain(GpuId producer, const WqEntry& entry);

    /**
     * Deliver one forwarded line (or atomic payload) to every subscriber
     * other than the producer. On a multi-node topology with
     * hierarchicalSubscription enabled, each remote node receives exactly
     * one copy over the uplink (to a proxy subscriber) and the proxy
     * fans the line out to its node-mates over the local tier.
     */
    void forwardToSubscribers(GpuId producer, const GpuMask& subscribers,
                              PageNum vpn, std::uint32_t payload,
                              KernelCounters& counters,
                              TrafficMatrix& traffic);
    void handleSysWrite(GpuId gpu, const MemAccess& access, PageNum vpn,
                        KernelCounters& counters, TrafficMatrix& traffic);

    /** Count a remote access to a fault-degraded page; re-subscribe and
     *  refill the replica once the threshold is reached. */
    void maybeResubscribe(GpuId gpu, PageNum vpn, PageState& st,
                          KernelCounters& counters,
                          TrafficMatrix& traffic);

    /** Charge SM stalls for drains forced while the WQ is saturated. */
    void chargeWqStalls(GpuId gpu, KernelCounters& counters);

    static std::uint64_t
    degradedKey(PageNum vpn, GpuId gpu)
    {
        return (vpn << 8) | gpu;
    }

    const GpsConfig& cfg() const { return sys().config().gps; }

    std::unique_ptr<GpsPageTable> gpsTable_;
    std::unique_ptr<SubscriptionManager> subs_;
    std::unique_ptr<AccessTracker> tracker_;
    std::vector<std::unique_ptr<RemoteWriteQueue>> queues_;
    std::vector<std::unique_ptr<GpsTranslationUnit>> units_;

    /** Drain context: the phase currently being replayed. */
    KernelCounters* ctxCounters_ = nullptr;
    TrafficMatrix* ctxTraffic_ = nullptr;

    /** Profile collector, nullptr when profiling is off. */
    ProfileCollector* profile_ = nullptr;

    /** Differential-validation sink, nullptr when checking is off. */
    GpsCheckSink* check_ = nullptr;

    /** Causal recorder, nullptr when causal tracing is off. */
    CausalRecorder* causal_ = nullptr;

    /** (vpn, gpu) -> remote accesses since the replica was lost. */
    std::unordered_map<std::uint64_t, std::uint32_t> degraded_;

    /** Per-GPU stallDrains() already charged to kernel counters. */
    std::vector<std::uint64_t> chargedStallDrains_;

    /** Node-aware topology, nullptr when the system is single-node. */
    const NodeTopology* hierTopo_ = nullptr;

    /** Cross-node remote-write messages (see uplinkForwards()). */
    std::uint64_t uplinkForwards_ = 0;
};

} // namespace gps

#endif // GPS_CORE_GPS_PARADIGM_HH
