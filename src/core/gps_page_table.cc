#include "core/gps_page_table.hh"

#include <algorithm>

namespace gps
{

void
GpsPageTable::addReplica(PageNum vpn, GpuId gpu, PageNum ppn)
{
    GpsPte& pte = table_[vpn];
    for (auto& r : pte.replicas) {
        if (r.gpu == gpu) {
            r.ppn = ppn;
            return;
        }
    }
    pte.replicas.push_back({gpu, ppn});
}

void
GpsPageTable::removeReplica(PageNum vpn, GpuId gpu)
{
    auto it = table_.find(vpn);
    if (it == table_.end())
        return;
    auto& replicas = it->second.replicas;
    replicas.erase(std::remove_if(replicas.begin(), replicas.end(),
                                  [gpu](const GpsReplica& r) {
                                      return r.gpu == gpu;
                                  }),
                   replicas.end());
    if (replicas.empty())
        table_.erase(it);
}

const GpsPte*
GpsPageTable::lookup(PageNum vpn) const
{
    auto it = table_.find(vpn);
    return it == table_.end() ? nullptr : &it->second;
}

std::uint64_t
GpsPageTable::pteBits(std::size_t num_gpus, std::uint32_t vpn_bits,
                      std::uint32_t ppn_bits)
{
    // One VPN tag plus one PPN per possible remote subscriber: the
    // paper's 4-GPU example is 33 + 3*31 = 126 bits.
    return vpn_bits +
           static_cast<std::uint64_t>(num_gpus - 1) * ppn_bits;
}

void
GpsPageTable::exportStats(StatSet& out) const
{
    out.set(name() + ".entries", static_cast<double>(table_.size()));
}

} // namespace gps
