#include "core/gps_page_table.hh"

#include <algorithm>

namespace gps
{

GpsPte&
GpsPageTable::slot(PageNum vpn)
{
    if (table_.empty()) {
        base_ = vpn;
        table_.resize(1);
        return table_.front();
    }
    if (vpn < base_) {
        // Rare: a lower GPS region appears after a higher one was
        // touched first. Prepend the gap.
        const std::size_t grow = static_cast<std::size_t>(base_ - vpn);
        table_.insert(table_.begin(), grow, GpsPte{});
        base_ = vpn;
        return table_.front();
    }
    const std::size_t off = static_cast<std::size_t>(vpn - base_);
    if (off >= table_.size())
        table_.resize(off + 1);
    return table_[off];
}

void
GpsPageTable::addReplica(PageNum vpn, GpuId gpu, PageNum ppn)
{
    GpsPte& pte = slot(vpn);
    if (pte.replicas.empty())
        ++live_;
    for (auto& r : pte.replicas) {
        if (r.gpu == gpu) {
            r.ppn = ppn;
            return;
        }
    }
    pte.replicas.push_back({gpu, ppn});
}

void
GpsPageTable::removeReplica(PageNum vpn, GpuId gpu)
{
    if (table_.empty() || vpn < base_ ||
        vpn - base_ >= table_.size())
        return;
    auto& replicas = table_[vpn - base_].replicas;
    if (replicas.empty())
        return;
    replicas.erase(std::remove_if(replicas.begin(), replicas.end(),
                                  [gpu](const GpsReplica& r) {
                                      return r.gpu == gpu;
                                  }),
                   replicas.end());
    if (replicas.empty())
        --live_;
}

const GpsPte*
GpsPageTable::lookup(PageNum vpn) const
{
    if (table_.empty() || vpn < base_ ||
        vpn - base_ >= table_.size())
        return nullptr;
    const GpsPte& pte = table_[vpn - base_];
    return pte.replicas.empty() ? nullptr : &pte;
}

std::uint64_t
GpsPageTable::pteBits(std::size_t num_gpus, std::uint32_t vpn_bits,
                      std::uint32_t ppn_bits)
{
    // One VPN tag plus one PPN per possible remote subscriber: the
    // paper's 4-GPU example is 33 + 3*31 = 126 bits.
    return vpn_bits +
           static_cast<std::uint64_t>(num_gpus - 1) * ppn_bits;
}

void
GpsPageTable::exportStats(StatSet& out) const
{
    out.set(name() + ".entries", static_cast<double>(live_));
}

} // namespace gps
