/**
 * @file
 * GPS address translation unit (Section 5.2): the wide GPS-TLB backed by
 * the GPS page table, consulted only as remote-write-queue entries drain.
 * Off the critical path by construction; the paper finds 32 entries reach
 * ~100% hit rate (Section 7.4).
 */

#ifndef GPS_CORE_GPS_TRANSLATION_UNIT_HH
#define GPS_CORE_GPS_TRANSLATION_UNIT_HH

#include <memory>

#include "core/gps_config.hh"
#include "core/gps_page_table.hh"
#include "gpu/kernel_counters.hh"
#include "mem/tlb.hh"
#include "sim/sim_object.hh"

namespace gps
{

/** Per-GPU GPS address translation unit. */
class GpsTranslationUnit : public SimObject
{
  public:
    GpsTranslationUnit(std::string name, const GpsConfig& config,
                       const GpsPageTable& table);

    /**
     * Translate a draining entry's page: models the GPS-TLB and, on a
     * miss, the GPS page-table walk.
     * @return the wide PTE (all subscribers' replicas), or nullptr when
     *         the page has no GPS mapping.
     */
    const GpsPte* translate(PageNum vpn, KernelCounters& counters);

    Tlb& gpsTlb() { return *tlb_; }
    const Tlb& gpsTlb() const { return *tlb_; }

    std::uint64_t walks() const { return walks_; }

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;

    /** Serialize the GPS-TLB contents and the walk counter. */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("gpstu");
        tlb_->saveState(out);
        out.u64(walks_);
    }

    /** Counterpart of saveState. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("gpstu");
        tlb_->restoreState(in);
        walks_ = in.u64();
    }

  private:
    const GpsPageTable* table_;
    std::unique_ptr<Tlb> tlb_;
    std::uint64_t walks_ = 0;
};

} // namespace gps

#endif // GPS_CORE_GPS_TRANSLATION_UNIT_HH
