#include "core/access_tracker.hh"

namespace gps
{

void
AccessTracker::exportStats(StatSet& out) const
{
    out.set(name() + ".marks", static_cast<double>(marks_));
    std::uint64_t touched = 0;
    for (const auto& set : perGpu_)
        touched += set.size();
    out.set(name() + ".touched_page_entries",
            static_cast<double>(touched));
}

} // namespace gps
