#include "core/subscription.hh"

#include "check/sink.hh"
#include "common/logging.hh"
#include "obs/metric_registry.hh"
#include "obs/profile.hh"

namespace gps
{

SubscriptionManager::SubscriptionManager(Driver& driver,
                                         GpsPageTable& table)
    : SimObject("subscription_manager"), driver_(&driver), table_(&table)
{
}

bool
SubscriptionManager::swapOutOneReplica(GpuId gpu)
{
    bool done = false;
    bool ok = false;
    table_->forEach([&](PageNum vpn, const GpsPte& pte) {
        if (pte.replicas.size() >= 2 && pte.hasSubscriber(gpu) &&
            !driver_->state(vpn).collapsed) {
            ++swapOuts_;
            ok = unsubscribe(vpn, gpu) == UnsubscribeResult::Ok;
            done = true;
            return false; // stop at the first (lowest-VPN) victim
        }
        return true;
    });
    return done && ok;
}

void
SubscriptionManager::installReclaimHook()
{
    driver_->setReclaimHook(
        [this](GpuId gpu) { return swapOutOneReplica(gpu); });
}

bool
SubscriptionManager::retireReplica(PageNum vpn, GpuId gpu)
{
    if (unsubscribe(vpn, gpu) != UnsubscribeResult::Ok)
        return false;
    // The unsubscribe freed the replica's frame; take it (or an
    // equivalent free frame) out of service for good.
    driver_->gpu(gpu).memory().retireFrames(1);
    ++replicaRetires_;
    return true;
}

SubscribeResult
SubscriptionManager::subscribe(PageNum vpn, GpuId gpu)
{
    PageState& st = driver_->state(vpn);
    gps_assert(st.kind == MemKind::Gps,
               "subscribe to non-GPS page ", vpn);

    // Mirror pre-existing subscribers (the allocation-time home
    // replica) into the GPS page table.
    maskForEach(st.subscribers, [&](GpuId existing) {
        const Pte* pte = driver_->pageTable(existing).lookup(vpn);
        if (pte != nullptr && pte->location == existing)
            table_->addReplica(vpn, existing, pte->ppn);
    });

    if (maskHas(st.subscribers, gpu)) {
        // Keep the GPS page table in sync even for pre-existing
        // subscribers (e.g. the allocation-time home replica).
        const Pte* pte = driver_->pageTable(gpu).lookup(vpn);
        gps_assert(pte != nullptr, "subscriber without mapping");
        table_->addReplica(vpn, gpu, pte->ppn);
        return SubscribeResult::AlreadySubscribed;
    }

    if (!driver_->backPage(vpn, gpu)) {
        ++oversubscriptionRejects_;
        return SubscribeResult::OutOfMemory;
    }
    st.subscribers = maskSet(st.subscribers, gpu);
    const Pte* pte = driver_->pageTable(gpu).lookup(vpn);
    table_->addReplica(vpn, gpu, pte->ppn);
    refreshGpsBit(vpn);
    ++subscribeOps_;
    if (profile_ != nullptr)
        profile_->noteSubscriptionFlip(vpn);
    if (check_ != nullptr)
        check_->noteSubscribe(vpn, gpu);
    return SubscribeResult::Ok;
}

UnsubscribeResult
SubscriptionManager::unsubscribe(PageNum vpn, GpuId gpu,
                                 KernelCounters* counters)
{
    PageState& st = driver_->state(vpn);
    gps_assert(st.kind == MemKind::Gps,
               "unsubscribe from non-GPS page ", vpn);
    if (!maskHas(st.subscribers, gpu))
        return UnsubscribeResult::NotSubscribed;
    if (maskCount(st.subscribers) == 1)
        return UnsubscribeResult::LastSubscriber;

    driver_->unbackPage(vpn, gpu, counters);
    st.subscribers = maskClear(st.subscribers, gpu);
    table_->removeReplica(vpn, gpu);
    if (st.location == gpu)
        st.location = maskFirst(st.subscribers);
    refreshGpsBit(vpn);
    ++unsubscribeOps_;
    if (profile_ != nullptr)
        profile_->noteSubscriptionFlip(vpn);
    if (check_ != nullptr)
        check_->noteUnsubscribe(vpn, gpu);
    return UnsubscribeResult::Ok;
}

void
SubscriptionManager::subscribeAll(const Region& region)
{
    const std::size_t n = driver_->numGpus();
    driver_->forEachPage(region, [&](PageNum vpn) {
        for (GpuId g = 0; g < n; ++g)
            subscribe(vpn, g);
    });
}

void
SubscriptionManager::subscribeRange(Addr base, std::uint64_t len,
                                    GpuId gpu)
{
    if (len == 0)
        return;
    const PageGeometry& geo = driver_->geometry();
    const PageNum first = geo.pageNum(base);
    const PageNum last = geo.pageNum(base + len - 1);
    for (PageNum vpn = first; vpn <= last; ++vpn)
        subscribe(vpn, gpu);
}

UnsubscribeResult
SubscriptionManager::unsubscribeRange(Addr base, std::uint64_t len,
                                      GpuId gpu)
{
    if (len == 0)
        return UnsubscribeResult::Ok;
    UnsubscribeResult worst = UnsubscribeResult::Ok;
    const PageGeometry& geo = driver_->geometry();
    const PageNum first = geo.pageNum(base);
    const PageNum last = geo.pageNum(base + len - 1);
    for (PageNum vpn = first; vpn <= last; ++vpn) {
        const UnsubscribeResult r = unsubscribe(vpn, gpu);
        if (r == UnsubscribeResult::LastSubscriber)
            worst = r;
    }
    return worst;
}

GpuMask
SubscriptionManager::subscribers(PageNum vpn) const
{
    return driver_->state(vpn).subscribers;
}

void
SubscriptionManager::collapse(PageNum vpn, GpuId keeper,
                              KernelCounters& counters)
{
    PageState& st = driver_->state(vpn);
    gps_assert(maskHas(st.subscribers, keeper),
               "collapse keeper must be a subscriber");
    maskForEach(st.subscribers, [&](GpuId g) {
        if (g != keeper)
            unsubscribe(vpn, g, &counters);
    });
    st.collapsed = true;
    st.location = keeper;
    refreshGpsBit(vpn);
    ++collapses_;
    if (check_ != nullptr)
        check_->noteCollapse(vpn, keeper);
}

void
SubscriptionManager::fillHistogram(Histogram& hist) const
{
    table_->forEach([&](PageNum, const GpsPte& pte) {
        const std::size_t count = pte.replicas.size();
        if (count >= 2)
            hist.sample(count);
    });
}

void
SubscriptionManager::refreshGpsBit(PageNum vpn)
{
    PageState& st = driver_->state(vpn);
    const bool multi = maskCount(st.subscribers) >= 2 && !st.collapsed;
    st.gpsBitSet = multi;
    maskForEach(st.mapped, [&](GpuId g) {
        Pte* pte = driver_->pageTable(g).lookupMutable(vpn);
        if (pte != nullptr)
            pte->gpsBit = multi;
    });
}

void
SubscriptionManager::exportStats(StatSet& out) const
{
    out.set(name() + ".subscribe_ops",
            static_cast<double>(subscribeOps_));
    out.set(name() + ".unsubscribe_ops",
            static_cast<double>(unsubscribeOps_));
    out.set(name() + ".oversubscription_rejects",
            static_cast<double>(oversubscriptionRejects_));
    out.set(name() + ".collapses", static_cast<double>(collapses_));
    out.set(name() + ".swap_outs", static_cast<double>(swapOuts_));
    if (replicaRetires_ > 0)
        out.set(name() + ".replica_retires",
                static_cast<double>(replicaRetires_));
}

void
SubscriptionManager::registerMetrics(MetricRegistry& reg) const
{
    const std::string p = name() + '.';
    reg.counter(p + "subscribe_ops", "events",
                [this] { return static_cast<double>(subscribeOps_); });
    reg.counter(p + "unsubscribe_ops", "events",
                [this] { return static_cast<double>(unsubscribeOps_); });
    reg.counter(p + "oversubscription_rejects", "events", [this] {
        return static_cast<double>(oversubscriptionRejects_);
    });
    reg.counter(p + "collapses", "events",
                [this] { return static_cast<double>(collapses_); });
    reg.counter(p + "swap_outs", "events",
                [this] { return static_cast<double>(swapOuts_); });
    reg.counter(p + "replica_retires", "events",
                [this] { return static_cast<double>(replicaRetires_); });
}

} // namespace gps
