/**
 * @file
 * GPS subscription manager (Section 3.2).
 *
 * Owns the policy state tying GPS pages to subscriber sets: subscribing
 * backs a local replica and records it in the GPS page table; the GPS bit
 * in the conventional PTEs is set exactly when a page has two or more
 * subscribers; unsubscribing frees the replica and never removes the last
 * subscriber.
 */

#ifndef GPS_CORE_SUBSCRIPTION_HH
#define GPS_CORE_SUBSCRIPTION_HH

#include "common/gpu_mask.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/gps_page_table.hh"
#include "driver/driver.hh"
#include "sim/sim_object.hh"

namespace gps
{

class ProfileCollector;
class GpsCheckSink;

/** Outcome of a subscription request. */
enum class SubscribeResult : std::uint8_t {
    Ok,
    AlreadySubscribed,
    OutOfMemory,   ///< oversubscription: GPU stays unsubscribed (§5.3)
};

/** Outcome of an unsubscription request. */
enum class UnsubscribeResult : std::uint8_t {
    Ok,
    NotSubscribed,
    LastSubscriber,  ///< refused: a region keeps >= 1 subscriber (§4)
};

/** Manages GPS page subscriber sets and replica backing. */
class SubscriptionManager : public SimObject
{
  public:
    SubscriptionManager(Driver& driver, GpsPageTable& table);

    /**
     * Swap out one of @p gpu's GPS replicas to free a frame: the first
     * multi-subscriber page holding a replica there is unsubscribed
     * (that GPU then accesses it remotely — Section 5.3).
     * @return true if a frame was freed.
     */
    bool swapOutOneReplica(GpuId gpu);

    /** Install this manager as the driver's oversubscription hook. */
    void installReclaimHook();

    /**
     * Fault injection: @p gpu's replica of @p vpn is lost and its frame
     * permanently retired. Reuses the §5.3 swap-out path (unsubscribe,
     * remote access from then on) but removes the frame from service.
     * @return false when refused (last subscriber or not subscribed).
     */
    bool retireReplica(PageNum vpn, GpuId gpu);

    /** Replicas lost to fault injection. */
    std::uint64_t replicaRetires() const { return replicaRetires_; }

    /** Subscribe @p gpu to @p vpn (backs a replica frame). */
    SubscribeResult subscribe(PageNum vpn, GpuId gpu);

    /** Unsubscribe @p gpu from @p vpn (frees its replica frame). */
    UnsubscribeResult unsubscribe(PageNum vpn, GpuId gpu,
                                  KernelCounters* counters = nullptr);

    /** Subscribe every GPU to every page of @p region. */
    void subscribeAll(const Region& region);

    /** memAdvise(GPS_SUBSCRIBE) over a byte range. */
    void subscribeRange(Addr base, std::uint64_t len, GpuId gpu);

    /** memAdvise(GPS_UNSUBSCRIBE) over a byte range. */
    UnsubscribeResult unsubscribeRange(Addr base, std::uint64_t len,
                                       GpuId gpu);

    /** Current subscriber mask of @p vpn. */
    GpuMask subscribers(PageNum vpn) const;

    bool
    isSubscriber(PageNum vpn, GpuId gpu) const
    {
        return maskHas(subscribers(vpn), gpu);
    }

    /**
     * Collapse @p vpn to a single copy on @p keeper (sys-scope handling,
     * Section 5.3): all other replicas are freed and the page is demoted
     * to a conventional page.
     */
    void collapse(PageNum vpn, GpuId keeper, KernelCounters& counters);

    /**
     * Histogram of subscriber counts over pages that currently have more
     * than one subscriber (Figure 9's "shared pages").
     */
    void fillHistogram(Histogram& hist) const;

    /** Subscription events so far. */
    std::uint64_t subscribeOps() const { return subscribeOps_; }
    std::uint64_t unsubscribeOps() const { return unsubscribeOps_; }

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;

    /**
     * Attach the profile collector (nullptr detaches): successful
     * subscribe/unsubscribe flips then feed the per-page churn heat.
     */
    void attachProfile(ProfileCollector* profile) { profile_ = profile; }

    /**
     * Attach the differential-validation sink (nullptr detaches):
     * successful subscribes/unsubscribes and collapses are then
     * mirrored into the checker's reference model.
     */
    void attachCheck(GpsCheckSink* check) { check_ = check; }

    /**
     * Serialize the op counters. The subscription state itself lives
     * in the driver page state and the GPS page table, both covered by
     * their own saveState.
     */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("subs");
        out.u64(subscribeOps_);
        out.u64(unsubscribeOps_);
        out.u64(oversubscriptionRejects_);
        out.u64(collapses_);
        out.u64(swapOuts_);
        out.u64(replicaRetires_);
    }

    /** Counterpart of saveState. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("subs");
        subscribeOps_ = in.u64();
        unsubscribeOps_ = in.u64();
        oversubscriptionRejects_ = in.u64();
        collapses_ = in.u64();
        swapOuts_ = in.u64();
        replicaRetires_ = in.u64();
    }

  private:
    /** Keep PageState and conventional/GPS page tables consistent. */
    void refreshGpsBit(PageNum vpn);

    Driver* driver_;
    GpsPageTable* table_;
    std::uint64_t subscribeOps_ = 0;
    std::uint64_t unsubscribeOps_ = 0;
    std::uint64_t oversubscriptionRejects_ = 0;
    std::uint64_t collapses_ = 0;
    std::uint64_t swapOuts_ = 0;
    std::uint64_t replicaRetires_ = 0;
    ProfileCollector* profile_ = nullptr;
    GpsCheckSink* check_ = nullptr;
};

} // namespace gps

#endif // GPS_CORE_SUBSCRIPTION_HH
