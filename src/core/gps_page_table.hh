/**
 * @file
 * The GPS page table: a secondary table with very wide leaf PTEs that
 * record, for each GPS virtual page, the physical frame of every
 * subscriber's replica (Section 5.2). It sits off the critical path and
 * is consulted only when the remote write queue drains.
 */

#ifndef GPS_CORE_GPS_PAGE_TABLE_HH
#define GPS_CORE_GPS_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/gpu_mask.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"

namespace gps
{

/** One subscriber's replica frame. */
struct GpsReplica
{
    GpuId gpu = invalidGpu;
    PageNum ppn = 0;
};

/** Wide-leaf GPS PTE: one replica record per subscriber. */
struct GpsPte
{
    std::vector<GpsReplica> replicas;

    /** Subscriber set as a mask. */
    GpuMask
    subscriberMask() const
    {
        GpuMask mask = 0;
        for (const auto& r : replicas)
            mask = maskSet(mask, r.gpu);
        return mask;
    }

    bool
    hasSubscriber(GpuId gpu) const
    {
        for (const auto& r : replicas) {
            if (r.gpu == gpu)
                return true;
        }
        return false;
    }
};

/** The system-wide GPS page table. */
class GpsPageTable : public SimObject
{
  public:
    explicit GpsPageTable(std::string name = "gps_page_table")
        : SimObject(std::move(name))
    {}

    /** Add (or refresh) @p gpu's replica frame for @p vpn. */
    void addReplica(PageNum vpn, GpuId gpu, PageNum ppn);

    /** Remove @p gpu's replica record; drops the PTE when empty. */
    void removeReplica(PageNum vpn, GpuId gpu);

    /** PTE for @p vpn, or nullptr. */
    const GpsPte* lookup(PageNum vpn) const;

    /**
     * Size in bits of one leaf PTE for a system of @p num_gpus GPUs
     * given VPN/PPN widths; the paper quotes 126 bits minimum for a
     * 4-GPU system with 33-bit VPNs and 31-bit PPNs.
     */
    static std::uint64_t pteBits(std::size_t num_gpus,
                                 std::uint32_t vpn_bits,
                                 std::uint32_t ppn_bits);

    std::size_t size() const { return table_.size(); }

    /** All live PTEs (subscription census, Figure 9). */
    const std::unordered_map<PageNum, GpsPte>&
    entries() const
    {
        return table_;
    }

    void exportStats(StatSet& out) const override;

  private:
    std::unordered_map<PageNum, GpsPte> table_;
};

} // namespace gps

#endif // GPS_CORE_GPS_PAGE_TABLE_HH
