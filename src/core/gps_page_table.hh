/**
 * @file
 * The GPS page table: a secondary table with very wide leaf PTEs that
 * record, for each GPS virtual page, the physical frame of every
 * subscriber's replica (Section 5.2). It sits off the critical path and
 * is consulted only when the remote write queue drains.
 *
 * Storage is a dense array indexed by vpn - base: GPS regions are
 * contiguous VPN ranges by construction, so a lookup is one bounds
 * check plus an index, and iteration visits PTEs in ascending VPN
 * order (deterministic, unlike the unordered_map it replaced).
 */

#ifndef GPS_CORE_GPS_PAGE_TABLE_HH
#define GPS_CORE_GPS_PAGE_TABLE_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/gpu_mask.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** One subscriber's replica frame. */
struct GpsReplica
{
    GpuId gpu = invalidGpu;
    PageNum ppn = 0;
};

/** Wide-leaf GPS PTE: one replica record per subscriber. */
struct GpsPte
{
    std::vector<GpsReplica> replicas;

    /** Subscriber set as a mask. */
    GpuMask
    subscriberMask() const
    {
        GpuMask mask = 0;
        for (const auto& r : replicas)
            mask = maskSet(mask, r.gpu);
        return mask;
    }

    bool
    hasSubscriber(GpuId gpu) const
    {
        for (const auto& r : replicas) {
            if (r.gpu == gpu)
                return true;
        }
        return false;
    }
};

/** The system-wide GPS page table. */
class GpsPageTable : public SimObject
{
  public:
    explicit GpsPageTable(std::string name = "gps_page_table")
        : SimObject(std::move(name))
    {}

    /** Add (or refresh) @p gpu's replica frame for @p vpn. */
    void addReplica(PageNum vpn, GpuId gpu, PageNum ppn);

    /** Remove @p gpu's replica record; the PTE dies when empty. */
    void removeReplica(PageNum vpn, GpuId gpu);

    /** PTE for @p vpn, or nullptr. */
    const GpsPte* lookup(PageNum vpn) const;

    /**
     * Size in bits of one leaf PTE for a system of @p num_gpus GPUs
     * given VPN/PPN widths; the paper quotes 126 bits minimum for a
     * 4-GPU system with 33-bit VPNs and 31-bit PPNs.
     */
    static std::uint64_t pteBits(std::size_t num_gpus,
                                 std::uint32_t vpn_bits,
                                 std::uint32_t ppn_bits);

    /** Live (non-empty) PTE count. */
    std::size_t size() const { return live_; }

    /**
     * Visit every live PTE in ascending VPN order (subscription census,
     * Figure 9; reclaim victim scans). @p fn is called as
     * fn(vpn, const GpsPte&); when it returns bool, false stops the
     * scan early.
     */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (std::size_t i = 0; i < table_.size(); ++i) {
            if (table_[i].replicas.empty())
                continue;
            const PageNum vpn = base_ + static_cast<PageNum>(i);
            if constexpr (std::is_void_v<std::invoke_result_t<
                              Fn, PageNum, const GpsPte&>>) {
                fn(vpn, table_[i]);
            } else {
                if (!fn(vpn, table_[i]))
                    return;
            }
        }
    }

    void exportStats(StatSet& out) const override;

    /** Serialize the dense PTE array (replica lists are ordered). */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("gpstable");
        out.u64(base_);
        out.u64(table_.size());
        for (const GpsPte& pte : table_) {
            out.u64(pte.replicas.size());
            for (const GpsReplica& r : pte.replicas) {
                out.u32(r.gpu);
                out.u64(r.ppn);
            }
        }
        out.u64(live_);
    }

    /** Counterpart of saveState; replaces the current contents. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("gpstable");
        base_ = in.u64();
        table_.assign(in.count(1ULL << 32), GpsPte{});
        for (GpsPte& pte : table_) {
            pte.replicas.resize(in.count(maxGpusPerReplicaList));
            for (GpsReplica& r : pte.replicas) {
                r.gpu = static_cast<GpuId>(in.u32());
                r.ppn = in.u64();
            }
        }
        live_ = in.u64();
    }

  private:
    /** A replica list can never exceed the mask width. */
    static constexpr std::uint64_t maxGpusPerReplicaList = maxGpus;

    /** Slot for @p vpn, growing the dense array to cover it. */
    GpsPte& slot(PageNum vpn);

    /** VPN of table_[0]; meaningful only when table_ is non-empty. */
    PageNum base_ = 0;

    /** Dense array over [base_, base_ + table_.size()). */
    std::vector<GpsPte> table_;

    /** PTEs with at least one replica. */
    std::size_t live_ = 0;
};

} // namespace gps

#endif // GPS_CORE_GPS_PAGE_TABLE_HH
