/**
 * @file
 * Configuration of the GPS hardware structures (Table 1 defaults).
 */

#ifndef GPS_CORE_GPS_CONFIG_HH
#define GPS_CORE_GPS_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace gps
{

/** GPS structure sizes and policy switches. */
struct GpsConfig
{
    // --- Table 1: GPS Structures ---
    /** Remote write queue capacity (fully associative entries). */
    std::uint32_t wqEntries = 512;

    /** WQ entry footprint: 128 B data + VA tag + byte mask (135 B). */
    std::uint32_t wqEntryBytes = 135;

    /** GPS-TLB total entries (8-way set associative). */
    std::uint32_t gpsTlbEntries = 32;
    std::uint32_t gpsTlbWays = 8;

    /**
     * Drain watermark; the evaluation uses capacity-1 to maximize
     * coalescing opportunity (Section 5.2).
     */
    std::uint32_t
    highWatermark() const
    {
        return wqEntries > 0 ? wqEntries - 1 : 0;
    }

    /** GPS page-table walk latency on a GPS-TLB miss. */
    Tick gpsWalkLatency = nsToTicks(400);

    // --- Fault-degradation knobs (see src/fault/) ---

    /**
     * Effective watermark divisor while the WQ is saturated: drains start
     * at wqEntries / this, and each drain stalls the producing SM.
     */
    std::uint32_t saturatedWatermarkDivisor = 8;

    /** SM stall charged per drain forced while saturated. */
    Tick wqStallPenalty = nsToTicks(200);

    /**
     * Drain-speed multiplier for what-if exploration: stall charges
     * divide by this. 1.0 keeps the exact integer charge arithmetic
     * (byte-identical to builds without the knob).
     */
    double wqDrainScale = 1.0;

    /**
     * Remote accesses to a fault-degraded page before GPS re-subscribes
     * the GPU (0 disables re-subscription).
     */
    std::uint32_t resubscribeAfter = 256;

    // --- Policy switches (ablations) ---
    /** Unsubscribe untouched pages at tracking stop (Fig. 11 ablation). */
    bool autoUnsubscribe = true;

    /** SM-level store coalescer in front of the WQ (ablation). */
    bool smCoalescerEnabled = true;

    /**
     * Virtually addressed WQ (one entry per line). When false, models the
     * physically addressed alternative of Section 5.3: one entry per
     * (line, subscriber), shrinking effective capacity.
     */
    bool virtuallyAddressedWq = true;

    /**
     * Hierarchical subscription on multi-node topologies: remote-write
     * drains send one copy per remote node to a proxy subscriber, which
     * fans the line out to its node's other subscribers over the local
     * NVLink tier — each remote write crosses the node uplink exactly
     * once. When false (or on a flat topology) every remote subscriber
     * is sent its own copy from the producer. Total lines delivered and
     * payload bytes are identical either way; only where the wire
     * occupancy lands changes.
     */
    bool hierarchicalSubscription = true;
};

} // namespace gps

#endif // GPS_CORE_GPS_CONFIG_HH
