/**
 * @file
 * GPS access tracking unit (Section 5.2): a DRAM-resident bitmap with one
 * bit per GPS page per GPU, fed by last-level conventional TLB misses
 * during the profiling window and read back by the driver at
 * gpsTrackingStop() to drive unsubscription.
 */

#ifndef GPS_CORE_ACCESS_TRACKER_HH
#define GPS_CORE_ACCESS_TRACKER_HH

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/gpu_mask.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "sim/sim_object.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** Per-GPU touched-page bitmap for the profiling phase. */
class AccessTracker : public SimObject
{
  public:
    explicit AccessTracker(std::size_t num_gpus)
        : SimObject("access_tracker"), perGpu_(num_gpus)
    {}

    /** Open the profiling window (cuGPSTrackingStart). */
    void start() { active_ = true; }

    /** Close the profiling window (cuGPSTrackingStop). */
    void stop() { active_ = false; }

    bool active() const { return active_; }

    /** Record a TLB miss from @p gpu to GPS page @p vpn (T1 path). */
    void
    mark(GpuId gpu, PageNum vpn)
    {
        if (!active_)
            return;
        ++marks_;
        perGpu_[gpu].insert(vpn);
    }

    /** Whether @p gpu touched @p vpn during the window. */
    bool
    touched(GpuId gpu, PageNum vpn) const
    {
        return perGpu_[gpu].count(vpn) > 0;
    }

    /** Set of GPUs that touched @p vpn. */
    GpuMask
    touchedMask(PageNum vpn) const
    {
        GpuMask mask = 0;
        for (std::size_t g = 0; g < perGpu_.size(); ++g) {
            if (perGpu_[g].count(vpn) > 0)
                mask = maskSet(mask, static_cast<GpuId>(g));
        }
        return mask;
    }

    /** Forget everything (new profiling window). */
    void
    clear()
    {
        for (auto& set : perGpu_)
            set.clear();
    }

    /**
     * DRAM footprint of the bitmap for @p va_bytes of GPS address space:
     * one bit per page (the paper's example: 64 KB for 32 GB at 64 KB
     * pages).
     */
    static std::uint64_t
    bitmapBytes(std::uint64_t va_bytes, std::uint64_t page_bytes)
    {
        return va_bytes / page_bytes / 8;
    }

    std::uint64_t marks() const { return marks_; }

    void exportStats(StatSet& out) const override;

    /**
     * Serialize the touched sets in ascending VPN order — the
     * unordered sets feed only order-insensitive consumers
     * (touchedMask), but snapshot bytes must not depend on hash
     * iteration order.
     */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("tracker");
        out.u64(perGpu_.size());
        for (const auto& set : perGpu_) {
            std::vector<PageNum> vpns(set.begin(), set.end());
            std::sort(vpns.begin(), vpns.end());
            out.u64(vpns.size());
            for (const PageNum vpn : vpns)
                out.u64(vpn);
        }
        out.b(active_);
        out.u64(marks_);
    }

    /** Counterpart of saveState. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("tracker");
        if (in.u64() != perGpu_.size())
            throw snapshot::SnapshotError(
                "snapshot GPU count differs from the configured "
                "tracker");
        for (auto& set : perGpu_) {
            set.clear();
            const std::uint64_t n = in.count(1ULL << 32);
            set.reserve(n);
            for (std::uint64_t i = 0; i < n; ++i)
                set.insert(in.u64());
        }
        active_ = in.b();
        marks_ = in.u64();
    }

  private:
    std::vector<std::unordered_set<PageNum>> perGpu_;
    bool active_ = false;
    std::uint64_t marks_ = 0;
};

} // namespace gps

#endif // GPS_CORE_ACCESS_TRACKER_HH
