/**
 * @file
 * The GPS remote write queue (Section 5.2): a fully associative,
 * virtually addressed write-combining buffer at cache-block granularity.
 * Weak stores to the same block coalesce; at the high watermark the least
 * recently *added* entry drains to the GPS address translation unit; the
 * queue drains fully at synchronization points (grid end, sys fences).
 */

#ifndef GPS_CORE_REMOTE_WRITE_QUEUE_HH
#define GPS_CORE_REMOTE_WRITE_QUEUE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "common/types.hh"
#include "core/gps_config.hh"
#include "mem/page.hh"
#include "sim/sim_object.hh"
#include "snapshot/serial.hh"

namespace gps
{

class TimelineRecorder;
class ProfileCollector;
class CausalRecorder;

/** One coalescing buffer entry (one cache block). */
struct WqEntry
{
    /** Line-aligned virtual address. */
    Addr line = 0;

    /** Virtual page the line belongs to. */
    PageNum vpn = 0;

    /** Distinct bytes written so far (capped at the line size). */
    std::uint32_t bytesWritten = 0;

    /** Stores merged into this entry. */
    std::uint32_t mergedStores = 0;

    /**
     * Capacity units the entry occupies: 1 when virtually addressed;
     * the subscriber copy count under the physically-addressed ablation
     * (Section 5.3 discussion).
     */
    std::uint32_t weight = 1;

    /**
     * Insert sequence number (the queue's insert count when the entry
     * was created); the profiler derives drain residency from it.
     */
    std::uint64_t seq = 0;
};

/** Per-GPU remote write queue. */
class RemoteWriteQueue : public SimObject
{
  public:
    /** Called with each entry as it drains toward the interconnect. */
    using DrainFn = std::function<void(const WqEntry&)>;

    RemoteWriteQueue(std::string name, const GpsConfig& config,
                     std::uint32_t line_bytes, PageGeometry geometry);

    void setDrainCallback(DrainFn fn) { drain_ = std::move(fn); }

    /**
     * Offer a weak store.
     * @param addr store address
     * @param size store width in bytes
     * @param copies remote subscriber count (weights entries under the
     *        physically-addressed ablation)
     * @return true if the store coalesced into a live entry.
     */
    bool insert(Addr addr, std::uint32_t size, std::uint32_t copies);

    /** Record an atomic that bypassed coalescing (hit-rate accounting). */
    void noteAtomicBypass() { ++atomicBypass_; }

    /** Record a load serviced straight out of the buffer (store forward). */
    void noteForwardHit() { ++forwardHits_; }

    /** Whether the block containing @p addr is buffered (load forward). */
    bool contains(Addr addr) const;

    /** Drain everything (sys fence / end of grid). */
    void drainAll();

    /** Drain only entries of @p vpn (page collapse). */
    void drainPage(PageNum vpn);

    /**
     * Enter/leave the fault-injected Saturated mode: the drain watermark
     * drops to wqEntries / saturatedWatermarkDivisor and every
     * watermark-forced drain counts as an SM stall (stallDrains).
     */
    void setSaturated(bool saturated);
    bool saturated() const { return saturated_; }

    /**
     * Attach the timeline recorder (nullptr detaches). Full drains and
     * saturation transitions are then recorded as timeline events at
     * the recorder's current stamp.
     */
    void attachRecorder(TimelineRecorder* recorder, int tid)
    {
        recorder_ = recorder;
        recorderTid_ = tid;
    }

    /**
     * Attach the profile collector (nullptr detaches): occupancy is
     * then sampled at each new-entry enqueue and drain residency (in
     * insert operations spanned) at each drain.
     */
    void attachProfile(ProfileCollector* profile) { profile_ = profile; }

    /**
     * Attach the causal recorder (nullptr detaches): new-entry inserts
     * and drains are then counted as insert->drain dependency edges,
     * and saturated forced drains as SM-stall edges.
     */
    void attachCausal(CausalRecorder* causal) { causal_ = causal; }

    /** Drains forced while saturated (each stalls the producing SM). */
    std::uint64_t stallDrains() const { return stallDrains_; }

    /** Occupancy in capacity units. */
    std::uint32_t occupancy() const { return occupancy_; }

    std::uint64_t inserts() const { return inserts_; }
    std::uint64_t coalesced() const { return coalesced_; }
    std::uint64_t drains() const { return drains_; }
    std::uint64_t atomicBypass() const { return atomicBypass_; }
    std::uint64_t watermarkDrains() const { return watermarkDrains_; }
    std::uint64_t forwardHits() const { return forwardHits_; }

    /** Entries currently resident (inserts == drains + resident). */
    std::uint64_t residentEntries() const { return fifo_.size(); }

    /** Σ entry.weight over resident entries — must equal occupancy(). */
    std::uint64_t weightSum() const
    {
        std::uint64_t sum = 0;
        for (const WqEntry& entry : fifo_)
            sum += entry.weight;
        return sum;
    }

    /** Visit resident entries front (least recently added) to back. */
    template <typename Fn>
    void forEachEntry(Fn&& fn) const
    {
        for (const WqEntry& entry : fifo_)
            fn(entry);
    }

    /**
     * Write-queue hit rate as Figure 14 reports it: coalesced stores
     * over all coalescing-eligible traffic (including atomics, which
     * always miss).
     */
    double hitRate() const;

    /** SRAM footprint: 512 entries * 135 B = ~68 KB (Section 5.2). */
    std::uint64_t sramBytes() const;

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;
    void resetStats();

    /**
     * Serialize resident entries in FIFO order plus all counters; the
     * line index is rebuilt from the FIFO at restore.
     */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("rwq");
        out.u64(fifo_.size());
        for (const WqEntry& e : fifo_) {
            out.u64(e.line);
            out.u64(e.vpn);
            out.u32(e.bytesWritten);
            out.u32(e.mergedStores);
            out.u32(e.weight);
            out.u64(e.seq);
        }
        out.u32(occupancy_);
        out.u64(inserts_);
        out.u64(coalesced_);
        out.u64(drains_);
        out.u64(atomicBypass_);
        out.u64(watermarkDrains_);
        out.u64(forwardHits_);
        out.u64(stallDrains_);
        out.b(saturated_);
    }

    /** Counterpart of saveState. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("rwq");
        fifo_.clear();
        index_.clear();
        const std::uint64_t n = in.count(1ULL << 24);
        for (std::uint64_t i = 0; i < n; ++i) {
            WqEntry e;
            e.line = in.u64();
            e.vpn = in.u64();
            e.bytesWritten = in.u32();
            e.mergedStores = in.u32();
            e.weight = in.u32();
            e.seq = in.u64();
            fifo_.push_back(e);
            index_[e.line] = std::prev(fifo_.end());
        }
        occupancy_ = in.u32();
        inserts_ = in.u64();
        coalesced_ = in.u64();
        drains_ = in.u64();
        atomicBypass_ = in.u64();
        watermarkDrains_ = in.u64();
        forwardHits_ = in.u64();
        stallDrains_ = in.u64();
        saturated_ = in.b();
    }

  private:
    void drainOne();
    void drainEntry(std::list<WqEntry>::iterator it);
    void drainToWatermark();

    const GpsConfig* config_;
    std::uint32_t lineBytes_;
    PageGeometry geometry_;
    DrainFn drain_;

    /** FIFO by insertion order (front = least recently added). */
    std::list<WqEntry> fifo_;
    std::unordered_map<Addr, std::list<WqEntry>::iterator> index_;
    std::uint32_t occupancy_ = 0;

    std::uint64_t inserts_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t drains_ = 0;
    std::uint64_t atomicBypass_ = 0;
    std::uint64_t watermarkDrains_ = 0;
    std::uint64_t forwardHits_ = 0;
    std::uint64_t stallDrains_ = 0;
    bool saturated_ = false;
    TimelineRecorder* recorder_ = nullptr;
    int recorderTid_ = 0;
    ProfileCollector* profile_ = nullptr;
    CausalRecorder* causal_ = nullptr;
};

} // namespace gps

#endif // GPS_CORE_REMOTE_WRITE_QUEUE_HH
