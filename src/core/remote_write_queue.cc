#include "core/remote_write_queue.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/causal/causal.hh"
#include "obs/metric_registry.hh"
#include "obs/profile.hh"
#include "obs/timeline.hh"

namespace gps
{

RemoteWriteQueue::RemoteWriteQueue(std::string name,
                                   const GpsConfig& config,
                                   std::uint32_t line_bytes,
                                   PageGeometry geometry)
    : SimObject(std::move(name)), config_(&config),
      lineBytes_(line_bytes), geometry_(geometry)
{
    gps_assert(config.wqEntries > 0, "zero-entry remote write queue");
}

bool
RemoteWriteQueue::insert(Addr addr, std::uint32_t size,
                         std::uint32_t copies)
{
    (void)size;
    const Addr line = addr & ~static_cast<Addr>(lineBytes_ - 1);

    const std::uint32_t weight =
        config_->virtuallyAddressedWq ? 1 : std::max(copies, 1u);

    auto hit = index_.find(line);
    if (hit != index_.end()) {
        WqEntry& entry = *hit->second;
        entry.bytesWritten =
            std::min<std::uint32_t>(lineBytes_, entry.bytesWritten + size);
        ++entry.mergedStores;
        ++coalesced_;
        // The subscriber set may have changed since the entry was
        // created; under the physically-addressed ablation the entry's
        // capacity weight tracks the current copy count, so occupancy
        // is re-charged and a growth may force watermark drains. The
        // entry itself can drain here — don't touch it afterwards.
        if (weight != entry.weight) {
            occupancy_ = occupancy_ - entry.weight + weight;
            entry.weight = weight;
            drainToWatermark();
        }
        return true;
    }

    WqEntry entry;
    entry.line = line;
    entry.vpn = geometry_.pageNum(line);
    entry.bytesWritten = std::min<std::uint32_t>(lineBytes_, size);
    entry.mergedStores = 1;
    entry.weight = weight;

    entry.seq = inserts_;
    fifo_.push_back(entry);
    index_.emplace(line, std::prev(fifo_.end()));
    occupancy_ += entry.weight;
    ++inserts_;
    if (profile_ != nullptr)
        profile_->noteRwqOccupancy(occupancy_);
    if (causal_ != nullptr)
        causal_->noteDep(CausalEdge::RwqInsertToDrain);

    drainToWatermark();
    return false;
}

void
RemoteWriteQueue::drainToWatermark()
{
    // At the high watermark, drain least-recently-added entries to free
    // space while leaving maximum coalescing opportunity (§5.2). Under
    // injected saturation the watermark collapses and each forced drain
    // stalls the producing SM (charged by the caller via stallDrains).
    std::uint32_t watermark = config_->highWatermark();
    if (saturated_ && config_->saturatedWatermarkDivisor > 0)
        watermark = std::min(
            watermark,
            config_->wqEntries / config_->saturatedWatermarkDivisor);
    while (occupancy_ > watermark && fifo_.size() > 1) {
        ++watermarkDrains_;
        if (saturated_) {
            ++stallDrains_;
            if (causal_ != nullptr)
                causal_->noteDep(CausalEdge::RwqSaturationStall);
        }
        drainOne();
    }
}

bool
RemoteWriteQueue::contains(Addr addr) const
{
    const Addr line = addr & ~static_cast<Addr>(lineBytes_ - 1);
    return index_.find(line) != index_.end();
}

void
RemoteWriteQueue::setSaturated(bool saturated)
{
    if (saturated == saturated_)
        return;
    saturated_ = saturated;
    if (recorder_ != nullptr)
        recorder_->instantNow(recorderTid_,
                              saturated ? "wq_saturated" : "wq_restored",
                              "rwq");
}

void
RemoteWriteQueue::drainAll()
{
    const std::uint64_t before = drains_;
    while (!fifo_.empty())
        drainOne();
    if (recorder_ != nullptr && drains_ > before)
        recorder_->instantNow(
            recorderTid_, "wq_drain_all", "rwq",
            {{"entries", static_cast<double>(drains_ - before)}});
}

void
RemoteWriteQueue::drainPage(PageNum vpn)
{
    for (auto it = fifo_.begin(); it != fifo_.end();) {
        if (it->vpn == vpn) {
            auto victim = it++;
            drainEntry(victim);
        } else {
            ++it;
        }
    }
}

void
RemoteWriteQueue::drainOne()
{
    gps_assert(!fifo_.empty(), "drain of empty write queue");
    drainEntry(fifo_.begin());
}

void
RemoteWriteQueue::drainEntry(std::list<WqEntry>::iterator it)
{
    const WqEntry entry = *it;
    index_.erase(entry.line);
    occupancy_ -= entry.weight;
    fifo_.erase(it);
    ++drains_;
    if (profile_ != nullptr)
        profile_->noteRwqDrainResidency(inserts_ - entry.seq);
    if (drain_)
        drain_(entry);
}

double
RemoteWriteQueue::hitRate() const
{
    const std::uint64_t total = coalesced_ + inserts_ + atomicBypass_;
    return total == 0 ? 0.0
                      : static_cast<double>(coalesced_) /
                            static_cast<double>(total);
}

std::uint64_t
RemoteWriteQueue::sramBytes() const
{
    return static_cast<std::uint64_t>(config_->wqEntries) *
           config_->wqEntryBytes;
}

void
RemoteWriteQueue::exportStats(StatSet& out) const
{
    out.set(name() + ".inserts", static_cast<double>(inserts_));
    out.set(name() + ".coalesced", static_cast<double>(coalesced_));
    out.set(name() + ".drains", static_cast<double>(drains_));
    out.set(name() + ".atomic_bypass",
            static_cast<double>(atomicBypass_));
    out.set(name() + ".watermark_drains",
            static_cast<double>(watermarkDrains_));
    out.set(name() + ".stall_drains", static_cast<double>(stallDrains_));
    out.set(name() + ".forward_hits", static_cast<double>(forwardHits_));
    out.set(name() + ".hit_rate", hitRate());
}

void
RemoteWriteQueue::registerMetrics(MetricRegistry& reg) const
{
    const std::string p = name() + '.';
    reg.counter(p + "inserts", "entries",
                [this] { return static_cast<double>(inserts_); });
    reg.counter(p + "coalesced", "stores",
                [this] { return static_cast<double>(coalesced_); });
    reg.counter(p + "drains", "entries",
                [this] { return static_cast<double>(drains_); });
    reg.counter(p + "atomic_bypass", "ops",
                [this] { return static_cast<double>(atomicBypass_); });
    reg.counter(p + "watermark_drains", "entries",
                [this] { return static_cast<double>(watermarkDrains_); });
    reg.counter(p + "stall_drains", "entries",
                [this] { return static_cast<double>(stallDrains_); });
    reg.counter(p + "forward_hits", "loads",
                [this] { return static_cast<double>(forwardHits_); });
    reg.gauge(p + "occupancy", "units",
              [this] { return static_cast<double>(occupancy_); });
    reg.gauge(p + "hit_rate", "ratio", [this] { return hitRate(); });
}

void
RemoteWriteQueue::resetStats()
{
    inserts_ = 0;
    coalesced_ = 0;
    drains_ = 0;
    atomicBypass_ = 0;
    watermarkDrains_ = 0;
    forwardHits_ = 0;
    stallDrains_ = 0;
}

} // namespace gps
