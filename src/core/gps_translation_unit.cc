#include "core/gps_translation_unit.hh"

#include "obs/metric_registry.hh"

namespace gps
{

GpsTranslationUnit::GpsTranslationUnit(std::string name,
                                       const GpsConfig& config,
                                       const GpsPageTable& table)
    : SimObject(std::move(name)), table_(&table),
      tlb_(std::make_unique<Tlb>(this->name() + ".gps_tlb",
                                 config.gpsTlbEntries, config.gpsTlbWays))
{
}

const GpsPte*
GpsTranslationUnit::translate(PageNum vpn, KernelCounters& counters)
{
    if (tlb_->lookup(vpn)) {
        ++counters.gpsTlbHits;
    } else {
        ++counters.gpsTlbMisses;
        ++walks_;
        tlb_->fill(vpn);
    }
    return table_->lookup(vpn);
}

void
GpsTranslationUnit::exportStats(StatSet& out) const
{
    tlb_->exportStats(out);
    out.set(name() + ".walks", static_cast<double>(walks_));
}

void
GpsTranslationUnit::registerMetrics(MetricRegistry& reg) const
{
    tlb_->registerMetrics(reg);
    reg.counter(name() + ".walks", "events",
                [this] { return static_cast<double>(walks_); });
}

} // namespace gps
