#include "core/gps_paradigm.hh"

#include <algorithm>

#include "check/sink.hh"
#include "common/logging.hh"
#include "fault/fault_engine.hh"
#include "interconnect/node_topology.hh"
#include "obs/causal/causal.hh"
#include "obs/metric_registry.hh"
#include "obs/profile.hh"
#include "obs/timeline.hh"

namespace gps
{

GpsParadigm::GpsParadigm(MultiGpuSystem& system)
    : Paradigm("gps", system)
{
    gpsTable_ = std::make_unique<GpsPageTable>();
    subs_ = std::make_unique<SubscriptionManager>(system.driver(),
                                                  *gpsTable_);
    subs_->installReclaimHook();
    tracker_ = std::make_unique<AccessTracker>(system.numGpus());
    for (std::size_t g = 0; g < system.numGpus(); ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        queues_.push_back(std::make_unique<RemoteWriteQueue>(
            "gpu" + std::to_string(g) + ".remote_write_queue",
            system.config().gps, system.config().gpu.cacheLineBytes,
            system.geometry()));
        units_.push_back(std::make_unique<GpsTranslationUnit>(
            "gpu" + std::to_string(g) + ".gps_xlat", system.config().gps,
            *gpsTable_));
        queues_.back()->setDrainCallback(
            [this, gpu](const WqEntry& entry) { onDrain(gpu, entry); });
    }
    chargedStallDrains_.assign(system.numGpus(), 0);
    hierTopo_ = dynamic_cast<const NodeTopology*>(&system.topology());
}

void
GpsParadigm::onSetupComplete()
{
    // Subscribed-by-default profiling: every GPU tentatively subscribes
    // to every automatically managed GPS allocation (§5.2).
    for (const auto& [base, region] : drv().addressSpace().regions()) {
        if (region.kind == MemKind::Gps && !region.manualSubscription)
            subs_->subscribeAll(region);
    }
}

void
GpsParadigm::accessShared(GpuId gpu, const MemAccess& access, PageNum vpn,
                          PageState& st, bool tlb_miss,
                          KernelCounters& counters, TrafficMatrix& traffic)
{
    if (st.collapsed) {
        // Demoted to a conventional single-copy page (§5.3).
        if (st.location == gpu) {
            localAccess(gpu, access, counters);
        } else if (access.isLoad()) {
            remoteLoad(gpu, st.location, access, counters, traffic);
        } else if (access.isAtomic()) {
            remoteAtomic(gpu, st.location, access, counters, traffic);
        } else {
            remoteStore(gpu, st.location, access, counters, traffic);
        }
        return;
    }

    // T1: last-level TLB misses to GPS pages feed the tracking bitmap.
    if (tlb_miss)
        tracker_->mark(gpu, vpn);

    // Fault degradation: count remote accesses to pages whose replica
    // was retired; re-subscribe once the threshold is reached.
    if (!degraded_.empty() && !maskHas(st.subscribers, gpu))
        maybeResubscribe(gpu, vpn, st, counters, traffic);

    if (access.isLoad()) {
        if (maskHas(st.subscribers, gpu)) {
            // R1-R3: loads always hit the local replica.
            localAccess(gpu, access, counters);
            return;
        }
        // Non-subscriber corner case: forward from the write queue if
        // the line is still buffered, else read a remote subscriber.
        if (queues_[gpu]->contains(access.vaddr)) {
            queues_[gpu]->noteForwardHit();
            ++counters.l2Hits;
            return;
        }
        remoteLoad(gpu, maskFirst(st.subscribers), access, counters,
                   traffic);
        return;
    }

    // Stores and atomics.
    if (access.scope == Scope::Sys) {
        handleSysWrite(gpu, access, vpn, counters, traffic);
        return;
    }

    const bool local_replica = maskHas(st.subscribers, gpu);
    if (local_replica) {
        // W3: update the local replica so later local reads observe it.
        localAccess(gpu, access, counters);
    }

    const GpuMask remote = maskClear(st.subscribers, gpu);
    if (remote == 0)
        return; // sole subscriber: page was demoted to conventional

    if (access.isAtomic()) {
        // The WQ does not coalesce atomics (§7.4); each one translates
        // through the GPS-TLB and is forwarded immediately.
        queues_[gpu]->noteAtomicBypass();
        ++counters.wqAtomicBypass;
        units_[gpu]->translate(vpn, counters);
        forwardToSubscribers(gpu, remote, vpn, access.size, counters,
                             traffic);
        return;
    }

    // Weak store: SM-level spatial coalescing first (W4 follows).
    if (cfg().smCoalescerEnabled &&
        sys().gpu(gpu).storeCoalescer().absorb(access.vaddr)) {
        ++counters.smCoalesced;
        return;
    }

    ctxCounters_ = &counters;
    ctxTraffic_ = &traffic;
    const bool coalesced = queues_[gpu]->insert(
        access.vaddr, access.size,
        static_cast<std::uint32_t>(maskCount(remote)));
    if (coalesced)
        ++counters.wqCoalesced;
    else
        ++counters.wqInserts;
    if (queues_[gpu]->saturated())
        chargeWqStalls(gpu, counters);
}

void
GpsParadigm::onDrain(GpuId producer, const WqEntry& entry)
{
    gps_assert(ctxCounters_ != nullptr && ctxTraffic_ != nullptr,
               "write queue drained outside a replay context");
    // W5: translate through the GPS-TLB / GPS page table.
    units_[producer]->translate(entry.vpn, *ctxCounters_);

    // W6: one cache-block message per remote subscriber (interconnect
    // transfers are block-granular; §7.5 discusses the waste).
    const PageState& st = drv().state(entry.vpn);
    forwardToSubscribers(producer, st.subscribers, entry.vpn, lineBytes(),
                         *ctxCounters_, *ctxTraffic_);
    ++ctxCounters_->wqDrains;
}

void
GpsParadigm::forwardToSubscribers(GpuId producer,
                                  const GpuMask& subscribers, PageNum vpn,
                                  std::uint32_t payload,
                                  KernelCounters& counters,
                                  TrafficMatrix& traffic)
{
    const bool hier =
        hierTopo_ != nullptr && cfg().hierarchicalSubscription;
    const std::size_t home =
        hierTopo_ != nullptr ? hierTopo_->nodeOf(producer) : 0;
    // maskForEach visits ascending GPU ids and nodes are contiguous id
    // ranges, so each remote node's subscribers arrive consecutively:
    // tracking only the most recent proxy suffices.
    GpuId proxy = invalidGpu;
    std::size_t proxy_node = 0;
    maskForEach(subscribers, [&](GpuId sub) {
        if (sub == producer)
            return;
        GpuId src = producer;
        if (hierTopo_ != nullptr) {
            const std::size_t node = hierTopo_->nodeOf(sub);
            if (node != home) {
                if (!hier) {
                    ++uplinkForwards_;
                } else if (proxy == invalidGpu || node != proxy_node) {
                    // First subscriber on this remote node becomes the
                    // node's proxy: one copy crosses the uplink...
                    proxy = sub;
                    proxy_node = node;
                    ++uplinkForwards_;
                } else {
                    // ...and the proxy fans out to its node-mates.
                    src = proxy;
                }
            }
        }
        traffic.add(src, sub, payload + headerBytes(), payload);
        counters.pushedStoreBytes += payload;
        if (profile_ != nullptr)
            profile_->noteRemoteWriteForward(vpn, payload);
    });
}

void
GpsParadigm::handleSysWrite(GpuId gpu, const MemAccess& access,
                            PageNum vpn, KernelCounters& counters,
                            TrafficMatrix& traffic)
{
    PageState& st = drv().state(vpn);

    // Flush all in-flight writes to the page, everywhere. The checker
    // hears about the flush first so its reference model drains with
    // the same pre-collapse subscriber masks the drains below see.
    ctxCounters_ = &counters;
    ctxTraffic_ = &traffic;
    if (check_ != nullptr)
        check_->noteSysFlush(vpn);
    for (auto& queue : queues_)
        queue->drainPage(vpn);

    // Collapse to a single copy and demote (access faults, §5.3).
    const GpuId keeper = maskHas(st.subscribers, gpu)
                             ? gpu
                             : maskFirst(st.subscribers);
    subs_->collapse(vpn, keeper, counters);
    ++counters.pageFaults;
    ++counters.sysCollapses;

    if (keeper == gpu) {
        localAccess(gpu, access, counters);
    } else if (access.isAtomic()) {
        remoteAtomic(gpu, keeper, access, counters, traffic);
    } else {
        remoteStore(gpu, keeper, access, counters, traffic);
    }
}

void
GpsParadigm::endKernel(GpuId gpu, KernelCounters& counters,
                       TrafficMatrix& traffic)
{
    // Implicit release at the end of every grid: full drain (§3.3).
    ctxCounters_ = &counters;
    ctxTraffic_ = &traffic;
    queues_[gpu]->drainAll();
    sys().gpu(gpu).storeCoalescer().reset();
}

void
GpsParadigm::onFaultPageRetire(GpuId gpu, std::uint64_t count,
                               FaultReport& report)
{
    // Retirement hits frames regardless of what they hold (ECC rows do
    // not spare in-use data), so replica-backed frames go first — that
    // is the adversity GPS has to degrade around; any remainder comes
    // out of the free pool.
    std::uint64_t remaining = count;

    // Candidate replicas on this GPU: multi-subscriber, not collapsed
    // (the swap-out preconditions). Sorted for determinism, victims
    // drawn with the engine's seeded Rng.
    std::vector<PageNum> candidates;
    gpsTable_->forEach([&](PageNum vpn, const GpsPte& pte) {
        if (pte.replicas.size() >= 2 && pte.hasSubscriber(gpu) &&
            !drv().state(vpn).collapsed)
            candidates.push_back(vpn);
    });
    // forEach already visits in ascending VPN order (deterministic).

    FaultEngine* engine = sys().faults();
    while (remaining > 0 && !candidates.empty()) {
        std::size_t pick = 0;
        if (engine != nullptr)
            pick = static_cast<std::size_t>(
                engine->rng().below(candidates.size()));
        const PageNum vpn = candidates[pick];
        candidates.erase(candidates.begin() +
                         static_cast<std::ptrdiff_t>(pick));
        if (!subs_->retireReplica(vpn, gpu))
            continue;
        --remaining;
        ++report.pagesRetired;
        ++report.replicasLost;
        ++report.pagesDegraded;
        if (cfg().resubscribeAfter > 0)
            degraded_.emplace(degradedKey(vpn, gpu), 0);
    }
    if (remaining > 0)
        report.pagesRetired +=
            sys().gpu(gpu).memory().retireFrames(remaining);
}

void
GpsParadigm::onFaultWqSaturate(GpuId gpu, bool saturated,
                               FaultReport& report)
{
    (void)report;
    if (check_ != nullptr)
        check_->noteWqSaturation(gpu, saturated);
    if (gpu == invalidGpu) {
        for (auto& queue : queues_)
            queue->setSaturated(saturated);
        return;
    }
    queues_.at(gpu)->setSaturated(saturated);
}

void
GpsParadigm::maybeResubscribe(GpuId gpu, PageNum vpn, PageState& st,
                              KernelCounters& counters,
                              TrafficMatrix& traffic)
{
    const auto it = degraded_.find(degradedKey(vpn, gpu));
    if (it == degraded_.end())
        return;
    if (++it->second < cfg().resubscribeAfter)
        return;
    if (subs_->subscribe(vpn, gpu) != SubscribeResult::Ok) {
        // Still out of memory: back off for another threshold's worth.
        it->second = 0;
        return;
    }
    // Refill the new replica from a surviving subscriber.
    const GpuId src = maskFirst(maskClear(st.subscribers, gpu));
    if (src != invalidGpu) {
        const std::uint64_t page_bytes = drv().pageBytes();
        traffic.add(src, gpu, page_bytes + headerBytes(), page_bytes);
        counters.migrationBytes += page_bytes;
    }
    degraded_.erase(it);
    if (causal_ != nullptr)
        causal_->noteDep(CausalEdge::MigrationToStall);
    if (FaultEngine* engine = sys().faults())
        ++engine->report().resubscribes;
}

void
GpsParadigm::chargeWqStalls(GpuId gpu, KernelCounters& counters)
{
    const std::uint64_t stalls = queues_[gpu]->stallDrains();
    if (stalls == chargedStallDrains_[gpu])
        return;
    const std::uint64_t delta = stalls - chargedStallDrains_[gpu];
    chargedStallDrains_[gpu] = stalls;
    // Exact integer charge at the default scale; the what-if divisor
    // only perturbs arithmetic when explicitly set away from 1.0.
    const Tick stall_ticks =
        cfg().wqDrainScale == 1.0
            ? static_cast<Tick>(delta) * cfg().wqStallPenalty
            : static_cast<Tick>(
                  static_cast<double>(delta) *
                  static_cast<double>(cfg().wqStallPenalty) /
                  cfg().wqDrainScale);
    counters.wqStallDrains += delta;
    counters.wqStallTicks += stall_ticks;
    if (FaultEngine* engine = sys().faults()) {
        engine->report().wqSaturatedDrains += delta;
        engine->report().stallTicks += stall_ticks;
    }
}

void
GpsParadigm::trackingStart()
{
    tracker_->clear();
    tracker_->start();
}

void
GpsParadigm::trackingStop(KernelCounters& counters)
{
    tracker_->stop();
    if (!cfg().autoUnsubscribe)
        return;
    // Unsubscribe every GPU from every auto-managed page it did not
    // touch during profiling; a page untouched by all keeps one
    // subscriber (the unsubscribe refusal guarantees it).
    for (const auto& [base, region] : drv().addressSpace().regions()) {
        if (region.kind != MemKind::Gps || region.manualSubscription)
            continue;
        drv().forEachPage(region, [&](PageNum vpn) {
            const GpuMask touched = tracker_->touchedMask(vpn);
            const GpuMask subscribers = subs_->subscribers(vpn);
            maskForEach(subscribers, [&](GpuId g) {
                if (!maskHas(touched, g))
                    subs_->unsubscribe(vpn, g, &counters);
            });
        });
    }
    tracker_->clear();
}

bool
GpsParadigm::fillSubscriberHistogram(Histogram& hist) const
{
    subs_->fillHistogram(hist);
    return true;
}

void
GpsParadigm::manualSubscribe(Addr base, std::uint64_t len, GpuId gpu)
{
    subs_->subscribeRange(base, len, gpu);
}

UnsubscribeResult
GpsParadigm::manualUnsubscribe(Addr base, std::uint64_t len, GpuId gpu)
{
    return subs_->unsubscribeRange(base, len, gpu);
}

double
GpsParadigm::wqHitRate() const
{
    std::uint64_t coalesced = 0;
    std::uint64_t total = 0;
    // Atomic bypasses count as misses (§7.4).
    for (const auto& queue : queues_) {
        coalesced += queue->coalesced();
        total += queue->coalesced() + queue->inserts() +
                 queue->atomicBypass();
    }
    return total == 0 ? 0.0
                      : static_cast<double>(coalesced) /
                            static_cast<double>(total);
}

double
GpsParadigm::gpsTlbHitRate() const
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto& unit : units_) {
        hits += unit->gpsTlb().hits();
        misses += unit->gpsTlb().misses();
    }
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

void
GpsParadigm::exportStats(StatSet& out) const
{
    subs_->exportStats(out);
    gpsTable_->exportStats(out);
    tracker_->exportStats(out);
    for (const auto& queue : queues_)
        queue->exportStats(out);
    for (const auto& unit : units_)
        unit->exportStats(out);
    std::uint64_t forward_hits = 0;
    for (const auto& queue : queues_)
        forward_hits += queue->forwardHits();
    out.set("gps.wq_forward_hits", static_cast<double>(forward_hits));
    out.set("gps.uplink_forwards",
            static_cast<double>(uplinkForwards_));
    out.set("gps.wq_hit_rate", wqHitRate());
    out.set("gps.gps_tlb_hit_rate", gpsTlbHitRate());
}

void
GpsParadigm::registerMetrics(MetricRegistry& reg) const
{
    subs_->registerMetrics(reg);
    gpsTable_->registerMetrics(reg);
    tracker_->registerMetrics(reg);
    for (const auto& queue : queues_)
        queue->registerMetrics(reg);
    for (const auto& unit : units_)
        unit->registerMetrics(reg);
    reg.counter("gps.wq_forward_hits", "loads", [this] {
        std::uint64_t forward_hits = 0;
        for (const auto& queue : queues_)
            forward_hits += queue->forwardHits();
        return static_cast<double>(forward_hits);
    });
    reg.counter("gps.uplink_forwards", "messages", [this] {
        return static_cast<double>(uplinkForwards_);
    });
    reg.gauge("gps.wq_hit_rate", "ratio",
              [this] { return wqHitRate(); });
    reg.gauge("gps.gps_tlb_hit_rate", "ratio",
              [this] { return gpsTlbHitRate(); });
}

void
GpsParadigm::attachRecorder(TimelineRecorder* recorder)
{
    for (std::size_t g = 0; g < queues_.size(); ++g)
        queues_[g]->attachRecorder(recorder, static_cast<int>(g));
}

void
GpsParadigm::attachProfile(ProfileCollector* profile)
{
    profile_ = profile;
    subs_->attachProfile(profile);
    for (auto& queue : queues_)
        queue->attachProfile(profile);
}

void
GpsParadigm::attachChecker(GpsCheckSink* sink)
{
    check_ = sink;
    subs_->attachCheck(sink);
}

void
GpsParadigm::attachCausal(CausalRecorder* causal)
{
    causal_ = causal;
    for (auto& queue : queues_)
        queue->attachCausal(causal);
}

void
GpsParadigm::saveState(snapshot::Serializer& out) const
{
    out.section("paradigm:gps");
    gpsTable_->saveState(out);
    subs_->saveState(out);
    tracker_->saveState(out);
    out.u64(queues_.size());
    for (const auto& queue : queues_)
        queue->saveState(out);
    out.u64(units_.size());
    for (const auto& unit : units_)
        unit->saveState(out);
    // degraded_ keys are (vpn << 6 | gpu); sorted so snapshot bytes never
    // depend on hash iteration order.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> degraded(
        degraded_.begin(), degraded_.end());
    std::sort(degraded.begin(), degraded.end());
    out.u64(degraded.size());
    for (const auto& [key, accesses] : degraded) {
        out.u64(key);
        out.u32(accesses);
    }
    out.u64(chargedStallDrains_.size());
    for (const std::uint64_t charged : chargedStallDrains_)
        out.u64(charged);
    out.u64(uplinkForwards_);
}

void
GpsParadigm::restoreState(snapshot::Deserializer& in)
{
    in.section("paradigm:gps");
    gpsTable_->restoreState(in);
    subs_->restoreState(in);
    tracker_->restoreState(in);
    const std::uint64_t queues = in.u64();
    if (queues != queues_.size())
        throw snapshot::SnapshotError(
            "snapshot write-queue count differs from the configured "
            "system");
    for (auto& queue : queues_)
        queue->restoreState(in);
    const std::uint64_t units = in.u64();
    if (units != units_.size())
        throw snapshot::SnapshotError(
            "snapshot GPS-TU count differs from the configured system");
    for (auto& unit : units_)
        unit->restoreState(in);
    degraded_.clear();
    const std::uint64_t degraded = in.count(1ULL << 40);
    degraded_.reserve(degraded);
    for (std::uint64_t i = 0; i < degraded; ++i) {
        const std::uint64_t key = in.u64();
        degraded_[key] = in.u32();
    }
    chargedStallDrains_.assign(in.count(1ULL << 20), 0);
    for (std::uint64_t& charged : chargedStallDrains_)
        charged = in.u64();
    uplinkForwards_ = in.u64();
}

} // namespace gps
