#include "core/gps_paradigm.hh"

#include "common/logging.hh"

namespace gps
{

GpsParadigm::GpsParadigm(MultiGpuSystem& system)
    : Paradigm("gps", system)
{
    gpsTable_ = std::make_unique<GpsPageTable>();
    subs_ = std::make_unique<SubscriptionManager>(system.driver(),
                                                  *gpsTable_);
    subs_->installReclaimHook();
    tracker_ = std::make_unique<AccessTracker>(system.numGpus());
    for (std::size_t g = 0; g < system.numGpus(); ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        queues_.push_back(std::make_unique<RemoteWriteQueue>(
            "gpu" + std::to_string(g) + ".remote_write_queue",
            system.config().gps, system.config().gpu.cacheLineBytes,
            system.geometry()));
        units_.push_back(std::make_unique<GpsTranslationUnit>(
            "gpu" + std::to_string(g) + ".gps_xlat", system.config().gps,
            *gpsTable_));
        queues_.back()->setDrainCallback(
            [this, gpu](const WqEntry& entry) { onDrain(gpu, entry); });
    }
}

void
GpsParadigm::onSetupComplete()
{
    // Subscribed-by-default profiling: every GPU tentatively subscribes
    // to every automatically managed GPS allocation (§5.2).
    for (const auto& [base, region] : drv().addressSpace().regions()) {
        if (region.kind == MemKind::Gps && !region.manualSubscription)
            subs_->subscribeAll(region);
    }
}

void
GpsParadigm::accessShared(GpuId gpu, const MemAccess& access, PageNum vpn,
                          bool tlb_miss, KernelCounters& counters,
                          TrafficMatrix& traffic)
{
    PageState& st = drv().state(vpn);

    if (st.collapsed) {
        // Demoted to a conventional single-copy page (§5.3).
        if (st.location == gpu) {
            localAccess(gpu, access, counters);
        } else if (access.isLoad()) {
            remoteLoad(gpu, st.location, access, counters, traffic);
        } else if (access.isAtomic()) {
            remoteAtomic(gpu, st.location, access, counters, traffic);
        } else {
            remoteStore(gpu, st.location, access, counters, traffic);
        }
        return;
    }

    // T1: last-level TLB misses to GPS pages feed the tracking bitmap.
    if (tlb_miss)
        tracker_->mark(gpu, vpn);

    if (access.isLoad()) {
        if (maskHas(st.subscribers, gpu)) {
            // R1-R3: loads always hit the local replica.
            localAccess(gpu, access, counters);
            return;
        }
        // Non-subscriber corner case: forward from the write queue if
        // the line is still buffered, else read a remote subscriber.
        if (queues_[gpu]->contains(access.vaddr)) {
            ++wqForwardHits_;
            ++counters.l2Hits;
            return;
        }
        remoteLoad(gpu, maskFirst(st.subscribers), access, counters,
                   traffic);
        return;
    }

    // Stores and atomics.
    if (access.scope == Scope::Sys) {
        handleSysWrite(gpu, access, vpn, counters, traffic);
        return;
    }

    const bool local_replica = maskHas(st.subscribers, gpu);
    if (local_replica) {
        // W3: update the local replica so later local reads observe it.
        localAccess(gpu, access, counters);
    }

    const GpuMask remote = maskClear(st.subscribers, gpu);
    if (remote == 0)
        return; // sole subscriber: page was demoted to conventional

    if (access.isAtomic()) {
        // The WQ does not coalesce atomics (§7.4); each one translates
        // through the GPS-TLB and is forwarded immediately.
        queues_[gpu]->noteAtomicBypass();
        ++counters.wqAtomicBypass;
        units_[gpu]->translate(vpn, counters);
        maskForEach(remote, [&](GpuId sub) {
            traffic.add(gpu, sub, access.size + headerBytes(),
                        access.size);
            counters.pushedStoreBytes += access.size;
        });
        return;
    }

    // Weak store: SM-level spatial coalescing first (W4 follows).
    if (cfg().smCoalescerEnabled &&
        sys().gpu(gpu).storeCoalescer().absorb(access.vaddr)) {
        ++counters.smCoalesced;
        return;
    }

    ctxCounters_ = &counters;
    ctxTraffic_ = &traffic;
    const bool coalesced = queues_[gpu]->insert(
        access.vaddr, access.size,
        static_cast<std::uint32_t>(maskCount(remote)));
    if (coalesced)
        ++counters.wqCoalesced;
    else
        ++counters.wqInserts;
}

void
GpsParadigm::onDrain(GpuId producer, const WqEntry& entry)
{
    gps_assert(ctxCounters_ != nullptr && ctxTraffic_ != nullptr,
               "write queue drained outside a replay context");
    // W5: translate through the GPS-TLB / GPS page table.
    units_[producer]->translate(entry.vpn, *ctxCounters_);

    // W6: one cache-block message per remote subscriber (interconnect
    // transfers are block-granular; §7.5 discusses the waste).
    const PageState& st = drv().state(entry.vpn);
    const std::uint32_t line = lineBytes();
    maskForEach(st.subscribers, [&](GpuId sub) {
        if (sub == producer)
            return;
        ctxTraffic_->add(producer, sub, line + headerBytes(), line);
        ctxCounters_->pushedStoreBytes += line;
    });
    ++ctxCounters_->wqDrains;
}

void
GpsParadigm::handleSysWrite(GpuId gpu, const MemAccess& access,
                            PageNum vpn, KernelCounters& counters,
                            TrafficMatrix& traffic)
{
    PageState& st = drv().state(vpn);

    // Flush all in-flight writes to the page, everywhere.
    ctxCounters_ = &counters;
    ctxTraffic_ = &traffic;
    for (auto& queue : queues_)
        queue->drainPage(vpn);

    // Collapse to a single copy and demote (access faults, §5.3).
    const GpuId keeper = maskHas(st.subscribers, gpu)
                             ? gpu
                             : maskFirst(st.subscribers);
    subs_->collapse(vpn, keeper, counters);
    ++counters.pageFaults;
    ++counters.sysCollapses;

    if (keeper == gpu) {
        localAccess(gpu, access, counters);
    } else if (access.isAtomic()) {
        remoteAtomic(gpu, keeper, access, counters, traffic);
    } else {
        remoteStore(gpu, keeper, access, counters, traffic);
    }
}

void
GpsParadigm::endKernel(GpuId gpu, KernelCounters& counters,
                       TrafficMatrix& traffic)
{
    // Implicit release at the end of every grid: full drain (§3.3).
    ctxCounters_ = &counters;
    ctxTraffic_ = &traffic;
    queues_[gpu]->drainAll();
    sys().gpu(gpu).storeCoalescer().reset();
}

void
GpsParadigm::trackingStart()
{
    tracker_->clear();
    tracker_->start();
}

void
GpsParadigm::trackingStop(KernelCounters& counters)
{
    tracker_->stop();
    if (!cfg().autoUnsubscribe)
        return;
    // Unsubscribe every GPU from every auto-managed page it did not
    // touch during profiling; a page untouched by all keeps one
    // subscriber (the unsubscribe refusal guarantees it).
    for (const auto& [base, region] : drv().addressSpace().regions()) {
        if (region.kind != MemKind::Gps || region.manualSubscription)
            continue;
        drv().forEachPage(region, [&](PageNum vpn) {
            const GpuMask touched = tracker_->touchedMask(vpn);
            const GpuMask subscribers = subs_->subscribers(vpn);
            maskForEach(subscribers, [&](GpuId g) {
                if (!maskHas(touched, g))
                    subs_->unsubscribe(vpn, g, &counters);
            });
        });
    }
    tracker_->clear();
}

bool
GpsParadigm::fillSubscriberHistogram(Histogram& hist) const
{
    subs_->fillHistogram(hist);
    return true;
}

void
GpsParadigm::manualSubscribe(Addr base, std::uint64_t len, GpuId gpu)
{
    subs_->subscribeRange(base, len, gpu);
}

UnsubscribeResult
GpsParadigm::manualUnsubscribe(Addr base, std::uint64_t len, GpuId gpu)
{
    return subs_->unsubscribeRange(base, len, gpu);
}

double
GpsParadigm::wqHitRate() const
{
    std::uint64_t coalesced = 0;
    std::uint64_t total = 0;
    // Atomic bypasses count as misses (§7.4).
    for (const auto& queue : queues_) {
        coalesced += queue->coalesced();
        total += queue->coalesced() + queue->inserts() +
                 queue->atomicBypass();
    }
    return total == 0 ? 0.0
                      : static_cast<double>(coalesced) /
                            static_cast<double>(total);
}

double
GpsParadigm::gpsTlbHitRate() const
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto& unit : units_) {
        hits += unit->gpsTlb().hits();
        misses += unit->gpsTlb().misses();
    }
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

void
GpsParadigm::exportStats(StatSet& out) const
{
    subs_->exportStats(out);
    gpsTable_->exportStats(out);
    tracker_->exportStats(out);
    for (const auto& queue : queues_)
        queue->exportStats(out);
    for (const auto& unit : units_)
        unit->exportStats(out);
    out.set("gps.wq_forward_hits", static_cast<double>(wqForwardHits_));
    out.set("gps.wq_hit_rate", wqHitRate());
    out.set("gps.gps_tlb_hit_rate", gpsTlbHitRate());
}

} // namespace gps
