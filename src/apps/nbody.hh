/**
 * @file
 * N-Body: a compute-bound control workload.
 *
 * Section 6 notes that the Tartan applications whose strong scaling is
 * *not* bound by inter-GPU communication were excluded from the paper's
 * plots because "GPS obtains the same performance as the native
 * version". This all-pairs N-body step is that control: each GPU reads
 * the full (shared) body array but the O(N^2) force computation dwarfs
 * the communication under every paradigm, so all paradigms should land
 * within a few percent of one another (validated by
 * test_paper_properties).
 */

#ifndef GPS_APPS_NBODY_HH
#define GPS_APPS_NBODY_HH

#include "apps/workload.hh"

namespace gps::apps
{

/** All-pairs N-body step (compute-bound control). */
class NbodyWorkload : public Workload
{
  public:
    std::string name() const override { return "Nbody"; }
    std::string description() const override
    {
        return "All-pairs gravitational N-body step (compute-bound "
               "control, not in the paper's plotted suite)";
    }
    std::string commPattern() const override { return "All-to-all"; }

    void setup(WorkloadContext& ctx) override;
    std::size_t effectiveIterations() const override { return 50; }
    std::vector<Phase> iteration(std::size_t iter,
                                 WorkloadContext& ctx) override;
    void applyUmHints(WorkloadContext& ctx) override;

  private:
    std::uint64_t bodyLines_ = 0; ///< one 128 B line per 4 bodies
    Addr bodies_ = 0;             ///< shared positions+velocities
    std::size_t numGpus_ = 0;
};

} // namespace gps::apps

#endif // GPS_APPS_NBODY_HH
