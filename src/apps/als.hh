/**
 * @file
 * ALS: matrix-factorization recommender trained with Hogwild-style SGD
 * over partitioned ratings. Both factor matrices are read and atomically
 * updated by every GPU — the all-to-all pattern of Table 2. Nearly every
 * shared page collects all subscribers (Figure 9) and the uncoalescable
 * atomic updates make GPS's interconnect traffic the highest of the
 * suite (Figure 10's 4.4x bar).
 */

#ifndef GPS_APPS_ALS_HH
#define GPS_APPS_ALS_HH

#include "apps/workload.hh"

namespace gps::apps
{

/** SGD-based matrix factorization. */
class AlsWorkload : public Workload
{
  public:
    std::string name() const override { return "ALS"; }
    std::string description() const override
    {
        return "Matrix factorization algorithm";
    }
    std::string commPattern() const override { return "All-to-all"; }

    void setup(WorkloadContext& ctx) override;
    std::size_t effectiveIterations() const override { return 60; }
    std::vector<Phase> iteration(std::size_t iter,
                                 WorkloadContext& ctx) override;
    void applyUmHints(WorkloadContext& ctx) override;

  private:
    std::uint64_t users_ = 0;
    std::uint64_t items_ = 0;
    std::uint32_t ratingsPerUser_ = 160;
    Addr userFactors_ = 0;  ///< shared, one 128 B line per user
    Addr itemFactors_ = 0;  ///< shared, one 128 B line per item
    std::vector<Addr> ratings_; ///< private rating slice per GPU
    std::size_t numGpus_ = 0;

    /** Per-GPU SGD epoch trace (loads + atomics), prebuilt at setup. */
    std::vector<std::vector<MemAccess>> epochTrace_;
};

} // namespace gps::apps

#endif // GPS_APPS_ALS_HH
