/**
 * @file
 * Building blocks shared by the workload generators: 1-D slab
 * partitioning and composable access-stream generators (interleaved
 * stencil bursts, sequential multi-pass sweeps, prebuilt access lists).
 */

#ifndef GPS_APPS_APP_COMMON_HH
#define GPS_APPS_APP_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "trace/access.hh"
#include "trace/kernel_trace.hh"

namespace gps::apps
{

/** Cache-line size every generator emits at (Table 1). */
constexpr std::uint32_t lineBytes = 128;

/** Address of line @p line within an array at @p base. */
constexpr Addr
lineAddr(Addr base, std::uint64_t line)
{
    return base + line * lineBytes;
}

/** 1-D block partition of an array of lines across GPUs. */
struct Slab1D
{
    std::uint64_t totalLines = 0;
    std::size_t numGpus = 1;

    std::uint64_t
    first(GpuId gpu) const
    {
        return totalLines * gpu / numGpus;
    }

    std::uint64_t
    end(GpuId gpu) const
    {
        return totalLines * (gpu + 1) / numGpus;
    }

    std::uint64_t count(GpuId gpu) const { return end(gpu) - first(gpu); }

    /**
     * GPU owning @p line: the smallest g with line < end(g), in closed
     * form. end(g) = floor(totalLines*(g+1)/numGpus) >= line+1 iff
     * totalLines*(g+1) >= ceil-adjusted numGpus*(line+1), so the
     * smallest such g is ceil(numGpus*(line+1)/totalLines) - 1. Lines
     * at or past totalLines clamp to the last GPU, matching the old
     * linear scan.
     */
    GpuId
    owner(std::uint64_t line) const
    {
        if (totalLines == 0)
            return static_cast<GpuId>(numGpus - 1);
        const std::uint64_t g =
            (numGpus * (line + 1) + totalLines - 1) / totalLines - 1;
        return static_cast<GpuId>(g >= numGpus ? numGpus - 1 : g);
    }
};

/** One strided run of accesses. */
struct Burst
{
    Addr base = 0;
    std::uint64_t count = 0;
    std::int64_t strideBytes = lineBytes;
    AccessType type = AccessType::Load;
    std::uint32_t size = lineBytes;
    Scope scope = Scope::Weak;
};

/**
 * A group interleaves its bursts round-robin (one access from each in
 * turn) — the natural shape of a stencil inner loop (load, load, load,
 * store per column). Groups run sequentially, which expresses multi-pass
 * sweeps and their store-reuse distances.
 */
struct Group
{
    std::vector<Burst> bursts;
};

/** Stream over a sequence of groups. */
class GroupStream : public AccessStream
{
  public:
    explicit GroupStream(std::vector<Group> groups)
        : groups_(std::move(groups))
    {
        enterGroup();
    }

    bool
    next(MemAccess& out) override
    {
        while (groupIdx_ < groups_.size()) {
            Group& group = groups_[groupIdx_];
            const std::size_t nb = group.bursts.size();
            for (std::size_t probe = 0; probe < nb; ++probe) {
                const std::size_t b = (cursor_ + probe) % nb;
                if (pos_[b] < group.bursts[b].count) {
                    const Burst& burst = group.bursts[b];
                    out.vaddr = static_cast<Addr>(
                        static_cast<std::int64_t>(burst.base) +
                        static_cast<std::int64_t>(pos_[b]) *
                            burst.strideBytes);
                    out.size = burst.size;
                    out.type = burst.type;
                    out.scope = burst.scope;
                    ++pos_[b];
                    cursor_ = (b + 1) % nb;
                    return true;
                }
            }
            ++groupIdx_;
            enterGroup();
        }
        return false;
    }

    std::size_t
    nextBatch(MemAccess* out, std::size_t max) override
    {
        std::size_t n = 0;
        while (n < max && groupIdx_ < groups_.size()) {
            const Group& group = groups_[groupIdx_];
            if (group.bursts.size() != 1) {
                // Interleaved bursts keep the per-access path (the
                // round-robin cursor is the semantics).
                if (!next(out[n]))
                    break;
                ++n;
                continue;
            }
            // Single-burst group: emit the strided run directly.
            const Burst& burst = group.bursts[0];
            const std::uint64_t left = burst.count - pos_[0];
            const std::size_t chunk = static_cast<std::size_t>(
                std::min<std::uint64_t>(left, max - n));
            for (std::size_t i = 0; i < chunk; ++i) {
                MemAccess& acc = out[n + i];
                acc.vaddr = static_cast<Addr>(
                    static_cast<std::int64_t>(burst.base) +
                    static_cast<std::int64_t>(pos_[0] + i) *
                        burst.strideBytes);
                acc.size = burst.size;
                acc.type = burst.type;
                acc.scope = burst.scope;
            }
            pos_[0] += chunk;
            n += chunk;
            if (pos_[0] == burst.count) {
                ++groupIdx_;
                enterGroup();
            }
        }
        return n;
    }

  private:
    void
    enterGroup()
    {
        cursor_ = 0;
        if (groupIdx_ < groups_.size()) {
            pos_.assign(groups_[groupIdx_].bursts.size(), 0);
        }
    }

    std::vector<Group> groups_;
    std::size_t groupIdx_ = 0;
    std::size_t cursor_ = 0;
    std::vector<std::uint64_t> pos_;
};

/**
 * Stream replaying a persistent, precomputed access list (graph kernels
 * build their per-epoch traces once at setup). Supports replaying a
 * circular slice, which models a rotating frontier.
 */
class ReplayStream : public AccessStream
{
  public:
    /**
     * @param trace persistent list owned by the workload
     * @param start first index (wraps)
     * @param count accesses to emit (capped at trace size)
     */
    ReplayStream(const std::vector<MemAccess>* trace, std::size_t start,
                 std::size_t count)
        : trace_(trace), pos_(start),
          remaining_(std::min(count, trace->size()))
    {
        gps_assert(trace != nullptr, "null replay trace");
    }

    explicit ReplayStream(const std::vector<MemAccess>* trace)
        : ReplayStream(trace, 0, trace->size())
    {}

    bool
    next(MemAccess& out) override
    {
        if (remaining_ == 0 || trace_->empty())
            return false;
        out = (*trace_)[pos_ % trace_->size()];
        ++pos_;
        --remaining_;
        return true;
    }

    std::size_t
    nextBatch(MemAccess* out, std::size_t max) override
    {
        const std::size_t size = trace_->size();
        if (size == 0)
            return 0;
        const std::size_t want = std::min(max, remaining_);
        std::size_t produced = 0;
        // The circular slice is at most two contiguous spans per lap.
        while (produced < want) {
            const std::size_t at = pos_ % size;
            const std::size_t chunk =
                std::min(want - produced, size - at);
            std::copy_n(trace_->data() + at, chunk, out + produced);
            produced += chunk;
            pos_ += chunk;
        }
        remaining_ -= produced;
        return produced;
    }

  private:
    const std::vector<MemAccess>* trace_;
    std::size_t pos_;
    std::size_t remaining_;
};

/** Convenience: wrap groups into a stream pointer. */
inline std::unique_ptr<AccessStream>
makeGroupStream(std::vector<Group> groups)
{
    return std::make_unique<GroupStream>(std::move(groups));
}

/**
 * Append a tiled multi-pass store sweep over [first_line, first_line +
 * total_lines): the slab is cut into tiles whose sizes cycle through
 * @p tile_sizes; each tile is stored @p passes times in a row. A pass
 * re-stores lines at reuse distance == tile size, which is what the GPS
 * remote write queue can coalesce (Figure 14's ramp) — tiles larger than
 * the queue never hit.
 */
void appendTiledStores(std::vector<Group>& groups, Addr array_base,
                       std::uint64_t first_line, std::uint64_t total_lines,
                       const std::vector<std::uint64_t>& tile_sizes,
                       unsigned passes);

} // namespace gps::apps

#endif // GPS_APPS_APP_COMMON_HH
