/**
 * @file
 * EQWP (B2rEqwp): 3-D earthquake wave propagation with a 4th-order
 * finite-difference method. Two coupled fields (velocity, stress) are
 * updated in alternating phases over a slab partition with depth-2 halo
 * planes (peer-to-peer, Table 2). Its working set straddles the L2
 * capacity: splitting it across 4 GPUs lifts the L2 hit rate (55% to
 * ~68% in the paper), which is why EQWP strong-scales superlinearly
 * under GPS (Section 7.1). Multi-pass accumulation per axis gives the
 * remote write queue its highest Figure 14 hit rate.
 */

#ifndef GPS_APPS_EQWP_HH
#define GPS_APPS_EQWP_HH

#include "apps/workload.hh"

namespace gps::apps
{

/** 3-D 4th-order FD wave propagation. */
class EqwpWorkload : public Workload
{
  public:
    std::string name() const override { return "EQWP"; }
    std::string description() const override
    {
        return "3D earthquake wave-propagation model simulation using "
               "4-order finite difference method";
    }
    std::string commPattern() const override { return "Peer-to-peer"; }

    void setup(WorkloadContext& ctx) override;
    std::size_t effectiveIterations() const override { return 500; }
    std::vector<Phase> iteration(std::size_t iter,
                                 WorkloadContext& ctx) override;
    void applyUmHints(WorkloadContext& ctx) override;

  private:
    Phase makeUpdatePhase(const char* phase_name, Addr read_field,
                          Addr written_field) const;

    std::uint64_t fieldLines_ = 0;
    std::uint64_t haloLines_ = 0;
    Addr velocity_ = 0; ///< shared field
    Addr stress_ = 0;   ///< shared field
    std::size_t numGpus_ = 0;
};

} // namespace gps::apps

#endif // GPS_APPS_EQWP_HH
