#include "apps/als.hh"

#include <algorithm>

#include "apps/app_common.hh"
#include "common/rng.hh"

namespace gps::apps
{

namespace
{
/** Rank-32 dot products and gradient update per rating sample. */
constexpr std::uint64_t instrsPerRating = 500;

/** Rating record plus two random factor-row gathers per sample. */
constexpr std::uint64_t dramBytesPerRating = 8 + 2 * 128;
} // namespace

void
AlsWorkload::setup(WorkloadContext& ctx)
{
    numGpus_ = ctx.numGpus();
    users_ = std::max<std::uint64_t>(
        2048, static_cast<std::uint64_t>(24576 * scale_));
    items_ = users_;

    // One factor row per line (rank 32 floats).
    userFactors_ = ctx.allocShared(users_ * lineBytes, "als.user", 0);
    itemFactors_ = ctx.allocShared(items_ * lineBytes, "als.item", 0);

    epochTrace_.assign(numGpus_, {});
    ratings_.assign(numGpus_, 0);
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const std::uint64_t ufirst = users_ * g / numGpus_;
        const std::uint64_t uend = users_ * (g + 1) / numGpus_;
        const std::uint64_t num_ratings =
            (uend - ufirst) * ratingsPerUser_;
        ratings_[g] = ctx.allocPrivate(num_ratings * 8,
                                       "als.ratings." + std::to_string(g),
                                       static_cast<GpuId>(g));

        // With ~128 ratings per user, an epoch touches every item row
        // and every owned user row many times; the LSU aggregates the
        // per-sample atomics so each factor row produces one read and
        // one aggregated atomic update per epoch. The per-sample random
        // gathers enter the DRAM model through prechargedDramBytes.
        auto& trace = epochTrace_[g];
        trace.reserve(items_ + (uend - ufirst));
        for (std::uint64_t i = 0; i < items_; ++i) {
            const Addr i_row = itemFactors_ + i * lineBytes;
            trace.push_back(MemAccess::load(i_row, lineBytes));
            trace.push_back(MemAccess::atomic(i_row, lineBytes));
        }
        for (std::uint64_t u = ufirst; u < uend; ++u) {
            const Addr u_row = userFactors_ + u * lineBytes;
            trace.push_back(MemAccess::load(u_row, lineBytes));
            trace.push_back(MemAccess::atomic(u_row, lineBytes));
        }
    }
}

std::vector<Phase>
AlsWorkload::iteration(std::size_t iter, WorkloadContext& ctx)
{
    (void)iter;
    (void)ctx;
    Phase epoch;
    epoch.name = "als.sgd_epoch";
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t ufirst = users_ * g / numGpus_;
        const std::uint64_t uend = users_ * (g + 1) / numGpus_;
        const std::uint64_t num_ratings =
            (uend - ufirst) * ratingsPerUser_;

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = "als.sgd";
        kernel.computeInstrs = num_ratings * instrsPerRating;
        kernel.prechargedDramBytes = num_ratings * dramBytesPerRating;
        kernel.stream = std::make_unique<ReplayStream>(&epochTrace_[g]);
        epoch.kernels.push_back(std::move(kernel));

        // Memcpy port: the partitioned-ALS variant broadcasts its own
        // factor slabs after each epoch.
        epoch.barrierBroadcasts.push_back(BroadcastRange{
            gpu, userFactors_ + ufirst * lineBytes,
            (uend - ufirst) * lineBytes});
        const std::uint64_t ifirst = items_ * g / numGpus_;
        const std::uint64_t iend = items_ * (g + 1) / numGpus_;
        epoch.barrierBroadcasts.push_back(BroadcastRange{
            gpu, itemFactors_ + ifirst * lineBytes,
            (iend - ifirst) * lineBytes});
    }

    std::vector<Phase> phases;
    phases.push_back(std::move(epoch));
    return phases;
}

void
AlsWorkload::applyUmHints(WorkloadContext& ctx)
{
    Driver& drv = ctx.driver();
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t ufirst = users_ * g / numGpus_;
        const std::uint64_t ulen =
            (users_ * (g + 1) / numGpus_ - ufirst) * lineBytes;
        drv.advisePreferredLocation(userFactors_ + ufirst * lineBytes,
                                    ulen, gpu);
        drv.advisePreferredLocation(itemFactors_ + ufirst * lineBytes,
                                    ulen, gpu);
        for (std::size_t o = 0; o < numGpus_; ++o) {
            if (o == g)
                continue;
            drv.adviseAccessedBy(userFactors_ + ufirst * lineBytes, ulen,
                                 static_cast<GpuId>(o));
            drv.adviseAccessedBy(itemFactors_ + ufirst * lineBytes, ulen,
                                 static_cast<GpuId>(o));
        }
    }
}

} // namespace gps::apps
