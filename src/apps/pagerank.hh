/**
 * @file
 * Pagerank: push-style PageRank over a partitioned power-law web graph.
 * Each GPU accumulates contributions privately over its edge partition,
 * then publishes one atomic update per distinct target vertex into the
 * shared next-rank array. Predominantly peer-to-peer (Table 2); hub
 * pages collect subscribers from every GPU, and the atomic-dominated
 * write stream gives the remote write queue a 0% hit rate (Section 7.4).
 */

#ifndef GPS_APPS_PAGERANK_HH
#define GPS_APPS_PAGERANK_HH

#include <memory>

#include "apps/graph.hh"
#include "apps/workload.hh"
#include "apps/workload_cache.hh"

namespace gps::apps
{

/** Push-style multi-GPU PageRank. */
class PagerankWorkload : public Workload
{
  public:
    std::string name() const override { return "Pagerank"; }
    std::string description() const override
    {
        return "Algorithm used by Google Search to rank web pages in "
               "their search engine results";
    }
    std::string commPattern() const override { return "Peer-to-peer"; }

    void setup(WorkloadContext& ctx) override;
    std::size_t effectiveIterations() const override { return 100; }
    std::vector<Phase> iteration(std::size_t iter,
                                 WorkloadContext& ctx) override;
    void applyUmHints(WorkloadContext& ctx) override;

    const Graph& graph() const { return bundle_->graph; }

  private:
    /** Cached graph + publish sets (shared across runs, immutable). */
    std::shared_ptr<const GraphBundle> bundle_;
    Addr rank_ = 0;       ///< shared: current ranks (read by owner)
    Addr rankNext_ = 0;   ///< shared: atomic accumulation target
    std::vector<Addr> edgeLists_; ///< private CSR slice per GPU
    std::size_t numGpus_ = 0;

    /** Per-GPU publish trace (atomics to distinct targets), prebuilt. */
    std::vector<std::vector<MemAccess>> publishTrace_;
};

} // namespace gps::apps

#endif // GPS_APPS_PAGERANK_HH
