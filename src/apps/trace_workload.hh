/**
 * @file
 * Replaying captured traces as a workload.
 *
 * `gps-trace capture` writes one binary trace per (iteration, phase,
 * GPU) plus a manifest describing the allocations and kernel structure
 * of the capturing run. TraceReplayWorkload reads that manifest,
 * re-creates the identical VA layout (the allocator is deterministic,
 * so region bases match bit-for-bit) and replays the traces under any
 * paradigm — the same capture-once/replay-many methodology the paper
 * uses with NVBit + NVAS.
 *
 * Manifest format (text, one directive per line):
 *   gps-trace-manifest 1
 *   page_bytes <n>
 *   gpus <n>
 *   iterations <n>          # captured iterations (>=2: profile+steady)
 *   phases <n>              # phases per iteration
 *   region <base> <size> shared|private <home> <label>
 *   kernel <iter> <phase> <gpu> <records> <compute_instrs>
 *          <precharged_dram_bytes>
 */

#ifndef GPS_APPS_TRACE_WORKLOAD_HH
#define GPS_APPS_TRACE_WORKLOAD_HH

#include <map>
#include <string>
#include <vector>

#include "apps/workload.hh"

namespace gps::apps
{

/** Workload that replays trace files captured by gps-trace. */
class TraceReplayWorkload : public Workload
{
  public:
    /**
     * @param prefix path prefix used at capture time; the manifest is
     *        read from "<prefix>.manifest" immediately (throws
     *        FatalError on malformed input).
     */
    explicit TraceReplayWorkload(std::string prefix);

    std::string name() const override { return "TraceReplay"; }
    std::string description() const override
    {
        return "Replays traces captured with gps-trace";
    }
    std::string commPattern() const override { return "As captured"; }

    std::size_t effectiveIterations() const override { return 100; }

    void setup(WorkloadContext& ctx) override;
    std::vector<Phase> iteration(std::size_t iter,
                                 WorkloadContext& ctx) override;

    /** GPU count the capture was taken with. */
    std::size_t capturedGpus() const { return gpus_; }
    std::uint64_t pageBytes() const { return pageBytes_; }
    std::size_t capturedIterations() const { return iterations_; }

  private:
    struct RegionSpec
    {
        Addr base = 0;
        std::uint64_t size = 0;
        bool shared = false;
        GpuId home = 0;
        std::string label;
    };

    struct KernelSpec
    {
        GpuId gpu = 0;
        std::uint64_t records = 0;
        std::uint64_t computeInstrs = 0;
        std::uint64_t prechargedDramBytes = 0;
    };

    std::string tracePath(std::size_t iter, std::size_t phase,
                          GpuId gpu) const;

    std::string prefix_;
    std::uint64_t pageBytes_ = 0;
    std::size_t gpus_ = 0;
    std::size_t iterations_ = 0;
    std::size_t phases_ = 0;
    std::vector<RegionSpec> regions_;
    /** kernels_[iter][phase] -> per-GPU kernel specs. */
    std::map<std::size_t, std::map<std::size_t, std::vector<KernelSpec>>>
        kernels_;
};

} // namespace gps::apps

#endif // GPS_APPS_TRACE_WORKLOAD_HH
