/**
 * @file
 * CT: model-based iterative reconstruction. Forward projection streams
 * the full shared volume on every GPU (all-to-all, Table 2); back
 * projection accumulates into each GPU's volume slab with tiled
 * multi-pass sweeps, giving the remote write queue the temporal reuse
 * behind its rising Figure 14 hit-rate curve. The per-GPU sinogram also
 * lives in shared space, so the memcpy port needlessly broadcasts it —
 * the Figure 10 exception where UM moves less data than memcpy.
 */

#ifndef GPS_APPS_CT_HH
#define GPS_APPS_CT_HH

#include "apps/workload.hh"

namespace gps::apps
{

/** Iterative CT reconstruction (MBIR-style). */
class CtWorkload : public Workload
{
  public:
    std::string name() const override { return "CT"; }
    std::string description() const override
    {
        return "Model Based Iterative Reconstruction algorithm used in "
               "CT imaging";
    }
    std::string commPattern() const override { return "All-to-all"; }

    void setup(WorkloadContext& ctx) override;
    std::size_t effectiveIterations() const override { return 40; }
    std::vector<Phase> iteration(std::size_t iter,
                                 WorkloadContext& ctx) override;
    void applyUmHints(WorkloadContext& ctx) override;

  private:
    std::uint64_t volumeLines_ = 0;
    std::uint64_t sinoLinesPerGpu_ = 0;
    Addr volume_ = 0;   ///< shared reconstruction volume
    Addr sinogram_ = 0; ///< shared (partitioned by views) sinogram
    std::size_t numGpus_ = 0;
};

} // namespace gps::apps

#endif // GPS_APPS_CT_HH
