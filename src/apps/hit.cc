#include "apps/hit.hh"

#include <algorithm>

#include "apps/app_common.hh"

namespace gps::apps
{

namespace
{
constexpr std::uint64_t instrsPerLine = 30 * 32;

/** Nonlinear term + viscous term accumulation passes. */
const std::vector<std::uint64_t> hitTiles = {12, 56, 130, 280,
                                             440};
} // namespace

void
HitWorkload::setup(WorkloadContext& ctx)
{
    numGpus_ = ctx.numGpus();
    fieldLines_ = std::max<std::uint64_t>(
        4096, static_cast<std::uint64_t>(49152 * scale_));
    haloLines_ = std::min<std::uint64_t>(
        ctx.pageBytes() / lineBytes,
        std::max<std::uint64_t>(fieldLines_ / (numGpus_ * 8), 8));
    coeffLines_ = 1024; // 128 KB spectral table

    const char* names[3] = {"hit.u", "hit.v", "hit.w"};
    for (std::size_t f = 0; f < fields_.size(); ++f) {
        fields_[f] =
            ctx.allocShared(fieldLines_ * lineBytes, names[f], 0);
    }
    coeffs_ = ctx.allocShared(coeffLines_ * lineBytes, "hit.coeffs", 0);
}

std::vector<Phase>
HitWorkload::iteration(std::size_t iter, WorkloadContext& ctx)
{
    (void)iter;
    (void)ctx;
    const Slab1D slab{fieldLines_, numGpus_};

    Phase phase;
    phase.name = "hit.step";
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t first = slab.first(gpu);
        const std::uint64_t end = slab.end(gpu);
        const std::uint64_t count = end - first;

        std::vector<Group> groups;
        // Spectral coefficients: read by every GPU every step.
        groups.push_back(Group{{
            Burst{coeffs_, coeffLines_, lineBytes, AccessType::Load,
                  lineBytes, Scope::Weak},
        }});
        // All three components stream through the stencil together.
        Group component_reads;
        for (const Addr field : fields_) {
            component_reads.bursts.push_back(
                Burst{lineAddr(field, first), count, lineBytes,
                      AccessType::Load, lineBytes, Scope::Weak});
        }
        groups.push_back(std::move(component_reads));
        // Halo planes of each component from both neighbors.
        for (const Addr field : fields_) {
            if (first >= haloLines_) {
                groups.push_back(Group{{
                    Burst{lineAddr(field, first - haloLines_),
                          haloLines_, lineBytes, AccessType::Load,
                          lineBytes, Scope::Weak},
                }});
            }
            if (end + haloLines_ <= fieldLines_) {
                groups.push_back(Group{{
                    Burst{lineAddr(field, end), haloLines_, lineBytes,
                          AccessType::Load, lineBytes, Scope::Weak},
                }});
            }
        }
        // Nonlinear + viscous accumulation into each component.
        for (const Addr field : fields_)
            appendTiledStores(groups, field, first, count, hitTiles, 2);

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = "hit.step";
        kernel.computeInstrs = count * 3 * instrsPerLine;
        kernel.stream = makeGroupStream(std::move(groups));
        phase.kernels.push_back(std::move(kernel));

        for (const Addr field : fields_) {
            phase.barrierBroadcasts.push_back(BroadcastRange{
                gpu, lineAddr(field, first), haloLines_ * lineBytes});
            phase.barrierBroadcasts.push_back(BroadcastRange{
                gpu, lineAddr(field, end - haloLines_),
                haloLines_ * lineBytes});
            if (first >= haloLines_) {
                phase.prefetches.push_back(PrefetchRange{
                    gpu, lineAddr(field, first - haloLines_),
                    haloLines_ * lineBytes});
                phase.prefetches.push_back(PrefetchRange{
                    gpu, lineAddr(field, first),
                    haloLines_ * lineBytes});
            }
            if (end + haloLines_ <= fieldLines_) {
                phase.prefetches.push_back(PrefetchRange{
                    gpu, lineAddr(field, end), haloLines_ * lineBytes});
                phase.prefetches.push_back(PrefetchRange{
                    gpu, lineAddr(field, end - haloLines_),
                    haloLines_ * lineBytes});
            }
        }
    }

    std::vector<Phase> phases;
    phases.push_back(std::move(phase));
    return phases;
}

void
HitWorkload::applyUmHints(WorkloadContext& ctx)
{
    Driver& drv = ctx.driver();
    const Slab1D slab{fieldLines_, numGpus_};
    for (const Addr field : fields_) {
        for (std::size_t g = 0; g < numGpus_; ++g) {
            const GpuId gpu = static_cast<GpuId>(g);
            const Addr base = lineAddr(field, slab.first(gpu));
            const std::uint64_t len = slab.count(gpu) * lineBytes;
            const std::uint64_t halo_bytes = haloLines_ * lineBytes;
            drv.advisePreferredLocation(base, len, gpu);
            drv.adviseAccessedBy(base, halo_bytes, gpu);
            drv.adviseAccessedBy(base + len - halo_bytes, halo_bytes,
                                 gpu);
            if (g > 0) {
                drv.adviseAccessedBy(base, halo_bytes,
                                     static_cast<GpuId>(g - 1));
            }
            if (g + 1 < numGpus_) {
                drv.adviseAccessedBy(base + len - halo_bytes, halo_bytes,
                                     static_cast<GpuId>(g + 1));
            }
        }
    }
    drv.advisePreferredLocation(coeffs_, coeffLines_ * lineBytes, 0);
    for (std::size_t g = 1; g < numGpus_; ++g) {
        drv.adviseAccessedBy(coeffs_, coeffLines_ * lineBytes,
                             static_cast<GpuId>(g));
    }
}

} // namespace gps::apps
