#include "apps/trace_workload.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "trace/trace_file.hh"

namespace gps::apps
{

TraceReplayWorkload::TraceReplayWorkload(std::string prefix)
    : prefix_(std::move(prefix))
{
    const std::string path = prefix_ + ".manifest";
    std::ifstream in(path);
    if (!in)
        gps_fatal("cannot open trace manifest '", path, "'");

    std::string line;
    if (!std::getline(in, line) || line != "gps-trace-manifest 1")
        gps_fatal("'", path, "' is not a version-1 gps-trace manifest");

    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string directive;
        fields >> directive;
        if (directive == "page_bytes") {
            fields >> pageBytes_;
        } else if (directive == "gpus") {
            fields >> gpus_;
        } else if (directive == "iterations") {
            fields >> iterations_;
        } else if (directive == "phases") {
            fields >> phases_;
        } else if (directive == "region") {
            RegionSpec region;
            std::string kind;
            std::uint32_t home = 0;
            fields >> region.base >> region.size >> kind >> home;
            std::getline(fields, region.label);
            if (!region.label.empty() && region.label.front() == ' ')
                region.label.erase(0, 1);
            region.shared = kind == "shared";
            region.home = static_cast<GpuId>(home);
            regions_.push_back(std::move(region));
        } else if (directive == "kernel") {
            std::size_t iter = 0, phase = 0;
            std::uint32_t gpu = 0;
            KernelSpec kernel;
            fields >> iter >> phase >> gpu >> kernel.records >>
                kernel.computeInstrs >> kernel.prechargedDramBytes;
            kernel.gpu = static_cast<GpuId>(gpu);
            kernels_[iter][phase].push_back(kernel);
        } else {
            gps_fatal("unknown manifest directive '", directive, "' in ",
                      path);
        }
        if (fields.fail())
            gps_fatal("malformed manifest line '", line, "' in ", path);
    }
    if (pageBytes_ == 0 || gpus_ == 0 || iterations_ == 0 ||
        phases_ == 0 || regions_.empty()) {
        gps_fatal("incomplete trace manifest '", path, "'");
    }
}

void
TraceReplayWorkload::setup(WorkloadContext& ctx)
{
    if (ctx.pageBytes() != pageBytes_) {
        gps_fatal("trace captured with ", pageBytes_,
                  "-byte pages but the system uses ", ctx.pageBytes());
    }
    if (ctx.numGpus() != gpus_) {
        gps_fatal("trace captured on ", gpus_,
                  " GPUs but the system has ", ctx.numGpus());
    }
    // The VA allocator is deterministic: allocating the same sizes in
    // the same order reproduces the captured bases exactly.
    for (const RegionSpec& spec : regions_) {
        const Addr base =
            spec.shared
                ? ctx.allocShared(spec.size, spec.label, spec.home)
                : ctx.allocPrivate(spec.size, spec.label, spec.home);
        if (base != spec.base) {
            gps_fatal("VA layout mismatch replaying '", spec.label,
                      "': captured base ", spec.base, ", replayed ",
                      base);
        }
    }
}

std::string
TraceReplayWorkload::tracePath(std::size_t iter, std::size_t phase,
                               GpuId gpu) const
{
    return prefix_ + ".iter" + std::to_string(iter) + ".phase" +
           std::to_string(phase) + ".gpu" + std::to_string(gpu) +
           ".trc";
}

std::vector<Phase>
TraceReplayWorkload::iteration(std::size_t iter, WorkloadContext& ctx)
{
    (void)ctx;
    // Iteration 0 replays the captured profiling iteration; every
    // later iteration replays the captured steady-state one.
    const std::size_t captured =
        std::min(iter, iterations_ - 1);
    auto it = kernels_.find(captured);
    gps_assert(it != kernels_.end(), "manifest lacks iteration ",
               captured);

    std::vector<Phase> phases;
    for (const auto& [phase_idx, specs] : it->second) {
        Phase phase;
        phase.name = "trace.phase" + std::to_string(phase_idx);
        for (const KernelSpec& spec : specs) {
            KernelLaunch kernel;
            kernel.gpu = spec.gpu;
            kernel.name = phase.name;
            kernel.computeInstrs = spec.computeInstrs;
            kernel.prechargedDramBytes = spec.prechargedDramBytes;
            kernel.stream = std::make_unique<TraceFileStream>(
                tracePath(captured, phase_idx, spec.gpu));
            phase.kernels.push_back(std::move(kernel));
        }
        phases.push_back(std::move(phase));
    }
    return phases;
}

} // namespace gps::apps
