#include "apps/jacobi.hh"

#include <algorithm>

#include "apps/app_common.hh"

namespace gps::apps
{

namespace
{
/** Non-memory instructions per stencil line (32 floats, ~6 flops each). */
constexpr std::uint64_t instrsPerLine = 6 * 32;
} // namespace

std::uint64_t
JacobiWorkload::rowBytes() const
{
    return linesPerRow_ * lineBytes;
}

void
JacobiWorkload::setup(WorkloadContext& ctx)
{
    numGpus_ = ctx.numGpus();
    linesPerRow_ =
        std::min<std::uint64_t>(ctx.pageBytes() / lineBytes, 4096);
    rows_ = std::max<std::uint64_t>(
        32, static_cast<std::uint64_t>(128 * scale_));
    // Round rows to the GPU count so slabs are equal and page aligned:
    // a halo page holds exactly one producer's boundary row.
    rows_ = (rows_ + numGpus_ - 1) / numGpus_ * numGpus_;

    const std::uint64_t bytes = rows_ * rowBytes();
    bufA_ = ctx.allocShared(bytes, "jacobi.a", 0);
    bufB_ = ctx.allocShared(bytes, "jacobi.b", 0);
}

std::vector<Phase>
JacobiWorkload::iteration(std::size_t iter, WorkloadContext& ctx)
{
    (void)iter;
    // Listing 1 launches two sweeps per loop iteration (a -> b, then
    // b -> a), so one iteration covers the full ping-pong period and
    // the profiling iteration observes accesses to both buffers.
    std::vector<Phase> phases;
    phases.push_back(makeSweep(bufA_, bufB_, "jacobi.sweep_ab"));
    phases.push_back(makeSweep(bufB_, bufA_, "jacobi.sweep_ba"));
    (void)ctx;
    return phases;
}

Phase
JacobiWorkload::makeSweep(Addr src, Addr dst, const char* name) const
{
    const Slab1D slab{rows_, numGpus_};
    const std::uint64_t row_bytes = rowBytes();

    Phase phase;
    phase.name = name;
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t first = slab.first(gpu);
        const std::uint64_t end = slab.end(gpu);

        std::vector<Group> groups;
        groups.reserve(end - first);
        for (std::uint64_t r = first; r < end; ++r) {
            const std::uint64_t up = r == 0 ? 0 : r - 1;
            const std::uint64_t down = r + 1 == rows_ ? r : r + 1;
            Group group;
            group.bursts = {
                Burst{src + up * row_bytes, linesPerRow_, lineBytes,
                      AccessType::Load, lineBytes, Scope::Weak},
                Burst{src + r * row_bytes, linesPerRow_, lineBytes,
                      AccessType::Load, lineBytes, Scope::Weak},
                Burst{src + down * row_bytes, linesPerRow_, lineBytes,
                      AccessType::Load, lineBytes, Scope::Weak},
                Burst{dst + r * row_bytes, linesPerRow_, lineBytes,
                      AccessType::Store, lineBytes, Scope::Weak},
            };
            groups.push_back(std::move(group));
        }

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = "jacobi.mvmul";
        kernel.computeInstrs = (end - first) * linesPerRow_ * instrsPerLine;
        kernel.stream = makeGroupStream(std::move(groups));
        phase.kernels.push_back(std::move(kernel));

        // Tuned memcpy port: broadcast the freshly written boundary rows.
        phase.barrierBroadcasts.push_back(
            BroadcastRange{gpu, dst + first * row_bytes, row_bytes});
        phase.barrierBroadcasts.push_back(
            BroadcastRange{gpu, dst + (end - 1) * row_bytes, row_bytes});

        // UM+hints port: prefetch the halo rows this kernel reads and
        // pull the boundary rows it writes back home first.
        if (first > 0) {
            phase.prefetches.push_back(PrefetchRange{
                gpu, src + (first - 1) * row_bytes, row_bytes});
            phase.prefetches.push_back(
                PrefetchRange{gpu, dst + first * row_bytes, row_bytes});
        }
        if (end < rows_) {
            phase.prefetches.push_back(
                PrefetchRange{gpu, src + end * row_bytes, row_bytes});
            phase.prefetches.push_back(PrefetchRange{
                gpu, dst + (end - 1) * row_bytes, row_bytes});
        }
    }

    // The memcpy port deliberately ships both boundary rows of every
    // slab to every peer: that is exactly the needless copying
    // Figure 10 calls out.
    return phase;
}

void
JacobiWorkload::applyUmHints(WorkloadContext& ctx)
{
    Driver& drv = ctx.driver();
    const Slab1D slab{rows_, numGpus_};
    const std::uint64_t row_bytes = rowBytes();
    for (const Addr buf : {bufA_, bufB_}) {
        for (std::size_t g = 0; g < numGpus_; ++g) {
            const GpuId gpu = static_cast<GpuId>(g);
            const Addr base = buf + slab.first(gpu) * row_bytes;
            const std::uint64_t len = slab.count(gpu) * row_bytes;
            drv.advisePreferredLocation(base, len, gpu);
            // Boundary rows are accessed by the owner and neighbors.
            drv.adviseAccessedBy(base, row_bytes, gpu);
            drv.adviseAccessedBy(base + len - row_bytes, row_bytes, gpu);
            if (g > 0) {
                drv.adviseAccessedBy(base, row_bytes,
                                     static_cast<GpuId>(g - 1));
            }
            if (g + 1 < numGpus_) {
                drv.adviseAccessedBy(base + len - row_bytes, row_bytes,
                                     static_cast<GpuId>(g + 1));
            }
        }
    }
}

} // namespace gps::apps
