#include "apps/ct.hh"

#include <algorithm>

#include "apps/app_common.hh"

namespace gps::apps
{

namespace
{
/** Projection views processed per full iteration (strong scaled). */
constexpr std::uint64_t totalViews = 1024;

/** Ray accumulation ops per voxel per view. */
constexpr std::uint64_t instrsPerVoxelView = 2;

/** Back-projection accumulation tiles (lines) — mostly queue-sized. */
const std::vector<std::uint64_t> backprojTiles = {8, 24, 56, 120,
                                                  248, 504};
} // namespace

void
CtWorkload::setup(WorkloadContext& ctx)
{
    numGpus_ = ctx.numGpus();
    // 4 MB volume at scale 1 (32k lines).
    volumeLines_ = std::max<std::uint64_t>(
        4096, static_cast<std::uint64_t>(32768 * scale_));
    sinoLinesPerGpu_ = volumeLines_ / 4;

    volume_ = ctx.allocShared(volumeLines_ * lineBytes, "ct.volume", 0);
    sinogram_ = ctx.allocShared(
        sinoLinesPerGpu_ * numGpus_ * lineBytes, "ct.sinogram", 0);
}

std::vector<Phase>
CtWorkload::iteration(std::size_t iter, WorkloadContext& ctx)
{
    (void)iter;
    (void)ctx;
    const Slab1D slab{volumeLines_, numGpus_};
    std::vector<Phase> phases(2);

    // Phase 1: forward projection — every GPU streams the whole volume
    // and writes its own view subset of the sinogram.
    Phase& forward = phases[0];
    forward.name = "ct.forward";
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const Addr sino_base =
            sinogram_ + g * sinoLinesPerGpu_ * lineBytes;

        std::vector<Group> groups;
        groups.push_back(Group{{
            Burst{volume_, volumeLines_, lineBytes, AccessType::Load,
                  lineBytes, Scope::Weak},
        }});
        groups.push_back(Group{{
            Burst{sino_base, sinoLinesPerGpu_, lineBytes,
                  AccessType::Store, lineBytes, Scope::Weak},
        }});

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = "ct.forward";
        kernel.computeInstrs = volumeLines_ * 32 *
                               (totalViews / numGpus_) *
                               instrsPerVoxelView;
        kernel.stream = makeGroupStream(std::move(groups));
        forward.kernels.push_back(std::move(kernel));

        // The naive memcpy port broadcasts every updated shared
        // structure — including the sinogram nobody else reads.
        forward.barrierBroadcasts.push_back(BroadcastRange{
            gpu, sino_base, sinoLinesPerGpu_ * lineBytes});
    }

    // Phase 2: back projection — read own sinogram, accumulate into the
    // owned volume slab with tiled multi-pass stores.
    Phase& backward = phases[1];
    backward.name = "ct.backproj";
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t first = slab.first(gpu);
        const std::uint64_t count = slab.count(gpu);

        std::vector<Group> groups;
        groups.push_back(Group{{
            Burst{sinogram_ + g * sinoLinesPerGpu_ * lineBytes,
                  sinoLinesPerGpu_, lineBytes, AccessType::Load,
                  lineBytes, Scope::Weak},
        }});
        appendTiledStores(groups, volume_, first, count, backprojTiles,
                          3);

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = "ct.backproj";
        kernel.computeInstrs = volumeLines_ * 32 *
                               (totalViews / numGpus_) *
                               instrsPerVoxelView;
        kernel.stream = makeGroupStream(std::move(groups));
        backward.kernels.push_back(std::move(kernel));

        backward.barrierBroadcasts.push_back(BroadcastRange{
            gpu, volume_ + first * lineBytes, count * lineBytes});

        // UM+hints port: prefetch the volume before forward projection.
        forward.prefetches.push_back(PrefetchRange{
            gpu, volume_ + first * lineBytes, count * lineBytes});
    }

    return phases;
}

void
CtWorkload::applyUmHints(WorkloadContext& ctx)
{
    Driver& drv = ctx.driver();
    const Slab1D slab{volumeLines_, numGpus_};
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const Addr base = volume_ + slab.first(gpu) * lineBytes;
        const std::uint64_t len = slab.count(gpu) * lineBytes;
        drv.advisePreferredLocation(base, len, gpu);
        for (std::size_t o = 0; o < numGpus_; ++o) {
            if (o != g)
                drv.adviseAccessedBy(base, len, static_cast<GpuId>(o));
        }
        drv.advisePreferredLocation(
            sinogram_ + g * sinoLinesPerGpu_ * lineBytes,
            sinoLinesPerGpu_ * lineBytes, gpu);
    }
}

} // namespace gps::apps
