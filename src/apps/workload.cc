#include "apps/workload.hh"

#include "apps/als.hh"
#include "apps/app_common.hh"
#include "apps/ct.hh"
#include "apps/diffusion.hh"
#include "apps/eqwp.hh"
#include "apps/hit.hh"
#include "apps/jacobi.hh"
#include "apps/nbody.hh"
#include "apps/pagerank.hh"
#include "apps/sssp.hh"
#include "common/logging.hh"

namespace gps
{

Addr
WorkloadContext::allocShared(std::uint64_t size, std::string label,
                             GpuId home)
{
    Driver& drv = system_->driver();
    switch (paradigm_->sharedKind()) {
      case MemKind::Managed:
        return drv.mallocManaged(size, std::move(label), home).base;
      case MemKind::Gps:
        return drv.mallocGps(size, std::move(label), home, false).base;
      case MemKind::Replicated:
        return drv.mallocReplicated(size, std::move(label), home).base;
      case MemKind::Pinned:
        return drv.malloc(size, home, std::move(label)).base;
    }
    gps_panic("unknown shared kind");
}

Addr
WorkloadContext::allocSharedManual(std::uint64_t size, std::string label,
                                   GpuId home)
{
    Driver& drv = system_->driver();
    if (paradigm_->sharedKind() == MemKind::Gps)
        return drv.mallocGps(size, std::move(label), home, true).base;
    return allocShared(size, std::move(label), home);
}

Addr
WorkloadContext::allocPrivate(std::uint64_t size, std::string label,
                              GpuId gpu)
{
    return system_->driver().malloc(size, gpu, std::move(label)).base;
}

std::vector<std::string>
workloadNames()
{
    return {"Jacobi", "Pagerank", "SSSP", "ALS",
            "CT",     "EQWP",     "Diffusion", "HIT"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string& name)
{
    if (name == "Jacobi")
        return std::make_unique<apps::JacobiWorkload>();
    if (name == "Pagerank")
        return std::make_unique<apps::PagerankWorkload>();
    if (name == "SSSP")
        return std::make_unique<apps::SsspWorkload>();
    if (name == "ALS")
        return std::make_unique<apps::AlsWorkload>();
    if (name == "CT")
        return std::make_unique<apps::CtWorkload>();
    if (name == "EQWP")
        return std::make_unique<apps::EqwpWorkload>();
    if (name == "Diffusion")
        return std::make_unique<apps::DiffusionWorkload>();
    if (name == "HIT")
        return std::make_unique<apps::HitWorkload>();
    // Compute-bound control, available by name but not in the Table 2
    // plotting suite (the paper excluded such apps; see nbody.hh).
    if (name == "Nbody")
        return std::make_unique<apps::NbodyWorkload>();
    gps_fatal("unknown workload '", name, "'");
}

namespace apps
{

void
appendTiledStores(std::vector<Group>& groups, Addr array_base,
                  std::uint64_t first_line, std::uint64_t total_lines,
                  const std::vector<std::uint64_t>& tile_sizes,
                  unsigned passes)
{
    gps_assert(!tile_sizes.empty() && passes >= 1, "bad tiling request");
    std::uint64_t line = first_line;
    std::size_t tile_idx = 0;
    while (line < first_line + total_lines) {
        const std::uint64_t tile =
            std::min<std::uint64_t>(tile_sizes[tile_idx % tile_sizes.size()],
                                    first_line + total_lines - line);
        for (unsigned pass = 0; pass < passes; ++pass) {
            Group group;
            group.bursts.push_back(Burst{lineAddr(array_base, line), tile,
                                         lineBytes, AccessType::Store,
                                         lineBytes, Scope::Weak});
            groups.push_back(std::move(group));
        }
        line += tile;
        ++tile_idx;
    }
}

} // namespace apps
} // namespace gps
