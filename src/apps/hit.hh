/**
 * @file
 * HIT: homogeneous isotropic turbulence — a 3-D Navier-Stokes step over
 * three velocity-component fields with slab partitioning, halo
 * exchange, and a small spectral-coefficient table read by every GPU.
 * Predominantly peer-to-peer (Table 2), with a minority of
 * multi-subscriber coefficient pages (Figure 9's tail) and multi-field
 * store reuse that the remote write queue coalesces (Figure 14).
 */

#ifndef GPS_APPS_HIT_HH
#define GPS_APPS_HIT_HH

#include <array>

#include "apps/workload.hh"

namespace gps::apps
{

/** Homogeneous isotropic turbulence step. */
class HitWorkload : public Workload
{
  public:
    std::string name() const override { return "HIT"; }
    std::string description() const override
    {
        return "Simulating Homogeneous Isotropic Turbulence by solving "
               "Navier-Stokes equations in 3D";
    }
    std::string commPattern() const override { return "Peer-to-peer"; }

    void setup(WorkloadContext& ctx) override;
    std::size_t effectiveIterations() const override { return 300; }
    std::vector<Phase> iteration(std::size_t iter,
                                 WorkloadContext& ctx) override;
    void applyUmHints(WorkloadContext& ctx) override;

  private:
    std::uint64_t fieldLines_ = 0;
    std::uint64_t haloLines_ = 0;
    std::array<Addr, 3> fields_{}; ///< u, v, w velocity components
    Addr coeffs_ = 0;              ///< spectral coefficients, read by all
    std::uint64_t coeffLines_ = 0;
    std::size_t numGpus_ = 0;
};

} // namespace gps::apps

#endif // GPS_APPS_HIT_HH
