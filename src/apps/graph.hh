/**
 * @file
 * Synthetic partitioned power-law graph generator for the graph
 * workloads (Pagerank, SSSP).
 *
 * Real-world web/social graphs have two properties that drive the
 * paper's results: partition locality (most edges stay within a
 * partition after a decent partitioner ran) and a heavy-tailed degree
 * distribution (remote edges concentrate on hub vertices, so remote
 * update sets are much smaller than V). Both are explicit parameters.
 */

#ifndef GPS_APPS_GRAPH_HH
#define GPS_APPS_GRAPH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace gps::apps
{

/** CSR-ish edge structure (sources implicit, targets concatenated). */
struct Graph
{
    std::uint64_t numVertices = 0;
    std::size_t numParts = 1;

    /** rowPtr[v]..rowPtr[v+1] index targets of vertex v. */
    std::vector<std::uint64_t> rowPtr;
    std::vector<std::uint32_t> targets;

    std::uint64_t numEdges() const { return targets.size(); }

    /** Partition owning vertex @p v (block partition). */
    GpuId
    owner(std::uint64_t v) const
    {
        return static_cast<GpuId>(v * numParts / numVertices);
    }

    std::uint64_t
    partFirst(std::size_t p) const
    {
        return numVertices * p / numParts;
    }

    std::uint64_t
    partEnd(std::size_t p) const
    {
        return numVertices * (p + 1) / numParts;
    }
};

/** Generation knobs. */
struct GraphParams
{
    std::uint64_t numVertices = 1 << 18;
    std::uint32_t avgDegree = 4;
    std::size_t numParts = 4;

    /** Fraction of edges that stay inside the source's partition. */
    double locality = 0.8;

    /** Zipf exponent for remote (hub) targets; higher = more skewed. */
    double hubSkew = 0.75;

    std::uint64_t seed = 42;
};

/** Build a partitioned power-law graph; targets sorted per vertex. */
Graph makePowerLawGraph(const GraphParams& params);

/**
 * Distinct target vertices of edges whose source lies in partition
 * @p part — the per-GPU publish set of a push-style graph kernel.
 */
std::vector<std::uint32_t> distinctTargets(const Graph& graph,
                                           std::size_t part);

/**
 * Distinct target *groups* of @p vertices_per_group consecutive ids —
 * the publish set after warp-level atomic aggregation merges same-line
 * updates (32 x 4 B counters per 128 B line).
 */
std::vector<std::uint32_t> distinctTargetGroups(
    const Graph& graph, std::size_t part,
    std::uint32_t vertices_per_group);

} // namespace gps::apps

#endif // GPS_APPS_GRAPH_HH
