#include "apps/nbody.hh"

#include <algorithm>

#include "apps/app_common.hh"

namespace gps::apps
{

namespace
{
/** ~20 flops per body-body interaction; 4 bodies per line. */
constexpr std::uint64_t instrsPerInteraction = 20;
} // namespace

void
NbodyWorkload::setup(WorkloadContext& ctx)
{
    numGpus_ = ctx.numGpus();
    // 16k bodies at scale 1: a 512 KB body array, O(N^2) compute.
    const std::uint64_t bodies = std::max<std::uint64_t>(
        2048, static_cast<std::uint64_t>(16384 * scale_));
    bodyLines_ = bodies * 32 / lineBytes;
    bodies_ = ctx.allocShared(bodyLines_ * lineBytes, "nbody.bodies", 0);
}

std::vector<Phase>
NbodyWorkload::iteration(std::size_t iter, WorkloadContext& ctx)
{
    (void)iter;
    (void)ctx;
    const Slab1D slab{bodyLines_, numGpus_};
    const std::uint64_t bodies = bodyLines_ * lineBytes / 32;

    Phase phase;
    phase.name = "nbody.step";
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t first = slab.first(gpu);
        const std::uint64_t count = slab.count(gpu);

        // Read every body (tiled through shared memory in a real
        // kernel: one streaming pass here), update the owned slab.
        std::vector<Group> groups;
        groups.push_back(Group{{
            Burst{bodies_, bodyLines_, lineBytes, AccessType::Load,
                  lineBytes, Scope::Weak},
        }});
        groups.push_back(Group{{
            Burst{lineAddr(bodies_, first), count, lineBytes,
                  AccessType::Store, lineBytes, Scope::Weak},
        }});

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = "nbody.forces";
        // O(N^2) interactions split across GPUs.
        kernel.computeInstrs =
            bodies * (bodies / numGpus_) * instrsPerInteraction;
        kernel.stream = makeGroupStream(std::move(groups));
        phase.kernels.push_back(std::move(kernel));

        phase.barrierBroadcasts.push_back(BroadcastRange{
            gpu, lineAddr(bodies_, first), count * lineBytes});
    }

    std::vector<Phase> phases;
    phases.push_back(std::move(phase));
    return phases;
}

void
NbodyWorkload::applyUmHints(WorkloadContext& ctx)
{
    Driver& drv = ctx.driver();
    const Slab1D slab{bodyLines_, numGpus_};
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const Addr base = lineAddr(bodies_, slab.first(gpu));
        const std::uint64_t len = slab.count(gpu) * lineBytes;
        drv.advisePreferredLocation(base, len, gpu);
        for (std::size_t o = 0; o < numGpus_; ++o) {
            if (o != g)
                drv.adviseAccessedBy(base, len, static_cast<GpuId>(o));
        }
    }
}

} // namespace gps::apps
