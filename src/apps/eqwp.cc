#include "apps/eqwp.hh"

#include <algorithm>

#include "apps/app_common.hh"

namespace gps::apps
{

namespace
{
/** 4th-order FD: ~25 flops per element. */
constexpr std::uint64_t instrsPerLine = 25 * 32;

/** Per-axis accumulation tiles: all within a 512-entry queue. */
const std::vector<std::uint64_t> axisTiles = {12, 40, 90, 180,
                                              360, 480};
} // namespace

void
EqwpWorkload::setup(WorkloadContext& ctx)
{
    numGpus_ = ctx.numGpus();
    // 8 MB per field at scale 1: one field alone overflows a single
    // 6 MB L2 (so the re-read sweep misses on one GPU) but a quarter
    // slab fits easily — the aggregate-capacity effect behind EQWP's
    // superlinear scaling in Section 7.1.
    fieldLines_ = std::max<std::uint64_t>(
        8192, static_cast<std::uint64_t>(65536 * scale_));
    // Depth-2 halo planes, one page worth per side (capped to an
    // eighth of a slab for very large pages).
    haloLines_ = std::min<std::uint64_t>(
        ctx.pageBytes() / lineBytes,
        std::max<std::uint64_t>(fieldLines_ / (numGpus_ * 8), 8));

    velocity_ = ctx.allocShared(fieldLines_ * lineBytes, "eqwp.vel", 0);
    stress_ = ctx.allocShared(fieldLines_ * lineBytes, "eqwp.str", 0);
}

Phase
EqwpWorkload::makeUpdatePhase(const char* phase_name, Addr read_field,
                              Addr written_field) const
{
    const Slab1D slab{fieldLines_, numGpus_};
    Phase phase;
    phase.name = phase_name;
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t first = slab.first(gpu);
        const std::uint64_t end = slab.end(gpu);
        const std::uint64_t count = end - first;

        std::vector<Group> groups;
        // Halo planes from both neighbors, then two stencil sweeps of
        // the read field (x/y pass and z pass re-read the slab).
        if (first >= haloLines_) {
            groups.push_back(Group{{
                Burst{lineAddr(read_field, first - haloLines_),
                      haloLines_, lineBytes, AccessType::Load, lineBytes,
                      Scope::Weak},
            }});
        }
        if (end + haloLines_ <= fieldLines_) {
            groups.push_back(Group{{
                Burst{lineAddr(read_field, end), haloLines_, lineBytes,
                      AccessType::Load, lineBytes, Scope::Weak},
            }});
        }
        groups.push_back(Group{{
            Burst{lineAddr(read_field, first), count, lineBytes,
                  AccessType::Load, lineBytes, Scope::Weak},
        }});
        groups.push_back(Group{{
            Burst{lineAddr(read_field, first), count, lineBytes,
                  AccessType::Load, lineBytes, Scope::Weak},
            Burst{lineAddr(written_field, first), count, lineBytes,
                  AccessType::Load, lineBytes, Scope::Weak},
        }});
        // Per-axis accumulation passes into the written field.
        appendTiledStores(groups, written_field, first, count, axisTiles,
                          3);

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = phase_name;
        kernel.computeInstrs = count * instrsPerLine;
        kernel.stream = makeGroupStream(std::move(groups));
        phase.kernels.push_back(std::move(kernel));

        // Tuned memcpy port: exchange the freshly written halo planes.
        phase.barrierBroadcasts.push_back(BroadcastRange{
            gpu, lineAddr(written_field, first), haloLines_ * lineBytes});
        phase.barrierBroadcasts.push_back(BroadcastRange{
            gpu, lineAddr(written_field, end - haloLines_),
            haloLines_ * lineBytes});

        // UM+hints: prefetch the neighbor halo planes of the read
        // field and pull the written halo planes back home first.
        if (first >= haloLines_) {
            phase.prefetches.push_back(PrefetchRange{
                gpu, lineAddr(read_field, first - haloLines_),
                haloLines_ * lineBytes});
            phase.prefetches.push_back(PrefetchRange{
                gpu, lineAddr(written_field, first),
                haloLines_ * lineBytes});
        }
        if (end + haloLines_ <= fieldLines_) {
            phase.prefetches.push_back(PrefetchRange{
                gpu, lineAddr(read_field, end),
                haloLines_ * lineBytes});
            phase.prefetches.push_back(PrefetchRange{
                gpu, lineAddr(written_field, end - haloLines_),
                haloLines_ * lineBytes});
        }
    }
    return phase;
}

std::vector<Phase>
EqwpWorkload::iteration(std::size_t iter, WorkloadContext& ctx)
{
    (void)iter;
    (void)ctx;
    std::vector<Phase> phases;
    phases.push_back(
        makeUpdatePhase("eqwp.update_vel", stress_, velocity_));
    phases.push_back(
        makeUpdatePhase("eqwp.update_str", velocity_, stress_));
    return phases;
}

void
EqwpWorkload::applyUmHints(WorkloadContext& ctx)
{
    Driver& drv = ctx.driver();
    const Slab1D slab{fieldLines_, numGpus_};
    for (const Addr field : {velocity_, stress_}) {
        for (std::size_t g = 0; g < numGpus_; ++g) {
            const GpuId gpu = static_cast<GpuId>(g);
            const Addr base = lineAddr(field, slab.first(gpu));
            const std::uint64_t len = slab.count(gpu) * lineBytes;
            drv.advisePreferredLocation(base, len, gpu);
            const std::uint64_t halo_bytes = haloLines_ * lineBytes;
            drv.adviseAccessedBy(base, halo_bytes, gpu);
            drv.adviseAccessedBy(base + len - halo_bytes, halo_bytes,
                                 gpu);
            if (g > 0) {
                drv.adviseAccessedBy(base, halo_bytes,
                                     static_cast<GpuId>(g - 1));
            }
            if (g + 1 < numGpus_) {
                drv.adviseAccessedBy(base + len - halo_bytes, halo_bytes,
                                     static_cast<GpuId>(g + 1));
            }
        }
    }
}

} // namespace gps::apps
