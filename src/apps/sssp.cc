#include "apps/sssp.hh"

#include <algorithm>

#include "apps/app_common.hh"

namespace gps::apps
{

namespace
{
constexpr std::uint64_t instrsPerEdge = 12;
} // namespace

void
SsspWorkload::setup(WorkloadContext& ctx)
{
    numGpus_ = ctx.numGpus();

    GraphParams params;
    params.numVertices = std::max<std::uint64_t>(
        1 << 14, static_cast<std::uint64_t>((1 << 18) * scale_));
    params.avgDegree = 12;
    params.numParts = numGpus_;
    params.locality = 0.8;  // road/web mix: many-to-many relaxations
    params.hubSkew = 0.6;
    params.seed = 1234;
    // Graph + per-partition relax target sets come from the cross-run
    // workload cache (generated once per sweep).
    bundle_ = WorkloadCache::instance().graphBundle(params, lineBytes / 4);
    const Graph& graph = bundle_->graph;

    dist_ = ctx.allocShared(graph.numVertices * 4, "sssp.dist", 0);

    relaxTrace_.assign(numGpus_, {});
    edgeLists_.assign(numGpus_, 0);
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const std::uint64_t edges =
            graph.rowPtr[graph.partEnd(g)] -
            graph.rowPtr[graph.partFirst(g)];
        edgeLists_[g] = ctx.allocPrivate(
            std::max<std::uint64_t>(edges, 1) * 4,
            "sssp.edges." + std::to_string(g), static_cast<GpuId>(g));
        // Warp-aggregated atomicMin per distinct target line. Only the
        // base address is per-run; the group list comes from the cache.
        const std::vector<std::uint32_t>& groups =
            bundle_->targetGroups[g];
        std::vector<MemAccess>& trace = relaxTrace_[g];
        trace.reserve(groups.size());
        for (const std::uint32_t group : groups) {
            trace.push_back(MemAccess::atomic(
                dist_ + static_cast<Addr>(group) * lineBytes,
                lineBytes));
        }
    }
}

std::vector<Phase>
SsspWorkload::iteration(std::size_t iter, WorkloadContext& ctx)
{
    (void)ctx;
    Phase relax;
    relax.name = "sssp.relax";
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t vfirst = graph().partFirst(g);
        const std::uint64_t vend = graph().partEnd(g);
        const std::uint64_t vcount = vend - vfirst;
        const std::uint64_t active = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(vcount) * frontierFraction));
        const std::uint64_t edges =
            graph().rowPtr[vend] - graph().rowPtr[vfirst];
        const std::uint64_t active_edges = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(static_cast<double>(edges) *
                                          frontierFraction));

        // The frontier window rotates each iteration so the steady
        // state is statistically stationary; it stays inside the
        // partition.
        const std::uint64_t slots =
            std::max<std::uint64_t>(vcount - active, 1);
        const std::uint64_t window_start = (iter * active) % slots;

        std::vector<Group> groups;
        groups.push_back(Group{{
            // Frontier distances (own partition, rotating window).
            Burst{dist_ + (vfirst + window_start) * 4,
                  (active * 4 + lineBytes - 1) / lineBytes, lineBytes,
                  AccessType::Load, lineBytes, Scope::Weak},
        }});

        std::vector<std::unique_ptr<AccessStream>> parts;
        parts.push_back(makeGroupStream(std::move(groups)));
        // Relax the frontier's slice of the publish trace (circular).
        const std::size_t relax_count = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   static_cast<double>(relaxTrace_[g].size()) *
                   frontierFraction));
        parts.push_back(std::make_unique<ReplayStream>(
            &relaxTrace_[g], (iter * relax_count), relax_count));

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = "sssp.relax";
        kernel.computeInstrs = active_edges * instrsPerEdge;
        // Frontier adjacency (index + weight) plus random gather and
        // relax read-modify-write traffic per active edge.
        kernel.prechargedDramBytes = active_edges * (8 + 2 * 32 + 2 * 32);
        kernel.stream = std::make_unique<ConcatStream>(std::move(parts));
        relax.kernels.push_back(std::move(kernel));

        // Memcpy port: ship the updated distance partition each round.
        relax.barrierBroadcasts.push_back(
            BroadcastRange{gpu, dist_ + vfirst * 4, vcount * 4});
    }

    std::vector<Phase> phases;
    phases.push_back(std::move(relax));
    return phases;
}

void
SsspWorkload::applyUmHints(WorkloadContext& ctx)
{
    Driver& drv = ctx.driver();
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const std::uint64_t vfirst = graph().partFirst(g);
        const std::uint64_t bytes = (graph().partEnd(g) - vfirst) * 4;
        drv.advisePreferredLocation(dist_ + vfirst * 4, bytes,
                                    static_cast<GpuId>(g));
        for (std::size_t o = 0; o < numGpus_; ++o) {
            if (o != g) {
                drv.adviseAccessedBy(dist_ + vfirst * 4, bytes,
                                     static_cast<GpuId>(o));
            }
        }
    }
}

} // namespace gps::apps
