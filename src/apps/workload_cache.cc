#include "apps/workload_cache.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/env.hh"

namespace gps::apps
{

std::string
graphBundleKey(const GraphParams& params,
               std::uint32_t vertices_per_group)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "graph|%llu|%u|%zu|%.17g|%.17g|%llu|%u|",
                  static_cast<unsigned long long>(params.numVertices),
                  params.avgDegree, params.numParts, params.locality,
                  params.hubSkew,
                  static_cast<unsigned long long>(params.seed),
                  vertices_per_group);
    return buf;
}

namespace
{

std::shared_ptr<const GraphBundle>
buildBundle(const GraphParams& params, std::uint32_t vertices_per_group)
{
    const auto t0 = std::chrono::steady_clock::now();
    auto bundle = std::make_shared<GraphBundle>();
    bundle->graph = makePowerLawGraph(params);
    bundle->verticesPerGroup = vertices_per_group;
    bundle->targetGroups.reserve(params.numParts);
    for (std::size_t part = 0; part < params.numParts; ++part)
        bundle->targetGroups.push_back(distinctTargetGroups(
            bundle->graph, part, vertices_per_group));
    bundle->buildSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return bundle;
}

} // namespace

WorkloadCache::WorkloadCache()
{
    // Validated parse: garbage or out-of-range values warn and keep the
    // default instead of silently becoming 0 (disabled) or a
    // wrapped-around huge capacity.
    capacity_ = envSizeT("GPS_WORKLOAD_CACHE_CAP", capacity_,
                         std::size_t(1) << 20);
}

WorkloadCache&
WorkloadCache::instance()
{
    static WorkloadCache cache;
    return cache;
}

std::shared_ptr<const GraphBundle>
WorkloadCache::graphBundle(const GraphParams& params,
                           std::uint32_t vertices_per_group)
{
    const std::string key = graphBundleKey(params, vertices_per_group);

    std::promise<std::shared_ptr<const GraphBundle>> promise;
    std::shared_future<std::shared_ptr<const GraphBundle>> pending;
    std::uint64_t myId = 0;
    bool disabled = false;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        if (capacity_ == 0)
            disabled = true;
    }
    if (disabled) {
        // Capacity 0 = caching disabled: build fresh and store nothing
        // (no entry, no in-flight dedup).
        std::shared_ptr<const GraphBundle> bundle =
            buildBundle(params, vertices_per_group);
        const std::lock_guard<std::mutex> lock(mu_);
        ++counters_.misses;
        counters_.buildSeconds += bundle->buildSeconds;
        return bundle;
    }
    {
        const std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            // Hit — possibly on a build still in flight, in which case
            // waiting on the future (outside the lock) blocks until the
            // builder finishes, so concurrent requesters share one
            // single-threaded build.
            ++counters_.hits;
            touchLocked(it->second);
            pending = it->second.future;
        } else {
            ++counters_.misses;
            Entry entry;
            entry.future = promise.get_future().share();
            entry.id = nextId_++;
            myId = entry.id;
            entries_.emplace(key, std::move(entry));
        }
    }
    if (pending.valid())
        return pending.get();

    std::shared_ptr<const GraphBundle> bundle;
    try {
        bundle = buildBundle(params, vertices_per_group);
    } catch (...) {
        // Unwind: fail the waiters and forget the entry so a later
        // request can retry.
        promise.set_exception(std::current_exception());
        const std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.id == myId)
            entries_.erase(it);
        throw;
    }
    promise.set_value(bundle);

    const std::lock_guard<std::mutex> lock(mu_);
    counters_.buildSeconds += bundle->buildSeconds;
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.id == myId) {
        lru_.push_front(key);
        it->second.lruIt = lru_.begin();
        it->second.inLru = true;
        evictIfNeededLocked();
    }
    return bundle;
}

WorkloadCache::Counters
WorkloadCache::counters() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

std::size_t
WorkloadCache::size() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
WorkloadCache::clear()
{
    const std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    counters_ = Counters{};
}

std::size_t
WorkloadCache::capacity() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

void
WorkloadCache::setCapacity(std::size_t capacity)
{
    const std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
    evictIfNeededLocked();
}

void
WorkloadCache::touchLocked(Entry& entry)
{
    if (entry.inLru)
        lru_.splice(lru_.begin(), lru_, entry.lruIt);
}

void
WorkloadCache::evictIfNeededLocked()
{
    // capacity 0 = caching disabled: nothing may stay resident, so the
    // plain size comparison also drains the LRU after setCapacity(0).
    while (lru_.size() > capacity_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++counters_.evictions;
    }
}

} // namespace gps::apps
