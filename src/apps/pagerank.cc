#include "apps/pagerank.hh"

#include <algorithm>

#include "apps/app_common.hh"

namespace gps::apps
{

namespace
{
constexpr std::uint64_t instrsPerEdge = 14;
constexpr std::uint64_t instrsPerVertex = 10;
} // namespace

void
PagerankWorkload::setup(WorkloadContext& ctx)
{
    numGpus_ = ctx.numGpus();

    GraphParams params;
    params.numVertices = std::max<std::uint64_t>(
        1 << 14, static_cast<std::uint64_t>((1 << 18) * scale_));
    params.avgDegree = 16;
    params.numParts = numGpus_;
    params.locality = 0.95;
    params.hubSkew = 0.75;
    // The graph and its publish sets depend only on params — fetch them
    // from the cross-run workload cache (generated once per sweep).
    bundle_ = WorkloadCache::instance().graphBundle(params, lineBytes / 4);
    const Graph& graph = bundle_->graph;

    const std::uint64_t rank_bytes = graph.numVertices * 4;
    rank_ = ctx.allocShared(rank_bytes, "pagerank.rank", 0);
    rankNext_ = ctx.allocShared(rank_bytes, "pagerank.rank_next", 0);

    publishTrace_.assign(numGpus_, {});
    edgeLists_.assign(numGpus_, 0);
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t edges =
            graph.rowPtr[graph.partEnd(g)] -
            graph.rowPtr[graph.partFirst(g)];
        edgeLists_[g] = ctx.allocPrivate(
            std::max<std::uint64_t>(edges, 1) * 4,
            "pagerank.edges." + std::to_string(g), gpu);

        // Publish set: one aggregated atomicAdd per distinct target
        // *line* (warp-level aggregation merges the per-edge atomics to
        // the same 128 B line into one L2 transaction). Only the base
        // address is per-run; the group list comes from the cache.
        const std::vector<std::uint32_t>& groups =
            bundle_->targetGroups[g];
        std::vector<MemAccess>& trace = publishTrace_[g];
        trace.reserve(groups.size());
        for (const std::uint32_t group : groups) {
            trace.push_back(MemAccess::atomic(
                rankNext_ + static_cast<Addr>(group) * lineBytes,
                lineBytes));
        }
    }
}

std::vector<Phase>
PagerankWorkload::iteration(std::size_t iter, WorkloadContext& ctx)
{
    (void)iter;
    (void)ctx;
    std::vector<Phase> phases(2);

    // Phase 1: scatter — read own ranks and edges, publish atomics.
    Phase& scatter = phases[0];
    scatter.name = "pagerank.scatter";
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t vfirst = graph().partFirst(g);
        const std::uint64_t vend = graph().partEnd(g);
        const std::uint64_t own_bytes = (vend - vfirst) * 4;
        const std::uint64_t edges =
            graph().rowPtr[vend] - graph().rowPtr[vfirst];

        std::vector<Group> groups;
        // Stream own ranks (the edge list and the random per-edge
        // gather/accumulate traffic are statistically flat and enter
        // the DRAM model analytically via prechargedDramBytes).
        groups.push_back(Group{{
            Burst{rank_ + vfirst * 4, (own_bytes + lineBytes - 1) /
                                          lineBytes,
                  lineBytes, AccessType::Load, lineBytes, Scope::Weak},
        }});

        std::vector<std::unique_ptr<AccessStream>> parts;
        parts.push_back(makeGroupStream(std::move(groups)));
        parts.push_back(
            std::make_unique<ReplayStream>(&publishTrace_[g]));

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = "pagerank.scatter";
        kernel.computeInstrs =
            edges * instrsPerEdge + (vend - vfirst) * instrsPerVertex;
        // 4 B of edge list plus a random uncoalesced gather (two 32 B
        // sectors) and a 32 B read-modify-write to the private
        // accumulator per edge.
        kernel.prechargedDramBytes = edges * (4 + 2 * 32 + 2 * 32);
        kernel.stream =
            std::make_unique<ConcatStream>(std::move(parts));
        scatter.kernels.push_back(std::move(kernel));

        // Memcpy port: the partial results are reduced at the barrier —
        // every GPU ships its accumulator partition-by-partition.
        scatter.barrierBroadcasts.push_back(BroadcastRange{
            gpu, rankNext_ + vfirst * 4, own_bytes});
    }

    // Phase 2: apply — each GPU folds rank_next into rank for its own
    // vertices (rank pages are only ever touched by their owner).
    Phase& apply = phases[1];
    apply.name = "pagerank.apply";
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t vfirst = graph().partFirst(g);
        const std::uint64_t vend = graph().partEnd(g);
        const std::uint64_t lines =
            ((vend - vfirst) * 4 + lineBytes - 1) / lineBytes;

        std::vector<Group> groups;
        groups.push_back(Group{{
            Burst{rankNext_ + vfirst * 4, lines, lineBytes,
                  AccessType::Load, lineBytes, Scope::Weak},
            Burst{rank_ + vfirst * 4, lines, lineBytes,
                  AccessType::Store, lineBytes, Scope::Weak},
        }});

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = "pagerank.apply";
        kernel.computeInstrs = (vend - vfirst) * instrsPerVertex;
        kernel.stream = makeGroupStream(std::move(groups));
        apply.kernels.push_back(std::move(kernel));
    }

    return phases;
}

void
PagerankWorkload::applyUmHints(WorkloadContext& ctx)
{
    Driver& drv = ctx.driver();
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t vfirst = graph().partFirst(g);
        const std::uint64_t bytes =
            (graph().partEnd(g) - vfirst) * 4;
        drv.advisePreferredLocation(rank_ + vfirst * 4, bytes, gpu);
        drv.advisePreferredLocation(rankNext_ + vfirst * 4, bytes, gpu);
        // Every peer may publish into any partition of rank_next.
        for (std::size_t o = 0; o < numGpus_; ++o) {
            if (o != g) {
                drv.adviseAccessedBy(rankNext_ + vfirst * 4, bytes,
                                     static_cast<GpuId>(o));
            }
        }
    }
}

} // namespace gps::apps
