/**
 * @file
 * Jacobi: iterative solver for a diagonally dominant linear system — a
 * 2-D 5-point stencil over ping-pong buffers with a 1-D row partition.
 * Predominant communication: peer-to-peer halo-row exchange (Table 2);
 * shared pages end up with exactly two subscribers (Figure 9) and the
 * remote write queue sees ~0% hits because every store targets a fresh
 * line (Section 7.4).
 */

#ifndef GPS_APPS_JACOBI_HH
#define GPS_APPS_JACOBI_HH

#include "apps/workload.hh"

namespace gps::apps
{

/** 2-D Jacobi stencil with halo exchange. */
class JacobiWorkload : public Workload
{
  public:
    std::string name() const override { return "Jacobi"; }
    std::string description() const override
    {
        return "Iterative solver for a diagonally dominant system of "
               "linear equations";
    }
    std::string commPattern() const override { return "Peer-to-peer"; }

    void setup(WorkloadContext& ctx) override;
    std::size_t effectiveIterations() const override { return 600; }
    std::vector<Phase> iteration(std::size_t iter,
                                 WorkloadContext& ctx) override;
    void applyUmHints(WorkloadContext& ctx) override;

    std::uint64_t rows() const { return rows_; }
    std::uint64_t rowBytes() const;

  private:
    Phase makeSweep(Addr src, Addr dst, const char* name) const;

    std::uint64_t rows_ = 0;
    std::uint64_t linesPerRow_ = 512; ///< page-wide (64 KB) rows
    Addr bufA_ = 0;
    Addr bufB_ = 0;
    std::size_t numGpus_ = 0;
};

} // namespace gps::apps

#endif // GPS_APPS_JACOBI_HH
