/**
 * @file
 * Diffusion: multi-GPU 3-D heat equation (plus inviscid Burgers source
 * term) on ping-pong buffers with a slab partition and depth-1 halo
 * planes — peer-to-peer (Table 2). Its 3-D halos are not contiguous in
 * memory, so the hand-written UM prefetch hints cover whole neighbor
 * slabs; this over-fetch is the paper's Figure 10 exception where
 * UM+hints moves *more* data than plain UM.
 */

#ifndef GPS_APPS_DIFFUSION_HH
#define GPS_APPS_DIFFUSION_HH

#include "apps/workload.hh"

namespace gps::apps
{

/** 3-D heat equation / Burgers step. */
class DiffusionWorkload : public Workload
{
  public:
    std::string name() const override { return "Diffusion"; }
    std::string description() const override
    {
        return "A multi-GPU implementation of 3D Heat Equation and "
               "inviscid Burgers' Equation";
    }
    std::string commPattern() const override { return "Peer-to-peer"; }

    void setup(WorkloadContext& ctx) override;
    std::size_t effectiveIterations() const override { return 200; }
    std::vector<Phase> iteration(std::size_t iter,
                                 WorkloadContext& ctx) override;
    void applyUmHints(WorkloadContext& ctx) override;

  private:
    Phase makeStep(Addr src, Addr dst, const char* name) const;

    std::uint64_t fieldLines_ = 0;
    std::uint64_t haloLines_ = 0;
    Addr bufA_ = 0;
    Addr bufB_ = 0;
    std::size_t numGpus_ = 0;
};

} // namespace gps::apps

#endif // GPS_APPS_DIFFUSION_HH
