#include "apps/graph.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace gps::apps
{

Graph
makePowerLawGraph(const GraphParams& params)
{
    gps_assert(params.numVertices > 0 && params.numParts > 0,
               "empty graph");
    Graph graph;
    graph.numVertices = params.numVertices;
    graph.numParts = params.numParts;
    graph.rowPtr.resize(params.numVertices + 1, 0);
    graph.targets.reserve(params.numVertices * params.avgDegree);

    Rng rng(params.seed);
    for (std::uint64_t v = 0; v < params.numVertices; ++v) {
        graph.rowPtr[v] = graph.targets.size();
        const GpuId part = graph.owner(v);
        const std::uint64_t pfirst = graph.partFirst(part);
        const std::uint64_t pcount = graph.partEnd(part) - pfirst;
        // Degree varies 1..2*avg-1 to avoid a perfectly regular graph.
        const std::uint32_t degree =
            1 + static_cast<std::uint32_t>(
                    rng.below(2 * params.avgDegree - 1));
        for (std::uint32_t e = 0; e < degree; ++e) {
            std::uint64_t target;
            if (rng.chance(params.locality)) {
                target = pfirst + rng.below(pcount);
            } else {
                // Remote edges hit globally popular hubs. Vertex ids
                // follow the usual degree-sorted relabeling, so hubs
                // cluster at low ids.
                target = rng.zipf(params.numVertices, params.hubSkew);
            }
            graph.targets.push_back(static_cast<std::uint32_t>(target));
        }
        auto begin = graph.targets.begin() +
                     static_cast<std::ptrdiff_t>(graph.rowPtr[v]);
        std::sort(begin, graph.targets.end());
    }
    graph.rowPtr[params.numVertices] = graph.targets.size();
    return graph;
}

std::vector<std::uint32_t>
distinctTargets(const Graph& graph, std::size_t part)
{
    const std::uint64_t first = graph.partFirst(part);
    const std::uint64_t end = graph.partEnd(part);
    std::vector<std::uint32_t> targets(
        graph.targets.begin() +
            static_cast<std::ptrdiff_t>(graph.rowPtr[first]),
        graph.targets.begin() +
            static_cast<std::ptrdiff_t>(graph.rowPtr[end]));
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    return targets;
}

std::vector<std::uint32_t>
distinctTargetGroups(const Graph& graph, std::size_t part,
                     std::uint32_t vertices_per_group)
{
    std::vector<std::uint32_t> groups = distinctTargets(graph, part);
    for (auto& g : groups)
        g /= vertices_per_group;
    groups.erase(std::unique(groups.begin(), groups.end()),
                 groups.end());
    return groups;
}

} // namespace gps::apps
