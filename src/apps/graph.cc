#include "apps/graph.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace gps::apps
{

Graph
makePowerLawGraph(const GraphParams& params)
{
    gps_assert(params.numVertices > 0 && params.numParts > 0,
               "empty graph");
    gps_assert(params.avgDegree > 0, "zero average degree");
    Graph graph;
    graph.numVertices = params.numVertices;
    graph.numParts = params.numParts;
    graph.rowPtr.resize(params.numVertices + 1, 0);

    // Flat CSR in one pass: degrees are bounded (1..2*avg-1), so the
    // target array is sized for the worst case up front and trimmed at
    // the end — no per-edge capacity checks, no reallocation.
    const std::uint32_t maxDegree = 2 * params.avgDegree - 1;
    graph.targets.resize(params.numVertices *
                         static_cast<std::uint64_t>(maxDegree));
    std::uint32_t* const out = graph.targets.data();

    // Hub targets: one uniform draw through the precomputed inverse-CDF
    // table instead of a std::pow per remote edge.
    const ZipfTable hubs(params.numVertices, params.hubSkew);

    Rng rng(params.seed);
    std::uint64_t w = 0;
    // owner(v) floors v*parts/vertices, which at uneven partition
    // boundaries is NOT the inverse of partFirst/partEnd — so the
    // partition range is re-derived from owner itself whenever it
    // changes, exactly like the original per-vertex generator, keeping
    // the emitted graph identical.
    {
        GpuId part = graph.owner(0);
        std::uint64_t pfirst = graph.partFirst(part);
        std::uint64_t pcount = graph.partEnd(part) - pfirst;
        for (std::uint64_t v = 0; v < params.numVertices; ++v) {
            if (graph.owner(v) != part) {
                part = graph.owner(v);
                pfirst = graph.partFirst(part);
                pcount = graph.partEnd(part) - pfirst;
            }
            graph.rowPtr[v] = w;
            // Degree varies 1..2*avg-1 to avoid a perfectly regular
            // graph.
            const std::uint32_t degree =
                1 + static_cast<std::uint32_t>(rng.below(maxDegree));
            const std::uint64_t row = w;
            for (std::uint32_t e = 0; e < degree; ++e) {
                std::uint64_t target;
                if (rng.chance(params.locality)) {
                    target = pfirst + rng.below(pcount);
                } else {
                    // Remote edges hit globally popular hubs. Vertex
                    // ids follow the usual degree-sorted relabeling,
                    // so hubs cluster at low ids.
                    target = hubs(rng);
                }
                // Sorted insertion keeps the short row ordered as it
                // fills (rows hold at most 2*avg-1 targets).
                const auto t = static_cast<std::uint32_t>(target);
                std::uint64_t pos = w;
                while (pos > row && out[pos - 1] > t) {
                    out[pos] = out[pos - 1];
                    --pos;
                }
                out[pos] = t;
                ++w;
            }
        }
    }
    graph.rowPtr[params.numVertices] = w;
    graph.targets.resize(w);
    // Graphs can outlive generation by a lot (the workload cache keeps
    // them); return the worst-case slack to the allocator.
    graph.targets.shrink_to_fit();
    return graph;
}

std::vector<std::uint32_t>
distinctTargets(const Graph& graph, std::size_t part)
{
    return distinctTargetGroups(graph, part, 1);
}

std::vector<std::uint32_t>
distinctTargetGroups(const Graph& graph, std::size_t part,
                     std::uint32_t vertices_per_group)
{
    gps_assert(vertices_per_group > 0, "empty target group");
    // Mark-and-collect over the part's target range: one pass sets a
    // bit per touched group, one pass over the (small) bitmap emits
    // them in ascending order — no copy, no sort, no unique.
    const std::uint64_t num_groups =
        (graph.numVertices + vertices_per_group - 1) / vertices_per_group;
    std::vector<std::uint64_t> bits((num_groups + 63) / 64, 0);

    const std::uint32_t* const targets = graph.targets.data();
    const std::uint64_t efirst = graph.rowPtr[graph.partFirst(part)];
    const std::uint64_t eend = graph.rowPtr[graph.partEnd(part)];
    for (std::uint64_t e = efirst; e < eend; ++e) {
        const std::uint32_t group = targets[e] / vertices_per_group;
        bits[group >> 6] |= 1ULL << (group & 63);
    }

    std::size_t count = 0;
    for (const std::uint64_t word : bits)
        count += static_cast<std::size_t>(__builtin_popcountll(word));

    std::vector<std::uint32_t> groups;
    groups.reserve(count);
    for (std::size_t word_idx = 0; word_idx < bits.size(); ++word_idx) {
        std::uint64_t word = bits[word_idx];
        while (word != 0) {
            const int bit = __builtin_ctzll(word);
            groups.push_back(static_cast<std::uint32_t>(
                (word_idx << 6) + static_cast<std::size_t>(bit)));
            word &= word - 1;
        }
    }
    return groups;
}

} // namespace gps::apps
