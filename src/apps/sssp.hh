/**
 * @file
 * SSSP: frontier-based shortest-path relaxation (Bellman-Ford style)
 * over a partitioned graph. Every iteration a rotating frontier of
 * vertices relaxes its out-edges with atomicMin on the shared distance
 * array — a many-to-many pattern (Table 2) whose atomic-dominated write
 * stream never coalesces in the remote write queue (Section 7.4).
 */

#ifndef GPS_APPS_SSSP_HH
#define GPS_APPS_SSSP_HH

#include <memory>

#include "apps/graph.hh"
#include "apps/workload.hh"
#include "apps/workload_cache.hh"

namespace gps::apps
{

/** Frontier-based SSSP relaxation. */
class SsspWorkload : public Workload
{
  public:
    std::string name() const override { return "SSSP"; }
    std::string description() const override
    {
        return "Shortest path computation between every pair of "
               "vertices in a graph";
    }
    std::string commPattern() const override { return "Many-to-many"; }

    void setup(WorkloadContext& ctx) override;
    std::size_t effectiveIterations() const override { return 120; }
    std::vector<Phase> iteration(std::size_t iter,
                                 WorkloadContext& ctx) override;
    void applyUmHints(WorkloadContext& ctx) override;

    const Graph& graph() const { return bundle_->graph; }

  private:
    /** Cached graph + relax target sets (shared across runs). */
    std::shared_ptr<const GraphBundle> bundle_;
    Addr dist_ = 0;                ///< shared distance array
    std::vector<Addr> edgeLists_;  ///< private CSR slice per GPU
    std::size_t numGpus_ = 0;

    /** Fraction of each partition active per iteration. */
    static constexpr double frontierFraction = 0.3;

    /** Per-GPU relax trace (atomicMin per distinct frontier target). */
    std::vector<std::vector<MemAccess>> relaxTrace_;
};

} // namespace gps::apps

#endif // GPS_APPS_SSSP_HH
