#include "apps/diffusion.hh"

#include <algorithm>

#include "apps/app_common.hh"

namespace gps::apps
{

namespace
{
constexpr std::uint64_t instrsPerLine = 14 * 32;

/** Diffuse pass then source-term pass: two writes per tile. */
const std::vector<std::uint64_t> diffusionTiles = {16, 60, 140,
                                                   300, 480};
} // namespace

void
DiffusionWorkload::setup(WorkloadContext& ctx)
{
    numGpus_ = ctx.numGpus();
    fieldLines_ = std::max<std::uint64_t>(
        8192, static_cast<std::uint64_t>(49152 * scale_));
    haloLines_ = std::min<std::uint64_t>(
        ctx.pageBytes() / lineBytes,
        std::max<std::uint64_t>(fieldLines_ / (numGpus_ * 8), 8));

    bufA_ = ctx.allocShared(fieldLines_ * lineBytes, "diffusion.a", 0);
    bufB_ = ctx.allocShared(fieldLines_ * lineBytes, "diffusion.b", 0);
}

std::vector<Phase>
DiffusionWorkload::iteration(std::size_t iter, WorkloadContext& ctx)
{
    (void)iter;
    (void)ctx;
    // Full ping-pong period per iteration (see Jacobi).
    std::vector<Phase> phases;
    phases.push_back(makeStep(bufA_, bufB_, "diffusion.step_ab"));
    phases.push_back(makeStep(bufB_, bufA_, "diffusion.step_ba"));
    return phases;
}

Phase
DiffusionWorkload::makeStep(Addr src, Addr dst, const char* name) const
{
    const Slab1D slab{fieldLines_, numGpus_};

    Phase phase;
    phase.name = name;
    for (std::size_t g = 0; g < numGpus_; ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const std::uint64_t first = slab.first(gpu);
        const std::uint64_t end = slab.end(gpu);
        const std::uint64_t count = end - first;

        std::vector<Group> groups;
        if (first >= haloLines_) {
            groups.push_back(Group{{
                Burst{lineAddr(src, first - haloLines_), haloLines_,
                      lineBytes, AccessType::Load, lineBytes,
                      Scope::Weak},
            }});
        }
        if (end + haloLines_ <= fieldLines_) {
            groups.push_back(Group{{
                Burst{lineAddr(src, end), haloLines_, lineBytes,
                      AccessType::Load, lineBytes, Scope::Weak},
            }});
        }
        // 7-point stencil: slab read twice (z-plane reuse).
        groups.push_back(Group{{
            Burst{lineAddr(src, first), count, lineBytes,
                  AccessType::Load, lineBytes, Scope::Weak},
        }});
        groups.push_back(Group{{
            Burst{lineAddr(src, first), count, lineBytes,
                  AccessType::Load, lineBytes, Scope::Weak},
        }});
        appendTiledStores(groups, dst, first, count, diffusionTiles, 2);

        KernelLaunch kernel;
        kernel.gpu = gpu;
        kernel.name = "diffusion.step";
        kernel.computeInstrs = count * instrsPerLine;
        // The y- and z-axis interior sweeps are statistically flat and
        // are charged analytically instead of replayed.
        kernel.prechargedDramBytes =
            count * static_cast<std::uint64_t>(lineBytes) * 2;
        kernel.stream = makeGroupStream(std::move(groups));
        phase.kernels.push_back(std::move(kernel));

        phase.barrierBroadcasts.push_back(BroadcastRange{
            gpu, lineAddr(dst, first), haloLines_ * lineBytes});
        phase.barrierBroadcasts.push_back(BroadcastRange{
            gpu, lineAddr(dst, end - haloLines_),
            haloLines_ * lineBytes});

        // The hand-tuned hints cannot express the scattered 3-D halo
        // planes, so the port prefetches 4x the true halo extent — the
        // over-fetch behind Diffusion's Figure 10 exception.
        const std::uint64_t coarse = haloLines_ * 4;
        if (first >= coarse) {
            phase.prefetches.push_back(PrefetchRange{
                gpu, lineAddr(src, first - coarse),
                coarse * lineBytes});
        }
        if (end + coarse <= fieldLines_) {
            phase.prefetches.push_back(PrefetchRange{
                gpu, lineAddr(src, end), coarse * lineBytes});
        }
    }

    return phase;
}

void
DiffusionWorkload::applyUmHints(WorkloadContext& ctx)
{
    Driver& drv = ctx.driver();
    const Slab1D slab{fieldLines_, numGpus_};
    for (const Addr buf : {bufA_, bufB_}) {
        for (std::size_t g = 0; g < numGpus_; ++g) {
            const GpuId gpu = static_cast<GpuId>(g);
            const Addr base = lineAddr(buf, slab.first(gpu));
            const std::uint64_t len = slab.count(gpu) * lineBytes;
            drv.advisePreferredLocation(base, len, gpu);
            drv.adviseAccessedBy(base, len, gpu);
            if (g > 0)
                drv.adviseAccessedBy(base, len, static_cast<GpuId>(g - 1));
            if (g + 1 < numGpus_) {
                drv.adviseAccessedBy(base, len,
                                     static_cast<GpuId>(g + 1));
            }
        }
    }
}

} // namespace gps::apps
