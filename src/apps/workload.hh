/**
 * @file
 * Workload framework: the paradigm-agnostic application model.
 *
 * A Workload allocates shared/private regions through the context (the
 * active paradigm decides the MemKind behind "shared"), then produces
 * barrier-separated phases of per-GPU kernels as procedural access
 * streams. Hints (UM prefetch ranges, memcpy broadcast sets, preferred
 * locations) are declared by the workload and honored only by the
 * paradigms they belong to — mirroring how the paper ported each
 * application to each paradigm without changing its partitioning.
 */

#ifndef GPS_APPS_WORKLOAD_HH
#define GPS_APPS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "api/system.hh"
#include "paradigm/paradigm.hh"
#include "trace/kernel_trace.hh"

namespace gps
{

/** Allocation and hint services offered to workloads. */
class WorkloadContext
{
  public:
    WorkloadContext(MultiGpuSystem& system, Paradigm& paradigm)
        : system_(&system), paradigm_(&paradigm)
    {}

    std::size_t numGpus() const { return system_->numGpus(); }
    std::uint64_t pageBytes() const
    {
        return system_->geometry().bytes();
    }
    std::uint32_t lineBytes() const
    {
        return system_->config().gpu.cacheLineBytes;
    }

    /**
     * Allocate a region shared among GPUs; the active paradigm chooses
     * the management kind (managed / replicated / GPS).
     */
    Addr allocShared(std::uint64_t size, std::string label,
                     GpuId home = 0);

    /** Shared region with manual GPS subscription management. */
    Addr allocSharedManual(std::uint64_t size, std::string label,
                           GpuId home = 0);

    /** Per-GPU private allocation (cudaMalloc on @p gpu). */
    Addr allocPrivate(std::uint64_t size, std::string label, GpuId gpu);

    /** Manual GPS subscription hint (no-op under other paradigms). */
    void
    gpsSubscribe(Addr base, std::uint64_t len, GpuId gpu)
    {
        paradigm_->adviseSubscribe(base, len, gpu);
    }

    /** Manual GPS unsubscription hint; false when refused. */
    bool
    gpsUnsubscribe(Addr base, std::uint64_t len, GpuId gpu)
    {
        return paradigm_->adviseUnsubscribe(base, len, gpu);
    }

    Driver& driver() { return system_->driver(); }
    Paradigm& paradigm() { return *paradigm_; }
    MultiGpuSystem& system() { return *system_; }

  private:
    MultiGpuSystem* system_;
    Paradigm* paradigm_;
};

/** Base class for the evaluated applications (Table 2). */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name used in tables ("Jacobi"). */
    virtual std::string name() const = 0;

    /** One-line description (Table 2). */
    virtual std::string description() const = 0;

    /** Predominant communication pattern (Table 2). */
    virtual std::string commPattern() const = 0;

    /**
     * Scale factor for problem sizes; tests use << 1 to stay fast,
     * benches use the default 1.
     */
    virtual void setScale(double scale) { scale_ = scale; }
    double scale() const { return scale_; }

    /** Allocate regions and remember their bases. */
    virtual void setup(WorkloadContext& ctx) = 0;

    /**
     * Total application iterations the real run would execute; simulated
     * iterations are extrapolated to this count (profiling cost
     * amortizes exactly as in the paper's full-length runs).
     */
    virtual std::size_t effectiveIterations() const { return 200; }

    /** Build one iteration's phases (fresh streams each call). */
    virtual std::vector<Phase> iteration(std::size_t iter,
                                         WorkloadContext& ctx) = 0;

    /** Apply preferred-location / accessed-by hints (UM+hints only). */
    virtual void applyUmHints(WorkloadContext& ctx) { (void)ctx; }

  protected:
    double scale_ = 1.0;
};

/** Names of all bundled workloads in the paper's plotting order. */
std::vector<std::string> workloadNames();

/** Factory: construct a bundled workload by (case-sensitive) name. */
std::unique_ptr<Workload> makeWorkload(const std::string& name);

} // namespace gps

#endif // GPS_APPS_WORKLOAD_HH
