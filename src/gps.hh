/**
 * @file
 * Umbrella header: the public surface of the GPS multi-GPU memory
 * management library. Downstream users can include just this.
 *
 *   #include "gps.hh"
 *   gps::RunConfig config;
 *   auto result = gps::runWorkload("Jacobi", config);
 */

#ifndef GPS_GPS_HH
#define GPS_GPS_HH

// System facade, runner and results.
#include "api/metrics.hh"
#include "api/runner.hh"
#include "api/system.hh"

// Driver API (cudaMalloc*/cuMemAdvise analogues) and paradigms.
#include "driver/driver.hh"
#include "paradigm/paradigm.hh"

// The GPS core, for direct use of the Section 4 programming interface.
#include "core/gps_paradigm.hh"

// Workload framework (write your own applications).
#include "apps/app_common.hh"
#include "apps/workload.hh"

// Trace capture / replay interchange.
#include "trace/trace_file.hh"

#endif // GPS_GPS_HH
