/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The runner schedules kernel completions, DMA completions, drain points
 * and barriers as events on a single tick-ordered queue, gem5-style.
 * Within-kernel timing is analytic (see GpuModel), so event counts stay
 * small and the simulator remains fast enough to sweep 16-GPU systems.
 */

#ifndef GPS_SIM_EVENT_QUEUE_HH
#define GPS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/types.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** A scheduled callback with a stable tie-breaking sequence number. */
class Event
{
  public:
    using Action = std::function<void()>;

    Event(Tick when, std::uint64_t seq, std::int8_t priority,
          std::string name, Action action)
        : when_(when), seq_(seq), priority_(priority),
          name_(std::move(name)), action_(std::move(action))
    {}

    Tick when() const { return when_; }
    const std::string& name() const { return name_; }
    std::int8_t priority() const { return priority_; }

    void run() const { action_(); }

    /** Ordering: earlier tick first, then priority, then FIFO. */
    bool
    after(const Event& other) const
    {
        if (when_ != other.when_)
            return when_ > other.when_;
        if (priority_ != other.priority_)
            return priority_ > other.priority_;
        return seq_ > other.seq_;
    }

  private:
    Tick when_;
    std::uint64_t seq_;
    std::int8_t priority_;
    std::string name_;
    Action action_;
};

/** Default event priority; lower runs first at equal ticks. */
constexpr std::int8_t defaultPriority = 0;

/** Barriers run after all same-tick completions. */
constexpr std::int8_t barrierPriority = 10;

/** Tick-ordered event queue. */
class EventQueue
{
  public:
    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events still pending. */
    std::size_t pending() const { return queue_.size(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Schedule @p action at absolute tick @p when (must not be in the
     * past).
     */
    void schedule(Tick when, std::string name, Event::Action action,
                  std::int8_t priority = defaultPriority);

    /** Schedule @p action @p delay ticks from now. */
    void scheduleIn(Tick delay, std::string name, Event::Action action,
                    std::int8_t priority = defaultPriority);

    /** Execute the earliest event; returns false if the queue is empty. */
    bool serviceOne();

    /**
     * Observer invoked after each serviced event with the new time and
     * the event's name. The observability layer hooks this to poll the
     * metric sampler at event granularity; pass nullptr to detach.
     */
    using Observer = std::function<void(Tick, const std::string&)>;
    void setObserver(Observer observer) { observer_ = std::move(observer); }

    /** Run until the queue is empty or @p limit ticks is reached. */
    void run(Tick limit = maxTick);

    /** Drop all pending events and reset time to zero. */
    void reset();

    /**
     * Serialize clock and counters. Events themselves are never
     * persisted: snapshots are only taken at quiescent points (after a
     * phase barrier) where the queue has fully drained, so the closure
     * state captured in pending actions cannot leak into a snapshot.
     * Asserts the queue is empty.
     */
    void saveState(snapshot::Serializer& out) const;

    /** Counterpart of saveState; requires an empty queue. */
    void restoreState(snapshot::Deserializer& in);

  private:
    struct Compare
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            return a.after(b);
        }
    };

    std::priority_queue<Event, std::vector<Event>, Compare> queue_;
    Observer observer_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace gps

#endif // GPS_SIM_EVENT_QUEUE_HH
