/**
 * @file
 * Base class for named simulated components that export statistics.
 */

#ifndef GPS_SIM_SIM_OBJECT_HH
#define GPS_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "common/stats.hh"

namespace gps
{

class MetricRegistry;

/**
 * A named component of the simulated system. Components expose their
 * counters through exportStats() so the runner can aggregate a full system
 * snapshot after a run.
 */
class SimObject
{
  public:
    explicit SimObject(std::string name)
        : name_(std::move(name))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject&) = delete;
    SimObject& operator=(const SimObject&) = delete;

    const std::string& name() const { return name_; }

    /** Append this component's stats, prefixed with its name. */
    virtual void exportStats(StatSet& out) const { (void)out; }

    /**
     * Register this component's metrics (prefixed with its name) into
     * the observability registry. Only called when observability is
     * enabled for a run; getters must be read-only (see
     * obs/metric_registry.hh).
     */
    virtual void registerMetrics(MetricRegistry& reg) const { (void)reg; }

    /** Reset all statistic counters (not architectural state). */
    virtual void resetStats() {}

  private:
    std::string name_;
};

} // namespace gps

#endif // GPS_SIM_SIM_OBJECT_HH
