#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace gps
{

void
EventQueue::schedule(Tick when, std::string name, Event::Action action,
                     std::int8_t priority)
{
    gps_assert(when >= now_, "event '", name, "' scheduled in the past (",
               when, " < ", now_, ")");
    queue_.emplace(when, seq_++, priority, std::move(name),
                   std::move(action));
}

void
EventQueue::scheduleIn(Tick delay, std::string name, Event::Action action,
                       std::int8_t priority)
{
    schedule(now_ + delay, std::move(name), std::move(action), priority);
}

bool
EventQueue::serviceOne()
{
    if (queue_.empty())
        return false;
    // Copy out before pop: the action may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when();
    ++executed_;
    ev.run();
    if (observer_)
        observer_(now_, ev.name());
    return true;
}

void
EventQueue::run(Tick limit)
{
    while (!queue_.empty() && queue_.top().when() <= limit)
        serviceOne();
}

void
EventQueue::saveState(snapshot::Serializer& out) const
{
    gps_assert(queue_.empty(),
               "event queue snapshot with ", queue_.size(),
               " events pending (not a quiescent point)");
    out.section("events");
    out.u64(now_);
    out.u64(seq_);
    out.u64(executed_);
}

void
EventQueue::restoreState(snapshot::Deserializer& in)
{
    gps_assert(queue_.empty(), "event queue restore with ",
               queue_.size(), " events pending");
    in.section("events");
    now_ = in.u64();
    seq_ = in.u64();
    executed_ = in.u64();
}

void
EventQueue::reset()
{
    queue_ = {};
    now_ = 0;
    seq_ = 0;
    executed_ = 0;
}

} // namespace gps
