/**
 * @file
 * Simulated-time metric sampler: turns registry reads into time series.
 *
 * The runner polls the sampler at every instrumentation point (event
 * executions, phase boundaries, end of run); the sampler records one
 * snapshot of every registered metric whenever at least `every` ticks of
 * simulated time have passed since the previous sample. Samples are
 * therefore taken at the first instrumentation point at or after each
 * period boundary — simulated time only advances at event granularity,
 * so exact period alignment is neither possible nor meaningful.
 */

#ifndef GPS_OBS_SAMPLER_HH
#define GPS_OBS_SAMPLER_HH

#include <vector>

#include "common/types.hh"
#include "obs/metric_registry.hh"

namespace gps
{

/** Periodic snapshot recorder over one MetricRegistry. */
class Sampler
{
  public:
    /**
     * @param registry metrics to sample (must outlive the sampler)
     * @param every minimum simulated ticks between samples; 0 disables
     *        periodic sampling (only finish() records)
     */
    Sampler(const MetricRegistry& registry, Tick every);

    /**
     * Record the baseline sample at run start, unconditionally: every
     * series then has a row at the start tick, so delta computations
     * over the first period are not skewed by the first poll() landing
     * anywhere up to `every` ticks in.
     */
    void start(Tick now);

    /** Record a sample at @p now if one is due. */
    void poll(Tick now);

    /** Record a terminal sample at @p now unconditionally (unless one
     *  was already taken at this exact tick). */
    void finish(Tick now);

    /** Tick of each recorded sample, in increasing order. */
    const std::vector<Tick>& sampleTicks() const { return ticks_; }

    /**
     * Column-major series: columns()[m][s] is metric m's value at
     * sample s, with m indexing registry.metrics().
     */
    const std::vector<std::vector<double>>& columns() const
    {
        return columns_;
    }

    Tick every() const { return every_; }

    /**
     * Replace the recorded series with checkpointed state (snapshot
     * restore); the column count must match the registry.
     */
    void
    restore(std::vector<Tick> ticks,
            std::vector<std::vector<double>> columns)
    {
        ticks_ = std::move(ticks);
        columns_ = std::move(columns);
    }

  private:
    void record(Tick now);

    const MetricRegistry* registry_;
    Tick every_;
    std::vector<Tick> ticks_;
    std::vector<std::vector<double>> columns_;
};

} // namespace gps

#endif // GPS_OBS_SAMPLER_HH
