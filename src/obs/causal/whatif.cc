#include "obs/causal/whatif.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/logging.hh"
#include "common/units.hh"

namespace gps
{

bool
parseWhatIfSpec(const std::string& text, WhatIfSpec& out,
                std::string& error)
{
    out = WhatIfSpec{};
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            error = "what-if term '" + item + "' is not key=factor";
            return false;
        }
        const std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (!val.empty() && (val.back() == 'x' || val.back() == 'X'))
            val.pop_back();
        char* end = nullptr;
        const double factor = std::strtod(val.c_str(), &end);
        if (val.empty() || end == nullptr || *end != '\0' ||
            !std::isfinite(factor) || factor <= 0.0) {
            error = "what-if factor '" + item.substr(eq + 1) +
                    "' is not a positive number";
            return false;
        }
        if (key == "link_bw") {
            out.linkBw = factor;
        } else if (key == "rwq_drain") {
            out.rwqDrain = factor;
        } else {
            error = "unknown what-if key '" + key +
                    "' (expected link_bw or rwq_drain)";
            return false;
        }
    }
    return true;
}

std::string
to_string(const WhatIfSpec& spec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "link_bw=%gx,rwq_drain=%gx",
                  spec.linkBw, spec.rwqDrain);
    return buf;
}

namespace
{

/** One phase's end-to-end time under scaled resources. */
Tick
predictPhase(const CausalModel& m, const CausalPhase& ph,
             const WhatIfSpec& spec)
{
    const double bw = m.linkBandwidth * spec.linkBw;
    const auto link_time = [&](std::uint64_t bytes) -> Tick {
        if (m.linkInfinite)
            return 0;
        return transferTicks(bytes, bw);
    };

    // Remote round-trip under the scaled link, mirroring
    // GpuModel::kernelTimeBreakdown's casts exactly.
    Tick round_trip = 0;
    if (!m.linkInfinite) {
        const Tick line_time =
            link_time(m.cacheLineBytes + m.headerBytes);
        round_trip = 2 * m.linkLatency + line_time;
    }

    Tick slowest = 0;
    for (const CausalKernel& k : ph.kernels) {
        Tick remote = 0;
        if (!m.linkInfinite) {
            if (k.batchesLoads > 0.0)
                remote += static_cast<Tick>(
                    k.batchesLoads * static_cast<double>(round_trip));
            if (k.batchesAtomics > 0.0)
                remote += static_cast<Tick>(
                    k.batchesAtomics * static_cast<double>(round_trip));
        }
        const Tick wq_stall =
            spec.rwqDrain == 1.0
                ? k.tWqStall
                : static_cast<Tick>(static_cast<double>(k.tWqStall) /
                                    spec.rwqDrain);
        const Tick kernel_time =
            std::max({k.tCompute, k.tL2, k.tDram, k.tWalks}) + remote +
            k.tFaults + k.tShootdowns + wq_stall +
            m.kernelLaunchOverhead;
        const Tick gpu_time =
            std::max({kernel_time, link_time(k.egressBytes),
                      link_time(k.ingressBytes)});
        slowest = std::max(slowest, gpu_time);
    }

    Tick barrier_wire = 0;
    for (const std::uint64_t bytes : ph.barrierEgress)
        barrier_wire = std::max(barrier_wire, link_time(bytes));
    for (const std::uint64_t bytes : ph.barrierIngress)
        barrier_wire = std::max(barrier_wire, link_time(bytes));
    return ph.prefetchTime + slowest + barrier_wire +
           ph.barrierOverhead;
}

/** End-to-end time under @p spec, mirroring the runner's loop. */
Tick
predictTotal(const CausalReport& report, const WhatIfSpec& spec)
{
    // Per-iteration predicted phase sum plus the recorded residual
    // (window time not covered by recorded phases; normally zero).
    std::map<std::uint64_t, Tick> predicted;
    std::map<std::uint64_t, Tick> recorded;
    for (const CausalPhase& ph : report.phases) {
        predicted[ph.iter] += predictPhase(report.model, ph, spec);
        recorded[ph.iter] += ph.phaseTime;
    }

    std::vector<Tick> iter_time;
    iter_time.reserve(report.iterations.size());
    for (const CausalIteration& it : report.iterations) {
        const Tick window = it.end - it.start;
        const Tick rec = recorded.count(it.iter) ? recorded[it.iter] : 0;
        const Tick pred =
            predicted.count(it.iter) ? predicted[it.iter] : 0;
        const Tick residual = window > rec ? window - rec : 0;
        iter_time.push_back(pred + residual);
    }

    // Extrapolation arithmetic copied from Runner::run verbatim.
    const std::size_t n_sim = iter_time.size();
    Tick total_time = iter_time.empty() ? 0 : iter_time.front();
    if (n_sim > 1) {
        Tick steady_sum = 0;
        for (std::size_t i = 1; i < n_sim; ++i)
            steady_sum += iter_time[i];
        const double steady_count = static_cast<double>(n_sim - 1);
        const double remaining = static_cast<double>(
            report.model.effectiveIterations - 1);
        total_time += static_cast<Tick>(
            static_cast<double>(steady_sum) / steady_count * remaining);
    }
    return total_time;
}

} // namespace

WhatIfPrediction
predictWhatIf(const CausalReport& report, const WhatIfSpec& spec)
{
    WhatIfPrediction out;
    out.spec = spec;
    out.baseTime = predictTotal(report, WhatIfSpec{});
    out.predictedTime = predictTotal(report, spec);
    out.speedup = out.baseTime == 0 || out.predictedTime == 0
                      ? 1.0
                      : static_cast<double>(out.baseTime) /
                            static_cast<double>(out.predictedTime);
    return out;
}

void
applyWhatIf(RunConfig& config, const WhatIfSpec& spec)
{
    config.system.linkBandwidthScale *= spec.linkBw;
    config.system.gps.wqDrainScale *= spec.rwqDrain;
}

WhatIfValidation
validateWhatIf(const std::string& workload_name, const RunConfig& base,
               const WhatIfSpec& spec)
{
    RunConfig traced = base;
    traced.obs.causal = true;
    const RunResult base_result = runWorkload(workload_name, traced);
    gps_assert(base_result.obs != nullptr && base_result.obs->hasCausal,
               "what-if base run produced no causal graph");

    WhatIfValidation out;
    out.traced = base_result.obs->causal;
    out.prediction = predictWhatIf(base_result.obs->causal, spec);
    if (out.prediction.baseTime != base_result.totalTime)
        gps_warn("causal replay covers ", out.prediction.baseTime,
                 " of ", base_result.totalTime,
                 " recorded ticks (phases dropped past the cap?); "
                 "predictions are partial");

    RunConfig scaled = base;
    scaled.obs = ObsConfig{};
    applyWhatIf(scaled, spec);
    const RunResult actual = runWorkload(workload_name, scaled);
    out.actualTime = actual.totalTime;
    out.actualSpeedup =
        actual.totalTime == 0
            ? 1.0
            : static_cast<double>(out.prediction.baseTime) /
                  static_cast<double>(actual.totalTime);
    out.errorPct =
        actual.totalTime == 0
            ? 0.0
            : std::fabs(static_cast<double>(out.prediction.predictedTime) -
                        static_cast<double>(actual.totalTime)) /
                  static_cast<double>(actual.totalTime) * 100.0;
    return out;
}

} // namespace gps
