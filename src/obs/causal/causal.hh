/**
 * @file
 * Causal dependency recorder: the raw material for critical-path
 * analysis and what-if speedup prediction.
 *
 * The runner mirrors every input of its phase-timing formula into a
 * bounded program-activity graph: per-kernel service demands (with the
 * remote round-trip *batch counts* rather than their tick products, so
 * a predictor can re-derive latency terms under a different link), the
 * post-reroute wire bytes behind every link-time term, and the fixed
 * serialized overheads. Dependency edges observed below the runner
 * (link transfer -> RWQ insert -> drain, migration -> stall,
 * fault -> reroute) arrive through noteDep-style hooks threaded through
 * the write queues, interconnect, driver and fault engine; the event
 * queue's observer feeds completion -> barrier edges by event name.
 *
 * Everything here is plain data guarded by null attach pointers: with
 * causal tracing disabled no recorder exists and the simulation is
 * byte-identical to a build without this file.
 */

#ifndef GPS_OBS_CAUSAL_CAUSAL_HH
#define GPS_OBS_CAUSAL_CAUSAL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** Timing-model constants the predictor needs to replay the graph. */
struct CausalModel
{
    /** Link bandwidth in effect during the run (post scaling). */
    double linkBandwidth = 0.0;
    bool linkInfinite = false;
    Tick linkLatency = 0;
    std::uint32_t headerBytes = 0;
    std::uint32_t cacheLineBytes = 0;
    Tick kernelLaunchOverhead = 0;

    /** RWQ drain-stall divisor in effect during the run. */
    double wqDrainScale = 1.0;

    std::uint64_t numGpus = 0;

    /** Full run length the recorded window extrapolates to. */
    std::uint64_t effectiveIterations = 1;
};

/** One kernel's contribution to a phase (timing-formula inputs). */
struct CausalKernel
{
    std::uint32_t gpu = 0;

    // Overlappable core bounds (compose as a max, link-independent).
    Tick tCompute = 0;
    Tick tL2 = 0;
    Tick tDram = 0;
    Tick tWalks = 0;

    /** Remote load/atomic round-trip batch counts (ceil'd doubles). */
    double batchesLoads = 0.0;
    double batchesAtomics = 0.0;

    // Serialized terms. tWqStall is at the recorded wqDrainScale.
    Tick tFaults = 0;
    Tick tShootdowns = 0;
    Tick tWqStall = 0;

    /** Post-reroute wire bytes behind this GPU's link-time terms. */
    std::uint64_t egressBytes = 0;
    std::uint64_t ingressBytes = 0;

    /** Recorded max(kernel, egress, ingress) for this GPU. */
    Tick gpuTime = 0;
};

/** One recorded phase: every input of the phase-time formula. */
struct CausalPhase
{
    std::string name;
    std::uint64_t iter = 0;
    Tick start = 0;
    Tick prefetchTime = 0;
    Tick barrierOverhead = 0;
    Tick barrierTime = 0; ///< busiest barrier link + overhead
    Tick phaseTime = 0;   ///< prefetch + slowest + barrier

    std::vector<CausalKernel> kernels;

    /** Post-reroute per-GPU barrier wire bytes. */
    std::vector<std::uint64_t> barrierEgress;
    std::vector<std::uint64_t> barrierIngress;
};

/** One simulated iteration's time window. */
struct CausalIteration
{
    std::uint64_t iter = 0;
    Tick start = 0;
    Tick end = 0;
};

/** Dependency-edge classes observed below the runner. */
enum class CausalEdge : std::uint8_t {
    KernelToPhase,      ///< kernel completion -> phase barrier
    LinkToRwqInsert,    ///< link transfer feeding an RWQ insert
    RwqInsertToDrain,   ///< RWQ insert -> drain toward the interconnect
    RwqSaturationStall, ///< saturated drain stalling the producing SM
    MigrationToStall,   ///< subscription migration -> access stall
    FaultToReroute,     ///< injected fault -> rerouted traffic
    Count,
};

std::string to_string(CausalEdge edge);

/** The per-run activity graph (plain data, rides on the ObsReport). */
struct CausalReport
{
    CausalModel model;
    std::vector<CausalPhase> phases;
    std::vector<CausalIteration> iterations;
    std::array<std::uint64_t,
               static_cast<std::size_t>(CausalEdge::Count)>
        edges{};
    std::uint64_t droppedPhases = 0;
};

/** Live per-run recorder (attach pointers guard every hook). */
class CausalRecorder
{
  public:
    explicit CausalRecorder(std::size_t max_phases = 1 << 16)
        : maxPhases_(max_phases)
    {}

    void setModel(const CausalModel& model) { data_.model = model; }
    void
    setEffectiveIterations(std::uint64_t n)
    {
        data_.model.effectiveIterations = n;
    }

    /** Runner hook: a new simulated iteration starts at @p start. */
    void
    beginIteration(std::uint64_t iter, Tick start)
    {
        openIter_ = iter;
        openStart_ = start;
        openValid_ = true;
    }

    /** Runner hook: the open iteration ended at @p end. */
    void
    endIteration(Tick end)
    {
        if (!openValid_)
            return;
        data_.iterations.push_back({openIter_, openStart_, end});
        openValid_ = false;
    }

    /** Iteration the phase being recorded belongs to. */
    std::uint64_t currentIteration() const { return openIter_; }

    /** Runner hook: one fully-timed phase (bounded; drops count). */
    void
    addPhase(CausalPhase phase)
    {
        if (data_.phases.size() >= maxPhases_) {
            ++data_.droppedPhases;
            return;
        }
        data_.phases.push_back(std::move(phase));
    }

    /** noteDep hook: one observed dependency edge of class @p kind. */
    void
    noteDep(CausalEdge kind, std::uint64_t n = 1)
    {
        data_.edges[static_cast<std::size_t>(kind)] += n;
    }

    /** Event-queue observer feed: completion/barrier edge by name. */
    void
    onEvent(const std::string& name)
    {
        if (name.find(".kernel_done.") != std::string::npos)
            noteDep(CausalEdge::KernelToPhase);
    }

    const CausalReport& data() const { return data_; }
    std::uint64_t dropped() const { return data_.droppedPhases; }

    /** Distill into the plain-data report (copies; recorder lives on). */
    CausalReport finalize() const { return data_; }

    /** Serialize the full graph (snapshot/restore support). */
    void saveState(snapshot::Serializer& out) const;
    void restoreState(snapshot::Deserializer& in);

  private:
    std::size_t maxPhases_;
    CausalReport data_;
    std::uint64_t openIter_ = 0;
    Tick openStart_ = 0;
    bool openValid_ = false;
};

/** One attributed span of the extracted critical path. */
struct CriticalSegment
{
    std::string phase;
    std::uint64_t iter = 0;

    /** Attribution lane ("compute", "link_egress", "rwq_stall", ...). */
    std::string lane;

    /** GPU the span executed on; -1 for system-level spans. */
    int gpu = -1;

    Tick start = 0;
    Tick ticks = 0;
};

/** Critical path plus per-lane attribution of the simulated window. */
struct CriticalPathReport
{
    std::vector<CriticalSegment> segments;

    /** lane -> simulated ticks on the critical path. */
    std::vector<std::pair<std::string, Tick>> laneTicks;

    /** Σ segment ticks == simulated window end - start. */
    Tick totalTicks = 0;
};

/**
 * Walk the recorded phases and attribute every tick of the simulated
 * window to the dependency chain that bounded it: per phase the
 * prefetch span, the slowest GPU's binding term (kernel bound broken
 * down into its additive pieces, or the link direction that outran the
 * kernel), and the barrier; inter-phase residual goes to "other".
 */
CriticalPathReport analyzeCriticalPath(const CausalReport& report);

/** Serialize graph + critical path as one JSON document. */
std::string causalToJson(const CausalReport& report);

} // namespace gps

#endif // GPS_OBS_CAUSAL_CAUSAL_HH
