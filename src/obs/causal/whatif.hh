/**
 * @file
 * What-if speedup prediction over the causal activity graph.
 *
 * The predictor replays the runner's phase-timing arithmetic over the
 * recorded CausalReport with scaled resource parameters: link-time
 * terms are *recomputed* from the recorded wire-byte counts at the
 * scaled bandwidth (transferTicks rounds up, so scaling recorded times
 * would drift), remote round-trips are rebuilt from the recorded batch
 * counts, and RWQ drain stalls divide by the drain-speed factor. At
 * unit factors the prediction reproduces the recorded end-to-end time
 * exactly, tick for tick.
 *
 * validateWhatIf closes the loop: it runs the workload once with
 * causal tracing on, predicts, then re-runs for real with the scaled
 * configuration and reports the prediction error.
 */

#ifndef GPS_OBS_CAUSAL_WHATIF_HH
#define GPS_OBS_CAUSAL_WHATIF_HH

#include <string>

#include "api/runner.hh"
#include "obs/causal/causal.hh"

namespace gps
{

/** Resource scalings to hypothesize, relative to the recorded run. */
struct WhatIfSpec
{
    /** Link-bandwidth multiplier (2.0 = links twice as fast). */
    double linkBw = 1.0;

    /** RWQ drain-speed multiplier (halves saturation stall charges). */
    double rwqDrain = 1.0;

    bool identity() const { return linkBw == 1.0 && rwqDrain == 1.0; }
};

/**
 * Parse "link_bw=2x,rwq_drain=1.5" (the 'x' suffix is optional).
 * @return false with @p error set on unknown keys or bad factors.
 */
bool parseWhatIfSpec(const std::string& text, WhatIfSpec& out,
                     std::string& error);

std::string to_string(const WhatIfSpec& spec);

/** Prediction from one recorded graph. */
struct WhatIfPrediction
{
    WhatIfSpec spec;

    /** Recorded end-to-end time replayed at unit factors. */
    Tick baseTime = 0;

    /** Predicted end-to-end time under the spec's factors. */
    Tick predictedTime = 0;

    /** baseTime / predictedTime (1.0 when either is zero). */
    double speedup = 1.0;
};

/** Replay the graph under @p spec (pure function of the report). */
WhatIfPrediction predictWhatIf(const CausalReport& report,
                               const WhatIfSpec& spec);

/** Fold the spec's factors into a run configuration for a real run. */
void applyWhatIf(RunConfig& config, const WhatIfSpec& spec);

/** Prediction versus an actual re-run. */
struct WhatIfValidation
{
    WhatIfPrediction prediction;

    /** Graph recorded by the traced base run (for export/inspection). */
    CausalReport traced;

    /** Measured end-to-end time of the scaled re-run. */
    Tick actualTime = 0;

    /** baseTime / actualTime. */
    double actualSpeedup = 1.0;

    /** |predicted - actual| / actual, in percent. */
    double errorPct = 0.0;
};

/**
 * Run @p workload_name under @p base with causal tracing enabled,
 * predict the effect of @p spec, then re-run with the scaled
 * configuration and measure the prediction error.
 */
WhatIfValidation validateWhatIf(const std::string& workload_name,
                                const RunConfig& base,
                                const WhatIfSpec& spec);

} // namespace gps

#endif // GPS_OBS_CAUSAL_WHATIF_HH
