#include "obs/causal/causal.hh"

#include <algorithm>
#include <map>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace gps
{

std::string
to_string(CausalEdge edge)
{
    switch (edge) {
      case CausalEdge::KernelToPhase: return "kernel_to_phase";
      case CausalEdge::LinkToRwqInsert: return "link_to_rwq_insert";
      case CausalEdge::RwqInsertToDrain: return "rwq_insert_to_drain";
      case CausalEdge::RwqSaturationStall:
        return "rwq_saturation_stall";
      case CausalEdge::MigrationToStall: return "migration_to_stall";
      case CausalEdge::FaultToReroute: return "fault_to_reroute";
      case CausalEdge::Count: break;
    }
    return "unknown";
}

void
CausalRecorder::saveState(snapshot::Serializer& out) const
{
    out.section("causal");
    out.f64(data_.model.linkBandwidth);
    out.b(data_.model.linkInfinite);
    out.u64(data_.model.linkLatency);
    out.u32(data_.model.headerBytes);
    out.u32(data_.model.cacheLineBytes);
    out.u64(data_.model.kernelLaunchOverhead);
    out.f64(data_.model.wqDrainScale);
    out.u64(data_.model.numGpus);
    out.u64(data_.model.effectiveIterations);

    out.u64(data_.phases.size());
    for (const CausalPhase& ph : data_.phases) {
        out.str(ph.name);
        out.u64(ph.iter);
        out.u64(ph.start);
        out.u64(ph.prefetchTime);
        out.u64(ph.barrierOverhead);
        out.u64(ph.barrierTime);
        out.u64(ph.phaseTime);
        out.u64(ph.kernels.size());
        for (const CausalKernel& k : ph.kernels) {
            out.u32(k.gpu);
            out.u64(k.tCompute);
            out.u64(k.tL2);
            out.u64(k.tDram);
            out.u64(k.tWalks);
            out.f64(k.batchesLoads);
            out.f64(k.batchesAtomics);
            out.u64(k.tFaults);
            out.u64(k.tShootdowns);
            out.u64(k.tWqStall);
            out.u64(k.egressBytes);
            out.u64(k.ingressBytes);
            out.u64(k.gpuTime);
        }
        out.u64(ph.barrierEgress.size());
        for (const std::uint64_t b : ph.barrierEgress)
            out.u64(b);
        out.u64(ph.barrierIngress.size());
        for (const std::uint64_t b : ph.barrierIngress)
            out.u64(b);
    }

    out.u64(data_.iterations.size());
    for (const CausalIteration& it : data_.iterations) {
        out.u64(it.iter);
        out.u64(it.start);
        out.u64(it.end);
    }
    for (const std::uint64_t e : data_.edges)
        out.u64(e);
    out.u64(data_.droppedPhases);
    out.u64(openIter_);
    out.u64(openStart_);
    out.b(openValid_);
}

void
CausalRecorder::restoreState(snapshot::Deserializer& in)
{
    in.section("causal");
    data_ = CausalReport{};
    data_.model.linkBandwidth = in.f64();
    data_.model.linkInfinite = in.b();
    data_.model.linkLatency = in.u64();
    data_.model.headerBytes = in.u32();
    data_.model.cacheLineBytes = in.u32();
    data_.model.kernelLaunchOverhead = in.u64();
    data_.model.wqDrainScale = in.f64();
    data_.model.numGpus = in.u64();
    data_.model.effectiveIterations = in.u64();

    const std::uint64_t phases = in.count(1ULL << 32);
    data_.phases.reserve(phases);
    for (std::uint64_t p = 0; p < phases; ++p) {
        CausalPhase ph;
        ph.name = in.str();
        ph.iter = in.u64();
        ph.start = in.u64();
        ph.prefetchTime = in.u64();
        ph.barrierOverhead = in.u64();
        ph.barrierTime = in.u64();
        ph.phaseTime = in.u64();
        const std::uint64_t kernels = in.count(1ULL << 24);
        ph.kernels.reserve(kernels);
        for (std::uint64_t i = 0; i < kernels; ++i) {
            CausalKernel k;
            k.gpu = in.u32();
            k.tCompute = in.u64();
            k.tL2 = in.u64();
            k.tDram = in.u64();
            k.tWalks = in.u64();
            k.batchesLoads = in.f64();
            k.batchesAtomics = in.f64();
            k.tFaults = in.u64();
            k.tShootdowns = in.u64();
            k.tWqStall = in.u64();
            k.egressBytes = in.u64();
            k.ingressBytes = in.u64();
            k.gpuTime = in.u64();
            ph.kernels.push_back(k);
        }
        std::uint64_t n = in.count(1ULL << 24);
        ph.barrierEgress.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
            ph.barrierEgress.push_back(in.u64());
        n = in.count(1ULL << 24);
        ph.barrierIngress.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
            ph.barrierIngress.push_back(in.u64());
        data_.phases.push_back(std::move(ph));
    }

    const std::uint64_t iters = in.count(1ULL << 32);
    data_.iterations.reserve(iters);
    for (std::uint64_t i = 0; i < iters; ++i) {
        CausalIteration it;
        it.iter = in.u64();
        it.start = in.u64();
        it.end = in.u64();
        data_.iterations.push_back(it);
    }
    for (std::uint64_t& e : data_.edges)
        e = in.u64();
    data_.droppedPhases = in.u64();
    openIter_ = in.u64();
    openStart_ = in.u64();
    openValid_ = in.b();
}

namespace
{

Tick
modelLinkTime(const CausalModel& m, std::uint64_t bytes)
{
    if (m.linkInfinite)
        return 0;
    return transferTicks(bytes, m.linkBandwidth);
}

/** Mirror of GpuModel::kernelTimeBreakdown's remote-stall term. */
Tick
modelRemoteTime(const CausalModel& m, const CausalKernel& k)
{
    if (m.linkInfinite)
        return 0;
    const Tick line_time =
        modelLinkTime(m, m.cacheLineBytes + m.headerBytes);
    const Tick round_trip = 2 * m.linkLatency + line_time;
    Tick t = 0;
    if (k.batchesLoads > 0.0)
        t += static_cast<Tick>(k.batchesLoads *
                               static_cast<double>(round_trip));
    if (k.batchesAtomics > 0.0)
        t += static_cast<Tick>(k.batchesAtomics *
                               static_cast<double>(round_trip));
    return t;
}

const char*
coreLane(const CausalKernel& k)
{
    // Mirror std::max({tCompute, tL2, tDram, tWalks}): first largest.
    const Tick m = std::max({k.tCompute, k.tL2, k.tDram, k.tWalks});
    if (k.tCompute == m)
        return "compute";
    if (k.tL2 == m)
        return "l2";
    if (k.tDram == m)
        return "dram";
    return "page_walk";
}

} // namespace

CriticalPathReport
analyzeCriticalPath(const CausalReport& report)
{
    CriticalPathReport out;
    const CausalModel& m = report.model;
    std::map<std::string, Tick> lanes;

    auto emit = [&](const std::string& phase, std::uint64_t iter,
                    const char* lane, int gpu, Tick start, Tick ticks) {
        if (ticks == 0)
            return;
        out.segments.push_back({phase, iter, lane, gpu, start, ticks});
        lanes[lane] += ticks;
        out.totalTicks += ticks;
    };

    // Per-iteration sum of recorded phase times, to expose any residual
    // (time the event queue spent outside phase execution).
    std::map<std::uint64_t, Tick> phase_sum;

    for (const CausalPhase& ph : report.phases) {
        phase_sum[ph.iter] += ph.phaseTime;
        Tick cursor = ph.start;
        emit(ph.name, ph.iter, "host_prefetch", -1, cursor,
             ph.prefetchTime);
        cursor += ph.prefetchTime;

        const Tick slowest =
            ph.phaseTime - ph.prefetchTime - ph.barrierTime;
        if (ph.kernels.empty()) {
            emit(ph.name, ph.iter, "other", -1, cursor, slowest);
        } else {
            // Mirror the runner: first GPU reaching the phase maximum.
            const CausalKernel* winner = &ph.kernels.front();
            for (const CausalKernel& k : ph.kernels)
                if (k.gpuTime > winner->gpuTime)
                    winner = &k;
            const CausalKernel& k = *winner;
            const int gpu = static_cast<int>(k.gpu);
            const Tick remote = modelRemoteTime(m, k);
            const Tick core =
                std::max({k.tCompute, k.tL2, k.tDram, k.tWalks});
            const Tick kernel_time = core + remote + k.tFaults +
                                     k.tShootdowns + k.tWqStall +
                                     m.kernelLaunchOverhead;
            const Tick egress = modelLinkTime(m, k.egressBytes);
            const Tick ingress = modelLinkTime(m, k.ingressBytes);
            if (kernel_time >= egress && kernel_time >= ingress) {
                emit(ph.name, ph.iter, coreLane(k), gpu, cursor, core);
                cursor += core;
                emit(ph.name, ph.iter, "remote_round_trip", gpu, cursor,
                     remote);
                cursor += remote;
                emit(ph.name, ph.iter, "fault_stall", gpu, cursor,
                     k.tFaults);
                cursor += k.tFaults;
                emit(ph.name, ph.iter, "tlb_shootdown", gpu, cursor,
                     k.tShootdowns);
                cursor += k.tShootdowns;
                emit(ph.name, ph.iter, "rwq_stall", gpu, cursor,
                     k.tWqStall);
                cursor += k.tWqStall;
                emit(ph.name, ph.iter, "kernel_launch", gpu, cursor,
                     m.kernelLaunchOverhead);
                cursor += m.kernelLaunchOverhead;
                // Idle gap behind a slower sibling GPU (winner per
                // recorded gpuTime, which may exceed this kernel's own
                // bound under fault-inflated recorded times).
                emit(ph.name, ph.iter, "other", gpu, cursor,
                     slowest > kernel_time ? slowest - kernel_time : 0);
            } else if (egress >= ingress) {
                emit(ph.name, ph.iter, "link_egress", gpu, cursor,
                     egress);
                emit(ph.name, ph.iter, "other", gpu, cursor + egress,
                     slowest > egress ? slowest - egress : 0);
            } else {
                emit(ph.name, ph.iter, "link_ingress", gpu, cursor,
                     ingress);
                emit(ph.name, ph.iter, "other", gpu, cursor + ingress,
                     slowest > ingress ? slowest - ingress : 0);
            }
            cursor = ph.start + ph.prefetchTime + slowest;
        }

        const Tick wire = ph.barrierTime - ph.barrierOverhead;
        emit(ph.name, ph.iter, "barrier_wire", -1, cursor, wire);
        emit(ph.name, ph.iter, "barrier_overhead", -1, cursor + wire,
             ph.barrierOverhead);
    }

    // Residual inside each simulated iteration window (normally zero).
    for (const CausalIteration& it : report.iterations) {
        const Tick window = it.end - it.start;
        const auto found = phase_sum.find(it.iter);
        const Tick covered =
            found == phase_sum.end() ? 0 : found->second;
        if (window > covered)
            emit("iteration", it.iter, "other", -1, it.start + covered,
                 window - covered);
    }

    out.laneTicks.assign(lanes.begin(), lanes.end());
    std::sort(out.laneTicks.begin(), out.laneTicks.end(),
              [](const auto& a, const auto& b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    return out;
}

std::string
causalToJson(const CausalReport& report)
{
    const CriticalPathReport path = analyzeCriticalPath(report);
    JsonWriter w;
    w.beginObject();
    w.field("schema", std::uint64_t(1));

    w.key("model").beginObject();
    w.field("link_bandwidth", report.model.linkBandwidth);
    w.field("link_infinite", report.model.linkInfinite);
    w.field("link_latency", report.model.linkLatency);
    w.field("header_bytes",
            static_cast<std::uint64_t>(report.model.headerBytes));
    w.field("cache_line_bytes",
            static_cast<std::uint64_t>(report.model.cacheLineBytes));
    w.field("kernel_launch_overhead",
            report.model.kernelLaunchOverhead);
    w.field("wq_drain_scale", report.model.wqDrainScale);
    w.field("num_gpus", report.model.numGpus);
    w.field("effective_iterations", report.model.effectiveIterations);
    w.endObject();

    w.key("edges").beginObject();
    for (std::size_t e = 0;
         e < static_cast<std::size_t>(CausalEdge::Count); ++e)
        w.field(to_string(static_cast<CausalEdge>(e)),
                report.edges[e]);
    w.endObject();
    w.field("dropped_phases", report.droppedPhases);

    w.key("phases").beginArray();
    for (const CausalPhase& ph : report.phases) {
        w.beginObject();
        w.field("name", ph.name);
        w.field("iter", ph.iter);
        w.field("start", ph.start);
        w.field("prefetch_time", ph.prefetchTime);
        w.field("barrier_overhead", ph.barrierOverhead);
        w.field("barrier_time", ph.barrierTime);
        w.field("phase_time", ph.phaseTime);
        w.key("kernels").beginArray();
        for (const CausalKernel& k : ph.kernels) {
            w.beginObject();
            w.field("gpu", static_cast<std::uint64_t>(k.gpu));
            w.field("t_compute", k.tCompute);
            w.field("t_l2", k.tL2);
            w.field("t_dram", k.tDram);
            w.field("t_walks", k.tWalks);
            w.field("batches_loads", k.batchesLoads);
            w.field("batches_atomics", k.batchesAtomics);
            w.field("t_faults", k.tFaults);
            w.field("t_shootdowns", k.tShootdowns);
            w.field("t_wq_stall", k.tWqStall);
            w.field("egress_bytes", k.egressBytes);
            w.field("ingress_bytes", k.ingressBytes);
            w.field("gpu_time", k.gpuTime);
            w.endObject();
        }
        w.endArray();
        w.key("barrier_egress").beginArray();
        for (const std::uint64_t b : ph.barrierEgress)
            w.value(b);
        w.endArray();
        w.key("barrier_ingress").beginArray();
        for (const std::uint64_t b : ph.barrierIngress)
            w.value(b);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("iterations").beginArray();
    for (const CausalIteration& it : report.iterations) {
        w.beginObject();
        w.field("iter", it.iter);
        w.field("start", it.start);
        w.field("end", it.end);
        w.endObject();
    }
    w.endArray();

    w.key("critical_path").beginObject();
    w.field("total_ticks", path.totalTicks);
    w.key("lanes").beginArray();
    for (const auto& [lane, ticks] : path.laneTicks) {
        w.beginObject();
        w.field("lane", lane);
        w.field("ticks", ticks);
        w.endObject();
    }
    w.endArray();
    w.key("segments").beginArray();
    for (const CriticalSegment& seg : path.segments) {
        w.beginObject();
        w.field("phase", seg.phase);
        w.field("iter", seg.iter);
        w.field("lane", seg.lane);
        w.field("gpu", static_cast<double>(seg.gpu));
        w.field("start", seg.start);
        w.field("ticks", seg.ticks);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
    return w.str();
}

} // namespace gps
