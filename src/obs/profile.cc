#include "obs/profile.hh"

#include <algorithm>

#include "common/json.hh"
#include "common/units.hh"

namespace gps
{

const std::array<const char*, BottleneckProfile::numComponents>&
BottleneckProfile::componentNames()
{
    static const std::array<const char*, numComponents> names = {
        "compute",    "l2",     "dram",       "page_walks", "egress",
        "ingress",    "remote", "faults",     "shootdowns", "wq_stall",
    };
    return names;
}

std::array<Tick, BottleneckProfile::numComponents>
BottleneckProfile::components() const
{
    return {tCompute, tL2,      tDram,   tWalks,      tEgress,
            tIngress, tRemote,  tFaults, tShootdowns, tWqStall};
}

std::array<double, BottleneckProfile::numComponents>
BottleneckProfile::shares() const
{
    const auto terms = components();
    double sum = 0.0;
    for (const Tick t : terms)
        sum += static_cast<double>(t);
    std::array<double, numComponents> out{};
    if (sum <= 0.0) {
        out[0] = 1.0; // idle kernel: attribute everything to compute
        return out;
    }
    for (std::size_t i = 0; i < numComponents; ++i)
        out[i] = static_cast<double>(terms[i]) / sum;
    return out;
}

const char*
BottleneckProfile::limiter() const
{
    const auto terms = components();
    std::size_t best = 0;
    for (std::size_t i = 1; i < numComponents; ++i)
        if (terms[i] > terms[best])
            best = i;
    return componentNames()[best];
}

double
BottleneckProfile::achievedDramBps() const
{
    const double seconds = ticksToSeconds(total);
    return seconds > 0.0 ? static_cast<double>(dramBytes) / seconds : 0.0;
}

double
BottleneckProfile::achievedLinkBps() const
{
    const double seconds = ticksToSeconds(total);
    return seconds > 0.0 ? static_cast<double>(egressBytes) / seconds
                         : 0.0;
}

ProfileCollector::ProfileCollector(std::uint64_t pages_per_bucket,
                                   std::size_t top_n)
    : pagesPerBucket_(std::max<std::uint64_t>(pages_per_bucket, 1)),
      topN_(top_n)
{
}

void
ProfileCollector::addKernel(BottleneckProfile profile)
{
    kernels_.push_back(std::move(profile));
}

ProfileReport
ProfileCollector::finalize() const
{
    ProfileReport report;
    report.kernels = kernels_;
    report.pagesPerBucket = pagesPerBucket_;
    report.totalHotBuckets = heat_.size();

    // Top-N buckets by remote-write traffic; ties broken by forward
    // count, then ascending VPN for determinism.
    std::vector<std::pair<std::uint64_t, PageHeat>> rows(heat_.begin(),
                                                         heat_.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        if (a.second.rwqBytes != b.second.rwqBytes)
            return a.second.rwqBytes > b.second.rwqBytes;
        if (a.second.remoteWritesForwarded !=
            b.second.remoteWritesForwarded)
            return a.second.remoteWritesForwarded >
                   b.second.remoteWritesForwarded;
        return a.first < b.first;
    });
    if (rows.size() > topN_)
        rows.resize(topN_);
    for (const auto& [bucket, heat] : rows) {
        HotPage page;
        page.firstVpn = bucket * pagesPerBucket_;
        page.pages = pagesPerBucket_;
        if (regionResolver_)
            page.region = regionResolver_(page.firstVpn);
        page.heat = heat;
        report.hotPages.push_back(std::move(page));
    }

    const auto named = [](const char* name, const char* unit,
                          const LogHistogram& hist) {
        return NamedHistogram{name, unit, hist};
    };
    report.histograms.push_back(
        named("rwq_occupancy", "entries", rwqOccupancy_));
    report.histograms.push_back(
        named("rwq_drain_residency", "inserts", rwqDrainResidency_));
    report.histograms.push_back(named("link_busy", "ticks", linkBusy_));
    return report;
}

namespace
{

void
writeHistogram(JsonWriter& w, const NamedHistogram& h)
{
    w.beginObject();
    w.field("name", h.name);
    w.field("unit", h.unit);
    w.field("count", h.hist.count());
    w.field("sum", h.hist.sum());
    w.field("min", h.hist.min());
    w.field("max", h.hist.max());
    w.field("mean", h.hist.mean());
    w.field("p50", h.hist.percentile(0.50));
    w.field("p90", h.hist.percentile(0.90));
    w.field("p99", h.hist.percentile(0.99));
    // Sparse bucket dump: [low, high, count] per non-empty bucket.
    w.key("buckets").beginArray();
    for (std::size_t b = 0; b < LogHistogram::numBuckets; ++b) {
        const std::uint64_t n = h.hist.buckets()[b];
        if (n == 0)
            continue;
        w.beginArray();
        w.value(LogHistogram::bucketLow(b));
        w.value(LogHistogram::bucketHigh(b));
        w.value(n);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

} // namespace

std::string
profileToJson(const ProfileReport& report)
{
    JsonWriter w;
    w.beginObject();

    w.key("kernels").beginArray();
    for (const BottleneckProfile& k : report.kernels) {
        const auto names = BottleneckProfile::componentNames();
        const auto terms = k.components();
        const auto shares = k.shares();
        w.beginObject();
        w.field("phase", k.phase);
        w.field("gpu", static_cast<std::uint64_t>(k.gpu));
        w.field("total_ticks", static_cast<std::uint64_t>(k.total));
        w.field("limiter", k.limiter());
        w.key("ticks").beginObject();
        for (std::size_t i = 0; i < names.size(); ++i)
            w.field(names[i], static_cast<std::uint64_t>(terms[i]));
        w.endObject();
        w.key("shares").beginObject();
        for (std::size_t i = 0; i < names.size(); ++i)
            w.field(names[i], shares[i]);
        w.endObject();
        w.key("bandwidth").beginObject();
        w.field("dram_bytes", k.dramBytes);
        w.field("egress_bytes", k.egressBytes);
        w.field("ingress_bytes", k.ingressBytes);
        w.field("achieved_dram_bps", k.achievedDramBps());
        w.field("peak_dram_bps", k.peakDramBps);
        w.field("achieved_link_bps", k.achievedLinkBps());
        w.field("peak_link_bps", k.peakLinkBps);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("hot_pages").beginObject();
    w.field("pages_per_bucket", report.pagesPerBucket);
    w.field("total_buckets", report.totalHotBuckets);
    w.key("top").beginArray();
    for (const HotPage& page : report.hotPages) {
        w.beginObject();
        w.field("first_vpn", static_cast<std::uint64_t>(page.firstVpn));
        w.field("pages", page.pages);
        w.field("region", page.region);
        w.field("remote_writes_forwarded",
                page.heat.remoteWritesForwarded);
        w.field("rwq_bytes", page.heat.rwqBytes);
        w.field("sub_flips", page.heat.subFlips);
        w.field("migrations", page.heat.migrations);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("histograms").beginArray();
    for (const NamedHistogram& h : report.histograms)
        writeHistogram(w, h);
    w.endArray();

    w.endObject();
    return w.str();
}

} // namespace gps
