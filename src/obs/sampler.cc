#include "obs/sampler.hh"

namespace gps
{

Sampler::Sampler(const MetricRegistry& registry, Tick every)
    : registry_(&registry), every_(every),
      columns_(registry.size())
{}

void
Sampler::start(Tick now)
{
    if (!ticks_.empty())
        return;
    record(now);
}

void
Sampler::poll(Tick now)
{
    if (every_ == 0)
        return;
    if (!ticks_.empty() && now < ticks_.back() + every_)
        return;
    record(now);
}

void
Sampler::finish(Tick now)
{
    if (!ticks_.empty() && ticks_.back() == now)
        return;
    record(now);
}

void
Sampler::record(Tick now)
{
    ticks_.push_back(now);
    const std::vector<MetricDef>& defs = registry_->metrics();
    for (std::size_t m = 0; m < defs.size(); ++m)
        columns_[m].push_back(defs[m].read());
}

} // namespace gps
