#include "obs/observability.hh"

#include "common/json.hh"

namespace gps
{

Observability::Observability(const ObsConfig& config)
    : config_(config)
{
    if (config_.timeline)
        recorder_ =
            std::make_unique<TimelineRecorder>(config_.maxTimelineEvents);
    if (config_.profile)
        profile_ = std::make_unique<ProfileCollector>(
            config_.profilePagesPerBucket, config_.profileTopN);
}

void
Observability::startSampling(Tick start)
{
    if (!config_.metrics || sampler_)
        return;
    sampler_ = std::make_unique<Sampler>(registry_, config_.sampleEvery);
    sampler_->start(start);
}

ObsReport
Observability::finalize(Tick end)
{
    ObsReport report;
    if (config_.metrics) {
        report.hasMetrics = true;
        if (sampler_ == nullptr)
            startSampling(end);
        sampler_->finish(end);
        report.finals = registry_.snapshot();
        report.sampleTicks = sampler_->sampleTicks();
        report.seriesColumns = sampler_->columns();
    }
    if (recorder_) {
        report.hasTimeline = true;
        report.timeline = recorder_->events();
        report.timelineTracks = recorder_->trackNames();
        report.timelineDropped = recorder_->dropped();
    }
    if (profile_) {
        report.hasProfile = true;
        report.profile = profile_->finalize();
    }
    return report;
}

std::string
metricsToJson(const ObsReport& report)
{
    JsonWriter w;
    w.beginObject();
    w.key("metrics").beginArray();
    for (const MetricValue& m : report.finals) {
        w.beginObject();
        w.field("name", m.name);
        w.field("kind", to_string(m.kind));
        w.field("unit", m.unit);
        w.field("value", m.value);
        w.endObject();
    }
    w.endArray();
    w.key("samples").beginObject();
    w.key("ticks").beginArray();
    for (const Tick t : report.sampleTicks)
        w.value(static_cast<std::uint64_t>(t));
    w.endArray();
    w.key("series").beginObject();
    for (std::size_t m = 0; m < report.seriesColumns.size(); ++m) {
        w.key(report.finals[m].name).beginArray();
        for (const double v : report.seriesColumns[m])
            w.value(v);
        w.endArray();
    }
    w.endObject();
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
timelineToJson(const ObsReport& report)
{
    return timelineToJson(report.timeline, report.timelineTracks,
                          report.timelineDropped);
}

std::string
profileToJson(const ObsReport& report)
{
    return profileToJson(report.profile);
}

} // namespace gps
