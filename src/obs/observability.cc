#include "obs/observability.hh"

#include "common/json.hh"

namespace gps
{

Observability::Observability(const ObsConfig& config)
    : config_(config)
{
    if (config_.timeline)
        recorder_ =
            std::make_unique<TimelineRecorder>(config_.maxTimelineEvents);
    if (config_.profile)
        profile_ = std::make_unique<ProfileCollector>(
            config_.profilePagesPerBucket, config_.profileTopN);
    if (config_.causal)
        causal_ =
            std::make_unique<CausalRecorder>(config_.maxCausalPhases);
}

void
Observability::startSampling(Tick start)
{
    if (!config_.metrics || sampler_)
        return;
    sampler_ = std::make_unique<Sampler>(registry_, config_.sampleEvery);
    sampler_->start(start);
}

namespace
{

/**
 * Draw one Perfetto flow arrow per recorded phase, from the completion
 * of the phase-time-defining kernel (the runner's first-argmax winner)
 * to the phase boundary on the system track.
 */
void
emitCriticalFlows(const CausalReport& causal, TimelineRecorder& recorder)
{
    std::uint64_t flow_id = 0;
    for (const CausalPhase& phase : causal.phases) {
        ++flow_id;
        if (phase.kernels.empty())
            continue;
        const CausalKernel* winner = &phase.kernels.front();
        for (const CausalKernel& k : phase.kernels)
            if (k.gpuTime > winner->gpuTime)
                winner = &k;
        const Tick done =
            phase.start + phase.prefetchTime + winner->gpuTime;
        recorder.flow(static_cast<int>(winner->gpu), "critical",
                      "causal", done, flow_id, true);
        recorder.flow(TimelineRecorder::systemTid, "critical", "causal",
                      phase.start + phase.phaseTime, flow_id, false);
    }
}

} // namespace

ObsReport
Observability::finalize(Tick end)
{
    ObsReport report;
    if (causal_ && recorder_)
        emitCriticalFlows(causal_->data(), *recorder_);
    if (config_.metrics) {
        report.hasMetrics = true;
        if (sampler_ == nullptr)
            startSampling(end);
        sampler_->finish(end);
        report.finals = registry_.snapshot();
        report.sampleTicks = sampler_->sampleTicks();
        report.seriesColumns = sampler_->columns();
    }
    if (recorder_) {
        report.hasTimeline = true;
        report.timeline = recorder_->events();
        report.timelineTracks = recorder_->trackNames();
        report.timelineDropped = recorder_->dropped();
    }
    if (profile_) {
        report.hasProfile = true;
        report.profile = profile_->finalize();
    }
    if (causal_) {
        report.hasCausal = true;
        report.causal = causal_->finalize();
    }
    return report;
}

void
Observability::saveState(snapshot::Serializer& out) const
{
    out.section("obs");
    out.b(sampler_ != nullptr);
    if (sampler_) {
        out.u64(sampler_->sampleTicks().size());
        for (const Tick t : sampler_->sampleTicks())
            out.u64(t);
        out.u64(sampler_->columns().size());
        for (const auto& column : sampler_->columns()) {
            out.u64(column.size());
            for (const double v : column)
                out.f64(v);
        }
    }
    out.b(recorder_ != nullptr);
    if (recorder_)
        recorder_->saveState(out);
    out.b(causal_ != nullptr);
    if (causal_)
        causal_->saveState(out);
}

void
Observability::restoreState(snapshot::Deserializer& in)
{
    in.section("obs");
    if (in.b()) {
        if (!config_.metrics)
            throw snapshot::SnapshotError(
                "snapshot carries metric samples but metrics "
                "collection is off");
        std::vector<Tick> ticks;
        const std::uint64_t n_ticks = in.count(1ULL << 28);
        ticks.reserve(n_ticks);
        for (std::uint64_t i = 0; i < n_ticks; ++i)
            ticks.push_back(in.u64());
        std::vector<std::vector<double>> columns;
        const std::uint64_t n_cols = in.count(1ULL << 20);
        columns.resize(n_cols);
        for (auto& column : columns) {
            const std::uint64_t n = in.count(1ULL << 28);
            column.reserve(n);
            for (std::uint64_t i = 0; i < n; ++i)
                column.push_back(in.f64());
        }
        if (n_cols != registry_.metrics().size())
            throw snapshot::SnapshotError(
                "snapshot metric series count " +
                std::to_string(n_cols) +
                " does not match the registry (" +
                std::to_string(registry_.metrics().size()) + ")");
        if (!sampler_)
            sampler_ =
                std::make_unique<Sampler>(registry_, config_.sampleEvery);
        sampler_->restore(std::move(ticks), std::move(columns));
    }
    if (in.b()) {
        if (!recorder_)
            throw snapshot::SnapshotError(
                "snapshot carries a timeline but timeline recording "
                "is off");
        recorder_->restoreState(in);
    }
    if (in.b()) {
        if (!causal_)
            throw snapshot::SnapshotError(
                "snapshot carries a causal graph but causal tracing "
                "is off");
        causal_->restoreState(in);
    }
}

std::string
metricsToJson(const ObsReport& report)
{
    JsonWriter w;
    w.beginObject();
    w.key("metrics").beginArray();
    for (const MetricValue& m : report.finals) {
        w.beginObject();
        w.field("name", m.name);
        w.field("kind", to_string(m.kind));
        w.field("unit", m.unit);
        w.field("value", m.value);
        w.endObject();
    }
    w.endArray();
    w.key("samples").beginObject();
    w.key("ticks").beginArray();
    for (const Tick t : report.sampleTicks)
        w.value(static_cast<std::uint64_t>(t));
    w.endArray();
    w.key("series").beginObject();
    for (std::size_t m = 0; m < report.seriesColumns.size(); ++m) {
        w.key(report.finals[m].name).beginArray();
        for (const double v : report.seriesColumns[m])
            w.value(v);
        w.endArray();
    }
    w.endObject();
    w.endObject();
    w.field("timeline_dropped", report.timelineDropped);
    w.endObject();
    return w.str();
}

std::string
timelineToJson(const ObsReport& report)
{
    return timelineToJson(report.timeline, report.timelineTracks,
                          report.timelineDropped);
}

std::string
profileToJson(const ObsReport& report)
{
    return profileToJson(report.profile);
}

} // namespace gps
