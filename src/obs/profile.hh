/**
 * @file
 * Bottleneck-attribution profiler: per-kernel time breakdowns, hot-page
 * heat maps and latency histograms.
 *
 * The analytic timing model already computes per-resource service
 * demands (compute, L2, DRAM, page walks, remote loads, link
 * egress/ingress, serialized stalls) for every kernel — and then
 * discards everything but the max. When profiling is enabled, the
 * runner captures those terms as one BottleneckProfile per kernel, and
 * GPS components feed per-page heat counters and latency histograms
 * through the same attach-pointer pattern the timeline recorder uses.
 * Everything is opt-in behind RunConfig::obs: with profiling off no
 * collector exists and no component takes any hook branch.
 */

#ifndef GPS_OBS_PROFILE_HH
#define GPS_OBS_PROFILE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "obs/histogram.hh"

namespace gps
{

/**
 * Per-kernel resource attribution. Tick terms are the timing model's
 * service demands; `total` is the kernel's wall time on its GPU (the
 * max over overlappable bounds plus serialized terms, as the runner
 * computes it).
 */
struct BottleneckProfile
{
    /** Number of attributed resources (see componentNames()). */
    static constexpr std::size_t numComponents = 10;

    std::string phase;
    GpuId gpu = 0;

    /** Overlappable bounds. */
    Tick tCompute = 0;
    Tick tL2 = 0;
    Tick tDram = 0;
    Tick tWalks = 0;
    Tick tEgress = 0;
    Tick tIngress = 0;

    /** Critical-path extensions and serialized stalls. */
    Tick tRemote = 0;
    Tick tFaults = 0;
    Tick tShootdowns = 0;
    Tick tWqStall = 0;

    /** The kernel's wall time on its GPU (max + serialized terms). */
    Tick total = 0;

    /** Demand volumes behind the bandwidth terms. */
    std::uint64_t dramBytes = 0;
    std::uint64_t egressBytes = 0;
    std::uint64_t ingressBytes = 0;

    /** Peak bandwidths from the configuration, bytes/second. */
    double peakDramBps = 0.0;
    double peakLinkBps = 0.0;

    /** Fixed resource naming, aligned with components(). */
    static const std::array<const char*, numComponents>& componentNames();

    /** The Tick terms in componentNames() order. */
    std::array<Tick, numComponents> components() const;

    /**
     * Time share of each resource: t_i / sum(t_i), summing to 1.0. For
     * a kernel with no demand at all the compute share is defined as
     * 1.0 so the invariant still holds.
     */
    std::array<double, numComponents> shares() const;

    /** Name of the resource with the largest service demand. */
    const char* limiter() const;

    /** Achieved DRAM bandwidth over the kernel's wall time, bytes/s. */
    double achievedDramBps() const;

    /** Achieved egress link bandwidth over the wall time, bytes/s. */
    double achievedLinkBps() const;
};

/** Heat counters of one page bucket. */
struct PageHeat
{
    /** Cache-line messages forwarded to remote subscribers. */
    std::uint64_t remoteWritesForwarded = 0;

    /** Payload bytes of those forwards (RWQ drains + atomic bypasses). */
    std::uint64_t rwqBytes = 0;

    /** Subscription churn: successful subscribe/unsubscribe flips. */
    std::uint64_t subFlips = 0;

    /** Page migrations (UM) / replica refills landing in the bucket. */
    std::uint64_t migrations = 0;

    void
    merge(const PageHeat& other)
    {
        remoteWritesForwarded += other.remoteWritesForwarded;
        rwqBytes += other.rwqBytes;
        subFlips += other.subFlips;
        migrations += other.migrations;
    }
};

/** One row of the top-N hot-page table. */
struct HotPage
{
    /** First VPN of the bucket. */
    PageNum firstVpn = 0;

    /** Pages per bucket (1 = exact pages). */
    std::uint64_t pages = 1;

    /** Label of the region the bucket's first page belongs to. */
    std::string region;

    PageHeat heat;
};

/** Plain-data profiling output of one run. */
struct ProfileReport
{
    std::vector<BottleneckProfile> kernels;

    /** Top-N buckets by remote-write traffic, hottest first. */
    std::vector<HotPage> hotPages;

    /** Distinct buckets that saw any heat (hotPages is the top slice). */
    std::uint64_t totalHotBuckets = 0;

    std::uint64_t pagesPerBucket = 1;

    /**
     * Latency/occupancy histograms, fixed order: rwq_occupancy,
     * rwq_drain_residency, link_busy.
     */
    std::vector<NamedHistogram> histograms;
};

/**
 * Live profile collector for one run. Components hold a raw pointer
 * (nullptr = disabled, same contract as TimelineRecorder) and call the
 * note* hooks; the runner adds kernel profiles and finalizes.
 */
class ProfileCollector
{
  public:
    ProfileCollector(std::uint64_t pages_per_bucket, std::size_t top_n);

    /** One cache-line message forwarded to a remote subscriber. */
    void
    noteRemoteWriteForward(PageNum vpn, std::uint64_t payload_bytes)
    {
        PageHeat& h = heat_[bucketOf(vpn)];
        ++h.remoteWritesForwarded;
        h.rwqBytes += payload_bytes;
    }

    /** A successful subscribe or unsubscribe of @p vpn. */
    void noteSubscriptionFlip(PageNum vpn) { ++heat_[bucketOf(vpn)].subFlips; }

    /** A page migration (or replica refill) of @p vpn. */
    void noteMigration(PageNum vpn) { ++heat_[bucketOf(vpn)].migrations; }

    /** RWQ occupancy (capacity units) observed at an enqueue. */
    void
    noteRwqOccupancy(std::uint64_t occupancy)
    {
        rwqOccupancy_.record(occupancy);
    }

    /**
     * RWQ residency of a drained entry, measured in enqueue operations
     * between its insert and its drain (simulated time does not advance
     * within a phase, so op distance is the meaningful latency proxy).
     */
    void
    noteRwqDrainResidency(std::uint64_t inserts_spanned)
    {
        rwqDrainResidency_.record(inserts_spanned);
    }

    /** Busy time (ticks) one link direction added in one phase. */
    void noteLinkBusy(Tick busy) { linkBusy_.record(busy); }

    /** Attribution of one finished kernel (runner only). */
    void addKernel(BottleneckProfile profile);

    /** Maps a VPN to a region label at finalize time. */
    void
    setRegionResolver(std::function<std::string(PageNum)> resolver)
    {
        regionResolver_ = std::move(resolver);
    }

    /** Distill into a plain-data report (top-N extraction). */
    ProfileReport finalize() const;

  private:
    std::uint64_t
    bucketOf(PageNum vpn) const
    {
        return vpn / pagesPerBucket_;
    }

    std::uint64_t pagesPerBucket_;
    std::size_t topN_;
    std::vector<BottleneckProfile> kernels_;
    std::unordered_map<std::uint64_t, PageHeat> heat_;
    LogHistogram rwqOccupancy_;
    LogHistogram rwqDrainResidency_;
    LogHistogram linkBusy_;
    std::function<std::string(PageNum)> regionResolver_;
};

/**
 * Serialize a profile report as one JSON document (see
 * docs/observability.md for the schema).
 */
std::string profileToJson(const ProfileReport& report);

} // namespace gps

#endif // GPS_OBS_PROFILE_HH
