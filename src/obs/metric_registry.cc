#include "obs/metric_registry.hh"

#include "common/logging.hh"

namespace gps
{

std::string
to_string(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
    }
    return "unknown";
}

void
MetricRegistry::counter(std::string name, std::string unit,
                        std::function<double()> read)
{
    add({std::move(name), MetricKind::Counter, std::move(unit),
         std::move(read)});
}

void
MetricRegistry::gauge(std::string name, std::string unit,
                      std::function<double()> read)
{
    add({std::move(name), MetricKind::Gauge, std::move(unit),
         std::move(read)});
}

void
MetricRegistry::add(MetricDef def)
{
    gps_assert(def.read != nullptr, "metric '", def.name,
               "' registered without a getter");
    const auto [it, inserted] = index_.emplace(def.name, defs_.size());
    (void)it;
    gps_assert(inserted, "metric '", def.name, "' registered twice");
    defs_.push_back(std::move(def));
}

const MetricDef*
MetricRegistry::find(const std::string& name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &defs_[it->second];
}

std::vector<MetricValue>
MetricRegistry::snapshot() const
{
    std::vector<MetricValue> out;
    out.reserve(defs_.size());
    for (const MetricDef& def : defs_)
        out.push_back({def.name, def.kind, def.unit, def.read()});
    return out;
}

} // namespace gps
