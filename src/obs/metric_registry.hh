/**
 * @file
 * Pull-based metric registry: the observability layer's component seam.
 *
 * Components register named, typed metrics whose values are *read* on
 * demand through a getter closure instead of being pushed into ad-hoc
 * StatSet dumps. Registration only happens when observability is enabled
 * for a run, and reading a metric never mutates component state, so the
 * simulation's hot paths carry zero overhead (and produce byte-identical
 * results) whether or not a registry exists.
 *
 * Naming scheme (see docs/observability.md):
 *   <component>.<subcomponent>.<metric>, e.g.
 *   gpu0.l2.hits, interconnect.gpu2.egress.bytes,
 *   gpu1.remote_write_queue.drains, driver.migrations, fault.reroutes
 */

#ifndef GPS_OBS_METRIC_REGISTRY_HH
#define GPS_OBS_METRIC_REGISTRY_HH

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gps
{

/** How a metric's value behaves over simulated time. */
enum class MetricKind : std::uint8_t {
    Counter, ///< Monotonically non-decreasing event count.
    Gauge,   ///< Instantaneous level (occupancy, hit rate, ...).
};

std::string to_string(MetricKind kind);

/** One registered metric: identity plus a value getter. */
struct MetricDef
{
    std::string name;
    MetricKind kind = MetricKind::Counter;

    /** Unit label ("events", "bytes", "ratio", "us", ...). */
    std::string unit;

    /** Reads the current value; must not mutate simulation state. */
    std::function<double()> read;
};

/** A flat snapshot of every metric at one instant. */
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::string unit;
    double value = 0.0;
};

/**
 * Registry of every metric the instrumented system exposes. Owned by the
 * per-run Observability bundle; the getters capture component pointers,
 * so the registry must not outlive the MultiGpuSystem it instruments.
 */
class MetricRegistry
{
  public:
    /** Register a monotonic counter. Names must be unique. */
    void counter(std::string name, std::string unit,
                 std::function<double()> read);

    /** Register an instantaneous gauge. Names must be unique. */
    void gauge(std::string name, std::string unit,
               std::function<double()> read);

    const std::vector<MetricDef>& metrics() const { return defs_; }
    std::size_t size() const { return defs_.size(); }

    /** Definition of the named metric, or nullptr. */
    const MetricDef* find(const std::string& name) const;

    /** Read every metric now. */
    std::vector<MetricValue> snapshot() const;

  private:
    void add(MetricDef def);

    std::vector<MetricDef> defs_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace gps

#endif // GPS_OBS_METRIC_REGISTRY_HH
