/**
 * @file
 * Simulated-time timeline recorder emitting Chrome trace-event JSON.
 *
 * Records kernel/phase executions, link transfers, write-queue drains,
 * page migrations and fault injections as trace events loadable in
 * Perfetto or chrome://tracing. Durations and timestamps are simulated
 * time converted to microseconds (the trace-event format's native unit).
 *
 * Components below the runner (driver, write queues, fault engine) do
 * not know the current tick; the runner advances the recorder's stamp at
 * phase boundaries and those components record against it, so
 * intra-phase events land at the tick of the phase that produced them.
 *
 * The recorder is bounded: past `maxEvents` new events are dropped and
 * counted, so pathological runs degrade to a truncated trace instead of
 * exhausting memory.
 */

#ifndef GPS_OBS_TIMELINE_HH
#define GPS_OBS_TIMELINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** One Chrome trace event (subset of the spec the simulator emits). */
struct TraceEvent
{
    std::string name;
    std::string cat;

    /**
     * Phase letter: 'X' complete, 'i' instant, 'C' counter,
     * 's'/'f' flow start/finish (Perfetto arrows).
     */
    char ph = 'X';

    /** Track (rendered as a thread row); see TimelineRecorder tids. */
    int tid = 0;

    Tick ts = 0;  ///< start tick
    Tick dur = 0; ///< duration in ticks (complete events only)

    /** Flow-arrow id pairing 's' and 'f' endpoints; 0 elsewhere. */
    std::uint64_t flowId = 0;

    /** Numeric args shown in the event detail pane. */
    std::vector<std::pair<std::string, double>> args;
};

/** Bounded recorder producing Chrome trace-event JSON. */
class TimelineRecorder
{
  public:
    explicit TimelineRecorder(std::size_t max_events = 1 << 20)
        : maxEvents_(max_events)
    {}

    /** Track ids: GPUs occupy [0, numGpus); these rows sit below. */
    static constexpr int systemTid = 1000;  ///< phases, barriers
    static constexpr int faultTid = 1001;   ///< fault injections
    static constexpr int driverTid = 1002;  ///< migrations, prefetches

    /** Per-node uplink lanes: node @c n records at uplinkTidBase + n. */
    static constexpr int uplinkTidBase = 1100;

    /** Advance the stamp components record stampless events against. */
    void advanceTo(Tick now) { now_ = now; }
    Tick now() const { return now_; }

    /** Label a track in the viewer (emitted as metadata events). */
    void nameTrack(int tid, std::string label);

    /** Record a complete ('X') event spanning [start, start + dur]. */
    void complete(int tid, std::string name, std::string cat, Tick start,
                  Tick dur,
                  std::vector<std::pair<std::string, double>> args = {});

    /** Record an instant ('i') event at an explicit tick. */
    void instant(int tid, std::string name, std::string cat, Tick ts,
                 std::vector<std::pair<std::string, double>> args = {});

    /** Record an instant event at the current stamp. */
    void
    instantNow(int tid, std::string name, std::string cat,
               std::vector<std::pair<std::string, double>> args = {})
    {
        instant(tid, std::move(name), std::move(cat), now_,
                std::move(args));
    }

    /** Record a counter ('C') sample at the current stamp. */
    void counterNow(std::string name, double value);

    /**
     * Record one endpoint of a flow arrow ('s' start / 'f' finish);
     * both endpoints share @p id, which pairs them in the viewer.
     */
    void flow(int tid, std::string name, std::string cat, Tick ts,
              std::uint64_t id, bool start);

    const std::vector<TraceEvent>& events() const { return events_; }
    const std::map<int, std::string>& trackNames() const
    {
        return trackNames_;
    }

    /** Events discarded after the cap was reached. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Serialize the full recorder state (stamp, events, track names,
     * drop count) so a restored run replays to an identical trace.
     */
    void saveState(snapshot::Serializer& out) const;

    /** Counterpart of saveState. */
    void restoreState(snapshot::Deserializer& in);

  private:
    bool admit();

    std::size_t maxEvents_;
    Tick now_ = 0;
    std::vector<TraceEvent> events_;
    std::map<int, std::string> trackNames_;
    std::uint64_t dropped_ = 0;
};

/**
 * Serialize as one Chrome trace JSON document:
 * {"traceEvents": [...], "displayTimeUnit": "ms", ...}.
 */
std::string timelineToJson(const std::vector<TraceEvent>& events,
                           const std::map<int, std::string>& track_names,
                           std::uint64_t dropped);

} // namespace gps

#endif // GPS_OBS_TIMELINE_HH
