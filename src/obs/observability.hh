/**
 * @file
 * Per-run observability bundle: configuration, live collectors, and the
 * plain-data report that survives the run.
 *
 * The live objects (MetricRegistry with component-capturing getters,
 * TimelineRecorder, Sampler) are owned by the Runner for the duration of
 * one run and must not outlive the MultiGpuSystem they instrument.
 * finalize() distills them into an ObsReport — values only, no pointers
 * — which rides on the RunResult for export by tools.
 */

#ifndef GPS_OBS_OBSERVABILITY_HH
#define GPS_OBS_OBSERVABILITY_HH

#include <memory>
#include <string>

#include "common/units.hh"
#include "obs/causal/causal.hh"
#include "obs/metric_registry.hh"
#include "obs/profile.hh"
#include "obs/sampler.hh"
#include "obs/timeline.hh"

namespace gps
{

/** What to collect during a run. All off by default (zero overhead). */
struct ObsConfig
{
    /** Collect the metric registry (final snapshot + sampled series). */
    bool metrics = false;

    /** Record the simulated-time event timeline. */
    bool timeline = false;

    /**
     * Minimum simulated ticks between metric samples; 0 records only
     * the final end-of-run snapshot.
     */
    Tick sampleEvery = 0;

    /** Timeline event cap (see TimelineRecorder). */
    std::size_t maxTimelineEvents = 1 << 20;

    /** Collect the bottleneck/heat profile (see obs/profile.hh). */
    bool profile = false;

    /** Pages per hot-page heat bucket (1 = exact pages). */
    std::uint64_t profilePagesPerBucket = 1;

    /** Rows kept in the top-N hot-page table. */
    std::size_t profileTopN = 20;

    /** Record the causal dependency graph (see obs/causal/causal.hh). */
    bool causal = false;

    /** Causal phase cap (see CausalRecorder). */
    std::size_t maxCausalPhases = 1 << 16;

    bool
    enabled() const
    {
        return metrics || timeline || profile || causal;
    }
};

/** Plain-data observability output of one run. */
struct ObsReport
{
    bool hasMetrics = false;
    bool hasTimeline = false;

    /** End-of-run value of every registered metric. */
    std::vector<MetricValue> finals;

    /** Sample instants (simulated ticks), increasing. */
    std::vector<Tick> sampleTicks;

    /** seriesColumns[m][s]: finals[m]'s value at sampleTicks[s]. */
    std::vector<std::vector<double>> seriesColumns;

    std::vector<TraceEvent> timeline;
    std::map<int, std::string> timelineTracks;
    std::uint64_t timelineDropped = 0;

    bool hasProfile = false;
    ProfileReport profile;

    bool hasCausal = false;
    CausalReport causal;
};

/** Live collectors for one run. */
class Observability
{
  public:
    explicit Observability(const ObsConfig& config);

    const ObsConfig& config() const { return config_; }

    /** Registry components register into (metrics mode only). */
    MetricRegistry& registry() { return registry_; }

    /** Timeline recorder, or nullptr when timeline is off. */
    TimelineRecorder* recorder() { return recorder_.get(); }

    /** Profile collector, or nullptr when profiling is off. */
    ProfileCollector* profile() { return profile_.get(); }

    /** Causal recorder, or nullptr when causal tracing is off. */
    CausalRecorder* causal() { return causal_.get(); }

    /**
     * Freeze registration and start sampling at @p start. Call after
     * every component has registered; records the initial sample.
     */
    void startSampling(Tick start);

    /** Sampler poll hook; safe before startSampling (no-op). */
    void
    poll(Tick now)
    {
        if (sampler_)
            sampler_->poll(now);
    }

    /** Take the final sample and distill everything into a report. */
    ObsReport finalize(Tick end);

    /**
     * Serialize all restart-relevant collector state: sampler series,
     * timeline recorder, causal recorder. The registry itself persists
     * nothing — getters re-register against restored components.
     */
    void saveState(snapshot::Serializer& out) const;

    /**
     * Counterpart of saveState. Call after components registered their
     * metrics; creates the sampler if the snapshot carried one so a
     * later startSampling() keeps the restored series.
     */
    void restoreState(snapshot::Deserializer& in);

  private:
    ObsConfig config_;
    MetricRegistry registry_;
    std::unique_ptr<TimelineRecorder> recorder_;
    std::unique_ptr<Sampler> sampler_;
    std::unique_ptr<ProfileCollector> profile_;
    std::unique_ptr<CausalRecorder> causal_;
};

/**
 * Serialize a report's metrics as one JSON document: the final value of
 * every metric plus the sampled time series (see docs/observability.md
 * for the schema).
 */
std::string metricsToJson(const ObsReport& report);

/** Serialize a report's timeline as Chrome trace-event JSON. */
std::string timelineToJson(const ObsReport& report);

/** Serialize a report's profile as one JSON document. */
std::string profileToJson(const ObsReport& report);

} // namespace gps

#endif // GPS_OBS_OBSERVABILITY_HH
