#include "obs/timeline.hh"

#include "common/json.hh"
#include "common/units.hh"

namespace gps
{

void
TimelineRecorder::nameTrack(int tid, std::string label)
{
    trackNames_[tid] = std::move(label);
}

bool
TimelineRecorder::admit()
{
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
TimelineRecorder::complete(int tid, std::string name, std::string cat,
                           Tick start, Tick dur,
                           std::vector<std::pair<std::string, double>> args)
{
    if (!admit())
        return;
    events_.push_back({std::move(name), std::move(cat), 'X', tid, start,
                       dur, std::move(args)});
}

void
TimelineRecorder::instant(int tid, std::string name, std::string cat,
                          Tick ts,
                          std::vector<std::pair<std::string, double>> args)
{
    if (!admit())
        return;
    events_.push_back({std::move(name), std::move(cat), 'i', tid, ts, 0,
                       std::move(args)});
}

void
TimelineRecorder::counterNow(std::string name, double value)
{
    if (!admit())
        return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = "counter";
    ev.ph = 'C';
    ev.tid = systemTid;
    ev.ts = now_;
    ev.args.emplace_back("value", value);
    events_.push_back(std::move(ev));
}

std::string
timelineToJson(const std::vector<TraceEvent>& events,
               const std::map<int, std::string>& track_names,
               std::uint64_t dropped)
{
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();

    // Metadata events first: process and per-track names.
    w.beginObject();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", std::uint64_t(0));
    w.field("tid", std::uint64_t(0));
    w.key("args").beginObject();
    w.field("name", "gpsim");
    w.endObject();
    w.endObject();
    for (const auto& [tid, label] : track_names) {
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", std::uint64_t(0));
        w.field("tid", static_cast<std::uint64_t>(tid));
        w.key("args").beginObject();
        w.field("name", label);
        w.endObject();
        w.endObject();
    }

    for (const TraceEvent& ev : events) {
        w.beginObject();
        w.field("name", ev.name);
        w.field("cat", ev.cat);
        w.field("ph", std::string(1, ev.ph));
        w.field("pid", std::uint64_t(0));
        w.field("tid", static_cast<std::uint64_t>(ev.tid));
        w.field("ts", ticksToUs(ev.ts));
        if (ev.ph == 'X')
            w.field("dur", ticksToUs(ev.dur));
        if (ev.ph == 'i')
            w.field("s", "t"); // thread-scoped instant
        if (!ev.args.empty()) {
            w.key("args").beginObject();
            for (const auto& [name, value] : ev.args)
                w.field(name, value);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.key("otherData").beginObject();
    w.field("dropped_events", dropped);
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace gps
