#include "obs/timeline.hh"

#include "common/json.hh"
#include "common/units.hh"

namespace gps
{

void
TimelineRecorder::nameTrack(int tid, std::string label)
{
    trackNames_[tid] = std::move(label);
}

bool
TimelineRecorder::admit()
{
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
TimelineRecorder::complete(int tid, std::string name, std::string cat,
                           Tick start, Tick dur,
                           std::vector<std::pair<std::string, double>> args)
{
    if (!admit())
        return;
    events_.push_back({std::move(name), std::move(cat), 'X', tid, start,
                       dur, 0, std::move(args)});
}

void
TimelineRecorder::instant(int tid, std::string name, std::string cat,
                          Tick ts,
                          std::vector<std::pair<std::string, double>> args)
{
    if (!admit())
        return;
    events_.push_back({std::move(name), std::move(cat), 'i', tid, ts, 0,
                       0, std::move(args)});
}

void
TimelineRecorder::flow(int tid, std::string name, std::string cat,
                       Tick ts, std::uint64_t id, bool start)
{
    if (!admit())
        return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.ph = start ? 's' : 'f';
    ev.tid = tid;
    ev.ts = ts;
    ev.flowId = id;
    events_.push_back(std::move(ev));
}

void
TimelineRecorder::saveState(snapshot::Serializer& out) const
{
    out.section("timeline");
    out.u64(now_);
    out.u64(dropped_);
    out.u64(trackNames_.size());
    for (const auto& [tid, label] : trackNames_) {
        out.i64(tid);
        out.str(label);
    }
    out.u64(events_.size());
    for (const TraceEvent& ev : events_) {
        out.str(ev.name);
        out.str(ev.cat);
        out.u8(static_cast<std::uint8_t>(ev.ph));
        out.i64(ev.tid);
        out.u64(ev.ts);
        out.u64(ev.dur);
        out.u64(ev.flowId);
        out.u64(ev.args.size());
        for (const auto& [name, value] : ev.args) {
            out.str(name);
            out.f64(value);
        }
    }
}

void
TimelineRecorder::restoreState(snapshot::Deserializer& in)
{
    in.section("timeline");
    now_ = in.u64();
    dropped_ = in.u64();
    trackNames_.clear();
    const std::uint64_t n_tracks = in.count(1ULL << 20);
    for (std::uint64_t i = 0; i < n_tracks; ++i) {
        const int tid = static_cast<int>(in.i64());
        trackNames_[tid] = in.str();
    }
    events_.clear();
    const std::uint64_t n_events = in.count(1ULL << 28);
    events_.reserve(n_events);
    for (std::uint64_t i = 0; i < n_events; ++i) {
        TraceEvent ev;
        ev.name = in.str();
        ev.cat = in.str();
        ev.ph = static_cast<char>(in.u8());
        ev.tid = static_cast<int>(in.i64());
        ev.ts = in.u64();
        ev.dur = in.u64();
        ev.flowId = in.u64();
        const std::uint64_t n_args = in.count(1ULL << 16);
        ev.args.reserve(n_args);
        for (std::uint64_t a = 0; a < n_args; ++a) {
            std::string name = in.str();
            const double value = in.f64();
            ev.args.emplace_back(std::move(name), value);
        }
        events_.push_back(std::move(ev));
    }
}

void
TimelineRecorder::counterNow(std::string name, double value)
{
    if (!admit())
        return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = "counter";
    ev.ph = 'C';
    ev.tid = systemTid;
    ev.ts = now_;
    ev.args.emplace_back("value", value);
    events_.push_back(std::move(ev));
}

std::string
timelineToJson(const std::vector<TraceEvent>& events,
               const std::map<int, std::string>& track_names,
               std::uint64_t dropped)
{
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();

    // Metadata events first: process and per-track names.
    w.beginObject();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", std::uint64_t(0));
    w.field("tid", std::uint64_t(0));
    w.key("args").beginObject();
    w.field("name", "gpsim");
    w.endObject();
    w.endObject();
    for (const auto& [tid, label] : track_names) {
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", std::uint64_t(0));
        w.field("tid", static_cast<std::uint64_t>(tid));
        w.key("args").beginObject();
        w.field("name", label);
        w.endObject();
        w.endObject();
    }

    for (const TraceEvent& ev : events) {
        w.beginObject();
        w.field("name", ev.name);
        w.field("cat", ev.cat);
        w.field("ph", std::string(1, ev.ph));
        w.field("pid", std::uint64_t(0));
        w.field("tid", static_cast<std::uint64_t>(ev.tid));
        w.field("ts", ticksToUs(ev.ts));
        if (ev.ph == 'X')
            w.field("dur", ticksToUs(ev.dur));
        if (ev.ph == 'i')
            w.field("s", "t"); // thread-scoped instant
        if (ev.ph == 's' || ev.ph == 'f') {
            w.field("id", ev.flowId);
            if (ev.ph == 'f')
                w.field("bp", "e"); // bind finish to enclosing slice
        }
        if (!ev.args.empty()) {
            w.key("args").beginObject();
            for (const auto& [name, value] : ev.args)
                w.field(name, value);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.key("otherData").beginObject();
    w.field("dropped_events", dropped);
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace gps
