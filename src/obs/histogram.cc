#include "obs/histogram.hh"

#include <algorithm>

namespace gps
{

std::size_t
LogHistogram::bucketOf(std::uint64_t value)
{
    if (value == 0)
        return 0;
    std::size_t bits = 0;
    while (value != 0) {
        value >>= 1;
        ++bits;
    }
    return bits; // 1 + floor(log2 v); value 1 -> bucket 1.
}

std::uint64_t
LogHistogram::bucketLow(std::size_t b)
{
    if (b == 0)
        return 0;
    return std::uint64_t{1} << (b - 1);
}

std::uint64_t
LogHistogram::bucketHigh(std::size_t b)
{
    if (b == 0)
        return 0;
    if (b >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
}

void
LogHistogram::record(std::uint64_t value)
{
    ++buckets_[bucketOf(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
LogHistogram::merge(const LogHistogram& other)
{
    for (std::size_t b = 0; b < numBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ != 0) {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
}

double
LogHistogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

double
LogHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // Rank of the requested sample, in [0, count - 1].
    const double rank = p * static_cast<double>(count_ - 1);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < numBuckets; ++b) {
        const std::uint64_t n = buckets_[b];
        if (n == 0)
            continue;
        const double first = static_cast<double>(seen);
        const double last = static_cast<double>(seen + n - 1);
        if (rank <= last) {
            // Interpolate by rank across the bucket's value range,
            // clamped to the observed extremes so single-bucket data
            // does not overshoot.
            const double lo = std::max(
                static_cast<double>(bucketLow(b)),
                static_cast<double>(min()));
            const double hi = std::min(
                static_cast<double>(bucketHigh(b)),
                static_cast<double>(max_));
            if (n == 1 || hi <= lo)
                return lo;
            const double frac = (rank - first) / static_cast<double>(n - 1);
            return lo + frac * (hi - lo);
        }
        seen += n;
    }
    return static_cast<double>(max_);
}

} // namespace gps
