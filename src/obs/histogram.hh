/**
 * @file
 * Streaming fixed-bucket log2 histogram for latency/occupancy profiles.
 *
 * The bucket layout is fixed (65 buckets covering the full uint64 range)
 * so two histograms filled on different threads — or in different sweep
 * jobs — merge by elementwise addition, independent of fill order. That
 * makes percentiles deterministic for serial vs. `--jobs N` sweep runs:
 * merging is associative and commutative, so any reduction order over
 * the input-ordered outcomes yields the same buckets.
 */

#ifndef GPS_OBS_HISTOGRAM_HH
#define GPS_OBS_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace gps
{

/**
 * Log2-bucketed histogram of uint64 samples.
 *
 * Bucket 0 holds the exact value 0; bucket b in [1, 64] holds values in
 * [2^(b-1), 2^b). Plain data: copyable, mergeable, no allocation beyond
 * the fixed bucket array.
 */
class LogHistogram
{
  public:
    static constexpr std::size_t numBuckets = 65;

    /** Bucket index of @p value (0 for 0, else 1 + floor(log2 v)). */
    static std::size_t bucketOf(std::uint64_t value);

    /** Inclusive lower bound of bucket @p b. */
    static std::uint64_t bucketLow(std::size_t b);

    /**
     * Inclusive upper bound of bucket @p b (2^b - 1 for b >= 1; the
     * last bucket tops out at the max uint64).
     */
    static std::uint64_t bucketHigh(std::size_t b);

    void record(std::uint64_t value);

    /** Elementwise merge; associative and commutative. */
    void merge(const LogHistogram& other);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;
    bool empty() const { return count_ == 0; }

    const std::array<std::uint64_t, numBuckets>& buckets() const
    {
        return buckets_;
    }

    /**
     * Estimated value at quantile @p p in [0, 1]: walk the cumulative
     * counts to the bucket containing the p-th sample, then interpolate
     * linearly across that bucket's value range by rank. Clamped to the
     * observed [min, max], so percentile(0) == min and
     * percentile(1) == max; monotone in @p p by construction. Returns 0
     * for an empty histogram.
     */
    double percentile(double p) const;

  private:
    std::array<std::uint64_t, numBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/** A histogram plus its identity, as exported in the profile report. */
struct NamedHistogram
{
    std::string name;
    std::string unit;
    LogHistogram hist;
};

} // namespace gps

#endif // GPS_OBS_HISTOGRAM_HH
