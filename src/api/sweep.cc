#include "api/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <typeinfo>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

#include "common/cancel.hh"

namespace gps
{

std::size_t
defaultSweepJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

namespace
{

/** Demangle a typeid name where the ABI supports it. */
std::string
demangle(const char* mangled)
{
#if defined(__GNUG__)
    int status = 0;
    char* name = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
    if (status == 0 && name != nullptr) {
        std::string out(name);
        std::free(name);
        return out;
    }
#endif
    return mangled;
}

} // namespace

void
describeException(const std::exception_ptr& error, std::string& type,
                  std::string& message)
{
    type.clear();
    message.clear();
    if (error == nullptr)
        return;
    try {
        std::rethrow_exception(error);
    } catch (const CancelledError& e) {
        type = e.reason() == CancelReason::DeadlineExpired
                   ? "DeadlineExpired"
                   : "Cancelled";
        message = e.what();
    } catch (const std::exception& e) {
        type = demangle(typeid(e).name());
        // Strip the namespace: "gps::FatalError" -> "FatalError".
        const std::size_t colons = type.rfind("::");
        if (colons != std::string::npos)
            type = type.substr(colons + 2);
        message = e.what();
    } catch (...) {
        type = "unknown";
        message = "non-std::exception thrown";
    }
}

std::string
SweepOutcome::errorText() const
{
    if (ok())
        return "";
    return errorType.empty() ? errorMessage
                             : errorType + ": " + errorMessage;
}

SweepOutcome
runSweepJob(const SweepJob& job)
{
    SweepOutcome out;
    out.label = job.label;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        out.result = runWorkload(job.workload, job.config);
    } catch (...) {
        out.error = std::current_exception();
        describeException(out.error, out.errorType, out.errorMessage);
    }
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

namespace
{

void
runOne(const SweepJob& job, SweepOutcome& out)
{
    out = runSweepJob(job);
}

} // namespace

std::vector<SweepOutcome>
runSweep(const std::vector<SweepJob>& jobs, std::size_t workers)
{
    std::vector<SweepOutcome> out(jobs.size());
    if (jobs.empty())
        return out;
    if (workers < 1)
        workers = 1;
    if (workers > jobs.size())
        workers = jobs.size();

    if (workers == 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            runOne(jobs[i], out[i]);
        return out;
    }

    // Work stealing off a shared ticket counter: threads claim the next
    // unclaimed job index, so long runs do not serialize behind a static
    // partition. Outcomes land at their job's index regardless of which
    // worker ran it.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (std::size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1))
            runOne(jobs[i], out[i]);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread& t : pool)
        t.join();
    return out;
}

namespace
{

void
appendDouble(std::ostringstream& os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf << '|';
}

} // namespace

std::string
configKey(const std::string& workload, const RunConfig& config)
{
    std::ostringstream os;
    os << workload << '|';

    const SystemConfig& sys = config.system;
    os << sys.numGpus << '|' << static_cast<int>(sys.interconnect) << '|'
       << sys.numNodes << '|' << static_cast<int>(sys.interNode) << '|'
       << sys.pageBytes << '|';
    appendDouble(os, sys.linkBandwidthScale);

    const GpuConfig& gpu = sys.gpu;
    os << gpu.cacheLineBytes << '|' << gpu.globalMemoryBytes << '|'
       << gpu.numSms << '|' << gpu.cudaCoresPerSm << '|'
       << gpu.l2CacheBytes << '|' << gpu.warpSize << '|'
       << gpu.maxThreadsPerSm << '|' << gpu.maxThreadsPerCta << '|'
       << gpu.virtualAddressBits << '|' << gpu.physicalAddressBits << '|'
       << gpu.l2Ways << '|' << gpu.tlbEntries << '|' << gpu.tlbWays << '|'
       << gpu.pageWalkLatency << '|' << gpu.smCoalescerDepth << '|'
       << gpu.remoteLoadMlp << '|' << gpu.remoteAtomicMlp << '|'
       << gpu.kernelLaunchOverhead << '|';
    appendDouble(os, gpu.coreClockGHz);
    appendDouble(os, gpu.dramBandwidth);
    appendDouble(os, gpu.l2Bandwidth);
    appendDouble(os, gpu.issueEfficiency);

    const GpsConfig& gcfg = sys.gps;
    os << gcfg.wqEntries << '|' << gcfg.wqEntryBytes << '|'
       << gcfg.gpsTlbEntries << '|' << gcfg.gpsTlbWays << '|'
       << gcfg.gpsWalkLatency << '|' << gcfg.saturatedWatermarkDivisor
       << '|' << gcfg.wqStallPenalty << '|' << gcfg.resubscribeAfter
       << '|' << gcfg.autoUnsubscribe << '|' << gcfg.smCoalescerEnabled
       << '|' << gcfg.virtuallyAddressedWq << '|'
       << gcfg.hierarchicalSubscription << '|';
    appendDouble(os, gcfg.wqDrainScale);

    os << static_cast<int>(config.paradigm) << '|';
    appendDouble(os, config.scale);
    os << config.steadyIterations << '|' << config.replayChunk << '|'
       << config.effectiveIterationsOverride << '|';

    os << config.faultPlan.seed << '|' << config.faultPlan.pcieFallback
       << '|';
    for (const FaultEvent& ev : config.faultPlan.events)
        os << ev.time << ':' << ev.describe() << '|';

    os << config.check.enabled << '|' << config.check.everyAccesses
       << '|' << config.check.testMutation << '|';
    return os.str();
}

std::string
warmKey(const std::string& workload, const RunConfig& config)
{
    RunConfig norm = config;
    norm.system.gps.autoUnsubscribe = false;
    norm.steadyIterations = 0;
    norm.effectiveIterationsOverride = 0;
    return configKey(workload, norm);
}

double
WarmSweepStats::forkSpeedup() const
{
    if (leaders == 0 || followers == 0 || followerWallSeconds <= 0.0)
        return 0.0;
    const double leader_mean =
        leaderWallSeconds / static_cast<double>(leaders);
    const double follower_mean =
        followerWallSeconds / static_cast<double>(followers);
    return follower_mean > 0.0 ? leader_mean / follower_mean : 0.0;
}

namespace
{

/** Whether a job may participate in warm-start forking at all. */
bool
warmEligible(const SweepJob& job)
{
    const RunConfig& c = job.config;
    return !c.check.enabled && !c.obs.enabled() &&
           !c.snapshotAt.active() && c.snapshotOut.empty() &&
           c.snapshotSink == nullptr && c.restoreFrom.empty() &&
           c.restoreBlob == nullptr && !c.restoreMutateForTest;
}

} // namespace

std::vector<SweepOutcome>
runSweepWarm(const std::vector<SweepJob>& jobs, std::size_t workers,
             WarmSweepStats* stats)
{
    std::vector<SweepOutcome> out(jobs.size());
    if (jobs.empty())
        return out;

    // Group eligible jobs by warm key, preserving input order inside
    // each group (the first member becomes the leader).
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (warmEligible(jobs[i]))
            groups[warmKey(jobs[i].workload, jobs[i].config)]
                .push_back(i);

    struct Fork
    {
        std::size_t leader = 0;
        std::shared_ptr<std::string> blob;
    };
    std::vector<bool> is_follower(jobs.size(), false);
    std::map<std::size_t, Fork> forks; ///< follower index -> its leader
    std::vector<SweepJob> wave1;
    std::vector<std::size_t> wave1_idx;

    std::map<std::size_t, SweepJob> leader_jobs;
    for (const auto& [key, members] : groups) {
        if (members.size() < 2)
            continue;
        const std::size_t leader = members.front();
        SweepJob job = jobs[leader];
        job.config.snapshotAt = {snapshot::AtKind::Profile, 0};
        job.config.snapshotSink = std::make_shared<std::string>();
        job.config.snapshotKey = key;
        for (std::size_t m = 1; m < members.size(); ++m) {
            is_follower[members[m]] = true;
            forks[members[m]] =
                Fork{leader, job.config.snapshotSink};
        }
        leader_jobs.emplace(leader, std::move(job));
        if (stats != nullptr) {
            ++stats->groups;
            ++stats->leaders;
        }
    }

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (is_follower[i])
            continue;
        auto it = leader_jobs.find(i);
        wave1.push_back(it != leader_jobs.end() ? std::move(it->second)
                                                : jobs[i]);
        wave1_idx.push_back(i);
    }

    std::vector<SweepOutcome> wave1_out = runSweep(wave1, workers);
    for (std::size_t w = 0; w < wave1_out.size(); ++w)
        out[wave1_idx[w]] = std::move(wave1_out[w]);

    if (forks.empty())
        return out;

    // Wave 2: followers restore their leader's snapshot; a failed or
    // empty capture demotes them to plain cold runs.
    std::vector<SweepJob> wave2;
    std::vector<std::size_t> wave2_idx;
    std::vector<bool> wave2_warm;
    for (const auto& [idx, fork] : forks) {
        SweepJob job = jobs[idx];
        const bool warm =
            out[fork.leader].ok() && !fork.blob->empty();
        if (warm)
            job.config.restoreBlob = fork.blob;
        wave2.push_back(std::move(job));
        wave2_idx.push_back(idx);
        wave2_warm.push_back(warm);
    }
    std::vector<SweepOutcome> wave2_out = runSweep(wave2, workers);
    for (std::size_t w = 0; w < wave2_out.size(); ++w)
        out[wave2_idx[w]] = std::move(wave2_out[w]);

    if (stats != nullptr) {
        for (std::size_t w = 0; w < wave2_idx.size(); ++w) {
            if (wave2_warm[w]) {
                ++stats->followers;
                stats->followerWallSeconds +=
                    out[wave2_idx[w]].wallSeconds;
            } else {
                ++stats->coldFallbacks;
            }
        }
        for (const auto& [leader, job] : leader_jobs) {
            (void)job;
            stats->leaderWallSeconds += out[leader].wallSeconds;
        }
    }
    return out;
}

} // namespace gps
