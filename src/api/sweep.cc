#include "api/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <typeinfo>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

#include "common/cancel.hh"

namespace gps
{

std::size_t
defaultSweepJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

namespace
{

/** Demangle a typeid name where the ABI supports it. */
std::string
demangle(const char* mangled)
{
#if defined(__GNUG__)
    int status = 0;
    char* name = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
    if (status == 0 && name != nullptr) {
        std::string out(name);
        std::free(name);
        return out;
    }
#endif
    return mangled;
}

} // namespace

void
describeException(const std::exception_ptr& error, std::string& type,
                  std::string& message)
{
    type.clear();
    message.clear();
    if (error == nullptr)
        return;
    try {
        std::rethrow_exception(error);
    } catch (const CancelledError& e) {
        type = e.reason() == CancelReason::DeadlineExpired
                   ? "DeadlineExpired"
                   : "Cancelled";
        message = e.what();
    } catch (const std::exception& e) {
        type = demangle(typeid(e).name());
        // Strip the namespace: "gps::FatalError" -> "FatalError".
        const std::size_t colons = type.rfind("::");
        if (colons != std::string::npos)
            type = type.substr(colons + 2);
        message = e.what();
    } catch (...) {
        type = "unknown";
        message = "non-std::exception thrown";
    }
}

std::string
SweepOutcome::errorText() const
{
    if (ok())
        return "";
    return errorType.empty() ? errorMessage
                             : errorType + ": " + errorMessage;
}

SweepOutcome
runSweepJob(const SweepJob& job)
{
    SweepOutcome out;
    out.label = job.label;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        out.result = runWorkload(job.workload, job.config);
    } catch (...) {
        out.error = std::current_exception();
        describeException(out.error, out.errorType, out.errorMessage);
    }
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

namespace
{

void
runOne(const SweepJob& job, SweepOutcome& out)
{
    out = runSweepJob(job);
}

} // namespace

std::vector<SweepOutcome>
runSweep(const std::vector<SweepJob>& jobs, std::size_t workers)
{
    std::vector<SweepOutcome> out(jobs.size());
    if (jobs.empty())
        return out;
    if (workers < 1)
        workers = 1;
    if (workers > jobs.size())
        workers = jobs.size();

    if (workers == 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            runOne(jobs[i], out[i]);
        return out;
    }

    // Work stealing off a shared ticket counter: threads claim the next
    // unclaimed job index, so long runs do not serialize behind a static
    // partition. Outcomes land at their job's index regardless of which
    // worker ran it.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (std::size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1))
            runOne(jobs[i], out[i]);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread& t : pool)
        t.join();
    return out;
}

namespace
{

void
appendDouble(std::ostringstream& os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf << '|';
}

} // namespace

std::string
configKey(const std::string& workload, const RunConfig& config)
{
    std::ostringstream os;
    os << workload << '|';

    const SystemConfig& sys = config.system;
    os << sys.numGpus << '|' << static_cast<int>(sys.interconnect) << '|'
       << sys.pageBytes << '|';

    const GpuConfig& gpu = sys.gpu;
    os << gpu.cacheLineBytes << '|' << gpu.globalMemoryBytes << '|'
       << gpu.numSms << '|' << gpu.cudaCoresPerSm << '|'
       << gpu.l2CacheBytes << '|' << gpu.warpSize << '|'
       << gpu.maxThreadsPerSm << '|' << gpu.maxThreadsPerCta << '|'
       << gpu.virtualAddressBits << '|' << gpu.physicalAddressBits << '|'
       << gpu.l2Ways << '|' << gpu.tlbEntries << '|' << gpu.tlbWays << '|'
       << gpu.pageWalkLatency << '|' << gpu.smCoalescerDepth << '|'
       << gpu.remoteLoadMlp << '|' << gpu.remoteAtomicMlp << '|'
       << gpu.kernelLaunchOverhead << '|';
    appendDouble(os, gpu.coreClockGHz);
    appendDouble(os, gpu.dramBandwidth);
    appendDouble(os, gpu.l2Bandwidth);
    appendDouble(os, gpu.issueEfficiency);

    const GpsConfig& gcfg = sys.gps;
    os << gcfg.wqEntries << '|' << gcfg.wqEntryBytes << '|'
       << gcfg.gpsTlbEntries << '|' << gcfg.gpsTlbWays << '|'
       << gcfg.gpsWalkLatency << '|' << gcfg.saturatedWatermarkDivisor
       << '|' << gcfg.wqStallPenalty << '|' << gcfg.resubscribeAfter
       << '|' << gcfg.autoUnsubscribe << '|' << gcfg.smCoalescerEnabled
       << '|' << gcfg.virtuallyAddressedWq << '|';

    os << static_cast<int>(config.paradigm) << '|';
    appendDouble(os, config.scale);
    os << config.steadyIterations << '|' << config.replayChunk << '|'
       << config.effectiveIterationsOverride << '|';

    os << config.faultPlan.seed << '|' << config.faultPlan.pcieFallback
       << '|';
    for (const FaultEvent& ev : config.faultPlan.events)
        os << ev.time << ':' << ev.describe() << '|';

    os << config.check.enabled << '|' << config.check.everyAccesses
       << '|' << config.check.testMutation << '|';
    return os.str();
}

} // namespace gps
