/**
 * @file
 * Runner: executes a workload under a paradigm on a fresh system.
 *
 * Replay methodology: each phase's per-GPU kernels are replayed
 * concurrently by interleaving their access streams round-robin in fixed
 * chunks (so UM page thrashing between GPUs emerges); the analytic GPU
 * timing model converts each kernel's event counts into a duration; the
 * event queue sequences kernel completions and barriers.
 *
 * Iteration methodology: iteration 0 is simulated in full (it carries the
 * GPS profiling phase and the UM first-touch transient), followed by a
 * few steady-state iterations. Time and interconnect traffic are then
 * extrapolated to the workload's full iteration count, exactly as the
 * paper's full-length runs amortize one profiling iteration over
 * hundreds of execution iterations.
 */

#ifndef GPS_API_RUNNER_HH
#define GPS_API_RUNNER_HH

#include <memory>

#include "api/metrics.hh"
#include "api/system.hh"
#include "apps/workload.hh"
#include "check/check_config.hh"
#include "common/cancel.hh"
#include "fault/fault_plan.hh"
#include "obs/observability.hh"
#include "paradigm/paradigm.hh"
#include "snapshot/snapshot.hh"

namespace gps
{

class FaultEngine;
class CheckContext;

/** Everything needed to run one (workload, paradigm, system) triple. */
struct RunConfig
{
    SystemConfig system;
    ParadigmKind paradigm = ParadigmKind::Gps;

    /** Problem-size scale passed to the workload. */
    double scale = 1.0;

    /** Steady-state iterations simulated after the profiling iteration. */
    std::size_t steadyIterations = 4;

    /** Accesses replayed per GPU per round-robin turn. */
    std::size_t replayChunk = 128;

    /**
     * Override the workload's effective (extrapolated) iteration count;
     * 0 keeps the workload default.
     */
    std::size_t effectiveIterationsOverride = 0;

    /**
     * Faults to inject during the run. An empty plan means no fault
     * engine is constructed at all (zero overhead when idle).
     */
    FaultPlan faultPlan;

    /**
     * What to observe during the run. Disabled by default: no registry,
     * sampler or recorder is constructed and results are byte-identical
     * to a build without the observability layer.
     */
    ObsConfig obs;

    /**
     * Differential validation against the reference model. Disabled by
     * default: no checker is constructed and results are byte-identical
     * to a build without the check subsystem.
     */
    CheckConfig check;

    /**
     * Cooperative cancellation/deadline token, shared with whoever may
     * cancel the run (the serve-mode scheduler). Polled between replay
     * chunks; a fired token unwinds the run with CancelledError. Null
     * (the default) costs nothing and is excluded from configKey — a
     * token cannot change a completed run's outcome.
     */
    std::shared_ptr<CancelToken> cancel;

    // ------------------------------------------------------------------
    // Checkpoint/restore (src/snapshot/). Like `cancel`, every field
    // below is excluded from configKey: capturing a snapshot or resuming
    // from one cannot change a completed run's outcome — restored runs
    // are verified byte-identical to uninterrupted ones.
    // ------------------------------------------------------------------

    /** When to capture a snapshot; inactive by default. */
    snapshot::SnapshotPoint snapshotAt;

    /** File to write the captured snapshot to ("" = no file). */
    std::string snapshotOut;

    /** In-memory sink for the snapshot bytes (warm-sweep forking). */
    std::shared_ptr<std::string> snapshotSink;

    /** Warm-key echo stored in the snapshot's meta section. */
    std::string snapshotKey;

    /** Snapshot file to resume from ("" = cold start). */
    std::string restoreFrom;

    /** In-memory snapshot to resume from (wins over restoreFrom). */
    std::shared_ptr<const std::string> restoreBlob;

    /**
     * Test hook: perturb one page's driver state after the restore so
     * the restore verification must reject the snapshot.
     */
    bool restoreMutateForTest = false;
};

/** Executes workloads and produces RunResults. */
class Runner
{
  public:
    explicit Runner(RunConfig config)
        : config_(std::move(config))
    {}

    /**
     * Run @p workload on a freshly constructed system.
     * @param workload a fresh instance (setup state is per-run)
     */
    RunResult run(Workload& workload);

    /** Convenience: construct the named workload and run it. */
    RunResult runByName(const std::string& workload_name);

    const RunConfig& config() const { return config_; }

  private:
    /** @return the phase's end-to-end duration. */
    Tick executePhase(MultiGpuSystem& system, Paradigm& paradigm,
                      Phase& phase, KernelCounters& totals);

    RunConfig config_;

    /** Active fault engine during run(); nullptr otherwise. */
    FaultEngine* faults_ = nullptr;

    /** Active observability bundle during run(); nullptr otherwise. */
    Observability* obs_ = nullptr;

    /** Active differential checker during run(); nullptr otherwise. */
    CheckContext* check_ = nullptr;
};

/** One-call helper used throughout the benches. */
RunResult runWorkload(const std::string& workload_name,
                      const RunConfig& config);

} // namespace gps

#endif // GPS_API_RUNNER_HH
