/**
 * @file
 * Result records produced by the Runner.
 */

#ifndef GPS_API_METRICS_HH
#define GPS_API_METRICS_HH

#include <memory>
#include <string>

#include "common/gpu_mask.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "fault/fault_plan.hh"
#include "gpu/kernel_counters.hh"

namespace gps
{

struct ObsReport;
struct CheckReport;

/** Outcome of running one workload under one paradigm. */
struct RunResult
{
    std::string workload;
    std::string paradigm;
    std::size_t numGpus = 0;

    /** Extrapolated end-to-end time of the full-length run. */
    Tick totalTime = 0;

    /** Extrapolated bytes moved over the interconnect (Fig. 10). */
    std::uint64_t interconnectBytes = 0;

    /** Simulated (not extrapolated) event counts. */
    KernelCounters totals;

    double l2HitRate = 0.0;
    double tlbHitRate = 0.0;
    double wqHitRate = 0.0;       ///< GPS only (Fig. 14)
    double gpsTlbHitRate = 0.0;   ///< GPS only (§7.4)

    /** Subscriber-count distribution of shared pages (Fig. 9). */
    Histogram subscriberHist{maxGpus + 1};
    bool hasSubscriberHist = false;

    /** Fault-injection outcome; valid when hasFaultReport. */
    FaultReport faultReport;
    bool hasFaultReport = false;

    /** Full component stat dump. */
    StatSet stats;

    /** Observability output; null unless RunConfig::obs enabled it. */
    std::shared_ptr<const ObsReport> obs;

    /** Differential-validation report; null unless RunConfig::check. */
    std::shared_ptr<const CheckReport> check;

    double timeMs() const { return ticksToMs(totalTime); }
};

/** Strong-scaling speedup of @p result over the 1-GPU @p baseline. */
inline double
speedupOver(const RunResult& baseline, const RunResult& result)
{
    return result.totalTime == 0
               ? 0.0
               : static_cast<double>(baseline.totalTime) /
                     static_cast<double>(result.totalTime);
}

} // namespace gps

#endif // GPS_API_METRICS_HH
