/**
 * @file
 * RunResult serialization for downstream tooling.
 */

#ifndef GPS_API_RESULT_EXPORT_HH
#define GPS_API_RESULT_EXPORT_HH

#include <string>

#include "api/metrics.hh"

namespace gps
{

/**
 * Serialize a result as one JSON object: identity, headline metrics,
 * the subscriber histogram, and (optionally) every component stat.
 */
std::string resultToJson(const RunResult& result,
                         bool include_stats = false);

} // namespace gps

#endif // GPS_API_RESULT_EXPORT_HH
