/**
 * @file
 * Public facade: a configured multi-GPU system instance.
 *
 * Owns the GPUs, interconnect, shared VA space, driver and event queue.
 * Paradigms and the runner operate on a MultiGpuSystem; library users
 * construct one from a SystemConfig (Table 1 defaults) and either run the
 * bundled workloads through Runner or drive the Driver API directly.
 */

#ifndef GPS_API_SYSTEM_HH
#define GPS_API_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/units.hh"
#include "core/gps_config.hh"
#include "driver/driver.hh"
#include "gpu/gpu_config.hh"
#include "gpu/gpu_model.hh"
#include "interconnect/pcie.hh"
#include "interconnect/topology.hh"
#include "mem/address_space.hh"
#include "sim/event_queue.hh"

namespace gps
{

class FaultEngine;
class MetricRegistry;
class TimelineRecorder;
class ProfileCollector;
class CausalRecorder;

/** Full system configuration. */
struct SystemConfig
{
    std::size_t numGpus = 4;
    InterconnectKind interconnect = InterconnectKind::Pcie3;

    /**
     * Nodes the GPUs are split across. 1 keeps the flat single-switch
     * topology (byte-identical to builds without the knob); above 1 the
     * GPUs divide evenly into nodes joined by interNode uplinks.
     */
    std::size_t numNodes = 1;

    /** Inter-node fabric joining the nodes when numNodes > 1. */
    InterconnectKind interNode = InterconnectKind::IbNdr;

    /**
     * Link-bandwidth multiplier for what-if exploration. 1.0 keeps the
     * interconnect on its static spec (byte-identical to builds
     * without the knob).
     */
    double linkBandwidthScale = 1.0;

    /** GPS allocations use 64 KB pages by default (Section 5.2). */
    std::uint64_t pageBytes = 64 * KiB;

    GpuConfig gpu;
    GpsConfig gps;
};

/** A simulated multi-GPU system. */
class MultiGpuSystem
{
  public:
    explicit MultiGpuSystem(const SystemConfig& config);

    MultiGpuSystem(const MultiGpuSystem&) = delete;
    MultiGpuSystem& operator=(const MultiGpuSystem&) = delete;

    const SystemConfig& config() const { return config_; }
    std::size_t numGpus() const { return gpus_.size(); }

    GpuModel& gpu(GpuId id) { return *gpus_.at(id); }
    const GpuModel& gpu(GpuId id) const { return *gpus_.at(id); }

    Driver& driver() { return *driver_; }
    Topology& topology() { return *topology_; }
    const Topology& topology() const { return *topology_; }
    EventQueue& events() { return events_; }
    AddressSpace& addressSpace() { return vas_; }
    const PageGeometry& geometry() const { return vas_.geometry(); }

    /**
     * Fault engine driving this run, when fault injection is active
     * (installed by the runner for the run's duration, else nullptr).
     */
    FaultEngine* faults() { return faults_; }
    void installFaultEngine(FaultEngine* engine) { faults_ = engine; }

    /** Table 1 style parameter dump. */
    ConfigDump configDump() const;

    /** Snapshot of every component's statistics. */
    StatSet stats() const;

    /** Register every component's metrics (same set as stats()). */
    void registerMetrics(MetricRegistry& reg) const;

    /**
     * Install the timeline recorder on the driver and topology (nullptr
     * uninstalls). Paradigm-owned components attach separately through
     * Paradigm::attachRecorder.
     */
    void installRecorder(TimelineRecorder* recorder);

    /** Recorder currently installed, or nullptr. */
    TimelineRecorder* recorder() { return recorder_; }

    /**
     * Install the profile collector on the driver and topology (nullptr
     * uninstalls). Paradigm-owned components attach separately through
     * Paradigm::attachProfile.
     */
    void installProfile(ProfileCollector* profile);

    /** Profile collector currently installed, or nullptr. */
    ProfileCollector* profile() { return profile_; }

    /**
     * Install the causal dependency recorder on the driver and
     * topology (nullptr uninstalls). Paradigm-owned components attach
     * separately through Paradigm::attachCausal.
     */
    void installCausal(CausalRecorder* causal);

    /** Causal recorder currently installed, or nullptr. */
    CausalRecorder* causal() { return causal_; }

    void resetStats();

  private:
    SystemConfig config_;
    AddressSpace vas_;
    std::vector<std::unique_ptr<GpuModel>> gpus_;
    std::unique_ptr<Topology> topology_;
    std::unique_ptr<Driver> driver_;
    EventQueue events_;
    FaultEngine* faults_ = nullptr;
    TimelineRecorder* recorder_ = nullptr;
    ProfileCollector* profile_ = nullptr;
    CausalRecorder* causal_ = nullptr;
};

} // namespace gps

#endif // GPS_API_SYSTEM_HH
