#include "api/runner.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "check/check.hh"
#include "common/logging.hh"
#include "fault/fault_engine.hh"

namespace gps
{

RunResult
Runner::run(Workload& workload)
{
    // Snapshots freeze the bare simulation state plus the serializable
    // collectors (sampler series, timeline, causal graph). The check
    // layer and the profile collector keep live external mirrors
    // (reference model, heat maps) without save/restore support, so
    // those combinations are rejected up front.
    const bool capturing =
        config_.snapshotAt.active() &&
        (!config_.snapshotOut.empty() ||
         config_.snapshotSink != nullptr);
    std::optional<snapshot::Snapshot> snap;
    if (config_.restoreBlob != nullptr)
        snap = snapshot::decodeSnapshot(*config_.restoreBlob);
    else if (!config_.restoreFrom.empty())
        snap = snapshot::readSnapshotFile(config_.restoreFrom);
    if ((capturing || snap.has_value()) && config_.check.enabled)
        throw snapshot::SnapshotError(
            "snapshot capture/restore cannot be combined with the "
            "check layer");
    if ((capturing || snap.has_value()) && config_.obs.profile)
        throw snapshot::SnapshotError(
            "snapshot capture/restore cannot be combined with profile "
            "collection");

    MultiGpuSystem system(config_.system);
    std::unique_ptr<Paradigm> paradigm =
        makeParadigm(config_.paradigm, system);
    WorkloadContext ctx(system, *paradigm);

    // An empty plan constructs no engine at all, so fault-free runs take
    // exactly the pre-fault-subsystem code paths.
    std::unique_ptr<FaultEngine> fault_engine;
    if (!config_.faultPlan.empty()) {
        fault_engine =
            std::make_unique<FaultEngine>(config_.faultPlan, system);
        system.installFaultEngine(fault_engine.get());
        faults_ = fault_engine.get();
    }

    workload.setScale(config_.scale);
    workload.setup(ctx);
    if (paradigm->kind() == ParadigmKind::UmHints)
        workload.applyUmHints(ctx);

    // Differential validation: constructed only when requested, so the
    // disabled path runs exactly the pre-check code. Attached before
    // onSetupComplete() so setup-time subscriptions reach the sink.
    std::unique_ptr<CheckContext> check;
    if (config_.check.enabled) {
        check = std::make_unique<CheckContext>(config_.check, system);
        check->attachParadigm(paradigm.get());
        paradigm->attachChecker(check.get());
        check_ = check.get();
    }

    paradigm->onSetupComplete();

    // Observability: constructed only when requested, so the disabled
    // path runs exactly the pre-observability code.
    std::unique_ptr<Observability> obs;
    if (config_.obs.enabled()) {
        obs = std::make_unique<Observability>(config_.obs);
        system.registerMetrics(obs->registry());
        paradigm->registerMetrics(obs->registry());
        if (fault_engine != nullptr)
            fault_engine->registerMetrics(obs->registry());
        if (TimelineRecorder* rec = obs->recorder()) {
            system.installRecorder(rec);
            paradigm->attachRecorder(rec);
            if (fault_engine != nullptr)
                fault_engine->attachRecorder(rec);
            for (std::size_t g = 0; g < system.numGpus(); ++g)
                rec->nameTrack(static_cast<int>(g),
                               "gpu" + std::to_string(g));
            rec->nameTrack(TimelineRecorder::systemTid, "system");
            rec->nameTrack(TimelineRecorder::faultTid, "faults");
            rec->nameTrack(TimelineRecorder::driverTid, "driver");
        }
        if (ProfileCollector* prof = obs->profile()) {
            system.installProfile(prof);
            paradigm->attachProfile(prof);
            // Resolved at finalize(), while the system is still alive.
            prof->setRegionResolver([&system](PageNum vpn) {
                const Region* region = system.driver().regionOf(
                    system.geometry().pageBase(vpn));
                return region != nullptr ? region->label
                                         : std::string("<unmapped>");
            });
        }
        if (CausalRecorder* causal = obs->causal()) {
            CausalModel model;
            const InterconnectSpec& spec = system.topology().spec();
            model.linkBandwidth = spec.bandwidth;
            model.linkInfinite = spec.infinite;
            model.linkLatency = spec.latency;
            model.headerBytes = spec.headerBytes;
            model.cacheLineBytes = system.config().gpu.cacheLineBytes;
            model.kernelLaunchOverhead =
                system.config().gpu.kernelLaunchOverhead;
            model.wqDrainScale = system.config().gps.wqDrainScale;
            model.numGpus = system.numGpus();
            causal->setModel(model);
            system.installCausal(causal);
            paradigm->attachCausal(causal);
            if (fault_engine != nullptr)
                fault_engine->attachCausal(causal);
        }
        obs->startSampling(system.events().now());
        CausalRecorder* causal_feed = obs->causal();
        system.events().setObserver(
            [&obs, causal_feed](Tick now, const std::string& name) {
                obs->poll(now);
                if (causal_feed != nullptr)
                    causal_feed->onEvent(name);
            });
        obs_ = obs.get();
    }

    const std::size_t eff_requested =
        config_.effectiveIterationsOverride != 0
            ? config_.effectiveIterationsOverride
            : workload.effectiveIterations();
    const std::size_t max_iters = std::max<std::size_t>(eff_requested, 1);
    const std::size_t sim_iters =
        std::min<std::size_t>(1 + config_.steadyIterations, max_iters);
    if (obs != nullptr && obs->causal() != nullptr)
        obs->causal()->setEffectiveIterations(
            std::max<std::uint64_t>(eff_requested, 1));

    RunResult result;
    result.workload = workload.name();
    result.paradigm = to_string(paradigm->kind());
    result.numGpus = system.numGpus();

    KernelCounters totals;
    std::vector<Tick> iter_time;
    std::vector<std::uint64_t> iter_bytes;

    // --- Restore: rebuild loop position and machine state from the
    // snapshot, verified before any phase replays. The iteration()
    // calls the original run made before the capture point are
    // re-issued first so workload-internal generator state matches;
    // any paradigm/driver state they touch is overwritten by
    // applyState() right after. ---
    std::size_t start_iter = 0;
    std::size_t resume_phase = 0;
    bool resume_mid = false;
    std::vector<Phase> resume_phases;
    Tick resume_t_before = 0;
    std::uint64_t resume_b_before = 0;
    std::uint64_t global_phases = 0;

    if (snap.has_value()) {
        const snapshot::SnapshotMeta& meta = snap->meta;
        if (meta.workload != workload.name())
            throw snapshot::SnapshotError(
                "snapshot was taken from workload '" + meta.workload +
                "', this run is '" + workload.name() + "'");
        if (meta.paradigm !=
            static_cast<std::uint8_t>(paradigm->kind()))
            throw snapshot::SnapshotError(
                "snapshot paradigm differs from the configured run");
        if (meta.numGpus != system.numGpus())
            throw snapshot::SnapshotError(
                "snapshot GPU count differs from the configured run");
        if (meta.pageBytes != config_.system.pageBytes)
            throw snapshot::SnapshotError(
                "snapshot page size differs from the configured run");
        if (meta.scale != config_.scale)
            throw snapshot::SnapshotError(
                "snapshot problem scale differs from the configured "
                "run");

        const snapshot::RunnerProgress& prog = snap->progress;
        start_iter = static_cast<std::size_t>(prog.resumeIter);
        resume_phase = static_cast<std::size_t>(prog.resumePhase);
        for (std::size_t i = 0; i < start_iter; ++i)
            (void)workload.iteration(i, ctx);
        if (resume_phase > 0) {
            paradigm->beginIteration(start_iter);
            if (start_iter == 0)
                paradigm->trackingStart();
            resume_phases = workload.iteration(start_iter, ctx);
            if (resume_phase > resume_phases.size())
                throw snapshot::SnapshotError(
                    "snapshot resume phase is beyond the workload's "
                    "iteration");
            resume_mid = true;
        }

        snapshot::applyState(*snap, system, *paradigm,
                             fault_engine.get(),
                             config_.restoreMutateForTest);

        // Collector state resumes with the machine state so a restored
        // run's timeline/metrics/causal outputs are byte-identical to
        // the uninterrupted run's.
        if (prog.hasObs) {
            if (obs == nullptr)
                throw snapshot::SnapshotError(
                    "snapshot carries observability state but this "
                    "run has observability off");
            snapshot::Deserializer obs_in(prog.obsState);
            obs->restoreState(obs_in);
        } else if (obs != nullptr) {
            gps_warn("resuming an observability run from a snapshot "
                     "without collector state; outputs cover only the "
                     "resumed window");
        }

        totals = prog.totals;
        iter_time = prog.iterTime;
        iter_bytes = prog.iterBytes;
        global_phases = prog.globalPhases;
        resume_t_before = prog.tBefore;
        resume_b_before = prog.bBefore;
        result.hasSubscriberHist = prog.hasSubscriberHist;
        if (prog.hasSubscriberHist) {
            result.subscriberHist.clear();
            const std::size_t buckets =
                std::min(prog.histBuckets.size(),
                         result.subscriberHist.size());
            for (std::size_t i = 0; i < buckets; ++i)
                if (prog.histBuckets[i] != 0)
                    result.subscriberHist.sample(i,
                                                 prog.histBuckets[i]);
        }
    }

    // --- Capture: encode the quiescent system once the requested
    // point is reached, tagged with the loop position to resume at. ---
    bool captured = false;
    auto capture = [&](std::uint64_t at_iter, std::uint64_t at_phase,
                       Tick t_before, std::uint64_t b_before) {
        if (captured)
            return;
        snapshot::SnapshotMeta meta;
        meta.workload = workload.name();
        meta.paradigm = static_cast<std::uint8_t>(paradigm->kind());
        meta.numGpus = static_cast<std::uint32_t>(system.numGpus());
        meta.pageBytes = config_.system.pageBytes;
        meta.scale = config_.scale;
        meta.stateKey = config_.snapshotKey;
        snapshot::RunnerProgress prog;
        prog.resumeIter = at_iter;
        prog.resumePhase = at_phase;
        prog.globalPhases = global_phases;
        prog.tBefore = t_before;
        prog.bBefore = b_before;
        prog.totals = totals;
        prog.iterTime = iter_time;
        prog.iterBytes = iter_bytes;
        prog.hasSubscriberHist = result.hasSubscriberHist;
        if (result.hasSubscriberHist)
            for (std::size_t i = 0; i < result.subscriberHist.size();
                 ++i)
                prog.histBuckets.push_back(
                    result.subscriberHist.bucket(i));
        if (obs != nullptr) {
            prog.hasObs = true;
            snapshot::Serializer obs_out;
            obs->saveState(obs_out);
            prog.obsState = obs_out.bytes();
        }
        const std::string bytes = snapshot::encodeSnapshot(
            system, *paradigm, fault_engine.get(), meta, prog);
        if (!config_.snapshotOut.empty())
            snapshot::writeSnapshotFile(config_.snapshotOut, bytes);
        if (config_.snapshotSink != nullptr)
            *config_.snapshotSink = bytes;
        captured = true;
    };

    // Normally the steady state is sampled and extrapolated; a pending
    // fault plan extends the simulated window (up to the workload's full
    // run) so events scheduled deep into the run still come due.
    CancelToken* cancel = config_.cancel.get();
    for (std::size_t iter = start_iter; iter < max_iters; ++iter) {
        if (iter >= sim_iters &&
            (fault_engine == nullptr || fault_engine->done()))
            break;
        if (cancel != nullptr)
            cancel->throwIfCancelled();

        const bool resuming = resume_mid && iter == start_iter;
        if (capturing && !resuming &&
            config_.snapshotAt.kind == snapshot::AtKind::Iter &&
            config_.snapshotAt.n == iter)
            capture(iter, 0, system.events().now(),
                    system.topology().totalPayloadBytes());

        Tick t_before = 0;
        std::uint64_t b_before = 0;
        std::vector<Phase> phases;
        std::size_t first_phase = 0;
        if (resuming) {
            phases = std::move(resume_phases);
            first_phase = resume_phase;
            t_before = resume_t_before;
            b_before = resume_b_before;
        } else {
            paradigm->beginIteration(iter);
            if (iter == 0)
                paradigm->trackingStart();
            t_before = system.events().now();
            b_before = system.topology().totalPayloadBytes();
            if (obs != nullptr && obs->causal() != nullptr)
                obs->causal()->beginIteration(iter, t_before);
            phases = workload.iteration(iter, ctx);
        }

        for (std::size_t p = first_phase; p < phases.size(); ++p) {
            executePhase(system, *paradigm, phases[p], totals);
            ++global_phases;
            if (capturing &&
                config_.snapshotAt.kind == snapshot::AtKind::Phase &&
                config_.snapshotAt.n == global_phases)
                capture(iter, p + 1, t_before, b_before);
        }

        if (iter == 0) {
            // The profile point sits after iteration 0's phases but
            // before cuGPSTrackingStop(): the warm boundary shared by
            // every config that only differs in post-profile policy
            // (e.g. gps.autoUnsubscribe).
            if (capturing &&
                config_.snapshotAt.kind == snapshot::AtKind::Profile)
                capture(0, phases.size(), t_before, b_before);
            paradigm->trackingStop(totals);
            result.hasSubscriberHist =
                paradigm->fillSubscriberHistogram(result.subscriberHist);
        }

        if (obs != nullptr && obs->causal() != nullptr)
            obs->causal()->endIteration(system.events().now());
        iter_time.push_back(system.events().now() - t_before);
        iter_bytes.push_back(system.topology().totalPayloadBytes() -
                             b_before);
    }
    if (capturing && !captured)
        gps_warn("snapshot point ",
                 snapshot::to_string(config_.snapshotAt),
                 " was never reached; no snapshot written");

    // Extrapolate the simulated steady state to the full run length.
    const std::size_t n_sim = iter_time.size();
    Tick total_time = iter_time.empty() ? 0 : iter_time.front();
    double total_bytes =
        iter_bytes.empty() ? 0.0 : static_cast<double>(iter_bytes.front());
    if (n_sim > 1) {
        Tick steady_sum = 0;
        double steady_bytes = 0.0;
        for (std::size_t i = 1; i < n_sim; ++i) {
            steady_sum += iter_time[i];
            steady_bytes += static_cast<double>(iter_bytes[i]);
        }
        const double steady_count = static_cast<double>(n_sim - 1);
        const double remaining =
            static_cast<double>(eff_requested - 1);
        total_time += static_cast<Tick>(
            static_cast<double>(steady_sum) / steady_count * remaining);
        total_bytes += steady_bytes / steady_count * remaining;
    }

    result.totalTime = total_time;
    result.interconnectBytes = clampToUint64(total_bytes);
    result.totals = totals;

    // Aggregate cache/TLB rates across GPUs.
    std::uint64_t l2_hits = 0, l2_misses = 0;
    std::uint64_t tlb_hits = 0, tlb_misses = 0;
    for (std::size_t g = 0; g < system.numGpus(); ++g) {
        const GpuModel& gpu = system.gpu(static_cast<GpuId>(g));
        l2_hits += gpu.l2().hits();
        l2_misses += gpu.l2().misses();
        tlb_hits += gpu.tlb().hits();
        tlb_misses += gpu.tlb().misses();
    }
    result.l2HitRate =
        (l2_hits + l2_misses) == 0
            ? 0.0
            : static_cast<double>(l2_hits) /
                  static_cast<double>(l2_hits + l2_misses);
    result.tlbHitRate =
        (tlb_hits + tlb_misses) == 0
            ? 0.0
            : static_cast<double>(tlb_hits) /
                  static_cast<double>(tlb_hits + tlb_misses);

    result.stats = system.stats();
    paradigm->exportStats(result.stats);
    totals.exportStats(result.stats, "totals");
    result.wqHitRate = result.stats.get("gps.wq_hit_rate");
    result.gpsTlbHitRate = result.stats.get("gps.gps_tlb_hit_rate");

    if (faults_ != nullptr) {
        if (!faults_->done())
            gps_warn("fault plan has events beyond the simulated run; ",
                     "they were never injected");
        faults_->report().exportStats(result.stats);
        result.faultReport = faults_->report();
        result.hasFaultReport = true;
        system.installFaultEngine(nullptr);
        faults_ = nullptr;
    }

    if (check != nullptr) {
        result.check = std::make_shared<const CheckReport>(
            check->finalize(totals, result.stats));
        paradigm->attachChecker(nullptr);
        check_ = nullptr;
    }

    if (obs != nullptr) {
        system.events().setObserver(nullptr);
        result.obs = std::make_shared<const ObsReport>(
            obs->finalize(system.events().now()));
        if (obs->recorder() != nullptr) {
            system.installRecorder(nullptr);
            paradigm->attachRecorder(nullptr);
            if (fault_engine != nullptr)
                fault_engine->attachRecorder(nullptr);
        }
        if (obs->profile() != nullptr) {
            system.installProfile(nullptr);
            paradigm->attachProfile(nullptr);
        }
        if (obs->causal() != nullptr) {
            system.installCausal(nullptr);
            paradigm->attachCausal(nullptr);
            if (fault_engine != nullptr)
                fault_engine->attachCausal(nullptr);
        }
        obs_ = nullptr;
    }
    return result;
}

RunResult
Runner::runByName(const std::string& workload_name)
{
    std::unique_ptr<Workload> workload = makeWorkload(workload_name);
    return run(*workload);
}

Tick
Runner::executePhase(MultiGpuSystem& system, Paradigm& paradigm,
                     Phase& phase, KernelCounters& totals)
{
    const std::size_t n = system.numGpus();
    Topology& topo = system.topology();
    EventQueue& events = system.events();
    const PageGeometry& geo = system.geometry();

    // Inject any faults that have come due before the phase begins; they
    // fire at the current tick so the phase-time invariant below holds.
    if (faults_ != nullptr)
        faults_->pump(events, paradigm);

    const Tick start = events.now();

    // Intra-phase events (drains, migrations, link transfers) are
    // recorded against the phase's start tick.
    TimelineRecorder* rec = obs_ != nullptr ? obs_->recorder() : nullptr;
    if (rec != nullptr)
        rec->advanceTo(start);

    // --- Pre-kernel stage: prefetch hints (UM+hints). Prefetches are
    // asynchronous, so their transfers overlap with the kernels (they
    // share the phase traffic matrix); only the API launch chain
    // serializes. ---
    TrafficMatrix traffic(n);
    KernelCounters stage_counters;
    if (check_ != nullptr)
        check_->beginPhase(phase.name);
    const Tick prefetch_time =
        paradigm.beginPhase(phase, stage_counters, traffic);

    // --- Concurrent kernels: chunked round-robin replay. Each turn
    // pulls one chunk through the batched stream API (one virtual call
    // per chunk, not per access) and caches the driver state of the
    // last-touched page so same-page runs skip state re-translation.
    // The access order, TLB behavior and counter semantics are
    // byte-identical to the scalar next() loop. ---
    std::vector<KernelCounters> counters(n);

    struct Cursor
    {
        KernelLaunch* kernel;
        bool done = false;
        PageNum lastVpn = ~PageNum(0);
        PageState* lastState = nullptr;
    };
    std::vector<Cursor> cursors;
    for (KernelLaunch& kernel : phase.kernels) {
        gps_assert(kernel.gpu < n, "kernel on unknown GPU");
        gps_assert(kernel.stream != nullptr, "kernel without a stream");
        counters[kernel.gpu].computeInstrs += kernel.computeInstrs;
        counters[kernel.gpu].dramBytes += kernel.prechargedDramBytes;
        cursors.push_back({&kernel, false, ~PageNum(0), nullptr});
    }

    Driver& driver = system.driver();
    const std::size_t chunk =
        std::max<std::size_t>(config_.replayChunk, 1);
    // Cancellation granularity: once per round-robin turn over all
    // kernels (one chunk per GPU), so a cancel or deadline lands within
    // microseconds without touching the per-access hot loop.
    CancelToken* cancel = config_.cancel.get();
    std::vector<MemAccess> batch(chunk);
    std::size_t live = cursors.size();
    while (live > 0) {
        if (cancel != nullptr)
            cancel->throwIfCancelled();
        for (Cursor& cursor : cursors) {
            if (cursor.done)
                continue;
            const GpuId gpu = cursor.kernel->gpu;
            GpuModel& gpu_model = system.gpu(gpu);
            KernelCounters& c = counters[gpu];
            const std::size_t got =
                cursor.kernel->stream->nextBatch(batch.data(), chunk);
            if (got < chunk) {
                // nextBatch() under-fills only at end of stream.
                cursor.done = true;
                --live;
            }
            for (std::size_t i = 0; i < got; ++i) {
                const MemAccess& access = batch[i];
                ++c.accesses;
                switch (access.type) {
                  case AccessType::Load: ++c.loads; break;
                  case AccessType::Store: ++c.stores; break;
                  case AccessType::Atomic: ++c.atomics; break;
                }
                const PageNum vpn = geo.pageNum(access.vaddr);
                const bool tlb_miss = gpu_model.tlbAccess(vpn, c);
                if (vpn != cursor.lastVpn) {
                    cursor.lastVpn = vpn;
                    cursor.lastState = &driver.state(vpn);
                }
                paradigm.access(gpu, access, vpn, *cursor.lastState,
                                tlb_miss, c, traffic);
                if (check_ != nullptr)
                    check_->onAccess(gpu, access, vpn);
            }
        }
    }

    // End of each grid: implicit release (GPS drains its write queues).
    for (Cursor& cursor : cursors) {
        paradigm.endKernel(cursor.kernel->gpu, counters[cursor.kernel->gpu],
                           traffic);
        if (check_ != nullptr)
            check_->onKernelEnd(cursor.kernel->gpu);
    }

    // Faulted paths: move flows off Down links, inflate Degraded ones.
    if (faults_ != nullptr)
        topo.routeAroundFaults(traffic, faults_->report());

    // --- Timing: per-GPU bottleneck, then the barrier max. ---
    // kernelTimeBreakdown().total is exactly kernelTime(); the
    // intermediate terms only leave this loop when profiling is on.
    ProfileCollector* prof = obs_ != nullptr ? obs_->profile() : nullptr;
    CausalRecorder* causal = obs_ != nullptr ? obs_->causal() : nullptr;
    const Tick launch = system.config().gpu.kernelLaunchOverhead;
    Tick slowest = 0;
    std::vector<Tick> gpu_time(n, 0);
    std::vector<CausalKernel> causal_kernels;
    for (const Cursor& cursor : cursors) {
        const GpuId gpu = cursor.kernel->gpu;
        const KernelTimeBreakdown bd =
            system.gpu(gpu).kernelTimeBreakdown(counters[gpu], topo);
        const Tick kernel_time = bd.total + launch;
        const Tick egress_time = topo.egressTime(traffic, gpu);
        const Tick ingress_time = topo.ingressTime(traffic, gpu);
        gpu_time[gpu] =
            std::max({kernel_time, egress_time, ingress_time});
        slowest = std::max(slowest, gpu_time[gpu]);
        if (causal != nullptr) {
            // Mirror every input of the timing formula; remote stalls
            // are kept as round-trip batch counts so the predictor can
            // re-derive them under a scaled link.
            const GpuConfig& gcfg = system.config().gpu;
            CausalKernel ck;
            ck.gpu = gpu;
            ck.tCompute = bd.tCompute;
            ck.tL2 = bd.tL2;
            ck.tDram = bd.tDram;
            ck.tWalks = bd.tWalks;
            if (counters[gpu].remoteLoads > 0)
                ck.batchesLoads = std::ceil(
                    static_cast<double>(counters[gpu].remoteLoads) /
                    static_cast<double>(gcfg.remoteLoadMlp));
            if (counters[gpu].remoteAtomics > 0)
                ck.batchesAtomics = std::ceil(
                    static_cast<double>(counters[gpu].remoteAtomics) /
                    static_cast<double>(gcfg.remoteAtomicMlp));
            ck.tFaults = bd.tFaults;
            ck.tShootdowns = bd.tShootdowns;
            ck.tWqStall = bd.tWqStall;
            ck.egressBytes = traffic.egress(gpu);
            ck.ingressBytes = traffic.ingress(gpu);
            ck.gpuTime = gpu_time[gpu];
            causal_kernels.push_back(ck);
        }
        if (prof != nullptr) {
            BottleneckProfile p;
            p.phase = phase.name;
            p.gpu = gpu;
            p.tCompute = bd.tCompute;
            p.tL2 = bd.tL2;
            p.tDram = bd.tDram;
            p.tWalks = bd.tWalks;
            p.tRemote = bd.tRemote;
            p.tFaults = bd.tFaults;
            p.tShootdowns = bd.tShootdowns;
            p.tWqStall = bd.tWqStall;
            p.tEgress = egress_time;
            p.tIngress = ingress_time;
            p.total = gpu_time[gpu];
            p.dramBytes = counters[gpu].dramBytes;
            p.egressBytes = traffic.egress(gpu);
            p.ingressBytes = traffic.ingress(gpu);
            p.peakDramBps = system.config().gpu.dramBandwidth;
            p.peakLinkBps =
                topo.spec().infinite ? 0.0 : topo.spec().bandwidth;
            prof->addKernel(std::move(p));
        }
    }
    topo.applyPhaseTraffic(traffic);

    // --- Barrier stage: bulk-synchronous broadcasts. ---
    TrafficMatrix barrier_traffic(n);
    const Tick barrier_overhead =
        paradigm.atBarrier(stage_counters, barrier_traffic);
    if (faults_ != nullptr)
        topo.routeAroundFaults(barrier_traffic, faults_->report());
    const Tick barrier_time =
        topo.applyPhaseTraffic(barrier_traffic) + barrier_overhead;

    const Tick phase_time = prefetch_time + slowest + barrier_time;

    if (causal != nullptr) {
        CausalPhase cp;
        cp.name = phase.name;
        cp.iter = causal->currentIteration();
        cp.start = start;
        cp.prefetchTime = prefetch_time;
        cp.barrierOverhead = barrier_overhead;
        cp.barrierTime = barrier_time;
        cp.phaseTime = phase_time;
        cp.kernels = std::move(causal_kernels);
        cp.barrierEgress.reserve(n);
        cp.barrierIngress.reserve(n);
        for (std::size_t g = 0; g < n; ++g) {
            cp.barrierEgress.push_back(
                barrier_traffic.egress(static_cast<GpuId>(g)));
            cp.barrierIngress.push_back(
                barrier_traffic.ingress(static_cast<GpuId>(g)));
        }
        causal->addPhase(std::move(cp));
    }

    // Drive simulated time through the event queue: one completion event
    // per kernel, then the barrier. The name prefix is built once and
    // the buffer reused across kernels.
    std::string done_name = phase.name + ".kernel_done.";
    const std::size_t done_prefix = done_name.size();
    for (const Cursor& cursor : cursors) {
        const GpuId gpu = cursor.kernel->gpu;
        done_name.resize(done_prefix);
        done_name += std::to_string(gpu);
        events.schedule(start + prefetch_time + gpu_time[gpu], done_name,
                        [] {});
    }
    events.schedule(start + phase_time, phase.name + ".barrier", [] {},
                    barrierPriority);
    events.run();
    gps_assert(events.now() == start + phase_time,
               "event queue out of sync with phase timing");

    if (rec != nullptr) {
        if (prefetch_time > 0)
            rec->complete(TimelineRecorder::driverTid,
                          phase.name + ".prefetch", "prefetch", start,
                          prefetch_time);
        for (const Cursor& cursor : cursors) {
            const GpuId gpu = cursor.kernel->gpu;
            rec->complete(
                static_cast<int>(gpu), phase.name, "kernel",
                start + prefetch_time, gpu_time[gpu],
                {{"accesses",
                  static_cast<double>(counters[gpu].accesses)}});
        }
        if (barrier_time > 0)
            rec->complete(TimelineRecorder::systemTid,
                          phase.name + ".barrier", "barrier",
                          start + prefetch_time + slowest, barrier_time);
        rec->complete(TimelineRecorder::systemTid, phase.name, "phase",
                      start, phase_time);
    }

    for (const KernelCounters& c : counters)
        totals.merge(c);
    totals.merge(stage_counters);
    return phase_time;
}

RunResult
runWorkload(const std::string& workload_name, const RunConfig& config)
{
    Runner runner(config);
    return runner.runByName(workload_name);
}

} // namespace gps
