/**
 * @file
 * Parallel sweep runner: fans independent (workload, RunConfig) runs
 * across a pool of worker threads.
 *
 * Every simulation run is self-contained — Runner::run constructs its
 * own MultiGpuSystem, paradigm and workload instance and shares no
 * mutable state with other runs — so config sweeps (paradigm grids,
 * GPU-count scans, sensitivity studies) are embarrassingly parallel.
 * runSweep() executes the job list on up to @p workers threads and
 * returns the outcomes in input order, so callers can print results
 * serially and the output is byte-identical to a one-worker run.
 */

#ifndef GPS_API_SWEEP_HH
#define GPS_API_SWEEP_HH

#include <exception>
#include <string>
#include <vector>

#include "api/runner.hh"

namespace gps
{

/** One independent simulation in a sweep. */
struct SweepJob
{
    std::string workload;
    RunConfig config;

    /** Free-form display label carried through to the outcome. */
    std::string label;
};

/** Result of one sweep job, in the same position as its input. */
struct SweepOutcome
{
    RunResult result;

    /** Host wall-clock time of this run, seconds. */
    double wallSeconds = 0.0;

    /** Label copied from the job. */
    std::string label;

    /** Set when the run threw; result is default-constructed then. */
    std::exception_ptr error;

    /**
     * Structured rendering of @ref error, so failed grid points stay
     * diagnosable after the exception_ptr can no longer be rethrown
     * (JSON exports, store entries, client responses): the exception's
     * demangled type name and its what() message.
     */
    std::string errorType;
    std::string errorMessage;

    bool ok() const { return error == nullptr; }

    /** "Type: message" one-liner for logs and reports; "" when ok. */
    std::string errorText() const;
};

/**
 * Render any in-flight exception as (type, message). Exposed for the
 * serve layer, which reports request failures the same way sweep
 * outcomes do.
 */
void describeException(const std::exception_ptr& error,
                       std::string& type, std::string& message);

/** Execute one job, capturing wall time and any thrown error. */
SweepOutcome runSweepJob(const SweepJob& job);

/** Worker count to use when the user asked for "all cores" (>= 1). */
std::size_t defaultSweepJobs();

/**
 * Run every job (even after failures — outcomes carry per-job errors)
 * on up to @p workers threads.
 * @return outcomes in input order, independent of completion order
 */
std::vector<SweepOutcome> runSweep(const std::vector<SweepJob>& jobs,
                                   std::size_t workers);

/**
 * Deterministic serialization of every field that can change a run's
 * outcome. Two (workload, config) pairs with equal keys produce equal
 * RunResults; used as the memoization key by the bench harness.
 */
std::string configKey(const std::string& workload,
                      const RunConfig& config);

/**
 * Warm-start grouping key: configKey() with the post-profile policy
 * knobs normalized away. Two jobs with equal warm keys are in
 * byte-identical simulation states at the profile boundary (end of
 * iteration 0, before cuGPSTrackingStop): gps.autoUnsubscribe is
 * consumed solely by trackingStop, and steadyIterations /
 * effectiveIterationsOverride only control how many further iterations
 * are simulated and extrapolated.
 */
std::string warmKey(const std::string& workload,
                    const RunConfig& config);

/** What the warm-started sweep did; counters accumulate across calls. */
struct WarmSweepStats
{
    std::size_t groups = 0;        ///< multi-member warm groups
    std::size_t leaders = 0;       ///< cold leader runs that captured
    std::size_t followers = 0;     ///< runs forked from a warm snapshot
    std::size_t coldFallbacks = 0; ///< followers run cold (leader failed)

    /** Wall seconds split by role, for the fork-speedup aggregate. */
    double leaderWallSeconds = 0.0;
    double followerWallSeconds = 0.0;

    /** Mean leader wall over mean follower wall (0 when undefined). */
    double forkSpeedup() const;
};

/**
 * runSweep() with warm-started forking: jobs sharing a warmKey() are
 * split into one cold leader — run with an in-memory profile-point
 * snapshot capture — and followers that restore the leader's snapshot
 * and only simulate from the profile boundary on. Results are
 * byte-identical to runSweep() (every restore is verified against the
 * captured functional summary); only wall time changes. Jobs that are
 * ineligible (check/observability enabled, or already carrying
 * snapshot/restore requests) and singleton groups run cold, and a
 * failed leader demotes its followers to cold runs.
 * @return outcomes in input order, independent of completion order
 */
std::vector<SweepOutcome> runSweepWarm(const std::vector<SweepJob>& jobs,
                                       std::size_t workers,
                                       WarmSweepStats* stats = nullptr);

} // namespace gps

#endif // GPS_API_SWEEP_HH
