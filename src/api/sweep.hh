/**
 * @file
 * Parallel sweep runner: fans independent (workload, RunConfig) runs
 * across a pool of worker threads.
 *
 * Every simulation run is self-contained — Runner::run constructs its
 * own MultiGpuSystem, paradigm and workload instance and shares no
 * mutable state with other runs — so config sweeps (paradigm grids,
 * GPU-count scans, sensitivity studies) are embarrassingly parallel.
 * runSweep() executes the job list on up to @p workers threads and
 * returns the outcomes in input order, so callers can print results
 * serially and the output is byte-identical to a one-worker run.
 */

#ifndef GPS_API_SWEEP_HH
#define GPS_API_SWEEP_HH

#include <exception>
#include <string>
#include <vector>

#include "api/runner.hh"

namespace gps
{

/** One independent simulation in a sweep. */
struct SweepJob
{
    std::string workload;
    RunConfig config;

    /** Free-form display label carried through to the outcome. */
    std::string label;
};

/** Result of one sweep job, in the same position as its input. */
struct SweepOutcome
{
    RunResult result;

    /** Host wall-clock time of this run, seconds. */
    double wallSeconds = 0.0;

    /** Label copied from the job. */
    std::string label;

    /** Set when the run threw; result is default-constructed then. */
    std::exception_ptr error;

    /**
     * Structured rendering of @ref error, so failed grid points stay
     * diagnosable after the exception_ptr can no longer be rethrown
     * (JSON exports, store entries, client responses): the exception's
     * demangled type name and its what() message.
     */
    std::string errorType;
    std::string errorMessage;

    bool ok() const { return error == nullptr; }

    /** "Type: message" one-liner for logs and reports; "" when ok. */
    std::string errorText() const;
};

/**
 * Render any in-flight exception as (type, message). Exposed for the
 * serve layer, which reports request failures the same way sweep
 * outcomes do.
 */
void describeException(const std::exception_ptr& error,
                       std::string& type, std::string& message);

/** Execute one job, capturing wall time and any thrown error. */
SweepOutcome runSweepJob(const SweepJob& job);

/** Worker count to use when the user asked for "all cores" (>= 1). */
std::size_t defaultSweepJobs();

/**
 * Run every job (even after failures — outcomes carry per-job errors)
 * on up to @p workers threads.
 * @return outcomes in input order, independent of completion order
 */
std::vector<SweepOutcome> runSweep(const std::vector<SweepJob>& jobs,
                                   std::size_t workers);

/**
 * Deterministic serialization of every field that can change a run's
 * outcome. Two (workload, config) pairs with equal keys produce equal
 * RunResults; used as the memoization key by the bench harness.
 */
std::string configKey(const std::string& workload,
                      const RunConfig& config);

} // namespace gps

#endif // GPS_API_SWEEP_HH
