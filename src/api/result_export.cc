#include "api/result_export.hh"

#include "check/check_config.hh"
#include "common/json.hh"

namespace gps
{

std::string
resultToJson(const RunResult& result, bool include_stats)
{
    JsonWriter json;
    json.beginObject();
    json.field("workload", result.workload);
    json.field("paradigm", result.paradigm);
    json.field("num_gpus",
               static_cast<std::uint64_t>(result.numGpus));
    json.field("total_time_ms", result.timeMs());
    json.field("interconnect_bytes", result.interconnectBytes);
    json.field("l2_hit_rate", result.l2HitRate);
    json.field("tlb_hit_rate", result.tlbHitRate);
    json.field("wq_hit_rate", result.wqHitRate);
    json.field("gps_tlb_hit_rate", result.gpsTlbHitRate);

    json.key("totals").beginObject();
    json.field("accesses", result.totals.accesses);
    json.field("loads", result.totals.loads);
    json.field("stores", result.totals.stores);
    json.field("atomics", result.totals.atomics);
    json.field("page_faults", result.totals.pageFaults);
    json.field("page_migrations", result.totals.pageMigrations);
    json.field("remote_loads", result.totals.remoteLoads);
    json.field("remote_atomics", result.totals.remoteAtomics);
    json.field("pushed_store_bytes", result.totals.pushedStoreBytes);
    json.field("wq_inserts", result.totals.wqInserts);
    json.field("wq_coalesced", result.totals.wqCoalesced);
    json.field("wq_drains", result.totals.wqDrains);
    json.field("sys_collapses", result.totals.sysCollapses);
    json.endObject();

    if (result.hasSubscriberHist) {
        json.key("subscriber_histogram").beginArray();
        for (std::size_t b = 0; b < result.subscriberHist.size(); ++b)
            json.value(result.subscriberHist.bucket(b));
        json.endArray();
    }

    if (result.hasFaultReport) {
        const FaultReport& faults = result.faultReport;
        json.key("faults").beginObject();
        json.field("injected", faults.faultsInjected);
        json.field("links_down", faults.linksDown);
        json.field("links_degraded", faults.linksDegraded);
        json.field("links_restored", faults.linksRestored);
        json.field("reroutes", faults.reroutes);
        json.field("rerouted_bytes", faults.reroutedBytes);
        json.field("pcie_fallbacks", faults.pcieFallbacks);
        json.field("pcie_fallback_bytes", faults.pcieFallbackBytes);
        json.field("pages_retired", faults.pagesRetired);
        json.field("replicas_lost", faults.replicasLost);
        json.field("pages_degraded", faults.pagesDegraded);
        json.field("resubscribes", faults.resubscribes);
        json.field("wq_saturations", faults.wqSaturations);
        json.field("wq_saturated_drains", faults.wqSaturatedDrains);
        json.field("stall_time_ms", ticksToMs(faults.stallTicks));
        json.endObject();
    }

    if (result.check != nullptr) {
        const CheckReport& check = *result.check;
        json.key("check").beginObject();
        json.field("ok", check.ok());
        json.field("ref_accesses", check.refAccesses);
        json.field("unmodeled_accesses", check.unmodeledAccesses);
        json.field("sink_events", check.sinkEvents);
        json.field("invariant_checks", check.invariantChecks);
        json.field("counter_checks", check.counterChecks);
        json.field("divergences", check.divergences);
        if (!check.findings.empty()) {
            json.key("findings").beginArray();
            for (const CheckFinding& f : check.findings) {
                json.beginObject();
                json.field("invariant", f.invariant);
                json.field("detail", f.detail);
                json.field("phase", f.phase);
                if (f.gpu != invalidGpu)
                    json.field("gpu",
                               static_cast<std::uint64_t>(f.gpu));
                if (f.hasVpn)
                    json.field("vpn",
                               static_cast<std::uint64_t>(f.vpn));
                json.endObject();
            }
            json.endArray();
        }
        json.endObject();
    }

    if (include_stats) {
        json.key("stats").beginObject();
        for (const auto& [name, value] : result.stats.all())
            json.field(name, value);
        json.endObject();
    }

    json.endObject();
    return json.str();
}

} // namespace gps
