#include "api/system.hh"

#include "common/logging.hh"
#include "interconnect/node_topology.hh"
#include "obs/metric_registry.hh"
#include "obs/timeline.hh"

namespace gps
{

MultiGpuSystem::MultiGpuSystem(const SystemConfig& config)
    : config_(config), vas_(PageGeometry(config.pageBytes))
{
    gps_assert(config.numGpus >= 1 && config.numGpus <= maxGpus,
               "unsupported GPU count ", config.numGpus);
    for (std::size_t g = 0; g < config.numGpus; ++g) {
        gpus_.push_back(std::make_unique<GpuModel>(
            static_cast<GpuId>(g), config.gpu,
            PageGeometry(config.pageBytes)));
    }
    // numNodes == 1 constructs the plain flat topology rather than a
    // degenerate NodeTopology, keeping single-node runs byte-identical
    // to builds without the node tier.
    if (config.numNodes > 1) {
        if (config.numGpus % config.numNodes != 0)
            gps_fatal("GPU count ", config.numGpus,
                      " not divisible by node count ", config.numNodes);
        topology_ = std::make_unique<NodeTopology>(
            "interconnect", config.numGpus, config.numNodes,
            config.interconnect, config.interNode,
            config.linkBandwidthScale);
    } else {
        topology_ = std::make_unique<Topology>(
            "interconnect", config.numGpus, config.interconnect,
            config.linkBandwidthScale);
    }
    driver_ = std::make_unique<Driver>(vas_, gpus_, *topology_);
}

ConfigDump
MultiGpuSystem::configDump() const
{
    const GpuConfig& g = config_.gpu;
    const GpsConfig& s = config_.gps;
    ConfigDump dump;

    dump.section("GPU Parameters");
    dump.entry("Cache block size",
               std::to_string(g.cacheLineBytes) + " bytes");
    dump.entry("Global memory",
               std::to_string(g.globalMemoryBytes / GiB) + " GB");
    dump.entry("Streaming multiprocessors (SM)",
               static_cast<std::uint64_t>(g.numSms));
    dump.entry("CUDA cores/SM",
               static_cast<std::uint64_t>(g.cudaCoresPerSm));
    dump.entry("L2 Cache size",
               std::to_string(g.l2CacheBytes / MiB) + " MB");
    dump.entry("Warp size", static_cast<std::uint64_t>(g.warpSize));
    dump.entry("Maximum threads per SM",
               static_cast<std::uint64_t>(g.maxThreadsPerSm));
    dump.entry("Maximum threads per CTA",
               static_cast<std::uint64_t>(g.maxThreadsPerCta));

    dump.section("GPS Structures");
    dump.entry("Remote write queue",
               std::to_string(s.wqEntries) + " entries");
    dump.entry("Remote write queue entry size",
               std::to_string(s.wqEntryBytes) + " bytes");
    dump.entry("TLB", std::to_string(s.gpsTlbWays) +
                          "-way set associative");
    dump.entry("TLB size", std::to_string(s.gpsTlbEntries) + " entries");
    dump.entry("Virtual address",
               std::to_string(g.virtualAddressBits) + " bits");
    dump.entry("Physical address",
               std::to_string(g.physicalAddressBits) + " bits");

    dump.section("System");
    dump.entry("GPUs", static_cast<std::uint64_t>(config_.numGpus));
    dump.entry("Interconnect", to_string(config_.interconnect));
    if (config_.numNodes > 1) {
        dump.entry("Nodes", static_cast<std::uint64_t>(config_.numNodes));
        dump.entry("Inter-node fabric", to_string(config_.interNode));
    }
    dump.entry("Page size", std::to_string(config_.pageBytes / KiB) +
                                " KB");
    return dump;
}

StatSet
MultiGpuSystem::stats() const
{
    StatSet out;
    for (const auto& gpu : gpus_)
        gpu->exportStats(out);
    topology_->exportStats(out);
    driver_->exportStats(out);
    return out;
}

void
MultiGpuSystem::registerMetrics(MetricRegistry& reg) const
{
    for (const auto& gpu : gpus_)
        gpu->registerMetrics(reg);
    topology_->registerMetrics(reg);
    driver_->registerMetrics(reg);
}

void
MultiGpuSystem::installRecorder(TimelineRecorder* recorder)
{
    recorder_ = recorder;
    topology_->attachRecorder(recorder);
    driver_->attachRecorder(recorder);
}

void
MultiGpuSystem::installProfile(ProfileCollector* profile)
{
    profile_ = profile;
    topology_->attachProfile(profile);
    driver_->attachProfile(profile);
}

void
MultiGpuSystem::installCausal(CausalRecorder* causal)
{
    causal_ = causal;
    topology_->attachCausal(causal);
    driver_->attachCausal(causal);
}

void
MultiGpuSystem::resetStats()
{
    for (auto& gpu : gpus_)
        gpu->resetStats();
    topology_->resetStats();
}

} // namespace gps
