#include "mem/page_table.hh"

#include "common/logging.hh"

namespace gps
{

void
PageTable::map(PageNum vpn, const Pte& pte)
{
    table_[vpn] = pte;
    ++mapOps_;
}

void
PageTable::unmap(PageNum vpn)
{
    if (table_.erase(vpn) > 0)
        ++unmapOps_;
}

const Pte*
PageTable::lookup(PageNum vpn) const
{
    auto it = table_.find(vpn);
    return it == table_.end() ? nullptr : &it->second;
}

Pte*
PageTable::lookupMutable(PageNum vpn)
{
    auto it = table_.find(vpn);
    return it == table_.end() ? nullptr : &it->second;
}

void
PageTable::setGpsBit(PageNum vpn, bool value)
{
    Pte* pte = lookupMutable(vpn);
    gps_assert(pte != nullptr, "setGpsBit on unmapped vpn ", vpn);
    pte->gpsBit = value;
}

void
PageTable::exportStats(StatSet& out) const
{
    out.set(name() + ".mappings", static_cast<double>(table_.size()));
    out.set(name() + ".map_ops", static_cast<double>(mapOps_));
    out.set(name() + ".unmap_ops", static_cast<double>(unmapOps_));
}

} // namespace gps
