/**
 * @file
 * Set-associative TLB model with true-LRU replacement.
 *
 * Used in two places: the per-GPU last-level conventional TLB (whose misses
 * feed the GPS access tracking unit) and the small GPS-TLB inside the GPS
 * address translation unit (Table 1: 32 entries, 8-way).
 */

#ifndef GPS_MEM_TLB_HH
#define GPS_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** Set-associative translation lookaside buffer (tag-only model). */
class Tlb : public SimObject
{
  public:
    /**
     * @param name component name
     * @param entries total entries; must be a multiple of @p ways
     * @param ways associativity
     */
    Tlb(std::string name, std::size_t entries, std::size_t ways);

    /**
     * Probe for @p vpn, updating LRU on hit.
     * @return true on hit.
     */
    bool lookup(PageNum vpn);

    /** Insert @p vpn, evicting the set's LRU entry if needed. */
    void fill(PageNum vpn);

    /** Probe without inserting and without stats/LRU effects. */
    bool contains(PageNum vpn) const;

    /** Invalidate one translation (TLB shootdown target). */
    void invalidate(PageNum vpn);

    /** Invalidate everything. */
    void invalidateAll();

    std::size_t entries() const { return sets_ * ways_; }
    std::size_t ways() const { return ways_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Hit fraction over all lookups (0 when never probed). */
    double hitRate() const;

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;
    void resetStats() override;

    /** Serialize every entry, the LRU clock, and the counters. */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("tlb");
        out.u64(sets_);
        out.u64(ways_);
        for (const Entry& e : entries_) {
            out.u64(e.vpn);
            out.b(e.valid);
            out.u64(e.lastUse);
        }
        out.u64(useClock_);
        out.u64(hits_);
        out.u64(misses_);
        out.u64(evictions_);
        out.u64(shootdowns_);
    }

    /** Counterpart of saveState; geometry must match this instance. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("tlb");
        if (in.u64() != sets_ || in.u64() != ways_)
            throw snapshot::SnapshotError(
                "snapshot TLB geometry differs from the configured TLB");
        for (Entry& e : entries_) {
            e.vpn = in.u64();
            e.valid = in.b();
            e.lastUse = in.u64();
        }
        useClock_ = in.u64();
        hits_ = in.u64();
        misses_ = in.u64();
        evictions_ = in.u64();
        shootdowns_ = in.u64();
    }

  private:
    struct Entry
    {
        PageNum vpn = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(PageNum vpn) const { return vpn % sets_; }

    std::size_t sets_;
    std::size_t ways_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t shootdowns_ = 0;
};

} // namespace gps

#endif // GPS_MEM_TLB_HH
