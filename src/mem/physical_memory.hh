/**
 * @file
 * Per-GPU physical memory: a page-frame allocator over the GPU's local
 * DRAM. GPS replication allocates one frame per subscriber, so frame
 * accounting per GPU matters for the oversubscription path.
 */

#ifndef GPS_MEM_PHYSICAL_MEMORY_HH
#define GPS_MEM_PHYSICAL_MEMORY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "mem/page.hh"
#include "sim/sim_object.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** Page-frame allocator for one GPU's local DRAM. */
class PhysicalMemory : public SimObject
{
  public:
    /**
     * @param name component name for stats
     * @param capacity_bytes DRAM capacity
     * @param geometry page geometry; capacity must be page aligned
     */
    PhysicalMemory(std::string name, std::uint64_t capacity_bytes,
                   PageGeometry geometry);

    /**
     * Allocate one physical frame.
     * @return the frame's PPN, or nullopt when memory is exhausted.
     */
    std::optional<PageNum> allocFrame();

    /** Release a previously allocated frame. */
    void freeFrame(PageNum ppn);

    /** Whether @p ppn is currently allocated. */
    bool allocated(PageNum ppn) const;

    /**
     * Permanently take up to @p count free frames out of service (fault
     * injection: frames lost to hardware retirement). Frames in use are
     * never retired.
     * @return the number of frames actually retired.
     */
    std::uint64_t retireFrames(std::uint64_t count);

    /** Frames permanently retired by fault injection. */
    std::uint64_t framesRetired() const { return framesRetired_; }

    std::uint64_t capacityBytes() const { return capacityBytes_; }
    std::uint64_t totalFrames() const { return totalFrames_; }
    std::uint64_t framesInUse() const { return framesInUse_; }
    std::uint64_t framesFree() const { return totalFrames_ - framesInUse_; }

    /** Frames the device held before any retirement. */
    std::uint64_t initialFrames() const { return initialFrames_; }

    /**
     * Frames allocFrame could still hand out: the recycled free list
     * plus the untouched tail of the bump region. Invariant-checked
     * against framesFree() — the two must always agree.
     */
    std::uint64_t allocatableFrames() const
    {
        return freeList_.size() + (bumpLimit_ - bumpNext_);
    }

    const PageGeometry& geometry() const { return geometry_; }

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;

    /**
     * Serialize the full allocator state: frame ledger, bump region,
     * free list, and allocation bitmap.
     */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("physmem");
        out.u64(capacityBytes_);
        out.u64(totalFrames_);
        out.u64(initialFrames_);
        out.u64(framesInUse_);
        out.u64(peakFramesInUse_);
        out.u64(framesRetired_);
        out.u64(bumpNext_);
        out.u64(bumpLimit_);
        out.u64(freeList_.size());
        for (const PageNum ppn : freeList_)
            out.u64(ppn);
        out.u64(inUse_.size());
        for (const bool used : inUse_)
            out.b(used);
    }

    /** Counterpart of saveState; capacity must match this instance. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("physmem");
        if (in.u64() != capacityBytes_)
            throw snapshot::SnapshotError(
                "snapshot memory capacity differs from the configured "
                "device");
        totalFrames_ = in.u64();
        if (in.u64() != initialFrames_)
            throw snapshot::SnapshotError(
                "snapshot initial frame count differs from the "
                "configured device");
        framesInUse_ = in.u64();
        peakFramesInUse_ = in.u64();
        framesRetired_ = in.u64();
        bumpNext_ = in.u64();
        bumpLimit_ = in.u64();
        freeList_.resize(in.count(initialFrames_));
        for (PageNum& ppn : freeList_)
            ppn = in.u64();
        inUse_.resize(in.count(initialFrames_));
        for (std::size_t i = 0; i < inUse_.size(); ++i)
            inUse_[i] = in.b();
    }

  private:
    std::uint64_t capacityBytes_;
    PageGeometry geometry_;
    std::uint64_t totalFrames_;
    std::uint64_t initialFrames_;
    std::uint64_t framesInUse_ = 0;
    std::uint64_t peakFramesInUse_ = 0;
    std::uint64_t framesRetired_ = 0;

    /** Next never-used frame (bump allocation). */
    PageNum bumpNext_ = 0;

    /**
     * End of the bump region. Kept separate from totalFrames_ so that
     * retiring a recycled (free-list) frame does not also shrink the
     * never-used region — totalFrames_ counts capacity, bumpLimit_
     * bounds frame numbers.
     */
    PageNum bumpLimit_;

    /** Recycled frames. */
    std::vector<PageNum> freeList_;

    /** Allocation bitmap, grown lazily. */
    std::vector<bool> inUse_;
};

} // namespace gps

#endif // GPS_MEM_PHYSICAL_MEMORY_HH
