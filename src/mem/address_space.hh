/**
 * @file
 * Shared virtual address space allocator.
 *
 * All GPUs share a single VA space (as with CUDA unified virtual
 * addressing). Allocations carry the management kind requested through the
 * driver API: pinned (cudaMalloc), managed (cudaMallocManaged) or GPS
 * (cudaMallocGPS). The GPS address space of the paper's Section 3.1 is
 * simply the set of regions with kind Gps.
 */

#ifndef GPS_MEM_ADDRESS_SPACE_HH
#define GPS_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/types.hh"
#include "mem/page.hh"

namespace gps
{

/** How a virtual memory region is managed. */
enum class MemKind : std::uint8_t {
    Pinned,      ///< cudaMalloc: fixed home GPU, peer access allowed
    Managed,     ///< cudaMallocManaged: UM fault/hint migration
    Gps,         ///< cudaMallocGPS: replicated publish-subscribe pages
    Replicated,  ///< manually mirrored on every GPU (RDL/memcpy styles)
};

std::string to_string(MemKind kind);

/** One allocation in the shared VA space. */
struct Region
{
    Addr base = 0;
    std::uint64_t size = 0;
    MemKind kind = MemKind::Pinned;
    std::string label;

    /** Allocating GPU (home for pinned, first backer for GPS/managed). */
    GpuId home = 0;

    /** GPS only: subscriptions managed manually via memAdvise. */
    bool manualSubscription = false;

    Addr end() const { return base + size; }
    bool contains(Addr a) const { return a >= base && a < end(); }
};

/**
 * Page-aligned bump allocator plus region registry for the shared VA
 * space.
 */
class AddressSpace
{
  public:
    /**
     * @param geometry page geometry every allocation is aligned to
     * @param base lowest VA handed out (defaults mimic a GPU heap base)
     */
    explicit AddressSpace(PageGeometry geometry,
                          Addr base = Addr(1) << 40);

    /** Reserve a region; size is rounded up to the page size. */
    Region& allocate(std::uint64_t size, MemKind kind, std::string label,
                     GpuId home, bool manual_subscription = false);

    /** Release the region starting exactly at @p base. */
    void release(Addr base);

    /** Region containing @p addr, or nullptr. */
    const Region* regionOf(Addr addr) const;

    /** Region starting exactly at @p base, or nullptr. */
    const Region* regionAt(Addr base) const;
    Region* regionAtMutable(Addr base);

    const std::map<Addr, Region>& regions() const { return regions_; }
    const PageGeometry& geometry() const { return geometry_; }

    /** Total bytes currently allocated. */
    std::uint64_t bytesAllocated() const { return bytesAllocated_; }

  private:
    PageGeometry geometry_;
    Addr next_;
    std::uint64_t bytesAllocated_ = 0;
    std::map<Addr, Region> regions_;
};

} // namespace gps

#endif // GPS_MEM_ADDRESS_SPACE_HH
