#include "mem/address_space.hh"

#include "common/logging.hh"

namespace gps
{

std::string
to_string(MemKind kind)
{
    switch (kind) {
      case MemKind::Pinned: return "pinned";
      case MemKind::Managed: return "managed";
      case MemKind::Gps: return "gps";
      case MemKind::Replicated: return "replicated";
    }
    return "?";
}

AddressSpace::AddressSpace(PageGeometry geometry, Addr base)
    : geometry_(geometry), next_(base)
{
    gps_assert(geometry_.pageOffset(base) == 0,
               "VA base not page aligned");
}

Region&
AddressSpace::allocate(std::uint64_t size, MemKind kind, std::string label,
                       GpuId home, bool manual_subscription)
{
    gps_assert(size > 0, "zero-byte allocation '", label, "'");
    const std::uint64_t page = geometry_.bytes();
    const std::uint64_t rounded = (size + page - 1) / page * page;

    Region region;
    region.base = next_;
    region.size = rounded;
    region.kind = kind;
    region.label = std::move(label);
    region.home = home;
    region.manualSubscription = manual_subscription;

    next_ += rounded + page; // one-page guard gap between regions
    bytesAllocated_ += rounded;

    auto [it, inserted] = regions_.emplace(region.base, region);
    gps_assert(inserted, "VA collision at ", region.base);
    return it->second;
}

void
AddressSpace::release(Addr base)
{
    auto it = regions_.find(base);
    gps_assert(it != regions_.end(), "release of unknown region ", base);
    bytesAllocated_ -= it->second.size;
    regions_.erase(it);
}

const Region*
AddressSpace::regionOf(Addr addr) const
{
    auto it = regions_.upper_bound(addr);
    if (it == regions_.begin())
        return nullptr;
    --it;
    return it->second.contains(addr) ? &it->second : nullptr;
}

const Region*
AddressSpace::regionAt(Addr base) const
{
    auto it = regions_.find(base);
    return it == regions_.end() ? nullptr : &it->second;
}

Region*
AddressSpace::regionAtMutable(Addr base)
{
    auto it = regions_.find(base);
    return it == regions_.end() ? nullptr : &it->second;
}

} // namespace gps
