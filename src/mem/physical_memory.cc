#include "mem/physical_memory.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/metric_registry.hh"

namespace gps
{

PhysicalMemory::PhysicalMemory(std::string name,
                               std::uint64_t capacity_bytes,
                               PageGeometry geometry)
    : SimObject(std::move(name)), capacityBytes_(capacity_bytes),
      geometry_(geometry),
      totalFrames_(capacity_bytes / geometry.bytes()),
      initialFrames_(totalFrames_), bumpLimit_(totalFrames_)
{
    gps_assert(totalFrames_ > 0, "zero-capacity physical memory");
}

std::optional<PageNum>
PhysicalMemory::allocFrame()
{
    PageNum ppn;
    if (!freeList_.empty()) {
        ppn = freeList_.back();
        freeList_.pop_back();
    } else if (bumpNext_ < bumpLimit_) {
        ppn = bumpNext_++;
    } else {
        return std::nullopt;
    }
    if (ppn >= inUse_.size())
        inUse_.resize(ppn + 1, false);
    inUse_[ppn] = true;
    ++framesInUse_;
    peakFramesInUse_ = std::max(peakFramesInUse_, framesInUse_);
    return ppn;
}

void
PhysicalMemory::freeFrame(PageNum ppn)
{
    gps_assert(ppn < inUse_.size() && inUse_[ppn],
               "double free of frame ", ppn, " in ", name());
    inUse_[ppn] = false;
    freeList_.push_back(ppn);
    --framesInUse_;
}

bool
PhysicalMemory::allocated(PageNum ppn) const
{
    return ppn < inUse_.size() && inUse_[ppn];
}

std::uint64_t
PhysicalMemory::retireFrames(std::uint64_t count)
{
    std::uint64_t retired = 0;
    // Recycled frames first: they leave circulation for good. Only the
    // capacity count shrinks — the bump region is untouched, or a
    // single retirement would cost two allocatable frames.
    while (retired < count && !freeList_.empty()) {
        freeList_.pop_back();
        --totalFrames_;
        ++retired;
    }
    // Then shrink the never-used bump region.
    while (retired < count && bumpNext_ < bumpLimit_) {
        --bumpLimit_;
        --totalFrames_;
        ++retired;
    }
    framesRetired_ += retired;
    gps_assert(framesFree() == allocatableFrames(),
               "frame accounting divergence in ", name());
    return retired;
}

void
PhysicalMemory::exportStats(StatSet& out) const
{
    out.set(name() + ".frames_in_use",
            static_cast<double>(framesInUse_));
    out.set(name() + ".frames_peak",
            static_cast<double>(peakFramesInUse_));
    out.set(name() + ".frames_total", static_cast<double>(totalFrames_));
    if (framesRetired_ > 0)
        out.set(name() + ".frames_retired",
                static_cast<double>(framesRetired_));
}

void
PhysicalMemory::registerMetrics(MetricRegistry& reg) const
{
    const std::string p = name() + '.';
    reg.gauge(p + "frames_in_use", "frames",
              [this] { return static_cast<double>(framesInUse_); });
    reg.gauge(p + "frames_peak", "frames",
              [this] { return static_cast<double>(peakFramesInUse_); });
    reg.gauge(p + "frames_total", "frames",
              [this] { return static_cast<double>(totalFrames_); });
    reg.counter(p + "frames_retired", "frames",
                [this] { return static_cast<double>(framesRetired_); });
}

} // namespace gps
