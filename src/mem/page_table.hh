/**
 * @file
 * Conventional per-GPU page table.
 *
 * Each GPU holds its own table mapping virtual page numbers to physical
 * frames. A mapping may point at a frame in *another* GPU's memory (a peer
 * mapping, used by RDL and by non-subscriber accesses to GPS pages). The
 * GPS extension is a single repurposed PTE bit (`gpsBit`) that marks the
 * page as potentially replicated, exactly as in the paper's Section 5.2.
 */

#ifndef GPS_MEM_PAGE_TABLE_HH
#define GPS_MEM_PAGE_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** A conventional page table entry (plus the GPS bit). */
struct Pte
{
    /** Physical frame the virtual page maps to. */
    PageNum ppn = 0;

    /** GPU whose memory holds that frame. */
    GpuId location = invalidGpu;

    /** Repurposed bit: page participates in GPS replication. */
    bool gpsBit = false;

    bool
    operator==(const Pte& other) const
    {
        return ppn == other.ppn && location == other.location &&
               gpsBit == other.gpsBit;
    }
};

/** One GPU's conventional page table. */
class PageTable : public SimObject
{
  public:
    explicit PageTable(std::string name)
        : SimObject(std::move(name))
    {}

    /** Install or replace the mapping for @p vpn. */
    void map(PageNum vpn, const Pte& pte);

    /** Remove the mapping for @p vpn (no-op if absent). */
    void unmap(PageNum vpn);

    /** Mapping for @p vpn, or nullptr when not mapped. */
    const Pte* lookup(PageNum vpn) const;

    /** Mutable access for flag updates; nullptr when not mapped. */
    Pte* lookupMutable(PageNum vpn);

    /** Set or clear the GPS bit; the page must be mapped. */
    void setGpsBit(PageNum vpn, bool value);

    std::size_t size() const { return table_.size(); }

    void exportStats(StatSet& out) const override;

    /**
     * Serialize every mapping in ascending VPN order (the unordered
     * map's iteration order must not leak into snapshot bytes) plus
     * the op counters.
     */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("pagetable");
        std::vector<PageNum> vpns;
        vpns.reserve(table_.size());
        for (const auto& [vpn, pte] : table_)
            vpns.push_back(vpn);
        std::sort(vpns.begin(), vpns.end());
        out.u64(vpns.size());
        for (const PageNum vpn : vpns) {
            const Pte& pte = table_.at(vpn);
            out.u64(vpn);
            out.u64(pte.ppn);
            out.u32(pte.location);
            out.b(pte.gpsBit);
        }
        out.u64(mapOps_);
        out.u64(unmapOps_);
    }

    /** Counterpart of saveState; replaces the current contents. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("pagetable");
        table_.clear();
        const std::uint64_t n = in.count(1ULL << 40);
        table_.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            const PageNum vpn = in.u64();
            Pte pte;
            pte.ppn = in.u64();
            pte.location = static_cast<GpuId>(in.u32());
            pte.gpsBit = in.b();
            table_.emplace(vpn, pte);
        }
        mapOps_ = in.u64();
        unmapOps_ = in.u64();
    }

  private:
    std::unordered_map<PageNum, Pte> table_;
    std::uint64_t mapOps_ = 0;
    std::uint64_t unmapOps_ = 0;
};

} // namespace gps

#endif // GPS_MEM_PAGE_TABLE_HH
