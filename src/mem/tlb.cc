#include "mem/tlb.hh"

#include "common/logging.hh"
#include "obs/metric_registry.hh"

namespace gps
{

Tlb::Tlb(std::string name, std::size_t entries, std::size_t ways)
    : SimObject(std::move(name)), sets_(entries / ways), ways_(ways),
      entries_(entries)
{
    gps_assert(ways > 0 && entries % ways == 0,
               "TLB entries (", entries, ") not a multiple of ways (", ways,
               ")");
    gps_assert(sets_ > 0, "TLB must have at least one set");
}

bool
Tlb::lookup(PageNum vpn)
{
    Entry* set = &entries_[setIndex(vpn) * ways_];
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].vpn == vpn) {
            set[w].lastUse = ++useClock_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Tlb::fill(PageNum vpn)
{
    Entry* set = &entries_[setIndex(vpn) * ways_];
    Entry* victim = &set[0];
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].vpn == vpn) {
            // Already present (e.g. racing fill); refresh LRU only.
            set[w].lastUse = ++useClock_;
            return;
        }
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    if (victim->valid)
        ++evictions_;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = ++useClock_;
}

bool
Tlb::contains(PageNum vpn) const
{
    const Entry* set = &entries_[setIndex(vpn) * ways_];
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].vpn == vpn)
            return true;
    }
    return false;
}

void
Tlb::invalidate(PageNum vpn)
{
    Entry* set = &entries_[setIndex(vpn) * ways_];
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].vpn == vpn) {
            set[w].valid = false;
            ++shootdowns_;
            return;
        }
    }
}

void
Tlb::invalidateAll()
{
    for (auto& e : entries_)
        e.valid = false;
    ++shootdowns_;
}

double
Tlb::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
}

void
Tlb::exportStats(StatSet& out) const
{
    out.set(name() + ".hits", static_cast<double>(hits_));
    out.set(name() + ".misses", static_cast<double>(misses_));
    out.set(name() + ".evictions", static_cast<double>(evictions_));
    out.set(name() + ".shootdowns", static_cast<double>(shootdowns_));
    out.set(name() + ".hit_rate", hitRate());
}

void
Tlb::registerMetrics(MetricRegistry& reg) const
{
    const std::string p = name() + '.';
    reg.counter(p + "hits", "events",
                [this] { return static_cast<double>(hits_); });
    reg.counter(p + "misses", "events",
                [this] { return static_cast<double>(misses_); });
    reg.counter(p + "evictions", "events",
                [this] { return static_cast<double>(evictions_); });
    reg.counter(p + "shootdowns", "events",
                [this] { return static_cast<double>(shootdowns_); });
    reg.gauge(p + "hit_rate", "ratio", [this] { return hitRate(); });
}

void
Tlb::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    shootdowns_ = 0;
}

} // namespace gps
