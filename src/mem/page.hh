/**
 * @file
 * Page geometry helpers. GPS allocates its address space with 64 KB pages
 * by default (see the paper's Section 5.2); the page-size sensitivity study
 * also exercises 4 KB and 2 MB pages.
 */

#ifndef GPS_MEM_PAGE_HH
#define GPS_MEM_PAGE_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace gps
{

/** Page size and the derived shift/mask helpers. */
class PageGeometry
{
  public:
    /** @param bytes page size in bytes; must be a power of two. */
    explicit constexpr PageGeometry(std::uint64_t bytes = 64 * KiB)
        : bytes_(bytes), shift_(shiftFor(bytes))
    {}

    constexpr std::uint64_t bytes() const { return bytes_; }
    constexpr std::uint32_t shift() const { return shift_; }

    /** Virtual/physical page number containing @p addr. */
    constexpr PageNum pageNum(Addr addr) const { return addr >> shift_; }

    /** First address of page @p page. */
    constexpr Addr pageBase(PageNum page) const
    {
        return static_cast<Addr>(page) << shift_;
    }

    /** Offset of @p addr within its page. */
    constexpr Addr pageOffset(Addr addr) const
    {
        return addr & (bytes_ - 1);
    }

    /** Number of pages covering @p size bytes starting at @p base. */
    constexpr std::uint64_t
    pagesSpanned(Addr base, std::uint64_t size) const
    {
        if (size == 0)
            return 0;
        return pageNum(base + size - 1) - pageNum(base) + 1;
    }

    constexpr bool
    operator==(const PageGeometry& other) const
    {
        return bytes_ == other.bytes_;
    }

  private:
    static constexpr std::uint32_t
    shiftFor(std::uint64_t bytes)
    {
        std::uint32_t shift = 0;
        std::uint64_t b = bytes;
        while (b > 1) {
            b >>= 1;
            ++shift;
        }
        return shift;
    }

    std::uint64_t bytes_;
    std::uint32_t shift_;
};

} // namespace gps

#endif // GPS_MEM_PAGE_HH
