/**
 * @file
 * Validated parsing of numeric knobs from the environment and CLI.
 *
 * Several tuning knobs (cache capacities, sweep worker counts) arrive
 * as untrusted text. Routing them through strtoul directly lets
 * garbage silently become 0 and negatives wrap to huge values; every
 * caller shares these helpers instead, so bad input warns once and
 * keeps the documented default.
 */

#ifndef GPS_COMMON_ENV_HH
#define GPS_COMMON_ENV_HH

#include <cstddef>
#include <string>

namespace gps
{

/**
 * Strict full-string parse of a non-negative decimal integer.
 * Rejects empty strings, signs, leading/trailing junk, and values
 * that do not fit in std::size_t.
 * @return true and set @p out on success.
 */
bool parseSizeT(const std::string& text, std::size_t& out);

/**
 * Parse @p text as a non-negative integer no greater than @p max.
 * On any parse failure or out-of-range value, warn (naming @p what)
 * and return @p fallback unchanged.
 */
std::size_t parseSizeTOr(const std::string& text, const char* what,
                         std::size_t fallback,
                         std::size_t max = static_cast<std::size_t>(-1));

/**
 * Read the environment variable @p name as a non-negative integer in
 * [0, max]. Unset returns @p fallback silently; set-but-invalid warns
 * and returns @p fallback.
 */
std::size_t envSizeT(const char* name, std::size_t fallback,
                     std::size_t max = static_cast<std::size_t>(-1));

} // namespace gps

#endif // GPS_COMMON_ENV_HH
