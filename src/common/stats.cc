#include "common/stats.hh"

#include <cmath>
#include <sstream>

namespace gps
{

void
StatSet::add(const std::string& name, double value)
{
    stats_[name] += value;
}

void
StatSet::set(const std::string& name, double value)
{
    stats_[name] = value;
}

double
StatSet::get(const std::string& name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string& name) const
{
    return stats_.find(name) != stats_.end();
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [name, value] : other.stats_)
        stats_[name] += value;
}

std::string
StatSet::dump(const std::string& prefix) const
{
    std::ostringstream os;
    for (const auto& [name, value] : stats_)
        os << prefix << name << " = " << value << "\n";
    return os.str();
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace gps
