#include "common/stats.hh"

#include <cmath>
#include <sstream>

namespace gps
{

void
StatSet::add(const std::string& name, double value)
{
    stats_[name] += value;
}

void
StatSet::set(const std::string& name, double value)
{
    stats_[name] = value;
}

double
StatSet::get(const std::string& name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string& name) const
{
    return stats_.find(name) != stats_.end();
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [name, value] : other.stats_)
        stats_[name] += value;
}

std::string
StatSet::dump(const std::string& prefix) const
{
    std::ostringstream os;
    for (const auto& [name, value] : stats_)
        os << prefix << name << " = " << value << "\n";
    return os.str();
}

double
geomean(const std::vector<double>& values, std::size_t* dropped)
{
    double log_sum = 0.0;
    std::size_t kept = 0;
    std::size_t skipped = 0;
    for (double v : values) {
        // NaN compares false, so it is skipped along with v <= 0.
        if (v > 0.0) {
            log_sum += std::log(v);
            ++kept;
        } else {
            ++skipped;
        }
    }
    if (dropped != nullptr)
        *dropped = skipped;
    if (kept == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(kept));
}

} // namespace gps
