/**
 * @file
 * Minimal JSON writer for exporting results to downstream tooling
 * (plotting scripts, dashboards), plus a small DOM parser for the few
 * tools that read JSON back (perf_compare diffs two BENCH_perf.json
 * files). The simulator itself never parses JSON.
 */

#ifndef GPS_COMMON_JSON_HH
#define GPS_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gps
{

/** Builds one JSON value tree and serializes it. */
class JsonWriter
{
  public:
    /** Begin an object; returns *this for chaining. */
    JsonWriter& beginObject();
    JsonWriter& endObject();

    /** Begin an array. */
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Key for the next value (objects only). */
    JsonWriter& key(const std::string& name);

    JsonWriter& value(const std::string& text);
    JsonWriter& value(const char* text);
    JsonWriter& value(double number);
    JsonWriter& value(std::uint64_t number);
    JsonWriter& value(bool flag);

    /**
     * Splice @p json in verbatim as the next value. The caller
     * guarantees it is one complete, well-formed JSON value; the serve
     * layer uses this to embed a stored result payload byte-identically
     * into a response envelope.
     */
    JsonWriter& rawValue(const std::string& json);

    /** Shorthand: key + value. */
    template <typename T>
    JsonWriter&
    field(const std::string& name, const T& v)
    {
        key(name);
        return value(v);
    }

    /** Serialized document. */
    const std::string& str() const { return out_; }

    /** JSON string escaping (exposed for tests). */
    static std::string escape(const std::string& text);

  private:
    /** Emit a comma if this container already has a member. */
    void separate();

    std::string out_;
    std::vector<bool> hasMember_; ///< per open container
    bool pendingKey_ = false;
};

/**
 * One parsed JSON value. Numbers are held as doubles (sufficient for
 * the perf-log fields perf_compare consumes); object member order is
 * not preserved.
 */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return boolean_; }
    double asNumber() const { return number_; }
    const std::string& asString() const { return string_; }
    const std::vector<JsonValue>& items() const { return items_; }
    const std::map<std::string, JsonValue>& members() const
    {
        return members_;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue* find(const std::string& name) const;

    /** Member as a number; @p fallback when absent or mistyped. */
    double number(const std::string& name, double fallback = 0.0) const;

    /** Member as a string; @p fallback when absent or mistyped. */
    std::string string(const std::string& name,
                       const std::string& fallback = "") const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::map<std::string, JsonValue> members_;
};

/**
 * Parse one JSON document.
 * @param text the complete document
 * @param error set to a position-bearing message on failure
 * @return the parsed value, or nullptr on malformed input
 */
std::unique_ptr<JsonValue> parseJson(const std::string& text,
                                     std::string& error);

} // namespace gps

#endif // GPS_COMMON_JSON_HH
