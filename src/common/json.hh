/**
 * @file
 * Minimal JSON writer for exporting results to downstream tooling
 * (plotting scripts, dashboards). Write-only by design: the simulator
 * never needs to parse JSON, so there is no parser to maintain.
 */

#ifndef GPS_COMMON_JSON_HH
#define GPS_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gps
{

/** Builds one JSON value tree and serializes it. */
class JsonWriter
{
  public:
    /** Begin an object; returns *this for chaining. */
    JsonWriter& beginObject();
    JsonWriter& endObject();

    /** Begin an array. */
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Key for the next value (objects only). */
    JsonWriter& key(const std::string& name);

    JsonWriter& value(const std::string& text);
    JsonWriter& value(const char* text);
    JsonWriter& value(double number);
    JsonWriter& value(std::uint64_t number);
    JsonWriter& value(bool flag);

    /** Shorthand: key + value. */
    template <typename T>
    JsonWriter&
    field(const std::string& name, const T& v)
    {
        key(name);
        return value(v);
    }

    /** Serialized document. */
    const std::string& str() const { return out_; }

    /** JSON string escaping (exposed for tests). */
    static std::string escape(const std::string& text);

  private:
    /** Emit a comma if this container already has a member. */
    void separate();

    std::string out_;
    std::vector<bool> hasMember_; ///< per open container
    bool pendingKey_ = false;
};

} // namespace gps

#endif // GPS_COMMON_JSON_HH
