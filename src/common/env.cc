#include "common/env.hh"

#include <cctype>
#include <cstdlib>
#include <limits>

#include "common/logging.hh"

namespace gps
{

bool
parseSizeT(const std::string& text, std::size_t& out)
{
    if (text.empty())
        return false;
    std::size_t value = 0;
    constexpr std::size_t cap = std::numeric_limits<std::size_t>::max();
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        const std::size_t digit = static_cast<std::size_t>(c - '0');
        if (value > cap / 10 || value * 10 > cap - digit)
            return false; // overflow
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

std::size_t
parseSizeTOr(const std::string& text, const char* what,
             std::size_t fallback, std::size_t max)
{
    std::size_t value = 0;
    if (!parseSizeT(text, value)) {
        gps_warn("invalid ", what, " '", text,
                 "' (want a non-negative integer); keeping ", fallback);
        return fallback;
    }
    if (value > max) {
        gps_warn(what, " ", value, " exceeds the maximum ", max,
                 "; keeping ", fallback);
        return fallback;
    }
    return value;
}

std::size_t
envSizeT(const char* name, std::size_t fallback, std::size_t max)
{
    const char* env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    return parseSizeTOr(env, name, fallback, max);
}

} // namespace gps
