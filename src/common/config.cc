#include "common/config.hh"

#include <algorithm>
#include <cstdint>
#include <sstream>

namespace gps
{

void
ConfigDump::section(const std::string& name)
{
    rows_.push_back({true, name, ""});
}

void
ConfigDump::entry(const std::string& key, const std::string& value)
{
    rows_.push_back({false, key, value});
}

void
ConfigDump::entry(const std::string& key, std::uint64_t value)
{
    rows_.push_back({false, key, std::to_string(value)});
}

void
ConfigDump::entry(const std::string& key, double value)
{
    std::ostringstream os;
    os << value;
    rows_.push_back({false, key, os.str()});
}

std::string
ConfigDump::render() const
{
    std::size_t width = 0;
    for (const auto& row : rows_) {
        if (!row.isSection)
            width = std::max(width, row.key.size());
    }
    std::ostringstream os;
    for (const auto& row : rows_) {
        if (row.isSection) {
            os << "== " << row.key << " ==\n";
        } else {
            os << "  " << row.key
               << std::string(width - row.key.size() + 2, ' ') << row.value
               << "\n";
        }
    }
    return os.str();
}

} // namespace gps
