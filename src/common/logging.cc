#include "common/logging.hh"

#include <cstdlib>

namespace gps
{
namespace detail
{

namespace
{
bool verboseFlag = true;
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s [%s:%d]\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " [" << file << ":" << line << "]";
    throw FatalError(os.str());
}

void
warnImpl(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    if (verboseFlag)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace gps
