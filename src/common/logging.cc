#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace gps
{
namespace detail
{

namespace
{
/**
 * Atomic so concurrent sweep workers and the serve-mode front end can
 * read it while a driver thread flips it — the last plain-global in
 * the library's run paths.
 */
std::atomic<bool> verboseFlag{true};

/**
 * Serializes warn()/inform() lines so concurrent sweep workers (see
 * api/sweep.hh) never interleave mid-line. fprintf of one line is
 * usually atomic per POSIX stream locking, but the standard does not
 * promise it and message assembly spans several calls on some libcs.
 */
std::mutex&
logMutex()
{
    static std::mutex m;
    return m;
}
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s [%s:%d]\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " [" << file << ":" << line << "]";
    throw FatalError(os.str());
}

void
warnImpl(const std::string& msg)
{
    const std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    if (!verboseFlag.load(std::memory_order_relaxed))
        return;
    const std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace gps
