#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/json.hh"

namespace gps
{
namespace detail
{

namespace
{
/**
 * Atomic so concurrent sweep workers and the serve-mode front end can
 * read it while a driver thread flips it — the last plain-global in
 * the library's run paths.
 */
std::atomic<bool> verboseFlag{true};

/** Atomic for the same reason: serve-mode flips it per process. */
std::atomic<LogFormat> formatFlag{LogFormat::Text};

/** Test-only capture sink; writes stay serialized by logMutex(). */
std::atomic<void (*)(const std::string&)> sinkHook{nullptr};

/**
 * Serializes warn()/inform() lines so concurrent sweep workers (see
 * api/sweep.hh) never interleave mid-line. fprintf of one line is
 * usually atomic per POSIX stream locking, but the standard does not
 * promise it and message assembly spans several calls on some libcs.
 */
std::mutex&
logMutex()
{
    static std::mutex m;
    return m;
}
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

void
setLogFormat(LogFormat format)
{
    formatFlag.store(format, std::memory_order_relaxed);
}

LogFormat
logFormat()
{
    return formatFlag.load(std::memory_order_relaxed);
}

void
setLogSink(void (*sink)(const std::string& line))
{
    sinkHook.store(sink, std::memory_order_relaxed);
}

std::string
formatLogLine(const char* level, const std::string& msg,
              LogFormat format)
{
    if (format == LogFormat::Text)
        return std::string(level) + ": " + msg;
    return std::string("{\"level\":\"") + level + "\",\"msg\":\"" +
           JsonWriter::escape(msg) + "\"}";
}

namespace
{

/** Emit one warn/inform line to its stream or the test sink. */
void
emitLine(std::FILE* stream, const char* level, const std::string& msg)
{
    const std::string line =
        formatLogLine(level, msg, logFormat());
    const std::lock_guard<std::mutex> lock(logMutex());
    if (void (*sink)(const std::string&) =
            sinkHook.load(std::memory_order_relaxed)) {
        sink(line);
        return;
    }
    std::fprintf(stream, "%s\n", line.c_str());
}

} // namespace

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s [%s:%d]\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " [" << file << ":" << line << "]";
    throw FatalError(os.str());
}

void
warnImpl(const std::string& msg)
{
    emitLine(stderr, "warn", msg);
}

void
informImpl(const std::string& msg)
{
    if (!verboseFlag.load(std::memory_order_relaxed))
        return;
    emitLine(stdout, "info", msg);
}

} // namespace detail
} // namespace gps
