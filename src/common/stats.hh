/**
 * @file
 * Lightweight statistics: named scalar sets and histograms.
 *
 * Hot paths accumulate into plain struct members; StatSet is the reporting
 * container modules export their totals into, supporting merge and
 * formatted dump. This mirrors the split gem5 makes between per-object
 * counters and the stats package used at dump time.
 */

#ifndef GPS_COMMON_STATS_HH
#define GPS_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gps
{

/** An ordered collection of named scalar statistics. */
class StatSet
{
  public:
    /** Add @p value to the named stat (creating it at zero). */
    void add(const std::string& name, double value);

    /** Set the named stat, overwriting any previous value. */
    void set(const std::string& name, double value);

    /** Value of the named stat, or 0 if absent. */
    double get(const std::string& name) const;

    /** Whether the named stat exists. */
    bool has(const std::string& name) const;

    /** Merge another set into this one (summing matching names). */
    void merge(const StatSet& other);

    /** All stats in name order. */
    const std::map<std::string, double>& all() const { return stats_; }

    /** Render as "name = value" lines with an optional prefix. */
    std::string dump(const std::string& prefix = "") const;

    void clear() { stats_.clear(); }

  private:
    std::map<std::string, double> stats_;
};

/**
 * Fixed-bucket histogram over a value range, used e.g. for the
 * subscriber-count distribution behind Figure 9.
 */
class Histogram
{
  public:
    /** Buckets cover integer values [0, num_buckets). */
    explicit Histogram(std::size_t num_buckets)
        : buckets_(num_buckets, 0)
    {}

    /** Record one sample; values beyond the range clamp to the last. */
    void
    sample(std::size_t value, std::uint64_t count = 1)
    {
        if (buckets_.empty())
            return;
        if (value >= buckets_.size())
            value = buckets_.size() - 1;
        buckets_[value] += count;
        total_ += count;
    }

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t size() const { return buckets_.size(); }
    std::uint64_t total() const { return total_; }

    /** Fraction of samples in bucket @p i (0 when empty). */
    double
    fraction(std::size_t i) const
    {
        return total_ == 0 ? 0.0
                           : static_cast<double>(buckets_.at(i)) /
                                 static_cast<double>(total_);
    }

    void
    clear()
    {
        for (auto& b : buckets_)
            b = 0;
        total_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * Geometric mean of the positive entries of @p values. Non-positive
 * entries (a failed run's 0x "speedup", a NaN) would poison the whole
 * mean with -inf/NaN, so they are skipped and counted into @p dropped
 * when given. Returns 0 when no positive entries remain.
 */
double geomean(const std::vector<double>& values,
               std::size_t* dropped = nullptr);

} // namespace gps

#endif // GPS_COMMON_STATS_HH
