/**
 * @file
 * Unit helpers: byte sizes, bandwidth and time conversions.
 *
 * Bandwidths are stored as bytes/second (double) in configuration and
 * converted to bytes/tick only inside timing formulas, keeping config
 * values human-readable.
 */

#ifndef GPS_COMMON_UNITS_HH
#define GPS_COMMON_UNITS_HH

#include <cassert>
#include <cstdint>

#include "common/types.hh"

namespace gps
{

constexpr std::uint64_t KiB = 1024ULL;
constexpr std::uint64_t MiB = 1024ULL * KiB;
constexpr std::uint64_t GiB = 1024ULL * MiB;

/** Decimal GB/s, the unit interconnect specs are quoted in. */
constexpr double GBps = 1e9;

/** Convert seconds to ticks. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(ticksPerSecond));
}

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * 1e3);
}

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * 1e6);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSecond);
}

/** Convert ticks to microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

/** Convert ticks to milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

/**
 * Time to move @p bytes at @p bytes_per_sec, in ticks (rounded up, with a
 * zero-bandwidth guard used by the infinite-bandwidth paradigm: a
 * bandwidth of 0 means "free").
 */
inline Tick
transferTicks(std::uint64_t bytes, double bytes_per_sec)
{
    if (bytes == 0 || bytes_per_sec <= 0.0)
        return 0;
    double seconds = static_cast<double>(bytes) / bytes_per_sec;
    return static_cast<Tick>(seconds * static_cast<double>(ticksPerSecond)) +
           1;
}

/**
 * Checked double -> uint64 conversion for accumulated totals. A plain
 * static_cast is undefined for negative, non-finite or >= 2^64 values;
 * this clamps into range instead (asserting in debug builds, where a
 * negative or NaN total indicates an accounting bug upstream).
 */
inline std::uint64_t
clampToUint64(double value)
{
    assert(value >= 0.0 && "negative or NaN total");
    if (!(value > 0.0))
        return 0; // also catches NaN
    // Largest double strictly below 2^64.
    constexpr double max_exact = 18446744073709549568.0;
    if (value >= max_exact)
        return static_cast<std::uint64_t>(max_exact);
    return static_cast<std::uint64_t>(value);
}

} // namespace gps

#endif // GPS_COMMON_UNITS_HH
