/**
 * @file
 * Bitmask over GPU ids (up to 256 GPUs), used for subscriber sets,
 * accessed-by hints and mapping bookkeeping.
 *
 * A fixed four-word value type rather than an integer alias: multi-node
 * topologies scale past 64 GPUs, and the mask must stay cheap to copy,
 * compare and iterate on the replay hot path. Small masks (bits < 64)
 * construct and compare against plain integers, so call sites keep the
 * `mask == 0` / `GpuMask m = 0` idiom.
 */

#ifndef GPS_COMMON_GPU_MASK_HH
#define GPS_COMMON_GPU_MASK_HH

#include <bit>
#include <cstdint>
#include <ostream>

#include "common/types.hh"

namespace gps
{

/** Largest GPU count a GpuMask can describe. */
constexpr std::size_t maxGpus = 256;

/** A set of GPUs as a fixed-width bitmask. */
class GpuMask
{
  public:
    /** 64-bit words backing the mask. */
    static constexpr std::size_t words = maxGpus / 64;

    constexpr GpuMask() = default;

    /** Implicit on purpose: `GpuMask m = 0` / `mask == 0` idioms. */
    constexpr GpuMask(std::uint64_t low) : w_{low, 0, 0, 0} {}

    constexpr std::uint64_t word(std::size_t i) const { return w_[i]; }
    constexpr void setWord(std::size_t i, std::uint64_t v) { w_[i] = v; }

    constexpr bool
    any() const
    {
        return (w_[0] | w_[1] | w_[2] | w_[3]) != 0;
    }

    constexpr GpuMask&
    operator&=(const GpuMask& o)
    {
        for (std::size_t i = 0; i < words; ++i)
            w_[i] &= o.w_[i];
        return *this;
    }

    constexpr GpuMask&
    operator|=(const GpuMask& o)
    {
        for (std::size_t i = 0; i < words; ++i)
            w_[i] |= o.w_[i];
        return *this;
    }

    constexpr GpuMask&
    operator^=(const GpuMask& o)
    {
        for (std::size_t i = 0; i < words; ++i)
            w_[i] ^= o.w_[i];
        return *this;
    }

    friend constexpr GpuMask
    operator&(GpuMask a, const GpuMask& b)
    {
        a &= b;
        return a;
    }

    friend constexpr GpuMask
    operator|(GpuMask a, const GpuMask& b)
    {
        a |= b;
        return a;
    }

    friend constexpr GpuMask
    operator^(GpuMask a, const GpuMask& b)
    {
        a ^= b;
        return a;
    }

    friend constexpr GpuMask
    operator~(GpuMask a)
    {
        for (std::size_t i = 0; i < words; ++i)
            a.w_[i] = ~a.w_[i];
        return a;
    }

    friend constexpr bool
    operator==(const GpuMask& a, const GpuMask& b) = default;

    /**
     * Hex rendering without a 0x prefix, matching what the old integer
     * mask printed under `std::hex` (diagnostics embed their own "0x").
     */
    friend std::ostream&
    operator<<(std::ostream& os, const GpuMask& m)
    {
        bool started = false;
        for (std::size_t i = words; i-- > 0;) {
            if (!started) {
                if (m.w_[i] == 0 && i != 0)
                    continue;
                os << std::hex << m.w_[i];
                started = true;
            } else {
                char buf[17];
                for (int nib = 15; nib >= 0; --nib)
                    buf[15 - nib] =
                        "0123456789abcdef"[(m.w_[i] >> (nib * 4)) & 0xf];
                buf[16] = '\0';
                os << buf;
            }
        }
        os << std::dec;
        return os;
    }

  private:
    std::uint64_t w_[words] = {0, 0, 0, 0};
};

constexpr GpuMask
gpuBit(GpuId gpu)
{
    GpuMask m;
    m.setWord(gpu / 64, std::uint64_t(1) << (gpu % 64));
    return m;
}

constexpr bool
maskHas(const GpuMask& mask, GpuId gpu)
{
    return ((mask.word(gpu / 64) >> (gpu % 64)) & 1) != 0;
}

constexpr GpuMask
maskSet(const GpuMask& mask, GpuId gpu)
{
    return mask | gpuBit(gpu);
}

constexpr GpuMask
maskClear(const GpuMask& mask, GpuId gpu)
{
    return mask & ~gpuBit(gpu);
}

/** Number of GPUs in the set. */
constexpr std::size_t
maskCount(const GpuMask& mask)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < GpuMask::words; ++i)
        n += static_cast<std::size_t>(std::popcount(mask.word(i)));
    return n;
}

/** Mask with GPUs [0, n) set. */
constexpr GpuMask
maskAll(std::size_t n)
{
    GpuMask m;
    if (n >= maxGpus)
        return ~m;
    for (std::size_t i = 0; i < GpuMask::words; ++i) {
        if (n >= (i + 1) * 64)
            m.setWord(i, ~std::uint64_t(0));
        else if (n > i * 64)
            m.setWord(i, (std::uint64_t(1) << (n - i * 64)) - 1);
    }
    return m;
}

/** Lowest GPU id in the set; invalidGpu when empty. */
constexpr GpuId
maskFirst(const GpuMask& mask)
{
    for (std::size_t i = 0; i < GpuMask::words; ++i)
        if (mask.word(i) != 0)
            return static_cast<GpuId>(i * 64 +
                                      std::countr_zero(mask.word(i)));
    return invalidGpu;
}

/** Call @p fn(GpuId) for every GPU in the set, ascending. */
template <typename Fn>
void
maskForEach(const GpuMask& mask, Fn&& fn)
{
    for (std::size_t i = 0; i < GpuMask::words; ++i) {
        std::uint64_t bits = mask.word(i);
        while (bits != 0) {
            const GpuId gpu =
                static_cast<GpuId>(i * 64 + std::countr_zero(bits));
            fn(gpu);
            bits &= bits - 1;
        }
    }
}

/** Serialize the mask as its four words, low to high. */
template <typename Serializer>
void
maskSave(Serializer& out, const GpuMask& mask)
{
    for (std::size_t i = 0; i < GpuMask::words; ++i)
        out.u64(mask.word(i));
}

/** Counterpart of maskSave. */
template <typename Deserializer>
GpuMask
maskLoad(Deserializer& in)
{
    GpuMask m;
    for (std::size_t i = 0; i < GpuMask::words; ++i)
        m.setWord(i, in.u64());
    return m;
}

} // namespace gps

#endif // GPS_COMMON_GPU_MASK_HH
