/**
 * @file
 * Bitmask over GPU ids (up to 32 GPUs), used for subscriber sets,
 * accessed-by hints and mapping bookkeeping.
 */

#ifndef GPS_COMMON_GPU_MASK_HH
#define GPS_COMMON_GPU_MASK_HH

#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace gps
{

/** A set of GPUs as a bitmask. */
using GpuMask = std::uint32_t;

/** Largest GPU count a GpuMask can describe. */
constexpr std::size_t maxGpus = 32;

constexpr GpuMask
gpuBit(GpuId gpu)
{
    return GpuMask(1) << gpu;
}

constexpr bool
maskHas(GpuMask mask, GpuId gpu)
{
    return (mask & gpuBit(gpu)) != 0;
}

constexpr GpuMask
maskSet(GpuMask mask, GpuId gpu)
{
    return mask | gpuBit(gpu);
}

constexpr GpuMask
maskClear(GpuMask mask, GpuId gpu)
{
    return mask & ~gpuBit(gpu);
}

/** Number of GPUs in the set. */
constexpr std::size_t
maskCount(GpuMask mask)
{
    return static_cast<std::size_t>(std::popcount(mask));
}

/** Mask with GPUs [0, n) set. */
constexpr GpuMask
maskAll(std::size_t n)
{
    return n >= maxGpus ? ~GpuMask(0)
                        : (GpuMask(1) << n) - 1;
}

/** Lowest GPU id in the set; invalidGpu when empty. */
constexpr GpuId
maskFirst(GpuMask mask)
{
    return mask == 0 ? invalidGpu
                     : static_cast<GpuId>(std::countr_zero(mask));
}

/** Call @p fn(GpuId) for every GPU in the set, ascending. */
template <typename Fn>
void
maskForEach(GpuMask mask, Fn&& fn)
{
    while (mask != 0) {
        const GpuId gpu = static_cast<GpuId>(std::countr_zero(mask));
        fn(gpu);
        mask &= mask - 1;
    }
}

} // namespace gps

#endif // GPS_COMMON_GPU_MASK_HH
