#include "common/crc32.hh"

#include <array>

namespace gps
{

namespace
{

const std::uint32_t*
crcTable()
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table.data();
}

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void* data, std::size_t len)
{
    const auto* bytes = static_cast<const unsigned char*>(data);
    const std::uint32_t* table = crcTable();
    crc ^= 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace gps
