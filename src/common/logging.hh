/**
 * @file
 * gem5-style status and error reporting: panic/fatal/warn/inform.
 *
 * panic() aborts and is reserved for internal invariant violations (bugs in
 * the simulator itself). fatal() throws a FatalError for user-level
 * misconfiguration so library embedders can catch it. warn()/inform() print
 * to stderr/stdout and never stop the simulation.
 */

#ifndef GPS_COMMON_LOGGING_HH
#define GPS_COMMON_LOGGING_HH

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gps
{

/** Error thrown by fatal(): the simulation cannot continue, user's fault. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what)
    {}
};

namespace detail
{

/** Fold a list of streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line,
                            const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

/** Global toggle for inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

} // namespace detail

/** Enable or disable inform() output. */
inline void
setVerbose(bool v)
{
    detail::setVerbose(v);
}

} // namespace gps

/** Internal invariant violated: abort with location. */
#define gps_panic(...)                                                     \
    ::gps::detail::panicImpl(__FILE__, __LINE__,                           \
                             ::gps::detail::concat(__VA_ARGS__))

/** Unrecoverable user error: throw FatalError with location. */
#define gps_fatal(...)                                                     \
    ::gps::detail::fatalImpl(__FILE__, __LINE__,                           \
                             ::gps::detail::concat(__VA_ARGS__))

/** Suspicious but survivable condition. */
#define gps_warn(...)                                                      \
    ::gps::detail::warnImpl(::gps::detail::concat(__VA_ARGS__))

/** Status message for the user. */
#define gps_inform(...)                                                    \
    ::gps::detail::informImpl(::gps::detail::concat(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define gps_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            gps_panic("assertion failed: " #cond " ", ##__VA_ARGS__);      \
        }                                                                  \
    } while (0)

#endif // GPS_COMMON_LOGGING_HH
