/**
 * @file
 * gem5-style status and error reporting: panic/fatal/warn/inform.
 *
 * panic() aborts and is reserved for internal invariant violations (bugs in
 * the simulator itself). fatal() throws a FatalError for user-level
 * misconfiguration so library embedders can catch it. warn()/inform() print
 * to stderr/stdout and never stop the simulation.
 */

#ifndef GPS_COMMON_LOGGING_HH
#define GPS_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gps
{

/**
 * Wire encoding for warn()/inform() lines. Text is the classic
 * "warn: ..." prefix; Json emits one machine-parseable object per line
 * ({"level":"warn","msg":"..."}) for log shippers.
 */
enum class LogFormat : std::uint8_t { Text, Json };

/** Error thrown by fatal(): the simulation cannot continue, user's fault. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what)
    {}
};

namespace detail
{

/** Fold a list of streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line,
                            const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

/** Global toggle for inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

/** Global warn()/inform() encoding (atomic; safe to flip anytime). */
void setLogFormat(LogFormat format);
LogFormat logFormat();

/** Render one log line in @p format (no trailing newline). */
std::string formatLogLine(const char* level, const std::string& msg,
                          LogFormat format);

/**
 * Test hook: when non-null every warn()/inform() line is handed to
 * @p sink (under the log mutex) instead of stderr/stdout.
 */
void setLogSink(void (*sink)(const std::string& line));

} // namespace detail

/** Enable or disable inform() output. */
inline void
setVerbose(bool v)
{
    detail::setVerbose(v);
}

/** Select text or JSON log lines (gpsim --log-format). */
inline void
setLogFormat(LogFormat format)
{
    detail::setLogFormat(format);
}

} // namespace gps

/** Internal invariant violated: abort with location. */
#define gps_panic(...)                                                     \
    ::gps::detail::panicImpl(__FILE__, __LINE__,                           \
                             ::gps::detail::concat(__VA_ARGS__))

/** Unrecoverable user error: throw FatalError with location. */
#define gps_fatal(...)                                                     \
    ::gps::detail::fatalImpl(__FILE__, __LINE__,                           \
                             ::gps::detail::concat(__VA_ARGS__))

/** Suspicious but survivable condition. */
#define gps_warn(...)                                                      \
    ::gps::detail::warnImpl(::gps::detail::concat(__VA_ARGS__))

/** Status message for the user. */
#define gps_inform(...)                                                    \
    ::gps::detail::informImpl(::gps::detail::concat(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define gps_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            gps_panic("assertion failed: " #cond " ", ##__VA_ARGS__);      \
        }                                                                  \
    } while (0)

#endif // GPS_COMMON_LOGGING_HH
