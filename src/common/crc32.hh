/**
 * @file
 * Table-based IEEE CRC32 (the zlib polynomial), shared by every
 * subsystem that checksums on-disk bytes: the binary trace format
 * (src/trace) and the content-addressed run store (src/serve).
 */

#ifndef GPS_COMMON_CRC32_HH
#define GPS_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace gps
{

/**
 * Fold @p len bytes at @p data into a running CRC32.
 * Start from 0; feed chunks in order to checksum a byte stream.
 */
std::uint32_t crc32Update(std::uint32_t crc, const void* data,
                          std::size_t len);

/** One-shot CRC32 of a string's bytes. */
inline std::uint32_t
crc32Of(const std::string& bytes)
{
    return crc32Update(0, bytes.data(), bytes.size());
}

} // namespace gps

#endif // GPS_COMMON_CRC32_HH
