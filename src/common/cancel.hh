/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A CancelToken is shared between a submitter (the serve-mode
 * scheduler, a signal handler, a test) and the Runner executing the
 * run. The submitter flips it; the Runner polls it between replay
 * chunks and between iterations and unwinds with CancelledError. The
 * token also carries an optional wall-clock deadline so a request's
 * time budget keeps being enforced after its run has started.
 *
 * Every member is safe to call from any thread.
 */

#ifndef GPS_COMMON_CANCEL_HH
#define GPS_COMMON_CANCEL_HH

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace gps
{

/** Why a run was asked to stop. */
enum class CancelReason : int {
    None = 0,
    Cancelled,       ///< explicit client cancel / shutdown drain
    DeadlineExpired, ///< the request's deadline passed
};

/** Thrown out of Runner::run when its token fires mid-run. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(CancelReason reason)
        : std::runtime_error(reason == CancelReason::DeadlineExpired
                                 ? "run cancelled: deadline expired"
                                 : "run cancelled"),
          reason_(reason)
    {}

    CancelReason reason() const { return reason_; }

  private:
    CancelReason reason_;
};

class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Request cancellation; the first reason to land wins. */
    void
    cancel(CancelReason reason = CancelReason::Cancelled)
    {
        int expected = static_cast<int>(CancelReason::None);
        state_.compare_exchange_strong(expected,
                                       static_cast<int>(reason),
                                       std::memory_order_relaxed);
    }

    /**
     * Arm a deadline. Call before the run starts (the deadline itself
     * is read concurrently with poll(), so it is stored atomically as
     * ticks since the clock epoch).
     */
    void
    setDeadline(Clock::time_point deadline)
    {
        deadlineNs_.store(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                deadline.time_since_epoch())
                .count(),
            std::memory_order_relaxed);
    }

    /** Latched reason, checking the deadline as a side effect. */
    CancelReason
    poll()
    {
        const int s = state_.load(std::memory_order_relaxed);
        if (s != static_cast<int>(CancelReason::None))
            return static_cast<CancelReason>(s);
        const std::int64_t d = deadlineNs_.load(std::memory_order_relaxed);
        if (d != 0 &&
            Clock::now().time_since_epoch() >=
                std::chrono::nanoseconds(d)) {
            cancel(CancelReason::DeadlineExpired);
            return static_cast<CancelReason>(
                state_.load(std::memory_order_relaxed));
        }
        return CancelReason::None;
    }

    bool
    cancelled() const
    {
        return state_.load(std::memory_order_relaxed) !=
               static_cast<int>(CancelReason::None);
    }

    /** poll() and throw CancelledError if the token has fired. */
    void
    throwIfCancelled()
    {
        const CancelReason reason = poll();
        if (reason != CancelReason::None)
            throw CancelledError(reason);
    }

  private:
    std::atomic<int> state_{static_cast<int>(CancelReason::None)};
    std::atomic<std::int64_t> deadlineNs_{0};
};

} // namespace gps

#endif // GPS_COMMON_CANCEL_HH
