/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Workload generators must be reproducible run-to-run and independent of
 * the C++ standard library's unspecified distributions, so we carry our own
 * small engine and distributions.
 */

#ifndef GPS_COMMON_RNG_HH
#define GPS_COMMON_RNG_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gps
{

/** xoshiro256** by Blackman & Vigna; public-domain algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 seeding to fill the state from a single word.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for workload generation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** The four raw state words (checkpoint serialization). */
    void
    saveState(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }

    /** Overwrite the state words (checkpoint restore). */
    void
    restoreState(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }

    /**
     * Skewed integer in [0, n): direct inversion of the bounded-Pareto
     * law P(X < x) = (x/n)^(1-s) for @p s in (0, 1), i.e.
     * v = floor(n * u^(1/(1-s))). Low ids are drawn heavily (the
     * graph generator relabels hubs there); the realized mass of the
     * first tenth is 0.1^(1-s). One uniform draw per call. Prefer a
     * ZipfTable for per-edge sampling loops — this convenience method
     * pays a std::pow on every call; the table reproduces it draw for
     * draw without one.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s)
    {
        // Direct inversion: v = floor(n * u^(1/(1-s))) clipped to range.
        double u = uniform();
        double x = std::pow(u, 1.0 / (1.0 - s));
        auto v = static_cast<std::uint64_t>(x * static_cast<double>(n));
        return v >= n ? n - 1 : v;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Precomputed inverse-CDF sampler for the power-law distribution the
 * graph generator uses for hub targets.
 *
 * Distribution realized (identical to Rng::zipf): a uniform draw
 * u in [0,1) maps to v = floor(n * u^(1/(1-s))), clipped to [0, n),
 * i.e. the discretized bounded Pareto approximation of a Zipf law with
 * exponent s: P(X < x) = (x/n)^(1-s). Low ids ("hubs", after the usual
 * degree-sorted relabeling) receive the heavy tail: for s = 0.75 the
 * bottom tenth of the id space absorbs ~56% of the draws.
 *
 * Why a table: the direct inversion costs a std::pow per draw, which
 * dominates the remote-edge path of graph generation. The table stores
 * the n+1 CDF thresholds T[v] = (v/n)^(1-s) — v is the answer for
 * u in [T[v], T[v+1]) — plus a uniformly-spaced guide index over
 * u-space, so a draw is one guide lookup and a short binary search over
 * a handful of adjacent thresholds.
 *
 * Exactness: sample(u) returns bit-identical results to Rng::zipf for
 * every u. Draws that land within a guard band (1e-9) of a stored
 * threshold — where the table's inverted rounding could disagree with
 * the forward pow by an ulp — fall back to the forward formula, which
 * is the definition. Outside the band the two cannot disagree: the
 * stored thresholds and the forward map's decision boundaries coincide
 * to ~1e-13 absolute.
 *
 * Degenerate exponents (s >= 1, or values whose table would be
 * non-finite) and oversized domains skip the table and use the forward
 * formula per draw, preserving Rng::zipf behavior exactly.
 */
class ZipfTable
{
  public:
    ZipfTable(std::uint64_t n, double s)
        : n_(n), invExp_(1.0 / (1.0 - s))
    {
        const double cdf_exp = 1.0 - s;
        if (n == 0 || n > maxTableEntries || !(cdf_exp > 0.0) ||
            !std::isfinite(invExp_))
            return; // degenerate or huge: per-draw forward formula
        thresh_.resize(static_cast<std::size_t>(n) + 1);
        const double dn = static_cast<double>(n);
        for (std::uint64_t v = 0; v <= n; ++v)
            thresh_[v] = std::pow(static_cast<double>(v) / dn, cdf_exp);
        // Guide: bucket k covers u in [k/K, (k+1)/K); guide_[k] is the
        // sample value at the bucket's left edge, so the answer for any
        // u in bucket k lies in [guide_[k], guide_[k+1]].
        guide_.resize(guideBuckets + 1);
        std::uint64_t v = 0;
        for (std::size_t k = 0; k <= guideBuckets; ++k) {
            const double edge = static_cast<double>(k) /
                                static_cast<double>(guideBuckets);
            while (v + 1 < n && thresh_[v + 1] <= edge)
                ++v;
            guide_[k] = v;
        }
    }

    std::uint64_t n() const { return n_; }
    bool hasTable() const { return !thresh_.empty(); }

    /** Map one uniform draw u in [0,1) exactly as Rng::zipf does. */
    std::uint64_t
    sample(double u) const
    {
        if (thresh_.empty())
            return forward(u);
        std::size_t k = static_cast<std::size_t>(
            u * static_cast<double>(guideBuckets));
        if (k >= guideBuckets)
            k = guideBuckets - 1;
        std::uint64_t lo = guide_[k];
        std::uint64_t hi = guide_[k + 1];
        // Largest v with thresh_[v] <= u (thresh_[0] = 0 <= u always).
        while (lo < hi) {
            const std::uint64_t mid = lo + (hi - lo + 1) / 2;
            if (thresh_[mid] <= u)
                lo = mid;
            else
                hi = mid - 1;
        }
        // Guard band: near a threshold the table's inverted rounding
        // could differ from the forward pow by an ulp; defer to the
        // forward formula there (it is the definition).
        if (u - thresh_[lo] < boundaryEps ||
            thresh_[lo + 1] - u < boundaryEps)
            return forward(u);
        return lo;
    }

    /** Draw from @p rng: consumes exactly one uniform, like Rng::zipf. */
    std::uint64_t operator()(Rng& rng) const { return sample(rng.uniform()); }

  private:
    /** The defining forward map (verbatim Rng::zipf inversion). */
    std::uint64_t
    forward(double u) const
    {
        const double x = std::pow(u, invExp_);
        const auto v =
            static_cast<std::uint64_t>(x * static_cast<double>(n_));
        return v >= n_ ? n_ - 1 : v;
    }

    static constexpr std::size_t guideBuckets = 1 << 14;
    static constexpr double boundaryEps = 1e-9;
    /** Above this the table (8 B/vertex) stops paying for itself. */
    static constexpr std::uint64_t maxTableEntries = 1ULL << 22;

    std::uint64_t n_;
    double invExp_;
    std::vector<double> thresh_; ///< T[v] = (v/n)^(1-s), size n+1
    std::vector<std::uint64_t> guide_;
};

} // namespace gps

#endif // GPS_COMMON_RNG_HH
