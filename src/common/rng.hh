/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Workload generators must be reproducible run-to-run and independent of
 * the C++ standard library's unspecified distributions, so we carry our own
 * small engine and distributions.
 */

#ifndef GPS_COMMON_RNG_HH
#define GPS_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace gps
{

/** xoshiro256** by Blackman & Vigna; public-domain algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 seeding to fill the state from a single word.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for workload generation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Zipf-distributed integer in [0, n) with exponent @p s, via inverse
     * CDF on a power-law approximation; used by the synthetic graph
     * generator to produce skewed degree distributions.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s)
    {
        // Approximate inversion: x = n * u^(1/(1-s)) clipped to range.
        double u = uniform();
        double x = std::pow(u, 1.0 / (1.0 - s));
        auto v = static_cast<std::uint64_t>(x * static_cast<double>(n));
        return v >= n ? n - 1 : v;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace gps

#endif // GPS_COMMON_RNG_HH
