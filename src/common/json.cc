#include "common/json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace gps
{

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already emitted its comma
    }
    if (!hasMember_.empty()) {
        if (hasMember_.back())
            out_ += ',';
        hasMember_.back() = true;
    }
}

JsonWriter&
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    hasMember_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    gps_assert(!hasMember_.empty(), "endObject without beginObject");
    hasMember_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    hasMember_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    gps_assert(!hasMember_.empty(), "endArray without beginArray");
    hasMember_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter&
JsonWriter::key(const std::string& name)
{
    separate();
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(const std::string& text)
{
    separate();
    out_ += '"';
    out_ += escape(text);
    out_ += '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* text)
{
    return value(std::string(text));
}

JsonWriter&
JsonWriter::value(double number)
{
    separate();
    if (!std::isfinite(number)) {
        out_ += "null";
        return *this;
    }
    // 17 significant digits round-trip any IEEE 754 double exactly;
    // %.12g silently corrupted large byte counters.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter&
JsonWriter::value(bool flag)
{
    separate();
    out_ += flag ? "true" : "false";
    return *this;
}

std::string
JsonWriter::escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace gps
