#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace gps
{

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already emitted its comma
    }
    if (!hasMember_.empty()) {
        if (hasMember_.back())
            out_ += ',';
        hasMember_.back() = true;
    }
}

JsonWriter&
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    hasMember_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    gps_assert(!hasMember_.empty(), "endObject without beginObject");
    hasMember_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    hasMember_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    gps_assert(!hasMember_.empty(), "endArray without beginArray");
    hasMember_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter&
JsonWriter::key(const std::string& name)
{
    separate();
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(const std::string& text)
{
    separate();
    out_ += '"';
    out_ += escape(text);
    out_ += '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* text)
{
    return value(std::string(text));
}

JsonWriter&
JsonWriter::value(double number)
{
    separate();
    if (!std::isfinite(number)) {
        out_ += "null";
        return *this;
    }
    // 17 significant digits round-trip any IEEE 754 double exactly;
    // %.12g silently corrupted large byte counters.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::rawValue(const std::string& json)
{
    separate();
    out_ += json;
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter&
JsonWriter::value(bool flag)
{
    separate();
    out_ += flag ? "true" : "false";
    return *this;
}

const JsonValue*
JsonValue::find(const std::string& name) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = members_.find(name);
    return it == members_.end() ? nullptr : &it->second;
}

double
JsonValue::number(const std::string& name, double fallback) const
{
    const JsonValue* v = find(name);
    return v != nullptr && v->isNumber() ? v->asNumber() : fallback;
}

std::string
JsonValue::string(const std::string& name,
                  const std::string& fallback) const
{
    const JsonValue* v = find(name);
    return v != nullptr && v->isString() ? v->asString() : fallback;
}

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text)
        : text_(text)
    {}

    std::unique_ptr<JsonValue>
    parse(std::string& error)
    {
        error.clear();
        JsonValue root;
        if (!parseValue(root)) {
            error = error_;
            return nullptr;
        }
        skipSpace();
        if (pos_ != text_.size()) {
            error = fail("trailing characters after document");
            return nullptr;
        }
        return std::make_unique<JsonValue>(std::move(root));
    }

  private:
    std::string
    fail(const std::string& what)
    {
        if (error_.empty())
            error_ =
                what + " at offset " + std::to_string(pos_);
        return error_;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char* word)
    {
        const std::size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue& out)
    {
        skipSpace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of document");
            return false;
        }
        const char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.string_);
          case 't':
            if (!literal("true")) {
                fail("malformed literal");
                return false;
            }
            out.kind_ = JsonValue::Kind::Bool;
            out.boolean_ = true;
            return true;
          case 'f':
            if (!literal("false")) {
                fail("malformed literal");
                return false;
            }
            out.kind_ = JsonValue::Kind::Bool;
            out.boolean_ = false;
            return true;
          case 'n':
            if (!literal("null")) {
                fail("malformed literal");
                return false;
            }
            out.kind_ = JsonValue::Kind::Null;
            return true;
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue& out)
    {
        out.kind_ = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':' after object key");
                return false;
            }
            ++pos_;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.members_.emplace(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size()) {
                fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool
    parseArray(JsonValue& out)
    {
        out.kind_ = JsonValue::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.items_.push_back(std::move(value));
            skipSpace();
            if (pos_ >= text_.size()) {
                fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    bool
    parseString(std::string& out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 >= text_.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + 1 + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape digit");
                            return false;
                        }
                    }
                    pos_ += 4;
                    // The writer only emits \u00xx control escapes;
                    // encode the general case as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape sequence");
                    return false;
                }
                ++pos_;
                continue;
            }
            out += c;
            ++pos_;
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseNumber(JsonValue& out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("expected a value");
            return false;
        }
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            pos_ = start;
            fail("malformed number");
            return false;
        }
        out.kind_ = JsonValue::Kind::Number;
        out.number_ = v;
        return true;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    std::string error_;
};

std::unique_ptr<JsonValue>
parseJson(const std::string& text, std::string& error)
{
    JsonParser parser(text);
    return parser.parse(error);
}

std::string
JsonWriter::escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace gps
