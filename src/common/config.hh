/**
 * @file
 * Ordered key/value configuration record used to render Table 1 style
 * parameter dumps and to snapshot the settings a run was produced with.
 */

#ifndef GPS_COMMON_CONFIG_HH
#define GPS_COMMON_CONFIG_HH

#include <string>
#include <utility>
#include <vector>

namespace gps
{

/** An insertion-ordered list of (section, key, value) entries. */
class ConfigDump
{
  public:
    /** Begin a new section (e.g. "GPU Parameters"). */
    void section(const std::string& name);

    /** Record a key/value pair in the current section. */
    void entry(const std::string& key, const std::string& value);
    void entry(const std::string& key, std::uint64_t value);
    void entry(const std::string& key, double value);

    /** Render as an aligned two-column table. */
    std::string render() const;

    struct Row
    {
        bool isSection;
        std::string key;
        std::string value;
    };

    const std::vector<Row>& rows() const { return rows_; }

  private:
    std::vector<Row> rows_;
};

} // namespace gps

#endif // GPS_COMMON_CONFIG_HH
