/**
 * @file
 * Fundamental scalar types and enums shared across the simulator.
 */

#ifndef GPS_COMMON_TYPES_HH
#define GPS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

namespace gps
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** GPU core clock cycles. */
using Cycles = std::uint64_t;

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** A virtual or physical page number (address >> page shift). */
using PageNum = std::uint64_t;

/** Identifier of a GPU in the system (dense, 0-based). */
using GpuId = std::uint16_t;

/** Sentinel for "no GPU". */
constexpr GpuId invalidGpu = std::numeric_limits<GpuId>::max();

/** Ticks per second: the Tick unit is one picosecond. */
constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Kind of a memory operation carried in an access trace. */
enum class AccessType : std::uint8_t {
    Load,
    Store,
    Atomic,
};

/**
 * Memory-model scope of an access (NVIDIA PTX scopes). GPS coalesces only
 * non-sys-scoped ("weak") traffic; sys-scoped stores trigger the page
 * collapse path described in the paper's Section 5.3.
 */
enum class Scope : std::uint8_t {
    Weak,  ///< no scope annotation: plain weak access
    Cta,   ///< CTA scope (never visible off-GPU)
    Gpu,   ///< GPU scope (never visible off-GPU)
    Sys,   ///< system scope: inter-GPU synchronization
};

/** Human-readable name of an access type. */
std::string to_string(AccessType t);

/** Human-readable name of a scope. */
std::string to_string(Scope s);

inline std::string
to_string(AccessType t)
{
    switch (t) {
      case AccessType::Load: return "load";
      case AccessType::Store: return "store";
      case AccessType::Atomic: return "atomic";
    }
    return "?";
}

inline std::string
to_string(Scope s)
{
    switch (s) {
      case Scope::Weak: return "weak";
      case Scope::Cta: return "cta";
      case Scope::Gpu: return "gpu";
      case Scope::Sys: return "sys";
    }
    return "?";
}

} // namespace gps

#endif // GPS_COMMON_TYPES_HH
