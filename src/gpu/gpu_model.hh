/**
 * @file
 * Per-GPU model: memory-side structures (L2, TLB, SM store coalescer,
 * physical memory) plus the analytic kernel timing formula.
 *
 * Timing abstraction: a kernel's duration is the maximum of its bottleneck
 * terms (issue throughput, L2 throughput, local DRAM bandwidth, remote
 * demand-load latency, TLB page walks) plus serialized terms that stall
 * the GPU outright (page-fault handling, TLB shootdowns). Interconnect
 * bandwidth terms are applied at phase level by the runner, which knows
 * the full traffic matrix of concurrently executing kernels.
 */

#ifndef GPS_GPU_GPU_MODEL_HH
#define GPS_GPU_GPU_MODEL_HH

#include <memory>
#include <string>

#include "cache/cache_model.hh"
#include "common/types.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_counters.hh"
#include "gpu/store_coalescer.hh"
#include "interconnect/topology.hh"
#include "mem/page.hh"
#include "mem/physical_memory.hh"
#include "mem/tlb.hh"
#include "sim/sim_object.hh"

namespace gps
{

/** Timing constants for driver-level events charged to kernels. */
struct FaultTiming
{
    /** End-to-end GPU page fault handling latency. */
    Tick faultLatency = usToTicks(25.0);

    /** Faults the driver resolves concurrently (batching). */
    std::uint32_t faultConcurrency = 8;

    /** Cost of one TLB shootdown round. */
    Tick shootdownLatency = usToTicks(3.0);

    /** Concurrent conventional page walkers. */
    std::uint32_t walkConcurrency = 8;
};

/**
 * The per-resource service demands behind one kernelTime() result.
 * Overlappable bounds (compute, L2, DRAM, walks) compose as a max;
 * remote stalls and the serialized terms extend it. `total` is exactly
 * what kernelTime() returns.
 */
struct KernelTimeBreakdown
{
    Tick tCompute = 0;
    Tick tL2 = 0;
    Tick tDram = 0;
    Tick tWalks = 0;
    Tick tRemote = 0;
    Tick tFaults = 0;
    Tick tShootdowns = 0;
    Tick tWqStall = 0;
    Tick total = 0;
};

/** One GPU of the simulated system. */
class GpuModel : public SimObject
{
  public:
    GpuModel(GpuId id, const GpuConfig& config, PageGeometry geometry);

    GpuId id() const { return id_; }
    const GpuConfig& config() const { return config_; }

    CacheModel& l2() { return *l2_; }
    const CacheModel& l2() const { return *l2_; }
    Tlb& tlb() { return *tlb_; }
    const Tlb& tlb() const { return *tlb_; }
    StoreCoalescer& storeCoalescer() { return *coalescer_; }
    PhysicalMemory& memory() { return *memory_; }
    const PhysicalMemory& memory() const { return *memory_; }

    /**
     * Drive one access through the local L2 towards DRAM, updating
     * @p counters (hits/misses/DRAM bytes).
     */
    void l2Path(Addr addr, bool is_write, KernelCounters& counters);

    /**
     * Model the conventional TLB for @p vpn: on a miss the entry is
     * filled and the miss counted (page-walk cost lands in timing).
     * @return true if the access missed (used by the GPS access tracker).
     */
    bool tlbAccess(PageNum vpn, KernelCounters& counters);

    /**
     * Analytic duration of a kernel with the given event counts.
     * @param counters replayed event counts
     * @param topology interconnect (for remote-load latency)
     */
    Tick kernelTime(const KernelCounters& counters,
                    const Topology& topology) const;

    /** kernelTime() with every intermediate term exposed (profiling). */
    KernelTimeBreakdown kernelTimeBreakdown(
        const KernelCounters& counters, const Topology& topology) const;

    const FaultTiming& faultTiming() const { return faultTiming_; }

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;
    void resetStats() override;

    /** Serialize L2, TLB, coalescer, and physical-memory state. */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("gpu");
        out.u32(id_);
        l2_->saveState(out);
        tlb_->saveState(out);
        coalescer_->saveState(out);
        memory_->saveState(out);
    }

    /** Counterpart of saveState. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("gpu");
        if (in.u32() != id_)
            throw snapshot::SnapshotError(
                "snapshot GPU id differs from the configured GPU");
        l2_->restoreState(in);
        tlb_->restoreState(in);
        coalescer_->restoreState(in);
        memory_->restoreState(in);
    }

  private:
    GpuId id_;
    GpuConfig config_;
    FaultTiming faultTiming_;
    std::unique_ptr<CacheModel> l2_;
    std::unique_ptr<Tlb> tlb_;
    std::unique_ptr<StoreCoalescer> coalescer_;
    std::unique_ptr<PhysicalMemory> memory_;
};

} // namespace gps

#endif // GPS_GPU_GPU_MODEL_HH
