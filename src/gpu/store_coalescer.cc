#include "gpu/store_coalescer.hh"

#include "common/logging.hh"
#include "obs/metric_registry.hh"

namespace gps
{

StoreCoalescer::StoreCoalescer(std::string name, std::uint32_t depth,
                               std::uint32_t line_bytes)
    : SimObject(std::move(name)), depth_(depth), lineBytes_(line_bytes),
      lines_(depth, 0)
{
    gps_assert(depth > 0, "coalescer depth must be positive");
}

bool
StoreCoalescer::absorb(Addr addr)
{
    const std::uint64_t line = addr / lineBytes_;
    for (std::uint32_t i = 0; i < valid_; ++i) {
        if (lines_[(head_ + depth_ - 1 - i) % depth_] == line) {
            ++absorbed_;
            return true;
        }
    }
    lines_[head_] = line;
    head_ = (head_ + 1) % depth_;
    if (valid_ < depth_)
        ++valid_;
    ++forwarded_;
    return false;
}

void
StoreCoalescer::reset()
{
    head_ = 0;
    valid_ = 0;
}

void
StoreCoalescer::exportStats(StatSet& out) const
{
    out.set(name() + ".absorbed", static_cast<double>(absorbed_));
    out.set(name() + ".forwarded", static_cast<double>(forwarded_));
}

void
StoreCoalescer::registerMetrics(MetricRegistry& reg) const
{
    const std::string p = name() + '.';
    reg.counter(p + "absorbed", "events",
                [this] { return static_cast<double>(absorbed_); });
    reg.counter(p + "forwarded", "events",
                [this] { return static_cast<double>(forwarded_); });
}

void
StoreCoalescer::resetStats()
{
    absorbed_ = 0;
    forwarded_ = 0;
}

} // namespace gps
