/**
 * @file
 * Per-kernel event counters accumulated during trace replay and consumed
 * by the analytic timing model.
 */

#ifndef GPS_GPU_KERNEL_COUNTERS_HH
#define GPS_GPU_KERNEL_COUNTERS_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace gps
{

/** Everything the replay engine counts for one kernel on one GPU. */
struct KernelCounters
{
    std::uint64_t computeInstrs = 0;
    std::uint64_t accesses = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t atomics = 0;

    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;

    /** Local DRAM traffic: miss fills + dirty writebacks. */
    std::uint64_t dramBytes = 0;

    /** Demand loads serviced by a remote GPU (stall-prone). */
    std::uint64_t remoteLoads = 0;
    std::uint64_t remoteLoadBytes = 0;

    /** Atomics performed at a remote GPU (stall even harder). */
    std::uint64_t remoteAtomics = 0;

    /** Proactive write traffic pushed to peers (non-stalling). */
    std::uint64_t pushedStoreBytes = 0;

    std::uint64_t tlbMisses = 0;

    // --- UM machinery ---
    std::uint64_t pageFaults = 0;
    std::uint64_t pageMigrations = 0;
    std::uint64_t migrationBytes = 0;
    std::uint64_t tlbShootdowns = 0;

    // --- GPS machinery ---
    std::uint64_t wqInserts = 0;    ///< lines entered into the WQ
    std::uint64_t wqCoalesced = 0;  ///< stores merged into a live entry
    std::uint64_t wqDrains = 0;     ///< entries drained to the wire
    std::uint64_t wqAtomicBypass = 0; ///< atomics forwarded uncoalesced
    std::uint64_t smCoalesced = 0;  ///< stores absorbed by SM coalescer
    std::uint64_t gpsTlbHits = 0;
    std::uint64_t gpsTlbMisses = 0;
    std::uint64_t sysCollapses = 0; ///< pages collapsed by sys stores

    // --- Fault degradation (see src/fault/) ---
    std::uint64_t wqStallDrains = 0; ///< drains forced while saturated
    Tick wqStallTicks = 0;           ///< serialized SM stall time

    void merge(const KernelCounters& other);
    void exportStats(StatSet& out, const std::string& prefix) const;
};

} // namespace gps

#endif // GPS_GPU_KERNEL_COUNTERS_HH
