/**
 * @file
 * Per-GPU architectural parameters. Defaults reproduce the paper's
 * Table 1 (NVIDIA GV100/V100-class GPU).
 */

#ifndef GPS_GPU_GPU_CONFIG_HH
#define GPS_GPU_GPU_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace gps
{

/** Architectural configuration of one GPU (Table 1 defaults). */
struct GpuConfig
{
    // --- Table 1: GPU Parameters ---
    std::uint32_t cacheLineBytes = 128;
    std::uint64_t globalMemoryBytes = 16 * GiB;
    std::uint32_t numSms = 80;
    std::uint32_t cudaCoresPerSm = 64;
    std::uint64_t l2CacheBytes = 6 * MiB;
    std::uint32_t warpSize = 32;
    std::uint32_t maxThreadsPerSm = 2048;
    std::uint32_t maxThreadsPerCta = 1024;
    std::uint32_t virtualAddressBits = 49;
    std::uint32_t physicalAddressBits = 47;

    // --- Microarchitectural timing parameters (V100-calibrated) ---
    double coreClockGHz = 1.38;
    double dramBandwidth = 900.0 * GBps;   ///< HBM2
    double l2Bandwidth = 2500.0 * GBps;    ///< aggregate L2 throughput
    std::uint32_t l2Ways = 16;

    /**
     * Last-level conventional TLB (entries/ways). Sized so that, like
     * the real GPU at full-size footprints, 64 KB pages give full
     * coverage of the scaled-down working sets while 4 KB pages thrash.
     */
    std::uint32_t tlbEntries = 256;
    std::uint32_t tlbWays = 8;

    /** Page-walk cost charged per conventional TLB miss. */
    Tick pageWalkLatency = nsToTicks(250);

    /**
     * Depth of the SM-level store coalescer: recent store lines that
     * merge before reaching the GPS remote write queue.
     */
    std::uint32_t smCoalescerDepth = 8;

    /**
     * Remote demand loads the GPU can keep in flight per SM cluster;
     * multi-threading hides latency up to this MLP.
     */
    std::uint32_t remoteLoadMlp = 192;

    /**
     * Outstanding remote atomics: read-modify-write round trips
     * serialize at the target and sustain far less parallelism.
     */
    std::uint32_t remoteAtomicMlp = 32;

    /** Kernel launch overhead (driver + scheduling). */
    Tick kernelLaunchOverhead = usToTicks(5.0);

    /**
     * Fraction of peak issue throughput real kernels achieve
     * (divergence, dependency and memory stalls).
     */
    double issueEfficiency = 0.25;

    /** Achieved issue throughput in instructions per cycle. */
    double
    issueWidth() const
    {
        return static_cast<double>(numSms) *
               static_cast<double>(cudaCoresPerSm) * issueEfficiency;
    }

    /** Core clock period in ticks. */
    double
    clockPeriodTicks() const
    {
        return 1e3 / coreClockGHz; // ps per cycle
    }
};

} // namespace gps

#endif // GPS_GPU_GPU_CONFIG_HH
