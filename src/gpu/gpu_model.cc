#include "gpu/gpu_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"
#include "obs/metric_registry.hh"

namespace gps
{

void
KernelCounters::merge(const KernelCounters& other)
{
    computeInstrs += other.computeInstrs;
    accesses += other.accesses;
    loads += other.loads;
    stores += other.stores;
    atomics += other.atomics;
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    dramBytes += other.dramBytes;
    remoteLoads += other.remoteLoads;
    remoteLoadBytes += other.remoteLoadBytes;
    remoteAtomics += other.remoteAtomics;
    pushedStoreBytes += other.pushedStoreBytes;
    tlbMisses += other.tlbMisses;
    pageFaults += other.pageFaults;
    pageMigrations += other.pageMigrations;
    migrationBytes += other.migrationBytes;
    tlbShootdowns += other.tlbShootdowns;
    wqInserts += other.wqInserts;
    wqCoalesced += other.wqCoalesced;
    wqDrains += other.wqDrains;
    wqAtomicBypass += other.wqAtomicBypass;
    smCoalesced += other.smCoalesced;
    gpsTlbHits += other.gpsTlbHits;
    gpsTlbMisses += other.gpsTlbMisses;
    sysCollapses += other.sysCollapses;
    wqStallDrains += other.wqStallDrains;
    wqStallTicks += other.wqStallTicks;
}

void
KernelCounters::exportStats(StatSet& out, const std::string& prefix) const
{
    out.add(prefix + ".compute_instrs",
            static_cast<double>(computeInstrs));
    out.add(prefix + ".accesses", static_cast<double>(accesses));
    out.add(prefix + ".loads", static_cast<double>(loads));
    out.add(prefix + ".stores", static_cast<double>(stores));
    out.add(prefix + ".atomics", static_cast<double>(atomics));
    out.add(prefix + ".l2_hits", static_cast<double>(l2Hits));
    out.add(prefix + ".l2_misses", static_cast<double>(l2Misses));
    out.add(prefix + ".dram_bytes", static_cast<double>(dramBytes));
    out.add(prefix + ".remote_loads", static_cast<double>(remoteLoads));
    out.add(prefix + ".remote_load_bytes",
            static_cast<double>(remoteLoadBytes));
    out.add(prefix + ".remote_atomics",
            static_cast<double>(remoteAtomics));
    out.add(prefix + ".pushed_store_bytes",
            static_cast<double>(pushedStoreBytes));
    out.add(prefix + ".tlb_misses", static_cast<double>(tlbMisses));
    out.add(prefix + ".page_faults", static_cast<double>(pageFaults));
    out.add(prefix + ".page_migrations",
            static_cast<double>(pageMigrations));
    out.add(prefix + ".migration_bytes",
            static_cast<double>(migrationBytes));
    out.add(prefix + ".tlb_shootdowns",
            static_cast<double>(tlbShootdowns));
    out.add(prefix + ".wq_inserts", static_cast<double>(wqInserts));
    out.add(prefix + ".wq_coalesced", static_cast<double>(wqCoalesced));
    out.add(prefix + ".wq_drains", static_cast<double>(wqDrains));
    out.add(prefix + ".wq_atomic_bypass",
            static_cast<double>(wqAtomicBypass));
    out.add(prefix + ".sm_coalesced", static_cast<double>(smCoalesced));
    out.add(prefix + ".gps_tlb_hits", static_cast<double>(gpsTlbHits));
    out.add(prefix + ".gps_tlb_misses",
            static_cast<double>(gpsTlbMisses));
    out.add(prefix + ".sys_collapses", static_cast<double>(sysCollapses));
    out.add(prefix + ".wq_stall_drains",
            static_cast<double>(wqStallDrains));
    out.add(prefix + ".wq_stall_ticks",
            static_cast<double>(wqStallTicks));
}

GpuModel::GpuModel(GpuId id, const GpuConfig& config, PageGeometry geometry)
    : SimObject("gpu" + std::to_string(id)), id_(id), config_(config),
      l2_(std::make_unique<CacheModel>(name() + ".l2",
                                       config.l2CacheBytes,
                                       config.cacheLineBytes,
                                       config.l2Ways)),
      tlb_(std::make_unique<Tlb>(name() + ".tlb", config.tlbEntries,
                                 config.tlbWays)),
      coalescer_(std::make_unique<StoreCoalescer>(name() + ".sm_coalescer",
                                                  config.smCoalescerDepth,
                                                  config.cacheLineBytes)),
      memory_(std::make_unique<PhysicalMemory>(name() + ".dram",
                                               config.globalMemoryBytes,
                                               geometry))
{
}

void
GpuModel::l2Path(Addr addr, bool is_write, KernelCounters& counters)
{
    const CacheResult result = l2_->access(addr, is_write);
    if (result.hit) {
        ++counters.l2Hits;
    } else {
        ++counters.l2Misses;
        counters.dramBytes += config_.cacheLineBytes;
    }
    counters.dramBytes += result.writebackBytes;
}

bool
GpuModel::tlbAccess(PageNum vpn, KernelCounters& counters)
{
    if (tlb_->lookup(vpn))
        return false;
    ++counters.tlbMisses;
    tlb_->fill(vpn);
    return true;
}

Tick
GpuModel::kernelTime(const KernelCounters& counters,
                     const Topology& topology) const
{
    return kernelTimeBreakdown(counters, topology).total;
}

KernelTimeBreakdown
GpuModel::kernelTimeBreakdown(const KernelCounters& counters,
                              const Topology& topology) const
{
    KernelTimeBreakdown bd;
    const double period = config_.clockPeriodTicks();

    // Issue-throughput bound.
    const double compute_cycles =
        static_cast<double>(counters.computeInstrs) / config_.issueWidth();
    bd.tCompute = static_cast<Tick>(compute_cycles * period);

    // L2 throughput bound: every access moves one line through L2.
    const std::uint64_t l2_bytes =
        (counters.l2Hits + counters.l2Misses) *
        static_cast<std::uint64_t>(config_.cacheLineBytes);
    bd.tL2 = transferTicks(l2_bytes, config_.l2Bandwidth);

    // Local DRAM bandwidth bound.
    bd.tDram = transferTicks(counters.dramBytes, config_.dramBandwidth);

    // Remote demand loads and atomics: round-trip latency divided by
    // the parallelism the GPU can sustain. These sit on the dependence
    // critical path, so they extend the kernel rather than hiding under
    // it. Bandwidth occupancy of the responses is charged at the phase
    // level through the traffic matrix.
    if (!topology.spec().infinite) {
        const Tick line_time =
            topology.linkTime(config_.cacheLineBytes +
                              topology.spec().headerBytes);
        const Tick round_trip = 2 * topology.latency() + line_time;
        if (counters.remoteLoads > 0) {
            const double batches =
                std::ceil(static_cast<double>(counters.remoteLoads) /
                          static_cast<double>(config_.remoteLoadMlp));
            bd.tRemote += static_cast<Tick>(
                batches * static_cast<double>(round_trip));
        }
        if (counters.remoteAtomics > 0) {
            const double batches = std::ceil(
                static_cast<double>(counters.remoteAtomics) /
                static_cast<double>(config_.remoteAtomicMlp));
            bd.tRemote += static_cast<Tick>(
                batches * static_cast<double>(round_trip));
        }
    }

    // Conventional page walks, overlapped across walkers.
    bd.tWalks = static_cast<Tick>(
        static_cast<double>(counters.tlbMisses) *
        static_cast<double>(config_.pageWalkLatency) /
        static_cast<double>(faultTiming_.walkConcurrency));

    // Overlappable bounds compose as a max; remote stalls extend it.
    Tick t_core =
        std::max({bd.tCompute, bd.tL2, bd.tDram, bd.tWalks}) + bd.tRemote;

    // Serialized stalls: page faults (batched) and TLB shootdowns.
    if (counters.pageFaults > 0) {
        const double batches =
            std::ceil(static_cast<double>(counters.pageFaults) /
                      static_cast<double>(faultTiming_.faultConcurrency));
        bd.tFaults = static_cast<Tick>(
            batches * static_cast<double>(faultTiming_.faultLatency));
        t_core += bd.tFaults;
    }
    bd.tShootdowns = counters.tlbShootdowns * faultTiming_.shootdownLatency;
    t_core += bd.tShootdowns;

    // Saturated-WQ drains stall the producing SM serially.
    bd.tWqStall = counters.wqStallTicks;
    t_core += bd.tWqStall;

    bd.total = t_core;
    return bd;
}

void
GpuModel::exportStats(StatSet& out) const
{
    l2_->exportStats(out);
    tlb_->exportStats(out);
    coalescer_->exportStats(out);
    memory_->exportStats(out);
}

void
GpuModel::registerMetrics(MetricRegistry& reg) const
{
    l2_->registerMetrics(reg);
    tlb_->registerMetrics(reg);
    coalescer_->registerMetrics(reg);
    memory_->registerMetrics(reg);
}

void
GpuModel::resetStats()
{
    l2_->resetStats();
    tlb_->resetStats();
    coalescer_->resetStats();
}

} // namespace gps
