/**
 * @file
 * SM-level store coalescer.
 *
 * Models the intra-SM write combining that merges spatially adjacent
 * stores from a warp into a single cache-line transaction before anything
 * reaches the GPS remote write queue. This is why the paper measures a 0%
 * *remote write queue* hit rate for Jacobi: all of its spatial locality is
 * captured here (Section 7.4).
 */

#ifndef GPS_GPU_STORE_COALESCER_HH
#define GPS_GPU_STORE_COALESCER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"
#include "snapshot/serial.hh"

namespace gps
{

/**
 * Small FIFO of recently written cache lines; a store whose line is still
 * resident merges and produces no downstream transaction.
 */
class StoreCoalescer : public SimObject
{
  public:
    /**
     * @param name component name
     * @param depth number of line slots (GpuConfig::smCoalescerDepth)
     * @param line_bytes cache line size
     */
    StoreCoalescer(std::string name, std::uint32_t depth,
                   std::uint32_t line_bytes);

    /**
     * Offer a store to the coalescer.
     * @param addr store address
     * @return true if merged into a resident line (absorbed), false if it
     *         starts a new line transaction.
     */
    bool absorb(Addr addr);

    /** Atomics are never coalesced; they flush nothing but bypass. */
    void reset();

    std::uint64_t absorbed() const { return absorbed_; }
    std::uint64_t forwarded() const { return forwarded_; }

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;
    void resetStats() override;

    /** Serialize the resident lines and the counters. */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("coalescer");
        out.u64(lines_.size());
        for (const std::uint64_t line : lines_)
            out.u64(line);
        out.u32(head_);
        out.u32(valid_);
        out.u64(absorbed_);
        out.u64(forwarded_);
    }

    /** Counterpart of saveState; depth must match this instance. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("coalescer");
        if (in.u64() != lines_.size())
            throw snapshot::SnapshotError(
                "snapshot coalescer depth differs from the configured "
                "coalescer");
        for (std::uint64_t& line : lines_)
            line = in.u64();
        head_ = in.u32();
        valid_ = in.u32();
        absorbed_ = in.u64();
        forwarded_ = in.u64();
    }

  private:
    std::uint32_t depth_;
    std::uint32_t lineBytes_;
    std::vector<std::uint64_t> lines_; ///< circular buffer of line numbers
    std::uint32_t head_ = 0;
    std::uint32_t valid_ = 0;

    std::uint64_t absorbed_ = 0;
    std::uint64_t forwarded_ = 0;
};

} // namespace gps

#endif // GPS_GPU_STORE_COALESCER_HH
