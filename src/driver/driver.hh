/**
 * @file
 * GPU driver model.
 *
 * Exposes the CUDA-like allocation and hint API the paper's programming
 * interface builds on (Section 4) and owns the mechanisms every paradigm
 * composes: physical backing, peer mappings, page migration with TLB
 * shootdowns, and the per-page policy state. Policy itself (when to fault,
 * migrate, subscribe, broadcast) lives in the paradigm classes.
 */

#ifndef GPS_DRIVER_DRIVER_HH
#define GPS_DRIVER_DRIVER_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/gpu_mask.hh"
#include "common/types.hh"
#include "driver/page_state.hh"
#include "driver/page_state_store.hh"
#include "gpu/gpu_model.hh"
#include "gpu/kernel_counters.hh"
#include "interconnect/topology.hh"
#include "mem/address_space.hh"
#include "mem/page_table.hh"
#include "sim/sim_object.hh"

namespace gps
{

class TimelineRecorder;
class ProfileCollector;
class CausalRecorder;

/** The multi-GPU driver: allocation API plus page-management mechanics. */
class Driver : public SimObject
{
  public:
    Driver(AddressSpace& vas,
           std::vector<std::unique_ptr<GpuModel>>& gpus,
           Topology& topology);

    // ------------------------------------------------------------------
    // Allocation API (cudaMalloc / cudaMallocManaged / cudaMallocGPS).
    // ------------------------------------------------------------------

    /** cudaMalloc: pinned on @p home, peer-mapped everywhere. */
    const Region& malloc(std::uint64_t size, GpuId home,
                         std::string label);

    /** cudaMallocManaged: unbacked until first touch. */
    const Region& mallocManaged(std::uint64_t size, std::string label,
                                GpuId home = 0);

    /**
     * cudaMallocGPS: GPS address space; backed on @p home so there is
     * always at least one subscriber (Section 4).
     * @param manual subscriptions managed explicitly via memAdvise
     */
    const Region& mallocGps(std::uint64_t size, std::string label,
                            GpuId home, bool manual = false);

    /** Replicated allocation used by RDL/memcpy-style paradigms. */
    const Region& mallocReplicated(std::uint64_t size, std::string label,
                                   GpuId home);

    /** cudaFree: releases frames, mappings and VA. */
    void free(Addr base);

    // ------------------------------------------------------------------
    // UM hints (cuMemAdvise analogues).
    // ------------------------------------------------------------------
    void advisePreferredLocation(Addr base, std::uint64_t len, GpuId gpu);
    void adviseAccessedBy(Addr base, std::uint64_t len, GpuId gpu);
    void adviseReadMostly(Addr base, std::uint64_t len);

    // ------------------------------------------------------------------
    // State access.
    // ------------------------------------------------------------------
    PageState& state(PageNum vpn) { return pages_.at(vpn); }
    const PageState& state(PageNum vpn) const { return pages_.at(vpn); }
    bool hasState(PageNum vpn) const { return pages_.find(vpn) != nullptr; }

    /** State of @p vpn, or nullptr when unallocated (hot-path form). */
    PageState* findState(PageNum vpn) { return pages_.find(vpn); }

    /** Dense page-state store (snapshot/verification traversal). */
    const PageStateStore& pageStates() const { return pages_; }

    const Region* regionOf(Addr addr) const { return vas_->regionOf(addr); }
    const AddressSpace& addressSpace() const { return *vas_; }

    PageTable& pageTable(GpuId gpu) { return *pageTables_.at(gpu); }
    GpuModel& gpu(GpuId gpu) { return *(*gpus_)[gpu]; }
    std::size_t numGpus() const { return gpus_->size(); }
    Topology& topology() { return *topology_; }
    const PageGeometry& geometry() const { return vas_->geometry(); }
    std::uint64_t pageBytes() const { return geometry().bytes(); }

    /** All GPUs in the system as a mask. */
    GpuMask allGpusMask() const { return maskAll(numGpus()); }

    // ------------------------------------------------------------------
    // Mechanisms.
    // ------------------------------------------------------------------

    /**
     * Hook invoked when @p gpu runs out of frames; returns true after
     * freeing at least one frame (e.g. by swapping out a GPS replica
     * and unsubscribing its holder, Section 5.3). Installed by the
     * subscription manager.
     */
    using ReclaimHook = std::function<bool(GpuId)>;

    /** Install (or clear, with nullptr) the oversubscription hook. */
    void setReclaimHook(ReclaimHook hook) { reclaim_ = std::move(hook); }

    /** Frames reclaimed through the hook so far. */
    std::uint64_t reclaims() const { return reclaims_; }

    /**
     * Allocate a frame for @p vpn on @p gpu and install a local mapping.
     * On exhaustion the reclaim hook (if any) is given one chance to
     * free a frame before the request fails.
     * @return false when @p gpu is out of physical memory.
     */
    bool backPage(PageNum vpn, GpuId gpu);

    /** Install a peer mapping on @p gpu pointing at @p owner's copy. */
    void mapPeer(PageNum vpn, GpuId gpu, GpuId owner);

    /** Remove @p gpu's mapping (with a TLB shootdown if present). */
    void unmapPage(PageNum vpn, GpuId gpu, KernelCounters* counters);

    /** Free @p gpu's replica: unmap plus frame release. */
    void unbackPage(PageNum vpn, GpuId gpu, KernelCounters* counters);

    /**
     * Migrate the primary copy of @p vpn to @p to: moves the frame,
     * rewrites mappings, invalidates stale TLB/L2 state and accounts the
     * transfer in @p traffic.
     */
    void migratePage(PageNum vpn, GpuId to, KernelCounters& counters,
                     TrafficMatrix& traffic);

    /** Apply @p fn(vpn) to every page of @p region. */
    template <typename Fn>
    void
    forEachPage(const Region& region, Fn&& fn) const
    {
        const PageGeometry& geo = geometry();
        const PageNum first = geo.pageNum(region.base);
        const PageNum last = geo.pageNum(region.base + region.size - 1);
        for (PageNum vpn = first; vpn <= last; ++vpn)
            fn(vpn);
    }

    void exportStats(StatSet& out) const override;
    void registerMetrics(MetricRegistry& reg) const override;

    /**
     * Serialize per-GPU page tables, the dense page-state store, and
     * the driver's own counters. The reclaim hook and observers are
     * reattached by their owners at reconstruction, not persisted.
     */
    void saveState(snapshot::Serializer& out) const;

    /** Counterpart of saveState. */
    void restoreState(snapshot::Deserializer& in);

    /**
     * Attach the timeline recorder (nullptr detaches); page migrations
     * are then recorded as instants on the driver track.
     */
    void attachRecorder(TimelineRecorder* recorder)
    {
        recorder_ = recorder;
    }

    /**
     * Attach the profile collector (nullptr detaches); page migrations
     * then feed the per-page migration heat.
     */
    void attachProfile(ProfileCollector* profile) { profile_ = profile; }

    /**
     * Attach the causal recorder (nullptr detaches); page migrations
     * are then counted as migration->stall dependency edges.
     */
    void attachCausal(CausalRecorder* causal) { causal_ = causal; }

  private:
    const Region& allocCommon(std::uint64_t size, MemKind kind,
                              std::string label, GpuId home, bool manual);

    /** Apply @p fn to the state of each page overlapping [base, len). */
    template <typename Fn>
    void
    forEachPageIn(Addr base, std::uint64_t len, Fn&& fn)
    {
        const PageGeometry& geo = geometry();
        const PageNum first = geo.pageNum(base);
        const PageNum last = geo.pageNum(base + len - 1);
        for (PageNum vpn = first; vpn <= last; ++vpn)
            fn(state(vpn));
    }

    AddressSpace* vas_;
    std::vector<std::unique_ptr<GpuModel>>* gpus_;
    Topology* topology_;
    std::vector<std::unique_ptr<PageTable>> pageTables_;

    /** Dense per-region page state (see PageStateStore). */
    PageStateStore pages_;

    ReclaimHook reclaim_;
    std::uint64_t migrations_ = 0;
    std::uint64_t shootdownRounds_ = 0;
    std::uint64_t reclaims_ = 0;
    TimelineRecorder* recorder_ = nullptr;
    ProfileCollector* profile_ = nullptr;
    CausalRecorder* causal_ = nullptr;
};

} // namespace gps

#endif // GPS_DRIVER_DRIVER_HH
