/**
 * @file
 * Driver-maintained per-page policy state.
 *
 * The per-GPU page tables hold the architectural mappings; this record is
 * the driver's view of where copies live and which policy knobs apply
 * (UM hints, GPS subscriptions, dirty tracking for bulk-synchronous
 * paradigms).
 */

#ifndef GPS_DRIVER_PAGE_STATE_HH
#define GPS_DRIVER_PAGE_STATE_HH

#include "common/gpu_mask.hh"
#include "common/types.hh"
#include "mem/address_space.hh"

namespace gps
{

/** Driver-side state of one virtual page. */
struct PageState
{
    MemKind kind = MemKind::Pinned;

    /** Primary copy holder (pinned home / managed residence). */
    GpuId location = invalidGpu;

    /** GPUs whose page tables currently map this page. */
    GpuMask mapped = 0;

    /** GPUs holding a physical replica. */
    GpuMask backed = 0;

    // --- Unified Memory hints ---
    GpuId preferredLocation = invalidGpu;
    GpuMask accessedBy = 0;
    bool readMostly = false;

    /** GPUs holding a read-duplicated copy (UM read-mostly). */
    GpuMask readCopies = 0;

    /** Most recent GPU to store to this page (RDL oracle, Fig. 10). */
    GpuId lastWriter = invalidGpu;

    /** Written since the last barrier (bulk-synchronous broadcast set). */
    bool dirtySinceBarrier = false;

    // --- GPS state ---
    /** Current subscriber set. */
    GpuMask subscribers = 0;

    /** GPS bit state replicated into the conventional PTEs. */
    bool gpsBitSet = false;

    /** Page collapsed by a sys-scoped store (demoted for good). */
    bool collapsed = false;
};

} // namespace gps

#endif // GPS_DRIVER_PAGE_STATE_HH
