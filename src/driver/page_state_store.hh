/**
 * @file
 * Dense per-region storage for driver page state.
 *
 * Regions are allocated page-aligned and contiguous by the bump
 * allocator in AddressSpace, so per-page driver state lives in one
 * contiguous array per region ("slab") indexed by vpn - slab.first.
 * This replaces an unordered_map<PageNum, PageState> on the replay hot
 * path: a state lookup is one slab hit-check plus an array index
 * instead of a hash, and iteration walks cache-line-packed records in
 * ascending VPN order.
 */

#ifndef GPS_DRIVER_PAGE_STATE_STORE_HH
#define GPS_DRIVER_PAGE_STATE_STORE_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "driver/page_state.hh"
#include "snapshot/serial.hh"

namespace gps
{

/** Per-region contiguous arrays of PageState, keyed by first VPN. */
class PageStateStore
{
  public:
    /**
     * Register the pages [first, first + count) with state @p init.
     * The range must not overlap an existing slab (the VA allocator
     * guarantees this by construction).
     */
    void
    addRange(PageNum first, std::size_t count, const PageState& init)
    {
        gps_assert(count > 0, "empty page-state range");
        Slab slab;
        slab.first = first;
        slab.states.assign(count, init);
        // Slabs arrive in ascending VA order from the bump allocator;
        // keep the vector sorted for the binary-search fallback anyway.
        auto it = std::upper_bound(slabs_.begin(), slabs_.end(),
                                   slab.first,
                                   [](PageNum vpn, const Slab& s) {
                                       return vpn < s.first;
                                   });
        slabs_.insert(it, std::move(slab));
        pages_ += count;
        hint_ = 0;
    }

    /** Drop the slab that starts exactly at @p first. */
    void
    removeRange(PageNum first)
    {
        auto it = std::find_if(slabs_.begin(), slabs_.end(),
                               [first](const Slab& s) {
                                   return s.first == first;
                               });
        gps_assert(it != slabs_.end(),
                   "removing unknown page-state range at ", first);
        pages_ -= it->states.size();
        slabs_.erase(it);
        hint_ = 0;
    }

    /** State of @p vpn, or nullptr when the page is not allocated. */
    PageState*
    find(PageNum vpn)
    {
        // Hot path: most consecutive lookups land in the same slab.
        if (hint_ < slabs_.size()) {
            Slab& s = slabs_[hint_];
            if (vpn >= s.first && vpn - s.first < s.states.size())
                return &s.states[vpn - s.first];
        }
        // upper_bound: first slab with first > vpn; the candidate is
        // the one before it.
        auto it = std::upper_bound(slabs_.begin(), slabs_.end(), vpn,
                                   [](PageNum v, const Slab& s) {
                                       return v < s.first;
                                   });
        if (it == slabs_.begin())
            return nullptr;
        --it;
        const std::size_t off = vpn - it->first;
        if (off >= it->states.size())
            return nullptr;
        hint_ = static_cast<std::size_t>(it - slabs_.begin());
        return &it->states[off];
    }

    const PageState*
    find(PageNum vpn) const
    {
        return const_cast<PageStateStore*>(this)->find(vpn);
    }

    /** State of @p vpn; panics when the page is not allocated. */
    PageState&
    at(PageNum vpn)
    {
        PageState* st = find(vpn);
        gps_assert(st != nullptr, "no page state for vpn ", vpn);
        return *st;
    }

    const PageState&
    at(PageNum vpn) const
    {
        return const_cast<PageStateStore*>(this)->at(vpn);
    }

    /** Total pages across all live slabs. */
    std::size_t pages() const { return pages_; }

    /** Visit every (vpn, state) pair in ascending VPN order. */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (const Slab& slab : slabs_)
            for (std::size_t i = 0; i < slab.states.size(); ++i)
                fn(slab.first + i, slab.states[i]);
    }

    /** Number of live slabs (== live regions). */
    std::size_t ranges() const { return slabs_.size(); }

    /** Serialize every slab with its full per-page records. */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("pagestate");
        out.u64(slabs_.size());
        for (const Slab& slab : slabs_) {
            out.u64(slab.first);
            out.u64(slab.states.size());
            for (const PageState& st : slab.states) {
                out.u8(static_cast<std::uint8_t>(st.kind));
                out.u32(st.location);
                maskSave(out, st.mapped);
                maskSave(out, st.backed);
                out.u32(st.preferredLocation);
                maskSave(out, st.accessedBy);
                out.b(st.readMostly);
                maskSave(out, st.readCopies);
                out.u32(st.lastWriter);
                out.b(st.dirtySinceBarrier);
                maskSave(out, st.subscribers);
                out.b(st.gpsBitSet);
                out.b(st.collapsed);
            }
        }
    }

    /** Counterpart of saveState; replaces the current contents. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("pagestate");
        slabs_.clear();
        pages_ = 0;
        hint_ = 0;
        const std::uint64_t nslabs = in.count(1ULL << 24);
        slabs_.reserve(nslabs);
        for (std::uint64_t i = 0; i < nslabs; ++i) {
            Slab slab;
            slab.first = in.u64();
            slab.states.resize(in.count(1ULL << 32));
            for (PageState& st : slab.states) {
                st.kind = static_cast<MemKind>(in.u8());
                st.location = static_cast<GpuId>(in.u32());
                st.mapped = maskLoad(in);
                st.backed = maskLoad(in);
                st.preferredLocation = static_cast<GpuId>(in.u32());
                st.accessedBy = maskLoad(in);
                st.readMostly = in.b();
                st.readCopies = maskLoad(in);
                st.lastWriter = static_cast<GpuId>(in.u32());
                st.dirtySinceBarrier = in.b();
                st.subscribers = maskLoad(in);
                st.gpsBitSet = in.b();
                st.collapsed = in.b();
            }
            pages_ += slab.states.size();
            slabs_.push_back(std::move(slab));
        }
    }

  private:
    struct Slab
    {
        PageNum first = 0;
        std::vector<PageState> states;
    };

    /** Sorted by first VPN; ranges never overlap. */
    std::vector<Slab> slabs_;

    /** Index of the slab the last successful find() hit. */
    std::size_t hint_ = 0;

    std::size_t pages_ = 0;
};

} // namespace gps

#endif // GPS_DRIVER_PAGE_STATE_STORE_HH
