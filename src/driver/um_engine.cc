#include "driver/um_engine.hh"

#include "common/logging.hh"

namespace gps
{

UmDecision
UmEngine::access(GpuId gpu, const MemAccess& access, PageNum vpn,
                 PageState& st, bool hints_mode,
                 KernelCounters& counters, TrafficMatrix& traffic)
{
    Driver& drv = *driver_;
    gps_assert(st.kind == MemKind::Managed,
               "UM engine applied to non-managed page");

    // First touch: allocate on the toucher (hints: on the preferred
    // location if one was advised before any touch).
    if (st.location == invalidGpu) {
        GpuId place = gpu;
        if (hints_mode && st.preferredLocation != invalidGpu)
            place = st.preferredLocation;
        ++counters.pageFaults;
        if (!drv.backPage(vpn, place))
            gps_fatal("GPU ", place, " out of memory on UM first touch");
        st.location = place;
        if (access.isWrite())
            st.lastWriter = gpu;
        if (place == gpu)
            return {UmRoute::Local, gpu};
        // Placed remotely by hint: fall through to the remote rules.
    }

    if (access.isWrite()) {
        st.lastWriter = gpu;
        // A write to a read-duplicated page collapses it onto the writer
        // with a TLB shootdown (Section 2.1).
        if (st.readCopies != 0 &&
            st.readCopies != gpuBit(gpu)) {
            collapseDuplicates(vpn, gpu, counters);
        }
        if (st.location == gpu)
            return {UmRoute::Local, gpu};
        if (hints_mode) {
            if (st.preferredLocation == gpu) {
                // The page's home writes again: fault it back.
                ++counters.pageFaults;
                drv.migratePage(vpn, gpu, counters, traffic);
                return {UmRoute::Local, gpu};
            }
            if (maskHas(st.accessedBy, gpu) ||
                st.preferredLocation != invalidGpu) {
                // Mapped remotely (a preferred location pins the page,
                // so non-preferred writers go remote): no fault.
                return {access.isAtomic() ? UmRoute::RemoteAtomic
                                          : UmRoute::RemoteStore,
                        st.location};
            }
        }
        ++counters.pageFaults;
        drv.migratePage(vpn, gpu, counters, traffic);
        return {UmRoute::Local, gpu};
    }

    // Loads.
    if (st.location == gpu || maskHas(st.readCopies, gpu))
        return {UmRoute::Local, gpu};

    if (st.readMostly) {
        // Duplicate the page locally (one fault per duplicating GPU).
        ++counters.pageFaults;
        if (drv.backPage(vpn, gpu)) {
            st.readCopies = maskSet(st.readCopies, gpu);
            traffic.add(st.location, gpu,
                        drv.pageBytes() +
                            drv.topology().spec().headerBytes,
                        drv.pageBytes());
            counters.migrationBytes += drv.pageBytes();
            return {UmRoute::Local, gpu};
        }
        // No room to duplicate: degrade to a remote read.
        return {UmRoute::RemoteLoad, st.location};
    }

    if (hints_mode && (maskHas(st.accessedBy, gpu) ||
                       st.preferredLocation != invalidGpu))
        return {UmRoute::RemoteLoad, st.location};

    ++counters.pageFaults;
    drv.migratePage(vpn, gpu, counters, traffic);
    return {UmRoute::Local, gpu};
}

Tick
UmEngine::prefetchRange(GpuId gpu, Addr base, std::uint64_t len,
                        KernelCounters& counters, TrafficMatrix& traffic)
{
    Driver& drv = *driver_;
    if (len == 0)
        return 0;
    const PageGeometry& geo = drv.geometry();
    const PageNum first = geo.pageNum(base);
    const PageNum last = geo.pageNum(base + len - 1);
    for (PageNum vpn = first; vpn <= last; ++vpn) {
        if (!drv.hasState(vpn))
            continue;
        PageState& st = drv.state(vpn);
        if (st.kind != MemKind::Managed || st.readMostly)
            continue;
        if (st.location == invalidGpu) {
            // Never touched: prefetch establishes first placement.
            if (drv.backPage(vpn, gpu))
                st.location = gpu;
            continue;
        }
        if (st.location != gpu)
            drv.migratePage(vpn, gpu, counters, traffic);
    }
    // One asynchronous API call per range.
    return usToTicks(3.0);
}

void
UmEngine::collapseDuplicates(PageNum vpn, GpuId writer,
                             KernelCounters& counters)
{
    Driver& drv = *driver_;
    PageState& st = drv.state(vpn);
    maskForEach(st.readCopies, [&](GpuId g) {
        if (g != st.location && g != writer)
            drv.unbackPage(vpn, g, &counters);
    });
    if (maskHas(st.readCopies, writer) && writer != st.location) {
        // The writer keeps its copy and becomes the single location.
        const GpuId old = st.location;
        drv.unbackPage(vpn, old, &counters);
        st.location = writer;
    }
    st.readCopies = 0;
    ++counters.tlbShootdowns;
}

} // namespace gps
