/**
 * @file
 * Unified Memory policy engine shared by the UM and UM+hints paradigms.
 *
 * Implements fault-based first-touch placement and migration, the
 * preferred-location / accessed-by / read-mostly hint semantics, the
 * read-duplication collapse-on-write behavior the paper highlights as a
 * UM limitation (Section 2.1), and bulk prefetch.
 */

#ifndef GPS_DRIVER_UM_ENGINE_HH
#define GPS_DRIVER_UM_ENGINE_HH

#include "common/types.hh"
#include "driver/driver.hh"
#include "gpu/kernel_counters.hh"
#include "interconnect/topology.hh"
#include "trace/access.hh"

namespace gps
{

/** Where the paradigm must service an access after UM policy ran. */
enum class UmRoute : std::uint8_t {
    Local,
    RemoteLoad,
    RemoteStore,
    RemoteAtomic,
};

/** Routing decision plus the peer that owns the data when remote. */
struct UmDecision
{
    UmRoute route = UmRoute::Local;
    GpuId owner = invalidGpu;
};

/** Fault/migration/hint policy for managed pages. */
class UmEngine
{
  public:
    explicit UmEngine(Driver& driver)
        : driver_(&driver)
    {}

    /**
     * Apply UM policy to an access to a managed page: may fault, place,
     * migrate, duplicate or collapse the page.
     * @param st the page's driver state (caller-resolved, hot path)
     * @param hints_mode honor preferred-location/accessed-by hints
     */
    UmDecision access(GpuId gpu, const MemAccess& access, PageNum vpn,
                      PageState& st, bool hints_mode,
                      KernelCounters& counters, TrafficMatrix& traffic);

    /** Convenience overload that resolves the page state itself. */
    UmDecision
    access(GpuId gpu, const MemAccess& a, PageNum vpn, bool hints_mode,
           KernelCounters& counters, TrafficMatrix& traffic)
    {
        return access(gpu, a, vpn, driver_->state(vpn), hints_mode,
                      counters, traffic);
    }

    /**
     * cudaMemPrefetchAsync analogue: migrate the range's remote managed
     * pages to @p gpu in bulk, without fault costs.
     * @return serialized API overhead (transfer time comes from
     *         @p traffic)
     */
    Tick prefetchRange(GpuId gpu, Addr base, std::uint64_t len,
                       KernelCounters& counters, TrafficMatrix& traffic);

  private:
    /** Collapse a read-duplicated page onto @p writer. */
    void collapseDuplicates(PageNum vpn, GpuId writer,
                            KernelCounters& counters);

    Driver* driver_;
};

} // namespace gps

#endif // GPS_DRIVER_UM_ENGINE_HH
