#include "driver/driver.hh"

#include "common/logging.hh"
#include "obs/causal/causal.hh"
#include "obs/metric_registry.hh"
#include "obs/profile.hh"
#include "obs/timeline.hh"

namespace gps
{

Driver::Driver(AddressSpace& vas,
               std::vector<std::unique_ptr<GpuModel>>& gpus,
               Topology& topology)
    : SimObject("driver"), vas_(&vas), gpus_(&gpus), topology_(&topology)
{
    gps_assert(gpus.size() <= maxGpus, "too many GPUs for GpuMask");
    for (std::size_t g = 0; g < gpus.size(); ++g) {
        pageTables_.push_back(std::make_unique<PageTable>(
            "gpu" + std::to_string(g) + ".page_table"));
    }
}

const Region&
Driver::allocCommon(std::uint64_t size, MemKind kind, std::string label,
                    GpuId home, bool manual)
{
    gps_assert(home < numGpus(), "allocation on unknown GPU ", home);
    const Region& region =
        vas_->allocate(size, kind, std::move(label), home, manual);
    const PageGeometry& geo = geometry();
    const PageNum first = geo.pageNum(region.base);
    const PageNum last = geo.pageNum(region.base + region.size - 1);
    PageState init;
    init.kind = kind;
    pages_.addRange(first, static_cast<std::size_t>(last - first + 1),
                    init);
    return region;
}

const Region&
Driver::malloc(std::uint64_t size, GpuId home, std::string label)
{
    const Region& region =
        allocCommon(size, MemKind::Pinned, std::move(label), home, false);
    forEachPage(region, [&](PageNum vpn) {
        const bool ok = backPage(vpn, home);
        if (!ok)
            gps_fatal("GPU ", home, " out of memory backing pinned page");
        for (GpuId g = 0; g < numGpus(); ++g) {
            if (g != home)
                mapPeer(vpn, g, home);
        }
    });
    return region;
}

const Region&
Driver::mallocManaged(std::uint64_t size, std::string label, GpuId home)
{
    // Pages stay unbacked: first touch allocates (UM policy).
    return allocCommon(size, MemKind::Managed, std::move(label), home,
                       false);
}

const Region&
Driver::mallocGps(std::uint64_t size, std::string label, GpuId home,
                  bool manual)
{
    const Region& region =
        allocCommon(size, MemKind::Gps, std::move(label), home, manual);
    forEachPage(region, [&](PageNum vpn) {
        // "backs it with physical memory in at least one GPU" (§4).
        const bool ok = backPage(vpn, home);
        if (!ok)
            gps_fatal("GPU ", home, " out of memory backing GPS page");
        PageState& st = state(vpn);
        st.subscribers = gpuBit(home);
        st.location = home;
    });
    return region;
}

const Region&
Driver::mallocReplicated(std::uint64_t size, std::string label, GpuId home)
{
    const Region& region = allocCommon(size, MemKind::Replicated,
                                       std::move(label), home, false);
    forEachPage(region, [&](PageNum vpn) {
        for (GpuId g = 0; g < numGpus(); ++g) {
            const bool ok = backPage(vpn, g);
            if (!ok)
                gps_fatal("GPU ", g, " out of memory replicating page");
        }
        state(vpn).location = home;
    });
    return region;
}

void
Driver::free(Addr base)
{
    const Region* region = vas_->regionAt(base);
    gps_assert(region != nullptr, "free of unknown region ", base);
    forEachPage(*region, [&](PageNum vpn) {
        PageState& st = state(vpn);
        maskForEach(st.backed, [&](GpuId g) {
            const Pte* pte = pageTable(g).lookup(vpn);
            if (pte != nullptr && pte->location == g)
                gpu(g).memory().freeFrame(pte->ppn);
        });
        maskForEach(st.mapped, [&](GpuId g) {
            pageTable(g).unmap(vpn);
            gpu(g).tlb().invalidate(vpn);
        });
    });
    pages_.removeRange(geometry().pageNum(region->base));
    vas_->release(base);
}

void
Driver::advisePreferredLocation(Addr base, std::uint64_t len, GpuId gpu_id)
{
    forEachPageIn(base, len,
                  [&](PageState& st) { st.preferredLocation = gpu_id; });
}

void
Driver::adviseAccessedBy(Addr base, std::uint64_t len, GpuId gpu_id)
{
    forEachPageIn(base, len, [&](PageState& st) {
        st.accessedBy = maskSet(st.accessedBy, gpu_id);
    });
}

void
Driver::adviseReadMostly(Addr base, std::uint64_t len)
{
    forEachPageIn(base, len, [&](PageState& st) { st.readMostly = true; });
}

bool
Driver::backPage(PageNum vpn, GpuId gpu_id)
{
    PageState& st = state(vpn);
    gps_assert(!maskHas(st.backed, gpu_id),
               "page ", vpn, " already backed on GPU ", gpu_id);
    auto ppn = gpu(gpu_id).memory().allocFrame();
    if (!ppn.has_value() && reclaim_ && reclaim_(gpu_id)) {
        ++reclaims_;
        ppn = gpu(gpu_id).memory().allocFrame();
    }
    if (!ppn.has_value())
        return false;
    pageTable(gpu_id).map(vpn, Pte{*ppn, gpu_id, st.gpsBitSet});
    st.backed = maskSet(st.backed, gpu_id);
    st.mapped = maskSet(st.mapped, gpu_id);
    if (st.location == invalidGpu)
        st.location = gpu_id;
    return true;
}

void
Driver::mapPeer(PageNum vpn, GpuId gpu_id, GpuId owner)
{
    PageState& st = state(vpn);
    const Pte* owner_pte = pageTable(owner).lookup(vpn);
    gps_assert(owner_pte != nullptr && owner_pte->location == owner,
               "peer mapping target not backed on owner GPU");
    pageTable(gpu_id).map(vpn, Pte{owner_pte->ppn, owner, st.gpsBitSet});
    st.mapped = maskSet(st.mapped, gpu_id);
}

void
Driver::unmapPage(PageNum vpn, GpuId gpu_id, KernelCounters* counters)
{
    PageState& st = state(vpn);
    if (!maskHas(st.mapped, gpu_id))
        return;
    pageTable(gpu_id).unmap(vpn);
    if (gpu(gpu_id).tlb().contains(vpn)) {
        gpu(gpu_id).tlb().invalidate(vpn);
        ++shootdownRounds_;
        if (counters != nullptr)
            ++counters->tlbShootdowns;
    }
    st.mapped = maskClear(st.mapped, gpu_id);
}

void
Driver::unbackPage(PageNum vpn, GpuId gpu_id, KernelCounters* counters)
{
    PageState& st = state(vpn);
    if (!maskHas(st.backed, gpu_id))
        return;
    const Pte* pte = pageTable(gpu_id).lookup(vpn);
    gps_assert(pte != nullptr && pte->location == gpu_id,
               "backed page lacks a local mapping");
    gpu(gpu_id).memory().freeFrame(pte->ppn);
    unmapPage(vpn, gpu_id, counters);
    st.backed = maskClear(st.backed, gpu_id);
}

void
Driver::migratePage(PageNum vpn, GpuId to, KernelCounters& counters,
                    TrafficMatrix& traffic)
{
    PageState& st = state(vpn);
    const GpuId from = st.location;
    gps_assert(from != invalidGpu, "migrating unbacked page ", vpn);
    if (from == to)
        return;

    const std::uint64_t page_bytes = pageBytes();
    const Addr page_base = geometry().pageBase(vpn);

    // The old owner's cached lines are stale after the move.
    gpu(from).l2().invalidatePage(page_base, page_bytes);

    // One shootdown round invalidates every mapper's cached translation.
    bool any_tlb = false;
    maskForEach(st.mapped, [&](GpuId g) {
        if (gpu(g).tlb().contains(vpn)) {
            gpu(g).tlb().invalidate(vpn);
            any_tlb = true;
        }
    });
    if (any_tlb) {
        ++shootdownRounds_;
        ++counters.tlbShootdowns;
    }

    // Move the frame.
    if (!maskHas(st.backed, to)) {
        const auto ppn = gpu(to).memory().allocFrame();
        if (!ppn.has_value())
            gps_fatal("GPU ", to, " out of memory during migration");
        pageTable(to).map(vpn, Pte{*ppn, to, st.gpsBitSet});
        st.backed = maskSet(st.backed, to);
        st.mapped = maskSet(st.mapped, to);
    } else {
        // Destination already holds a (stale) replica; refresh mapping.
        Pte* pte = pageTable(to).lookupMutable(vpn);
        gps_assert(pte != nullptr, "replica without mapping");
    }
    const Pte* from_pte = pageTable(from).lookup(vpn);
    gps_assert(from_pte != nullptr && from_pte->location == from,
               "migration source not backed");
    gpu(from).memory().freeFrame(from_pte->ppn);
    pageTable(from).unmap(vpn);
    st.backed = maskClear(st.backed, from);
    st.mapped = maskClear(st.mapped, from);
    st.location = to;

    // Any other peer mappings now point at the new owner.
    maskForEach(st.mapped, [&](GpuId g) {
        if (g != to)
            mapPeer(vpn, g, to);
    });

    traffic.add(from, to, page_bytes + topology_->spec().headerBytes,
                page_bytes);
    ++migrations_;
    ++counters.pageMigrations;
    counters.migrationBytes += page_bytes;
    if (profile_ != nullptr)
        profile_->noteMigration(vpn);
    if (causal_ != nullptr)
        causal_->noteDep(CausalEdge::MigrationToStall);
    if (recorder_ != nullptr)
        recorder_->instantNow(TimelineRecorder::driverTid, "migrate",
                              "driver",
                              {{"vpn", static_cast<double>(vpn)},
                               {"from", static_cast<double>(from)},
                               {"to", static_cast<double>(to)}});
}

void
Driver::exportStats(StatSet& out) const
{
    out.set("driver.pages", static_cast<double>(pages_.pages()));
    out.set("driver.migrations", static_cast<double>(migrations_));
    out.set("driver.shootdown_rounds",
            static_cast<double>(shootdownRounds_));
    out.set("driver.reclaims", static_cast<double>(reclaims_));
    for (const auto& pt : pageTables_)
        pt->exportStats(out);
}

void
Driver::registerMetrics(MetricRegistry& reg) const
{
    reg.gauge("driver.pages", "pages",
              [this] { return static_cast<double>(pages_.pages()); });
    reg.counter("driver.migrations", "pages",
                [this] { return static_cast<double>(migrations_); });
    reg.counter("driver.shootdown_rounds", "rounds", [this] {
        return static_cast<double>(shootdownRounds_);
    });
    reg.counter("driver.reclaims", "frames",
                [this] { return static_cast<double>(reclaims_); });
    for (const auto& pt : pageTables_)
        pt->registerMetrics(reg);
}

void
Driver::saveState(snapshot::Serializer& out) const
{
    out.section("driver");
    out.u64(pageTables_.size());
    for (const auto& pt : pageTables_)
        pt->saveState(out);
    pages_.saveState(out);
    out.u64(migrations_);
    out.u64(shootdownRounds_);
    out.u64(reclaims_);
}

void
Driver::restoreState(snapshot::Deserializer& in)
{
    in.section("driver");
    if (in.u64() != pageTables_.size())
        throw snapshot::SnapshotError(
            "snapshot GPU count differs from the configured system");
    for (auto& pt : pageTables_)
        pt->restoreState(in);
    pages_.restoreState(in);
    migrations_ = in.u64();
    shootdownRounds_ = in.u64();
    reclaims_ = in.u64();
}

} // namespace gps
