/**
 * @file
 * Reference model for differential validation.
 *
 * A deliberately simple, unoptimized functional re-implementation of
 * the GPS semantics the timing model must preserve: subscription state,
 * replica sets, write-queue coalescing/draining and the forwarded byte
 * counts. It replays the same access stream through plain maps and
 * deques — no iterator caches, no hot-path shortcuts — and at run end
 * its counters must agree exactly with the timing model's. Where the
 * two diverge, one of them is wrong.
 */

#ifndef GPS_CHECK_REF_MODEL_HH
#define GPS_CHECK_REF_MODEL_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/gpu_mask.hh"
#include "common/types.hh"
#include "core/gps_config.hh"
#include "mem/address_space.hh"
#include "mem/page.hh"
#include "trace/access.hh"

namespace gps
{

/** Functional mirror of one page's GPS-relevant driver state. */
struct RefPage
{
    MemKind kind = MemKind::Pinned;
    GpuId location = invalidGpu;
    GpuMask subscribers = 0;
    bool collapsed = false;
};

/** A protocol violation the reference noticed during replay. */
struct RefViolation
{
    PageNum vpn = 0;
    std::string what;
};

/** The slow-but-obvious functional model of GPS. */
class RefModel
{
  public:
    /** Per-GPU counters mirroring the simulator's write-queue stats. */
    struct GpuCounters
    {
        std::uint64_t inserts = 0;
        std::uint64_t coalesced = 0;
        std::uint64_t drains = 0;
        std::uint64_t watermarkDrains = 0;
        std::uint64_t atomicBypass = 0;
        std::uint64_t forwardHits = 0;
        std::uint64_t smCoalesced = 0;
    };

    /**
     * @p gpus_per_node mirrors the node tier: 0 (or >= the GPU count)
     * means a flat single-node topology; otherwise GPUs divide into
     * contiguous nodes of that size and the reference independently
     * re-counts cross-node remote-write messages for comparison against
     * the simulator's gps.uplink_forwards.
     */
    RefModel(const GpsConfig& config, PageGeometry geometry,
             std::uint32_t line_bytes, std::uint32_t coalescer_depth,
             std::size_t num_gpus, std::size_t gpus_per_node = 0);

    // --- Page seeding (lazy, from driver truth at first sighting) ---
    bool knows(PageNum vpn) const { return pages_.count(vpn) != 0; }
    void seedPage(PageNum vpn, const RefPage& page);
    RefPage* findPage(PageNum vpn);

    // --- Event application (GpsCheckSink callbacks, idempotent) ---
    void applySubscribe(PageNum vpn, GpuId gpu);
    void applyUnsubscribe(PageNum vpn, GpuId gpu);
    void applyCollapse(PageNum vpn, GpuId keeper);
    void applySysFlush(PageNum vpn);
    void applyWqSaturation(GpuId gpu, bool saturated);

    /** Replay one access; unknown pages count as unmodeled. */
    void replay(GpuId gpu, const MemAccess& access, PageNum vpn);

    /** End-of-grid release: full drain plus SM-coalescer reset. */
    void endKernel(GpuId gpu);

    // --- Comparison accessors ---
    const GpuCounters& counters(GpuId gpu) const
    {
        return gpus_.at(gpu).counters;
    }
    std::uint64_t occupancy(GpuId gpu) const
    {
        return gpus_.at(gpu).occupancy;
    }
    std::uint64_t resident(GpuId gpu) const
    {
        return gpus_.at(gpu).fifo.size();
    }
    std::uint64_t coalescerAbsorbed(GpuId gpu) const
    {
        return gpus_.at(gpu).coalAbsorbed;
    }
    std::uint64_t pushedStoreBytes() const { return pushedStoreBytes_; }
    std::uint64_t uplinkForwards() const { return uplinkForwards_; }
    std::uint64_t unmodeledAccesses() const { return unmodeled_; }

    /** Protocol violations noticed during replay (drains the list). */
    std::vector<RefViolation> takeViolations();

    /** Visit every known page in ascending VPN order. */
    template <typename Fn>
    void
    forEachPage(Fn&& fn) const
    {
        for (const auto& [vpn, page] : pages_)
            fn(vpn, page);
    }

  private:
    /** One buffered line in a reference write queue. */
    struct RefWqEntry
    {
        Addr line = 0;
        PageNum vpn = 0;
        std::uint32_t weight = 1;
    };

    /** One GPU's write queue plus SM-coalescer replica. */
    struct GpuState
    {
        std::deque<Addr> fifo; ///< insertion order, front = oldest
        std::unordered_map<Addr, RefWqEntry> lines;
        std::uint64_t occupancy = 0;
        bool saturated = false;
        GpuCounters counters;

        // SM store coalescer: circular buffer of line numbers.
        std::vector<std::uint64_t> coalLines;
        std::uint32_t coalHead = 0;
        std::uint32_t coalValid = 0;
        std::uint64_t coalAbsorbed = 0;
    };

    Addr lineOf(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineBytes_ - 1);
    }
    std::uint64_t watermark(const GpuState& gs) const;
    bool coalescerAbsorb(GpuState& gs, Addr addr);
    void insertStore(GpuId gpu, Addr addr, std::uint32_t copies);
    void drainToWatermark(GpuId gpu);
    void drainOldest(GpuId gpu);
    void forwardDrained(GpuId gpu, const RefWqEntry& entry);

    /** Count cross-node messages for one forwarded line or atomic. */
    void countUplinkForwards(GpuId producer, const GpuMask& remote);

    GpsConfig config_;
    PageGeometry geometry_;
    std::uint32_t lineBytes_;
    std::uint32_t coalescerDepth_;
    std::size_t gpusPerNode_;

    std::vector<GpuState> gpus_;

    /** Ordered so finalize comparisons are deterministic. */
    std::map<PageNum, RefPage> pages_;

    std::uint64_t pushedStoreBytes_ = 0;
    std::uint64_t uplinkForwards_ = 0;
    std::uint64_t unmodeled_ = 0;
    std::vector<RefViolation> violations_;
};

} // namespace gps

#endif // GPS_CHECK_REF_MODEL_HH
