/**
 * @file
 * Observer interface for GPS protocol events.
 *
 * The subscription manager and the GPS paradigm fire these callbacks as
 * the simulated driver mutates subscription state, following the same
 * attach/detach pattern as ProfileCollector: a nullptr sink is the
 * default and costs nothing on the hot path. The differential checker
 * mirrors the events into its reference model so both sides evolve the
 * same page state without the checker ever reaching into timing-model
 * internals.
 */

#ifndef GPS_CHECK_SINK_HH
#define GPS_CHECK_SINK_HH

#include "common/types.hh"

namespace gps
{

/** Receives GPS subscription-protocol events. */
class GpsCheckSink
{
  public:
    virtual ~GpsCheckSink() = default;

    /** @p gpu became a subscriber of @p vpn (replica backed). */
    virtual void noteSubscribe(PageNum vpn, GpuId gpu) = 0;

    /** @p gpu left @p vpn's subscriber set (replica freed). */
    virtual void noteUnsubscribe(PageNum vpn, GpuId gpu) = 0;

    /** @p vpn collapsed to a single copy on @p keeper (Section 5.3). */
    virtual void noteCollapse(PageNum vpn, GpuId keeper) = 0;

    /**
     * Every write queue is about to flush @p vpn (sys-scoped store
     * prelude); fired before the collapse so the reference drains with
     * the pre-collapse subscriber masks, exactly like the simulator.
     */
    virtual void noteSysFlush(PageNum vpn) = 0;

    /** @p gpu's write queue entered/left fault-injected saturation;
     *  invalidGpu addresses every queue. */
    virtual void noteWqSaturation(GpuId gpu, bool saturated) = 0;
};

} // namespace gps

#endif // GPS_CHECK_SINK_HH
