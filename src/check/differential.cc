#include "check/differential.hh"

namespace gps
{

DifferentialResult
runDifferentialCheck(std::vector<SweepJob> jobs, const CheckConfig& check,
                     std::size_t workers)
{
    for (SweepJob& job : jobs) {
        job.config.check = check;
        job.config.check.enabled = true;
    }

    DifferentialResult out;
    out.outcomes = runSweep(jobs, workers);
    for (std::size_t i = 0; i < out.outcomes.size(); ++i) {
        const SweepOutcome& outcome = out.outcomes[i];
        if (!outcome.ok() || outcome.result.check == nullptr)
            continue;
        const CheckReport& report = *outcome.result.check;
        if (report.ok())
            continue;
        DifferentialDivergence div;
        div.jobIndex = i;
        div.label = outcome.label;
        if (!report.findings.empty())
            div.finding = report.findings.front();
        else
            div.finding.invariant = "unknown";
        out.divergences.push_back(std::move(div));
    }
    return out;
}

} // namespace gps
