/**
 * @file
 * Configuration and report types for the differential-validation
 * subsystem (src/check/). Deliberately free of heavy includes so
 * RunConfig and RunResult can embed them cheaply.
 */

#ifndef GPS_CHECK_CHECK_CONFIG_HH
#define GPS_CHECK_CHECK_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace gps
{

/** Knobs of the runtime validation layer (gpsim --check). */
struct CheckConfig
{
    /**
     * Master switch. Disabled runs construct no checker at all and are
     * byte-identical to a build without the check subsystem.
     */
    bool enabled = false;

    /**
     * Run the full invariant suite every N replayed accesses on top of
     * the kernel-end and finalize sweeps (0 = kernel ends and finalize
     * only).
     */
    std::uint64_t everyAccesses = 0;

    /**
     * Test-only seeded defect, used by the divergence-detection tests
     * to prove the checker actually fires:
     *   0  none
     *   1  the reference model silently skips one weak store
     *      (guaranteed counter divergence at the next kernel end)
     *   2  the reference model drops one unsubscribe event
     *      (page-state divergence at finalize, with page context)
     */
    std::uint32_t testMutation = 0;
};

/** One detected divergence or invariant violation. */
struct CheckFinding
{
    /** Which invariant / comparison failed (e.g. "rwq.conservation"). */
    std::string invariant;

    /** Human-readable expected-vs-actual detail. */
    std::string detail;

    /** Phase (kernel) being replayed when the divergence was caught. */
    std::string phase;

    /** GPU context; invalidGpu when not GPU-specific. */
    GpuId gpu = invalidGpu;

    /** Page context; meaningful only when hasVpn. */
    PageNum vpn = 0;
    bool hasVpn = false;
};

/** Outcome of one checked run. */
struct CheckReport
{
    bool enabled = false;

    /** Accesses replayed through the reference model. */
    std::uint64_t refAccesses = 0;

    /** Accesses the reference model declined to model (non-GPS kinds). */
    std::uint64_t unmodeledAccesses = 0;

    /** Subscription/collapse/flush events mirrored into the reference. */
    std::uint64_t sinkEvents = 0;

    /** Individual invariant evaluations performed. */
    std::uint64_t invariantChecks = 0;

    /** Individual reference-vs-simulator counter comparisons. */
    std::uint64_t counterChecks = 0;

    /** Total divergences (findings is capped; this count is not). */
    std::uint64_t divergences = 0;

    /** First findings, capped at maxFindings. */
    static constexpr std::size_t maxFindings = 32;
    std::vector<CheckFinding> findings;

    bool ok() const { return divergences == 0; }
};

/** Record @p finding: always counted, stored only below the cap. */
void addFinding(CheckReport& report, CheckFinding finding);

/** One-line rendering with phase/GPU/page context. */
std::string describe(const CheckFinding& finding);

} // namespace gps

#endif // GPS_CHECK_CHECK_CONFIG_HH
