/**
 * @file
 * Differential sweep mode: run a job list with checking forced on and
 * collect the first divergence of every diverged run, with enough
 * context (label, phase, GPU, page) to reproduce it.
 */

#ifndef GPS_CHECK_DIFFERENTIAL_HH
#define GPS_CHECK_DIFFERENTIAL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "api/sweep.hh"
#include "check/check_config.hh"

namespace gps
{

/** First divergence of one diverged sweep job. */
struct DifferentialDivergence
{
    /** Index of the job in the sweep's input order. */
    std::size_t jobIndex = 0;

    /** The job's display label. */
    std::string label;

    CheckFinding finding;
};

/** Outcome of a differential sweep. */
struct DifferentialResult
{
    /** Per-job outcomes, in input order (as runSweep returns them). */
    std::vector<SweepOutcome> outcomes;

    /** One entry per diverged job, in input order. */
    std::vector<DifferentialDivergence> divergences;

    bool ok() const { return divergences.empty(); }

    /** First divergence across the sweep, or nullptr. */
    const DifferentialDivergence*
    first() const
    {
        return divergences.empty() ? nullptr : &divergences.front();
    }
};

/**
 * Run every job with @p check forced on (enabled regardless of what the
 * job's config says) on up to @p workers threads.
 */
DifferentialResult runDifferentialCheck(std::vector<SweepJob> jobs,
                                        const CheckConfig& check,
                                        std::size_t workers);

} // namespace gps

#endif // GPS_CHECK_DIFFERENTIAL_HH
