#include "check/invariants.hh"

#include <sstream>

#include "api/system.hh"
#include "core/gps_paradigm.hh"
#include "interconnect/node_topology.hh"

namespace gps
{

namespace
{

CheckFinding
makeFinding(std::string invariant, std::string detail,
            const std::string& phase, GpuId gpu = invalidGpu)
{
    CheckFinding f;
    f.invariant = std::move(invariant);
    f.detail = std::move(detail);
    f.phase = phase;
    f.gpu = gpu;
    return f;
}

} // namespace

void
InvariantChecker::runAll(const std::string& phase, CheckReport& report)
{
    runCheap(phase, report);
    checkSubscriptions(phase, report);
}

void
InvariantChecker::runCheap(const std::string& phase, CheckReport& report)
{
    checkQueues(phase, report);
    checkFrames(phase, report);
    checkInterconnect(phase, report);
    checkUplinks(phase, report);
}

void
InvariantChecker::checkQueues(const std::string& phase,
                              CheckReport& report)
{
    if (gps_ == nullptr)
        return;
    for (std::size_t g = 0; g < system_->numGpus(); ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const RemoteWriteQueue& wq = gps_->writeQueue(gpu);

        ++report.invariantChecks;
        if (wq.inserts() != wq.drains() + wq.residentEntries()) {
            std::ostringstream os;
            os << "inserts=" << wq.inserts() << " drains=" << wq.drains()
               << " resident=" << wq.residentEntries();
            addFinding(report, makeFinding("rwq.conservation", os.str(),
                                           phase, gpu));
        }

        ++report.invariantChecks;
        if (wq.occupancy() != wq.weightSum()) {
            std::ostringstream os;
            os << "occupancy=" << wq.occupancy()
               << " weight_sum=" << wq.weightSum();
            addFinding(report, makeFinding("rwq.occupancy-weight",
                                           os.str(), phase, gpu));
        }
    }
}

void
InvariantChecker::checkInterconnect(const std::string& phase,
                                    CheckReport& report)
{
    Topology& topo = system_->topology();
    std::uint64_t egress = 0;
    std::uint64_t ingress = 0;
    for (std::size_t g = 0; g < system_->numGpus(); ++g) {
        egress += topo.egressLink(static_cast<GpuId>(g)).totalBytes();
        ingress += topo.ingressLink(static_cast<GpuId>(g)).totalBytes();
    }

    ++report.invariantChecks;
    if (topo.totalBytes() != egress) {
        std::ostringstream os;
        os << "total_bytes=" << topo.totalBytes()
           << " sum_egress=" << egress;
        addFinding(report,
                   makeFinding("interconnect.total-vs-links", os.str(),
                               phase));
    }

    ++report.invariantChecks;
    if (egress != ingress) {
        std::ostringstream os;
        os << "sum_egress=" << egress << " sum_ingress=" << ingress;
        addFinding(report,
                   makeFinding("interconnect.egress-vs-ingress",
                               os.str(), phase));
    }
}

void
InvariantChecker::checkUplinks(const std::string& phase,
                               CheckReport& report)
{
    auto* topo = dynamic_cast<NodeTopology*>(&system_->topology());
    if (topo == nullptr)
        return;
    const std::size_t nodes = topo->numNodes();
    std::uint64_t egress_sum = 0;
    std::uint64_t ingress_sum = 0;
    for (std::size_t n = 0; n < nodes; ++n) {
        std::uint64_t row = 0;
        std::uint64_t col = 0;
        for (std::size_t m = 0; m < nodes; ++m) {
            row += topo->crossNodeBytes(n, m);
            col += topo->crossNodeBytes(m, n);
        }
        const std::uint64_t egress = topo->uplinkEgress(n).totalBytes();
        const std::uint64_t ingress = topo->uplinkIngress(n).totalBytes();
        egress_sum += egress;
        ingress_sum += ingress;

        ++report.invariantChecks;
        if (egress != row) {
            std::ostringstream os;
            os << "node=" << n << " uplink_egress=" << egress
               << " cross_row_sum=" << row;
            addFinding(report, makeFinding("uplink.egress-vs-cross",
                                           os.str(), phase));
        }

        ++report.invariantChecks;
        if (ingress != col) {
            std::ostringstream os;
            os << "node=" << n << " uplink_ingress=" << ingress
               << " cross_col_sum=" << col;
            addFinding(report, makeFinding("uplink.ingress-vs-cross",
                                           os.str(), phase));
        }
    }

    // Every byte that leaves a node arrives at exactly one other node.
    ++report.invariantChecks;
    if (egress_sum != ingress_sum) {
        std::ostringstream os;
        os << "sum_uplink_egress=" << egress_sum
           << " sum_uplink_ingress=" << ingress_sum;
        addFinding(report, makeFinding("uplink.egress-vs-ingress",
                                       os.str(), phase));
    }
}

void
InvariantChecker::checkSubscriptions(const std::string& phase,
                                     CheckReport& report)
{
    if (gps_ == nullptr)
        return;
    Driver& drv = system_->driver();
    gps_->gpsPageTable().forEach([&](PageNum vpn, const GpsPte& pte) {
        ++report.invariantChecks;
        const PageState* st = drv.findState(vpn);
        if (st == nullptr) {
            CheckFinding f = makeFinding(
                "subscription.orphan-pte",
                "GPS PTE for a page with no driver state", phase);
            f.vpn = vpn;
            f.hasVpn = true;
            addFinding(report, std::move(f));
            return;
        }

        // Replica set must be a subset of the driver's subscriber mask.
        const GpuMask replicas = pte.subscriberMask();
        if ((replicas & ~st->subscribers) != 0) {
            std::ostringstream os;
            os << "replica_mask=0x" << std::hex << replicas
               << " subscriber_mask=0x" << st->subscribers;
            CheckFinding f = makeFinding("subscription.replica-subset",
                                         os.str(), phase);
            f.vpn = vpn;
            f.hasVpn = true;
            addFinding(report, std::move(f));
        }

        // No replica may live on an unallocated (retired/freed) frame.
        ++report.invariantChecks;
        for (const GpsReplica& r : pte.replicas) {
            if (!drv.gpu(r.gpu).memory().allocated(r.ppn)) {
                std::ostringstream os;
                os << "replica ppn=" << r.ppn
                   << " is not an allocated frame";
                CheckFinding f =
                    makeFinding("subscription.replica-frame", os.str(),
                                phase, r.gpu);
                f.vpn = vpn;
                f.hasVpn = true;
                addFinding(report, std::move(f));
            }
        }

        // GPS bit <=> expanded multi-subscriber page.
        ++report.invariantChecks;
        const bool multi =
            maskCount(st->subscribers) >= 2 && !st->collapsed;
        if (st->gpsBitSet != multi) {
            std::ostringstream os;
            os << "gps_bit=" << st->gpsBitSet
               << " subscribers=" << maskCount(st->subscribers)
               << " collapsed=" << st->collapsed;
            CheckFinding f =
                makeFinding("subscription.gps-bit", os.str(), phase);
            f.vpn = vpn;
            f.hasVpn = true;
            addFinding(report, std::move(f));
        }
    });
}

void
InvariantChecker::checkFrames(const std::string& phase,
                              CheckReport& report)
{
    for (std::size_t g = 0; g < system_->numGpus(); ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        const PhysicalMemory& mem = system_->gpu(gpu).memory();

        ++report.invariantChecks;
        if (mem.framesFree() != mem.allocatableFrames()) {
            std::ostringstream os;
            os << "frames_free=" << mem.framesFree()
               << " allocatable=" << mem.allocatableFrames();
            addFinding(report, makeFinding("frames.free-vs-allocatable",
                                           os.str(), phase, gpu));
        }

        ++report.invariantChecks;
        if (mem.initialFrames() !=
            mem.totalFrames() + mem.framesRetired()) {
            std::ostringstream os;
            os << "initial=" << mem.initialFrames()
               << " total=" << mem.totalFrames()
               << " retired=" << mem.framesRetired();
            addFinding(report, makeFinding("frames.retirement-ledger",
                                           os.str(), phase, gpu));
        }
    }
}

} // namespace gps
