#include "check/check.hh"

#include <sstream>

#include "api/system.hh"
#include "core/gps_paradigm.hh"

namespace gps
{

void
addFinding(CheckReport& report, CheckFinding finding)
{
    ++report.divergences;
    if (report.findings.size() < CheckReport::maxFindings)
        report.findings.push_back(std::move(finding));
}

std::string
describe(const CheckFinding& finding)
{
    std::ostringstream os;
    os << finding.invariant << ": " << finding.detail << " [phase "
       << finding.phase;
    if (finding.gpu != invalidGpu)
        os << ", gpu " << finding.gpu;
    if (finding.hasVpn)
        os << ", page " << finding.vpn;
    os << ']';
    return os.str();
}

CheckContext::CheckContext(const CheckConfig& config,
                           MultiGpuSystem& system)
    : config_(config), system_(&system)
{
    const std::size_t nodes = system.config().numNodes;
    ref_ = std::make_unique<RefModel>(
        system.config().gps, system.geometry(),
        system.config().gpu.cacheLineBytes,
        system.config().gpu.smCoalescerDepth, system.numGpus(),
        nodes > 1 ? system.numGpus() / nodes : 0);
    invariants_ = std::make_unique<InvariantChecker>(system, nullptr);
}

void
CheckContext::attachParadigm(Paradigm* paradigm)
{
    if (paradigm == nullptr || paradigm->kind() != ParadigmKind::Gps) {
        gps_ = nullptr;
        invariants_ = std::make_unique<InvariantChecker>(*system_,
                                                         nullptr);
        return;
    }
    gps_ = static_cast<GpsParadigm*>(paradigm);
    invariants_ = std::make_unique<InvariantChecker>(*system_, gps_);
}

void
CheckContext::onAccess(GpuId gpu, const MemAccess& access, PageNum vpn)
{
    ++taps_;
    if (gps_ != nullptr) {
        seedIfUnknown(vpn);
        const bool skip = config_.testMutation == 1 && !mutation1Done_ &&
                          maybeApplyMutation1(gpu, access, vpn);
        if (!skip) {
            ref_->replay(gpu, access, vpn);
            ++report_.refAccesses;
        }
    }
    if (config_.everyAccesses > 0 &&
        taps_ % config_.everyAccesses == 0)
        invariants_->runAll(phase_, report_);
}

void
CheckContext::onKernelEnd(GpuId gpu)
{
    if (gps_ != nullptr) {
        ref_->endKernel(gpu);
        compareQueue(gpu);
    }
    invariants_->runCheap(phase_, report_);
}

CheckReport
CheckContext::finalize(const KernelCounters& totals, const StatSet& stats)
{
    phase_ = "finalize";
    if (gps_ != nullptr) {
        drainViolations();
        compareTotals(totals, stats);
        comparePages();
        report_.unmodeledAccesses = ref_->unmodeledAccesses();
    }
    invariants_->runAll(phase_, report_);
    report_.enabled = true;
    return report_;
}

void
CheckContext::noteSubscribe(PageNum vpn, GpuId gpu)
{
    ++report_.sinkEvents;
    seedIfUnknown(vpn);
    ref_->applySubscribe(vpn, gpu);
}

void
CheckContext::noteUnsubscribe(PageNum vpn, GpuId gpu)
{
    ++report_.sinkEvents;
    seedIfUnknown(vpn);
    if (config_.testMutation == 2 && !mutation2Done_) {
        // Only drop an event that actually changes reference state;
        // dropping one that seeding already reflects would self-heal.
        RefPage* page = ref_->findPage(vpn);
        if (page != nullptr && maskHas(page->subscribers, gpu)) {
            mutation2Done_ = true;
            return;
        }
    }
    ref_->applyUnsubscribe(vpn, gpu);
}

void
CheckContext::noteCollapse(PageNum vpn, GpuId keeper)
{
    ++report_.sinkEvents;
    seedIfUnknown(vpn);
    ref_->applyCollapse(vpn, keeper);
}

void
CheckContext::noteSysFlush(PageNum vpn)
{
    ++report_.sinkEvents;
    seedIfUnknown(vpn);
    ref_->applySysFlush(vpn);
}

void
CheckContext::noteWqSaturation(GpuId gpu, bool saturated)
{
    ++report_.sinkEvents;
    ref_->applyWqSaturation(gpu, saturated);
}

void
CheckContext::seedIfUnknown(PageNum vpn)
{
    if (ref_->knows(vpn))
        return;
    const PageState* st = system_->driver().findState(vpn);
    if (st == nullptr)
        return;
    RefPage page;
    page.kind = st->kind;
    page.location = st->location;
    page.subscribers = st->subscribers;
    page.collapsed = st->collapsed;
    ref_->seedPage(vpn, page);
}

bool
CheckContext::maybeApplyMutation1(GpuId gpu, const MemAccess& access,
                                  PageNum vpn)
{
    // Skip exactly one weak store that must reach the reference's
    // coalescer/queue stage; one of the per-GPU counters then diverges
    // at the next kernel end.
    if (!access.isStore() || access.scope == Scope::Sys)
        return false;
    RefPage* page = ref_->findPage(vpn);
    if (page == nullptr || page->kind != MemKind::Gps || page->collapsed)
        return false;
    if (maskClear(page->subscribers, gpu) == 0)
        return false;
    mutation1Done_ = true;
    return true;
}

void
CheckContext::compare(const std::string& what, GpuId gpu,
                      std::uint64_t reference, std::uint64_t simulator)
{
    ++report_.counterChecks;
    if (reference == simulator)
        return;
    std::ostringstream os;
    os << "reference=" << reference << " simulator=" << simulator;
    CheckFinding f;
    f.invariant = "counter:" + what;
    f.detail = os.str();
    f.phase = phase_;
    f.gpu = gpu;
    addFinding(report_, std::move(f));
}

void
CheckContext::compareQueue(GpuId gpu)
{
    const RemoteWriteQueue& wq = gps_->writeQueue(gpu);
    const RefModel::GpuCounters& rc = ref_->counters(gpu);
    compare("rwq.inserts", gpu, rc.inserts, wq.inserts());
    compare("rwq.coalesced", gpu, rc.coalesced, wq.coalesced());
    compare("rwq.drains", gpu, rc.drains, wq.drains());
    compare("rwq.watermark_drains", gpu, rc.watermarkDrains,
            wq.watermarkDrains());
    compare("rwq.atomic_bypass", gpu, rc.atomicBypass,
            wq.atomicBypass());
    compare("rwq.forward_hits", gpu, rc.forwardHits, wq.forwardHits());
    compare("rwq.occupancy", gpu, ref_->occupancy(gpu), wq.occupancy());
    compare("rwq.resident", gpu, ref_->resident(gpu),
            wq.residentEntries());
    compare("sm_coalescer.absorbed", gpu, ref_->coalescerAbsorbed(gpu),
            system_->gpu(gpu).storeCoalescer().absorbed());
}

void
CheckContext::compareTotals(const KernelCounters& totals,
                            const StatSet& stats)
{
    RefModel::GpuCounters sum;
    for (std::size_t g = 0; g < system_->numGpus(); ++g) {
        const RefModel::GpuCounters& rc =
            ref_->counters(static_cast<GpuId>(g));
        sum.inserts += rc.inserts;
        sum.coalesced += rc.coalesced;
        sum.drains += rc.drains;
        sum.atomicBypass += rc.atomicBypass;
        sum.forwardHits += rc.forwardHits;
        sum.smCoalesced += rc.smCoalesced;
    }
    compare("totals.wq_inserts", invalidGpu, sum.inserts,
            totals.wqInserts);
    compare("totals.wq_coalesced", invalidGpu, sum.coalesced,
            totals.wqCoalesced);
    compare("totals.wq_drains", invalidGpu, sum.drains, totals.wqDrains);
    compare("totals.wq_atomic_bypass", invalidGpu, sum.atomicBypass,
            totals.wqAtomicBypass);
    compare("totals.sm_coalesced", invalidGpu, sum.smCoalesced,
            totals.smCoalesced);
    compare("totals.pushed_store_bytes", invalidGpu,
            ref_->pushedStoreBytes(), totals.pushedStoreBytes);
    if (stats.has("gps.wq_forward_hits"))
        compare("stats.gps.wq_forward_hits", invalidGpu, sum.forwardHits,
                static_cast<std::uint64_t>(
                    stats.get("gps.wq_forward_hits")));
    if (stats.has("gps.uplink_forwards"))
        compare("stats.gps.uplink_forwards", invalidGpu,
                ref_->uplinkForwards(),
                static_cast<std::uint64_t>(
                    stats.get("gps.uplink_forwards")));
}

void
CheckContext::comparePages()
{
    Driver& drv = system_->driver();
    ref_->forEachPage([&](PageNum vpn, const RefPage& page) {
        if (page.kind != MemKind::Gps)
            return;
        ++report_.counterChecks;
        const PageState* st = drv.findState(vpn);
        if (st == nullptr) {
            CheckFinding f;
            f.invariant = "page.vanished";
            f.detail = "reference knows a page the driver lost";
            f.phase = phase_;
            f.vpn = vpn;
            f.hasVpn = true;
            addFinding(report_, std::move(f));
            return;
        }
        if (st->subscribers != page.subscribers) {
            std::ostringstream os;
            os << "reference_mask=0x" << std::hex << page.subscribers
               << " simulator_mask=0x" << st->subscribers;
            CheckFinding f;
            f.invariant = "page.subscribers";
            f.detail = os.str();
            f.phase = phase_;
            f.vpn = vpn;
            f.hasVpn = true;
            addFinding(report_, std::move(f));
        }
        ++report_.counterChecks;
        if (st->collapsed != page.collapsed) {
            std::ostringstream os;
            os << "reference_collapsed=" << page.collapsed
               << " simulator_collapsed=" << st->collapsed;
            CheckFinding f;
            f.invariant = "page.collapsed";
            f.detail = os.str();
            f.phase = phase_;
            f.vpn = vpn;
            f.hasVpn = true;
            addFinding(report_, std::move(f));
        }
        if (st->collapsed && page.collapsed) {
            ++report_.counterChecks;
            if (st->location != page.location) {
                std::ostringstream os;
                os << "reference_location=" << page.location
                   << " simulator_location=" << st->location;
                CheckFinding f;
                f.invariant = "page.location";
                f.detail = os.str();
                f.phase = phase_;
                f.vpn = vpn;
                f.hasVpn = true;
                addFinding(report_, std::move(f));
            }
        }
    });
}

void
CheckContext::drainViolations()
{
    for (RefViolation& v : ref_->takeViolations()) {
        CheckFinding f;
        f.invariant = "protocol.violation";
        f.detail = std::move(v.what);
        f.phase = phase_;
        f.vpn = v.vpn;
        f.hasVpn = true;
        addFinding(report_, std::move(f));
    }
}

} // namespace gps
