#include "check/ref_model.hh"

#include <algorithm>

namespace gps
{

RefModel::RefModel(const GpsConfig& config, PageGeometry geometry,
                   std::uint32_t line_bytes,
                   std::uint32_t coalescer_depth, std::size_t num_gpus,
                   std::size_t gpus_per_node)
    : config_(config), geometry_(geometry), lineBytes_(line_bytes),
      coalescerDepth_(coalescer_depth),
      gpusPerNode_(gpus_per_node >= num_gpus ? 0 : gpus_per_node),
      gpus_(num_gpus)
{
    for (GpuState& gs : gpus_)
        gs.coalLines.assign(coalescer_depth, 0);
}

void
RefModel::seedPage(PageNum vpn, const RefPage& page)
{
    pages_.emplace(vpn, page);
}

RefPage*
RefModel::findPage(PageNum vpn)
{
    auto it = pages_.find(vpn);
    return it == pages_.end() ? nullptr : &it->second;
}

void
RefModel::applySubscribe(PageNum vpn, GpuId gpu)
{
    auto it = pages_.find(vpn);
    if (it == pages_.end())
        it = pages_.emplace(vpn, RefPage{MemKind::Gps, gpu, 0, false})
                 .first;
    it->second.subscribers = maskSet(it->second.subscribers, gpu);
}

void
RefModel::applyUnsubscribe(PageNum vpn, GpuId gpu)
{
    RefPage* page = findPage(vpn);
    if (page == nullptr)
        return;
    page->subscribers = maskClear(page->subscribers, gpu);
    // Mirror the driver's location fixup: the primary copy moves to the
    // lowest surviving subscriber.
    if (page->location == gpu)
        page->location = maskFirst(page->subscribers);
}

void
RefModel::applyCollapse(PageNum vpn, GpuId keeper)
{
    RefPage* page = findPage(vpn);
    if (page == nullptr)
        return;
    // The non-keeper unsubscribes arrive as individual events first;
    // this just demotes the page for good.
    page->collapsed = true;
    page->location = keeper;
}

void
RefModel::applySysFlush(PageNum vpn)
{
    // Every queue flushes its entries of this page, forwarding with the
    // current (pre-collapse) subscriber masks.
    for (std::size_t g = 0; g < gpus_.size(); ++g) {
        const GpuId gpu = static_cast<GpuId>(g);
        GpuState& gs = gpus_[g];
        std::deque<Addr> kept;
        for (const Addr line : gs.fifo) {
            auto it = gs.lines.find(line);
            if (it == gs.lines.end())
                continue;
            if (it->second.vpn != vpn) {
                kept.push_back(line);
                continue;
            }
            const RefWqEntry entry = it->second;
            gs.lines.erase(it);
            gs.occupancy -= entry.weight;
            ++gs.counters.drains;
            forwardDrained(gpu, entry);
        }
        gs.fifo.swap(kept);
    }
}

void
RefModel::applyWqSaturation(GpuId gpu, bool saturated)
{
    if (gpu == invalidGpu) {
        for (GpuState& gs : gpus_)
            gs.saturated = saturated;
        return;
    }
    gpus_.at(gpu).saturated = saturated;
}

void
RefModel::replay(GpuId gpu, const MemAccess& access, PageNum vpn)
{
    auto pit = pages_.find(vpn);
    if (pit == pages_.end()) {
        ++unmodeled_;
        return;
    }
    RefPage& page = pit->second;

    if (page.kind == MemKind::Pinned) {
        // Pinned pages: only remote stores push bytes; loads and
        // atomics pull, which the reference does not track.
        if (access.isStore() && page.location != gpu)
            pushedStoreBytes_ += access.size;
        return;
    }
    if (page.kind != MemKind::Gps) {
        ++unmodeled_;
        return;
    }

    if (page.collapsed) {
        // Demoted to a conventional single-copy page (Section 5.3).
        if (access.isStore() && page.location != gpu)
            pushedStoreBytes_ += access.size;
        return;
    }

    GpuState& gs = gpus_.at(gpu);

    if (access.isLoad()) {
        if (maskHas(page.subscribers, gpu))
            return; // serviced from the local replica
        // Non-subscriber corner case: store-forward from the write
        // queue when the line is still buffered.
        if (gs.lines.count(lineOf(access.vaddr)) != 0)
            ++gs.counters.forwardHits;
        return;
    }

    if (access.scope == Scope::Sys) {
        // The simulator collapses the page before this replay runs (the
        // flush and collapse events land first), so reaching here with
        // the page still expanded means those events never arrived.
        violations_.push_back(
            {vpn, "sys-scoped write replayed against an expanded page"});
        return;
    }

    const GpuMask remote = maskClear(page.subscribers, gpu);
    if (remote == 0)
        return; // sole subscriber: nothing leaves the GPU

    if (access.isAtomic()) {
        ++gs.counters.atomicBypass;
        pushedStoreBytes_ += static_cast<std::uint64_t>(access.size) *
                             maskCount(remote);
        countUplinkForwards(gpu, remote);
        return;
    }

    // Weak store: SM-level spatial coalescing first, then the queue.
    if (config_.smCoalescerEnabled && coalescerAbsorb(gs, access.vaddr)) {
        ++gs.counters.smCoalesced;
        return;
    }
    insertStore(gpu, access.vaddr,
                static_cast<std::uint32_t>(maskCount(remote)));
}

void
RefModel::endKernel(GpuId gpu)
{
    GpuState& gs = gpus_.at(gpu);
    while (!gs.fifo.empty())
        drainOldest(gpu);
    // Grid end resets the SM coalescer window (counters persist).
    gs.coalHead = 0;
    gs.coalValid = 0;
}

std::vector<RefViolation>
RefModel::takeViolations()
{
    std::vector<RefViolation> out;
    out.swap(violations_);
    return out;
}

std::uint64_t
RefModel::watermark(const GpuState& gs) const
{
    std::uint64_t mark = config_.highWatermark();
    if (gs.saturated && config_.saturatedWatermarkDivisor > 0)
        mark = std::min<std::uint64_t>(
            mark, config_.wqEntries / config_.saturatedWatermarkDivisor);
    return mark;
}

bool
RefModel::coalescerAbsorb(GpuState& gs, Addr addr)
{
    if (coalescerDepth_ == 0)
        return false;
    const std::uint64_t line = addr / lineBytes_;
    for (std::uint32_t i = 0; i < gs.coalValid; ++i) {
        const std::uint32_t slot =
            (gs.coalHead + coalescerDepth_ - 1 - i) % coalescerDepth_;
        if (gs.coalLines[slot] == line) {
            ++gs.coalAbsorbed;
            return true;
        }
    }
    gs.coalLines[gs.coalHead] = line;
    gs.coalHead = (gs.coalHead + 1) % coalescerDepth_;
    if (gs.coalValid < coalescerDepth_)
        ++gs.coalValid;
    return false;
}

void
RefModel::insertStore(GpuId gpu, Addr addr, std::uint32_t copies)
{
    GpuState& gs = gpus_.at(gpu);
    const Addr line = lineOf(addr);
    const std::uint32_t weight =
        config_.virtuallyAddressedWq ? 1 : std::max(copies, 1u);

    auto it = gs.lines.find(line);
    if (it != gs.lines.end()) {
        ++gs.counters.coalesced;
        // Physically-addressed ablation: the entry's capacity weight
        // tracks the current copy count.
        if (weight != it->second.weight) {
            gs.occupancy = gs.occupancy - it->second.weight + weight;
            it->second.weight = weight;
            drainToWatermark(gpu);
        }
        return;
    }

    gs.fifo.push_back(line);
    gs.lines.emplace(line,
                     RefWqEntry{line, geometry_.pageNum(line), weight});
    gs.occupancy += weight;
    ++gs.counters.inserts;
    drainToWatermark(gpu);
}

void
RefModel::drainToWatermark(GpuId gpu)
{
    GpuState& gs = gpus_.at(gpu);
    const std::uint64_t mark = watermark(gs);
    while (gs.occupancy > mark && gs.fifo.size() > 1) {
        ++gs.counters.watermarkDrains;
        drainOldest(gpu);
    }
}

void
RefModel::drainOldest(GpuId gpu)
{
    GpuState& gs = gpus_.at(gpu);
    const Addr line = gs.fifo.front();
    gs.fifo.pop_front();
    auto it = gs.lines.find(line);
    if (it == gs.lines.end())
        return;
    const RefWqEntry entry = it->second;
    gs.lines.erase(it);
    gs.occupancy -= entry.weight;
    ++gs.counters.drains;
    forwardDrained(gpu, entry);
}

void
RefModel::forwardDrained(GpuId gpu, const RefWqEntry& entry)
{
    // One cache-block message per remote subscriber, using the page's
    // subscriber set at drain time (exactly like the simulator).
    auto pit = pages_.find(entry.vpn);
    if (pit == pages_.end())
        return;
    const GpuMask remote = maskClear(pit->second.subscribers, gpu);
    pushedStoreBytes_ +=
        static_cast<std::uint64_t>(lineBytes_) * maskCount(remote);
    countUplinkForwards(gpu, remote);
}

void
RefModel::countUplinkForwards(GpuId producer, const GpuMask& remote)
{
    if (gpusPerNode_ == 0)
        return;
    const std::size_t home = producer / gpusPerNode_;
    if (config_.hierarchicalSubscription) {
        // One message per distinct remote node; nodes are contiguous id
        // ranges, so ascending iteration visits them consecutively.
        std::size_t last = home;
        maskForEach(remote, [&](GpuId sub) {
            const std::size_t node = sub / gpusPerNode_;
            if (node != home && node != last) {
                last = node;
                ++uplinkForwards_;
            }
        });
        return;
    }
    // Flat forwarding: one message per remote-node subscriber.
    maskForEach(remote, [&](GpuId sub) {
        if (sub / gpusPerNode_ != home)
            ++uplinkForwards_;
    });
}

} // namespace gps
