/**
 * @file
 * CheckContext: the differential-validation driver for one run.
 *
 * Installed by the Runner when RunConfig::check is enabled. It taps the
 * replay loop (one call after each access and each kernel end), mirrors
 * the GPS subscription protocol into a RefModel via the GpsCheckSink
 * events, evaluates structural invariants at a configurable cadence,
 * and at finalize compares the reference's end-of-run counters and page
 * state against the timing model's. When checking is disabled none of
 * this exists and runs are byte-identical to an uninstrumented build.
 */

#ifndef GPS_CHECK_CHECK_HH
#define GPS_CHECK_CHECK_HH

#include <memory>
#include <string>

#include "check/check_config.hh"
#include "check/invariants.hh"
#include "check/ref_model.hh"
#include "check/sink.hh"
#include "common/stats.hh"
#include "gpu/kernel_counters.hh"
#include "trace/access.hh"

namespace gps
{

class MultiGpuSystem;
class Paradigm;
class GpsParadigm;

/** Per-run differential checker; owned by the Runner. */
class CheckContext : public GpsCheckSink
{
  public:
    CheckContext(const CheckConfig& config, MultiGpuSystem& system);
    ~CheckContext() override = default;

    /**
     * Bind the run's paradigm. Under GPS this activates reference
     * replay and queue/subscription invariants; other paradigms keep
     * the structure-independent invariants only.
     */
    void attachParadigm(Paradigm* paradigm);

    /** A new phase starts (context for findings). */
    void beginPhase(const std::string& name) { phase_ = name; }

    /** One access was replayed by the timing model (tap runs after). */
    void onAccess(GpuId gpu, const MemAccess& access, PageNum vpn);

    /** @p gpu's kernel ended and its write queue fully drained. */
    void onKernelEnd(GpuId gpu);

    /** End of run: totals comparison, page-state sweep, full
     *  invariants. Returns the accumulated report. */
    CheckReport finalize(const KernelCounters& totals,
                         const StatSet& stats);

    // --- GpsCheckSink ---
    void noteSubscribe(PageNum vpn, GpuId gpu) override;
    void noteUnsubscribe(PageNum vpn, GpuId gpu) override;
    void noteCollapse(PageNum vpn, GpuId keeper) override;
    void noteSysFlush(PageNum vpn) override;
    void noteWqSaturation(GpuId gpu, bool saturated) override;

  private:
    void seedIfUnknown(PageNum vpn);
    bool maybeApplyMutation1(GpuId gpu, const MemAccess& access,
                             PageNum vpn);
    void compare(const std::string& what, GpuId gpu,
                 std::uint64_t reference, std::uint64_t simulator);
    void compareQueue(GpuId gpu);
    void compareTotals(const KernelCounters& totals,
                       const StatSet& stats);
    void comparePages();
    void drainViolations();

    CheckConfig config_;
    MultiGpuSystem* system_;
    GpsParadigm* gps_ = nullptr;
    std::unique_ptr<RefModel> ref_;
    std::unique_ptr<InvariantChecker> invariants_;
    CheckReport report_;
    std::string phase_ = "setup";
    std::uint64_t taps_ = 0;
    bool mutation1Done_ = false;
    bool mutation2Done_ = false;
};

} // namespace gps

#endif // GPS_CHECK_CHECK_HH
