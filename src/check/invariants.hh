/**
 * @file
 * Runtime invariant checker: conservation laws the simulator's live
 * structures must satisfy at any quiescent point, independent of the
 * reference model. Each violated law produces a CheckFinding with
 * phase/GPU/page context.
 *
 * Invariants checked:
 *  - RWQ conservation: inserts == drains + resident entries, and
 *    occupancy == sum of resident entry weights (Section 5.2).
 *  - Interconnect conservation: run-total wire bytes equal the sum of
 *    per-link egress bytes, which equal the sum of ingress bytes.
 *  - Uplink conservation (multi-node topologies): each node's uplink
 *    egress bytes equal the bytes the cross-node matrix says left that
 *    node (row sum), its uplink ingress equals the matrix column sum,
 *    and total uplink egress equals total uplink ingress — every byte
 *    that crosses a node boundary does so exactly once.
 *  - Subscription consistency: GPS page-table replicas are a subset of
 *    the driver's PageState::subscribers, no replica sits on an
 *    unallocated (e.g. retired) frame, and the GPS bit is set exactly
 *    for expanded multi-subscriber pages (Section 5.2).
 *  - Frame accounting: framesFree() agrees with the allocator's
 *    free-list/bump view, and initial frames equal current capacity
 *    plus retirements.
 */

#ifndef GPS_CHECK_INVARIANTS_HH
#define GPS_CHECK_INVARIANTS_HH

#include <string>

#include "check/check_config.hh"

namespace gps
{

class MultiGpuSystem;
class GpsParadigm;

/** Evaluates structural invariants against a live system. */
class InvariantChecker
{
  public:
    /** @param gps the GPS paradigm, or nullptr for other paradigms
     *  (queue and subscription invariants are then skipped). */
    InvariantChecker(MultiGpuSystem& system, GpsParadigm* gps)
        : system_(&system), gps_(gps)
    {}

    /** Every invariant (cadence taps and finalize). */
    void runAll(const std::string& phase, CheckReport& report);

    /**
     * The cheap subset — queues, frames, interconnect — suitable for
     * every kernel end (skips the per-page subscription scan).
     */
    void runCheap(const std::string& phase, CheckReport& report);

    void checkQueues(const std::string& phase, CheckReport& report);
    void checkInterconnect(const std::string& phase, CheckReport& report);
    void checkUplinks(const std::string& phase, CheckReport& report);
    void checkSubscriptions(const std::string& phase,
                            CheckReport& report);
    void checkFrames(const std::string& phase, CheckReport& report);

  private:
    MultiGpuSystem* system_;
    GpsParadigm* gps_;
};

} // namespace gps

#endif // GPS_CHECK_INVARIANTS_HH
