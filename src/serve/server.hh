/**
 * @file
 * Serve-mode front ends: stdio and Unix-domain-socket transports for
 * the line protocol, plus SIGINT/SIGTERM graceful drain.
 *
 * stdio mode reads request lines from stdin and writes response lines
 * to stdout — the simplest client is `printf ... | gpsim --serve`. On
 * EOF the front end finishes every accepted job before exiting, so a
 * piped batch always gets all its responses.
 *
 * Socket mode accepts many concurrent clients; each connection is one
 * fairness domain (client id) with its own reader thread, and
 * responses are written back on the submitting connection.
 *
 * SIGINT/SIGTERM (or a "shutdown" request) triggers a graceful drain:
 * stop accepting, cancel the backlog, finish in-flight runs, flush
 * the run store, then exit. A second signal is left at its default
 * disposition semantics (the handler only ever records the first).
 */

#ifndef GPS_SERVE_SERVER_HH
#define GPS_SERVE_SERVER_HH

#include <string>

#include "serve/protocol.hh"
#include "serve/service.hh"

namespace gps
{

class ServeFrontEnd
{
  public:
    explicit ServeFrontEnd(SweepService& service)
        : service_(service), protocol_(service)
    {}

    /**
     * Install the SIGINT/SIGTERM self-pipe handler. Call once, before
     * run*(); the handler is process-global (signal handlers cannot
     * capture state), which is acceptable for the one daemon loop a
     * process runs.
     */
    static void installSignalHandlers();

    /** Serve stdin/stdout until EOF, shutdown request, or signal. */
    int runStdio();

    /** Serve a Unix socket until shutdown request or signal. */
    int runSocket(const std::string& path);

  private:
    SweepService& service_;
    LineProtocol protocol_;
};

} // namespace gps

#endif // GPS_SERVE_SERVER_HH
