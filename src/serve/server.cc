#include "serve/server.hh"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace gps
{

namespace
{

/**
 * Self-pipe for async-signal-safe shutdown: the handler writes one
 * byte, the poll loops wake up. The write end is the only global the
 * serve subsystem owns — signal handlers cannot reach instance state.
 */
std::atomic<int> signalPipeWriteFd{-1};

void
onDrainSignal(int)
{
    const int fd = signalPipeWriteFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char byte = 1;
        // The return value is intentionally unused: the pipe being
        // full already means a wakeup is pending.
        [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
}

int signalPipeReadFd = -1;

void
makeSignalPipe()
{
    if (signalPipeWriteFd.load(std::memory_order_relaxed) >= 0)
        return;
    int fds[2];
    if (::pipe(fds) != 0)
        gps_fatal("cannot create signal pipe: ", std::strerror(errno));
    signalPipeReadFd = fds[0];
    signalPipeWriteFd.store(fds[1], std::memory_order_relaxed);
}

/** Read whole lines out of an accumulating buffer. */
class LineSplitter
{
  public:
    /** Append raw bytes; invoke @p onLine per complete line. */
    template <typename Fn>
    void
    feed(const char* data, std::size_t len, Fn onLine)
    {
        buffer_.append(data, len);
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = buffer_.find('\n', start);
            if (nl == std::string::npos)
                break;
            onLine(buffer_.substr(start, nl - start));
            start = nl + 1;
        }
        buffer_.erase(0, start);
    }

  private:
    std::string buffer_;
};

/** One accepted connection: fd + serialized writer. */
struct Connection
{
    explicit Connection(int fd, std::string id)
        : fd(fd), clientId(std::move(id))
    {}

    void
    writeLine(const std::string& line)
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (fd < 0)
            return;
        std::string out = line;
        out += '\n';
        std::size_t off = 0;
        while (off < out.size()) {
            const ssize_t n =
                ::write(fd, out.data() + off, out.size() - off);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                // Peer went away; responses to a dead client are
                // droppable, the run store still has the result.
                return;
            }
            off += static_cast<std::size_t>(n);
        }
    }

    void
    shutdownBothEnds()
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (fd >= 0)
            ::shutdown(fd, SHUT_RDWR);
    }

    void
    close()
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }

    int fd;
    std::string clientId;
    std::mutex mu;
};

} // namespace

void
ServeFrontEnd::installSignalHandlers()
{
    makeSignalPipe();
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onDrainSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    // A client vanishing mid-response must not kill the daemon.
    ::signal(SIGPIPE, SIG_IGN);
}

int
ServeFrontEnd::runStdio()
{
    makeSignalPipe();
    std::mutex out_mu;
    const LineProtocol::Write write = [&out_mu](const std::string& line) {
        const std::lock_guard<std::mutex> lock(out_mu);
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    };

    LineSplitter splitter;
    bool want_shutdown = false;
    bool eof = false;
    bool signalled = false;
    while (!want_shutdown && !eof && !signalled) {
        struct pollfd fds[2];
        fds[0] = {STDIN_FILENO, POLLIN, 0};
        fds[1] = {signalPipeReadFd, POLLIN, 0};
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            gps_warn("serve: poll failed: ", std::strerror(errno));
            break;
        }
        if (fds[1].revents != 0) {
            signalled = true;
            break;
        }
        if (fds[0].revents == 0)
            continue;
        char buf[4096];
        const ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
        if (n <= 0) {
            eof = true;
            break;
        }
        splitter.feed(buf, static_cast<std::size_t>(n),
                      [&](const std::string& line) {
                          if (protocol_.handleLine("stdio", line,
                                                   write) ==
                              LineProtocol::Action::Shutdown)
                              want_shutdown = true;
                      });
    }

    // EOF: the client finished submitting — finish everything accepted
    // and respond. Signal/shutdown: drain fast, cancelling the backlog.
    const bool cancel_pending = !eof || want_shutdown || signalled;
    service_.shutdown(cancel_pending);
    return 0;
}

int
ServeFrontEnd::runSocket(const std::string& path)
{
    makeSignalPipe();
    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0)
        gps_fatal("cannot create socket: ", std::strerror(errno));

    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(listen_fd);
        gps_fatal("socket path too long: '", path, "'");
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str()); // stale socket from a previous daemon
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        ::close(listen_fd);
        gps_fatal("cannot bind '", path, "': ", std::strerror(errno));
    }
    if (::listen(listen_fd, 64) != 0) {
        ::close(listen_fd);
        gps_fatal("cannot listen on '", path, "': ",
                  std::strerror(errno));
    }
    // stderr, not gps_inform: stdout may be a protocol stream and
    // inform() is silenced by default in the CLI.
    std::fprintf(stderr, "gpsim: serving on unix socket %s\n",
                 path.c_str());

    std::mutex conns_mu;
    std::vector<std::shared_ptr<Connection>> conns;
    std::vector<std::thread> readers;
    std::atomic<bool> want_shutdown{false};
    std::uint64_t next_conn = 0;

    for (;;) {
        struct pollfd fds[2];
        fds[0] = {listen_fd, POLLIN, 0};
        fds[1] = {signalPipeReadFd, POLLIN, 0};
        if (::poll(fds, 2, want_shutdown.load() ? 50 : -1) < 0) {
            if (errno == EINTR)
                continue;
            gps_warn("serve: poll failed: ", std::strerror(errno));
            break;
        }
        if (fds[1].revents != 0 || want_shutdown.load())
            break;
        if (fds[0].revents == 0)
            continue;
        const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
        if (conn_fd < 0)
            continue;
        auto conn = std::make_shared<Connection>(
            conn_fd, "conn" + std::to_string(next_conn++));
        {
            const std::lock_guard<std::mutex> lock(conns_mu);
            conns.push_back(conn);
        }
        readers.emplace_back([this, conn, &want_shutdown] {
            LineSplitter splitter;
            const LineProtocol::Write write =
                [conn](const std::string& line) {
                    conn->writeLine(line);
                };
            char buf[4096];
            for (;;) {
                const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
                if (n <= 0) {
                    if (n < 0 && errno == EINTR)
                        continue;
                    break;
                }
                bool stop = false;
                splitter.feed(buf, static_cast<std::size_t>(n),
                              [&](const std::string& line) {
                                  if (protocol_.handleLine(
                                          conn->clientId, line,
                                          write) ==
                                      LineProtocol::Action::Shutdown)
                                      stop = true;
                              });
                if (stop) {
                    want_shutdown.store(true);
                    // Nudge the accept loop off its blocking poll.
                    onDrainSignal(0);
                    break;
                }
            }
        });
    }

    // Graceful drain: no new connections, cancel the backlog, let
    // in-flight runs finish and their responses flush, sync the store.
    ::close(listen_fd);
    ::unlink(path.c_str());
    service_.shutdown(/*cancelPending=*/true);
    {
        const std::lock_guard<std::mutex> lock(conns_mu);
        for (const auto& conn : conns)
            conn->shutdownBothEnds();
    }
    for (std::thread& t : readers) {
        if (t.joinable())
            t.join();
    }
    {
        const std::lock_guard<std::mutex> lock(conns_mu);
        for (const auto& conn : conns)
            conn->close();
    }
    std::fprintf(stderr, "gpsim: serve drained, exiting\n");
    return 0;
}

} // namespace gps
