/**
 * @file
 * SweepService: the serve-mode scheduler.
 *
 * Many concurrent clients submit (workload, RunConfig) jobs; the
 * service runs them on a bounded worker pool with:
 *
 *  - admission control: a bounded pending queue; submissions past the
 *    bound are rejected immediately with a Retry-After-style backoff
 *    hint instead of growing without limit,
 *  - fair per-client queueing: pending jobs are popped round-robin
 *    across clients, so one client's 1000-point grid cannot starve
 *    another client's single request,
 *  - per-request deadlines: a job whose deadline passes while queued
 *    is never started; one that expires mid-run is cooperatively
 *    cancelled through its CancelToken,
 *  - cooperative cancellation: clients can cancel pending jobs
 *    (removed from the queue) and running jobs (token fired, the
 *    Runner unwinds between replay chunks),
 *  - a content-addressed run store: finished results are published to
 *    disk and repeated configKeys are served from it byte-identically
 *    in microseconds,
 *  - graceful drain: stop admitting, cancel or finish the backlog,
 *    finish in-flight runs, flush the store.
 *
 * Completion is callback-based: every submitted job produces exactly
 * one response, delivered on a worker thread (or synchronously on the
 * submitting thread for rejections). Callbacks must be thread-safe.
 */

#ifndef GPS_SERVE_SERVICE_HH
#define GPS_SERVE_SERVICE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/sweep.hh"
#include "obs/histogram.hh"
#include "serve/run_store.hh"

namespace gps
{

class MetricRegistry;

/** Scheduler knobs (see gpsim --serve). */
struct ServeConfig
{
    /** Worker threads executing runs. */
    std::size_t workers = 2;

    /** Max pending jobs across all clients before load shedding. */
    std::size_t maxQueue = 64;

    /** Deadline applied to jobs that do not carry one; 0 = none. */
    std::uint64_t defaultDeadlineMs = 0;

    /** Run store directory; empty disables the store. */
    std::string storeDir;
};

/** Terminal state of one submitted job. */
enum class JobStatus : std::uint8_t {
    Ok,
    Error,           ///< the run threw or diverged from the reference
    Cancelled,       ///< client cancel or shutdown drain
    DeadlineExpired, ///< deadline passed while queued or mid-run
    Rejected,        ///< load shed: queue full or draining
};

const char* to_string(JobStatus status);

/** One job submitted to the service. */
struct ServeJob
{
    /** Fairness domain; one queue per distinct client id. */
    std::string clientId;

    /** Client-scoped request id, echoed in the response. */
    std::uint64_t id = 0;

    /** Position within a batch request, echoed in the response. */
    std::uint64_t index = 0;

    std::string workload;
    RunConfig config;

    /** Per-request deadline; 0 falls back to the service default. */
    std::uint64_t deadlineMs = 0;

    /** Skip the store lookup (the result is still published). */
    bool noCache = false;
};

/** The single response every submitted job produces. */
struct ServeResponse
{
    std::string clientId;
    std::uint64_t id = 0;
    std::uint64_t index = 0;
    JobStatus status = JobStatus::Ok;

    /** Serialized RunResult JSON; set only when status == Ok. */
    std::string payload;

    /** Structured error (status Error/Cancelled/DeadlineExpired/...). */
    std::string errorType;
    std::string errorMessage;

    /** The payload came from the run store, byte-identical to fresh. */
    bool storeHit = false;

    /** Queue wait and execution wall time, milliseconds. */
    double waitMs = 0.0;
    double runMs = 0.0;

    /** Backoff hint for Rejected responses, milliseconds. */
    std::uint64_t retryAfterMs = 0;
};

/** Aggregate counters for the stats endpoint. */
struct ServiceStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0; ///< status Ok
    std::uint64_t failed = 0;    ///< status Error
    std::uint64_t cancelled = 0;
    std::uint64_t expired = 0;
    std::uint64_t rejected = 0;
    std::uint64_t storeHits = 0;

    /** Timeline events dropped past the cap, summed over executed runs. */
    std::uint64_t timelineDropped = 0;

    std::size_t queued = 0;  ///< pending right now
    std::size_t running = 0; ///< in flight right now
    bool draining = false;
    RunStoreStats store; ///< zeros when the store is disabled

    /** Request-handling latency per protocol verb, microseconds. */
    std::map<std::string, LogHistogram> verbLatency;
};

class SweepService
{
  public:
    using Callback = std::function<void(const ServeResponse&)>;

    explicit SweepService(ServeConfig config);

    /** Drains (cancelling the backlog) and joins the workers. */
    ~SweepService();

    SweepService(const SweepService&) = delete;
    SweepService& operator=(const SweepService&) = delete;

    /**
     * Submit one job. Exactly one response reaches @p done: from a
     * worker on completion, or synchronously (status Rejected) when
     * the service is draining or the queue is full.
     */
    void submit(ServeJob job, Callback done);

    /**
     * Cancel every pending or running job with @p client's request
     * @p id. Pending jobs respond Cancelled immediately; running jobs
     * respond once their Runner observes the token.
     * @return number of jobs the cancel reached
     */
    std::size_t cancel(const std::string& clientId, std::uint64_t id);

    /**
     * Stop admitting new jobs. With @p cancelPending, the backlog is
     * answered Cancelled without running (signal-driven shutdown);
     * without it, queued jobs still execute (stdio EOF: finish all
     * accepted work, then exit). In-flight runs always finish.
     */
    void beginDrain(bool cancelPending);

    /** Block until nothing is queued or running. */
    void awaitIdle();

    /** beginDrain + awaitIdle + flush store + join workers. */
    void shutdown(bool cancelPending);

    ServiceStats stats() const;

    /** Protocol hook: record one verb's handling latency. */
    void recordVerbLatency(const std::string& verb, std::uint64_t micros);

    /**
     * Register the service's aggregate counters on @p reg, frozen at
     * the current stats() snapshot. Build a fresh registry per metrics
     * request; the getters do not track later activity.
     */
    void registerMetrics(MetricRegistry& reg) const;

    /** Null when the store is disabled. */
    RunStore* store() { return store_.get(); }

    const ServeConfig& config() const { return config_; }

  private:
    struct Pending
    {
        ServeJob job;
        Callback done;
        std::chrono::steady_clock::time_point enqueued;
        std::chrono::steady_clock::time_point deadline; ///< max() = none
        std::shared_ptr<CancelToken> token;
    };

    void workerLoop();

    /** Pop the next job round-robin across client queues. mu_ held. */
    bool popFair(Pending& out);

    /** Backoff hint from queue depth and observed run time. mu_ held. */
    std::uint64_t retryAfterHintLocked() const;

    void finish(const Pending& p, ServeResponse&& response);

    ServeConfig config_;
    std::unique_ptr<RunStore> store_;

    mutable std::mutex mu_;
    std::condition_variable workCv_; ///< workers wait for jobs
    std::condition_variable idleCv_; ///< awaitIdle/drain wait here

    std::map<std::string, std::deque<Pending>> queues_;
    std::vector<std::string> rrOrder_; ///< client round-robin order
    std::size_t rrCursor_ = 0;
    std::size_t queuedTotal_ = 0;
    std::size_t runningTotal_ = 0;

    /** Tokens of in-flight jobs, for cancellation by (client, id). */
    struct RunningKey
    {
        std::string clientId;
        std::uint64_t id;
        std::uint64_t seq; ///< uniquifier (batch jobs share an id)
        bool operator<(const RunningKey& o) const
        {
            if (clientId != o.clientId)
                return clientId < o.clientId;
            if (id != o.id)
                return id < o.id;
            return seq < o.seq;
        }
    };
    std::map<RunningKey, std::shared_ptr<CancelToken>> running_;
    std::uint64_t seq_ = 0;

    double avgRunMs_ = 100.0; ///< EWMA of executed-run wall time
    bool draining_ = false;
    bool stopping_ = false;

    ServiceStats stats_;

    std::vector<std::thread> workers_;
};

} // namespace gps

#endif // GPS_SERVE_SERVICE_HH
