#include "serve/protocol.hh"

#include <chrono>
#include <map>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/metric_registry.hh"

namespace gps
{

InterconnectKind
interconnectFromName(const std::string& name)
{
    static const std::map<std::string, InterconnectKind> kinds = {
        {"pcie3", InterconnectKind::Pcie3},
        {"pcie4", InterconnectKind::Pcie4},
        {"pcie5", InterconnectKind::Pcie5},
        {"pcie6", InterconnectKind::Pcie6},
        {"nvlink2", InterconnectKind::NvLink2},
        {"nvlink3", InterconnectKind::NvLink3},
        {"infinite", InterconnectKind::Infinite},
        {"ib-hdr", InterconnectKind::IbHdr},
        {"ib-ndr", InterconnectKind::IbNdr},
        {"pcie-fabric", InterconnectKind::PcieFabric},
    };
    auto it = kinds.find(name);
    if (it == kinds.end())
        gps_fatal("unknown interconnect '", name, "'");
    return it->second;
}

ParadigmKind
paradigmFromName(const std::string& name)
{
    for (const ParadigmKind kind : allParadigms()) {
        if (name == to_string(kind))
            return kind;
    }
    if (name == "Infinite")
        return ParadigmKind::InfiniteBw;
    gps_fatal("unknown paradigm '", name, "'");
}

namespace
{

/** Parse one job spec object into a ServeJob (id/index set later). */
bool
parseJobSpec(const JsonValue& spec, ServeJob& job, std::string& error)
{
    if (!spec.isObject()) {
        error = "job spec must be an object";
        return false;
    }
    job.workload = spec.string("app");
    if (job.workload.empty()) {
        error = "job spec is missing \"app\"";
        return false;
    }
    try {
        RunConfig& config = job.config;
        config.paradigm = paradigmFromName(spec.string("paradigm", "GPS"));
        config.system.numGpus = static_cast<std::size_t>(
            spec.number("gpus", 4.0));
        config.system.interconnect =
            interconnectFromName(spec.string("interconnect", "pcie3"));
        config.system.pageBytes = static_cast<std::uint64_t>(
                                      spec.number("page_kb", 64.0)) *
                                  KiB;
        config.scale = spec.number("scale", 1.0);
        config.system.gps.wqEntries = static_cast<std::uint32_t>(
            spec.number("wq_entries", 512.0));
        if (const JsonValue* v = spec.find("auto_unsubscribe")) {
            if (v->isBool())
                config.system.gps.autoUnsubscribe = v->asBool();
        }
        config.steadyIterations = static_cast<std::size_t>(
            spec.number("steady_iterations", 4.0));
        if (const JsonValue* v = spec.find("check")) {
            if (v->isBool())
                config.check.enabled = v->asBool();
        }
        if (const JsonValue* v = spec.find("timeline")) {
            if (v->isBool())
                config.obs.timeline = v->asBool();
        }
        if (config.system.numGpus < 1 || config.scale <= 0.0) {
            error = "job spec has non-positive \"gpus\" or \"scale\"";
            return false;
        }
        job.deadlineMs = static_cast<std::uint64_t>(
            spec.number("deadline_ms", 0.0));
        if (const JsonValue* v = spec.find("no_cache")) {
            if (v->isBool())
                job.noCache = v->asBool();
        }
    } catch (const FatalError& e) {
        error = e.what();
        return false;
    }
    return true;
}

} // namespace

bool
parseServeRequest(const std::string& line, ServeRequest& out,
                  std::string& error)
{
    out = ServeRequest{};
    std::string parse_error;
    const std::unique_ptr<JsonValue> doc = parseJson(line, parse_error);
    if (doc == nullptr) {
        error = "malformed JSON: " + parse_error;
        return false;
    }
    if (!doc->isObject()) {
        error = "request must be a JSON object";
        return false;
    }
    out.id = static_cast<std::uint64_t>(doc->number("id", 0.0));
    out.method = doc->string("method");
    if (out.method.empty()) {
        error = "request is missing \"method\"";
        return false;
    }

    const JsonValue* params = doc->find("params");
    if (out.method == "run") {
        if (params == nullptr) {
            error = "\"run\" needs params";
            return false;
        }
        ServeJob job;
        if (!parseJobSpec(*params, job, error))
            return false;
        job.id = out.id;
        job.index = 0;
        out.jobs.push_back(std::move(job));
    } else if (out.method == "batch") {
        const JsonValue* jobs =
            params != nullptr ? params->find("jobs") : nullptr;
        if (jobs == nullptr || !jobs->isArray() ||
            jobs->items().empty()) {
            error = "\"batch\" needs a non-empty params.jobs array";
            return false;
        }
        for (std::size_t i = 0; i < jobs->items().size(); ++i) {
            ServeJob job;
            if (!parseJobSpec(jobs->items()[i], job, error)) {
                error += " (job " + std::to_string(i) + ")";
                return false;
            }
            job.id = out.id;
            job.index = i;
            out.jobs.push_back(std::move(job));
        }
    } else if (out.method == "cancel") {
        const JsonValue* target =
            params != nullptr ? params->find("id") : nullptr;
        if (target == nullptr || !target->isNumber()) {
            error = "\"cancel\" needs a numeric params.id";
            return false;
        }
        out.cancelId = static_cast<std::uint64_t>(target->asNumber());
    } else if (out.method != "stats" && out.method != "metrics" &&
               out.method != "ping" && out.method != "shutdown") {
        error = "unknown method '" + out.method + "'";
        return false;
    }
    return true;
}

std::string
responseToJson(const ServeResponse& response)
{
    JsonWriter w;
    w.beginObject();
    w.field("id", response.id);
    w.field("index", response.index);
    w.field("status", to_string(response.status));
    if (!response.errorType.empty() || !response.errorMessage.empty()) {
        w.key("error").beginObject();
        w.field("type", response.errorType);
        w.field("message", response.errorMessage);
        w.endObject();
    }
    if (response.retryAfterMs != 0)
        w.field("retry_after_ms", response.retryAfterMs);
    w.field("store_hit", response.storeHit);
    w.field("wait_ms", response.waitMs);
    w.field("run_ms", response.runMs);
    if (response.status == JobStatus::Ok) {
        // Spliced verbatim: a store hit is byte-identical to the fresh
        // run that published it, all the way through the envelope.
        w.key("result").rawValue(response.payload);
    }
    w.endObject();
    return w.str();
}

std::string
protocolErrorJson(std::uint64_t id, const std::string& type,
                  const std::string& message)
{
    JsonWriter w;
    w.beginObject();
    w.field("id", id);
    w.field("status", "error");
    w.key("error").beginObject();
    w.field("type", type);
    w.field("message", message);
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
statsToJson(std::uint64_t id, const ServiceStats& stats)
{
    JsonWriter w;
    w.beginObject();
    w.field("id", id);
    w.field("status", "ok");
    w.key("stats").beginObject();
    w.field("submitted", stats.submitted);
    w.field("completed", stats.completed);
    w.field("failed", stats.failed);
    w.field("cancelled", stats.cancelled);
    w.field("deadline_expired", stats.expired);
    w.field("rejected", stats.rejected);
    w.field("store_hits", stats.storeHits);
    w.field("timeline_dropped", stats.timelineDropped);
    w.field("queued", static_cast<std::uint64_t>(stats.queued));
    w.field("running", static_cast<std::uint64_t>(stats.running));
    w.field("draining", stats.draining);
    w.key("store").beginObject();
    w.field("lookups", stats.store.lookups);
    w.field("hits", stats.store.hits);
    w.field("publishes", stats.store.publishes);
    w.field("quarantined", stats.store.quarantined);
    w.field("temps_swept", stats.store.tempsSwept);
    w.endObject();
    w.key("verbs").beginObject();
    for (const auto& [verb, hist] : stats.verbLatency) {
        w.key(verb).beginObject();
        w.field("count", hist.count());
        w.field("mean_us", hist.mean());
        w.field("p50_us", hist.percentile(0.5));
        w.field("p99_us", hist.percentile(0.99));
        w.field("max_us", hist.max());
        w.endObject();
    }
    w.endObject();
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
serveMetricsJson(std::uint64_t id, const SweepService& service)
{
    MetricRegistry reg;
    service.registerMetrics(reg);
    JsonWriter w;
    w.beginObject();
    w.field("id", id);
    w.field("status", "ok");
    w.key("metrics").beginArray();
    for (const MetricValue& m : reg.snapshot()) {
        w.beginObject();
        w.field("name", m.name);
        w.field("kind", to_string(m.kind));
        w.field("unit", m.unit);
        w.field("value", m.value);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

LineProtocol::Action
LineProtocol::handleLine(const std::string& clientId,
                         const std::string& line, Write write)
{
    const auto started = std::chrono::steady_clock::now();
    std::string verb;
    const Action action = dispatch(clientId, line, write, verb);
    if (!verb.empty()) {
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - started)
                .count();
        service_.recordVerbLatency(
            verb, static_cast<std::uint64_t>(micros));
    }
    return action;
}

LineProtocol::Action
LineProtocol::dispatch(const std::string& clientId,
                       const std::string& line, Write& write,
                       std::string& verb)
{
    // Tolerate blank lines and CR line endings from naive clients.
    std::string trimmed = line;
    while (!trimmed.empty() &&
           (trimmed.back() == '\r' || trimmed.back() == ' '))
        trimmed.pop_back();
    if (trimmed.empty())
        return Action::None;

    ServeRequest request;
    std::string error;
    if (!parseServeRequest(trimmed, request, error)) {
        write(protocolErrorJson(request.id, "BadRequest", error));
        return Action::None;
    }
    verb = request.method;

    if (request.method == "ping") {
        JsonWriter w;
        w.beginObject();
        w.field("id", request.id);
        w.field("status", "ok");
        w.endObject();
        write(w.str());
        return Action::None;
    }
    if (request.method == "stats") {
        write(statsToJson(request.id, service_.stats()));
        return Action::None;
    }
    if (request.method == "metrics") {
        write(serveMetricsJson(request.id, service_));
        return Action::None;
    }
    if (request.method == "cancel") {
        const std::size_t reached =
            service_.cancel(clientId, request.cancelId);
        JsonWriter w;
        w.beginObject();
        w.field("id", request.id);
        w.field("status", "ok");
        w.field("cancelled", static_cast<std::uint64_t>(reached));
        w.endObject();
        write(w.str());
        return Action::None;
    }
    if (request.method == "shutdown") {
        JsonWriter w;
        w.beginObject();
        w.field("id", request.id);
        w.field("status", "ok");
        w.field("shutting_down", true);
        w.endObject();
        write(w.str());
        return Action::Shutdown;
    }

    // run / batch: one response per job through the shared writer.
    for (ServeJob& job : request.jobs) {
        job.clientId = clientId;
        service_.submit(std::move(job),
                        [write](const ServeResponse& response) {
                            write(responseToJson(response));
                        });
    }
    return Action::None;
}

} // namespace gps
