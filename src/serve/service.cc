#include "serve/service.hh"

#include <algorithm>
#include <chrono>

#include "api/result_export.hh"
#include "check/check_config.hh"
#include "common/logging.hh"
#include "obs/metric_registry.hh"
#include "obs/observability.hh"

namespace gps
{

using Clock = std::chrono::steady_clock;

const char*
to_string(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Error: return "error";
      case JobStatus::Cancelled: return "cancelled";
      case JobStatus::DeadlineExpired: return "deadline_expired";
      case JobStatus::Rejected: return "rejected";
    }
    return "unknown";
}

namespace
{

double
msBetween(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

} // namespace

SweepService::SweepService(ServeConfig config)
    : config_(std::move(config))
{
    if (config_.workers < 1)
        config_.workers = 1;
    if (config_.maxQueue < 1)
        config_.maxQueue = 1;
    if (!config_.storeDir.empty())
        store_ = std::make_unique<RunStore>(config_.storeDir);
    workers_.reserve(config_.workers);
    for (std::size_t w = 0; w < config_.workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

SweepService::~SweepService()
{
    shutdown(/*cancelPending=*/true);
}

std::uint64_t
SweepService::retryAfterHintLocked() const
{
    // Rough time until a queue slot frees up: the backlog spread over
    // the workers, at the observed average run time. Clamped to keep
    // pathological estimates from parking clients forever.
    const double depth = static_cast<double>(queuedTotal_ + 1);
    const double per_worker =
        depth / static_cast<double>(config_.workers);
    const double hint = per_worker * std::max(avgRunMs_, 1.0);
    return static_cast<std::uint64_t>(
        std::clamp(hint, 1.0, 60'000.0));
}

void
SweepService::submit(ServeJob job, Callback done)
{
    ServeResponse rejected;
    rejected.clientId = job.clientId;
    rejected.id = job.id;
    rejected.index = job.index;
    rejected.status = JobStatus::Rejected;
    {
        std::unique_lock<std::mutex> lk(mu_);
        ++stats_.submitted;
        if (draining_ || stopping_) {
            ++stats_.rejected;
            rejected.errorType = "ShuttingDown";
            rejected.errorMessage = "server is draining";
        } else if (queuedTotal_ >= config_.maxQueue) {
            ++stats_.rejected;
            rejected.errorType = "QueueFull";
            rejected.errorMessage =
                "admission queue is full (" +
                std::to_string(config_.maxQueue) + " pending)";
            rejected.retryAfterMs = retryAfterHintLocked();
        } else {
            Pending p;
            p.enqueued = Clock::now();
            const std::uint64_t deadline_ms =
                job.deadlineMs != 0 ? job.deadlineMs
                                    : config_.defaultDeadlineMs;
            p.deadline = deadline_ms != 0
                             ? p.enqueued +
                                   std::chrono::milliseconds(deadline_ms)
                             : Clock::time_point::max();
            p.token = std::make_shared<CancelToken>();
            if (deadline_ms != 0)
                p.token->setDeadline(p.deadline);
            const std::string client = job.clientId;
            p.job = std::move(job);
            p.done = std::move(done);
            if (queues_.find(client) == queues_.end())
                rrOrder_.push_back(client);
            queues_[client].push_back(std::move(p));
            ++queuedTotal_;
            lk.unlock();
            workCv_.notify_one();
            return;
        }
    }
    done(rejected);
}

std::size_t
SweepService::cancel(const std::string& clientId, std::uint64_t id)
{
    std::vector<Pending> dropped;
    std::size_t reached = 0;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        auto it = queues_.find(clientId);
        if (it != queues_.end()) {
            std::deque<Pending>& q = it->second;
            for (auto jt = q.begin(); jt != q.end();) {
                if (jt->job.id == id) {
                    dropped.push_back(std::move(*jt));
                    jt = q.erase(jt);
                    --queuedTotal_;
                    // In flight until its Cancelled response has been
                    // delivered below (see workerLoop).
                    ++runningTotal_;
                } else {
                    ++jt;
                }
            }
            // Leave an emptied queue in place: popFair erases it.
        }
        for (auto& [key, token] : running_) {
            if (key.clientId == clientId && key.id == id) {
                token->cancel(CancelReason::Cancelled);
                ++reached;
            }
        }
    }
    reached += dropped.size();
    for (Pending& p : dropped) {
        ServeResponse r;
        r.clientId = p.job.clientId;
        r.id = p.job.id;
        r.index = p.job.index;
        r.status = JobStatus::Cancelled;
        r.errorType = "Cancelled";
        r.errorMessage = "cancelled while queued";
        r.waitMs = msBetween(p.enqueued, Clock::now());
        finish(p, std::move(r));
        const std::lock_guard<std::mutex> lock(mu_);
        --runningTotal_;
    }
    idleCv_.notify_all();
    return reached;
}

bool
SweepService::popFair(Pending& out)
{
    // Each pass either serves the cursor's client or retires an idle
    // one, so the loop terminates: rrOrder_ strictly shrinks until a
    // job is found or no client has anything pending.
    while (!rrOrder_.empty()) {
        if (rrCursor_ >= rrOrder_.size())
            rrCursor_ = 0;
        auto it = queues_.find(rrOrder_[rrCursor_]);
        if (it == queues_.end() || it->second.empty()) {
            // Lazily retire clients with nothing pending so rrOrder_
            // does not grow with every connection the daemon ever saw.
            if (it != queues_.end())
                queues_.erase(it);
            rrOrder_.erase(rrOrder_.begin() +
                           static_cast<std::ptrdiff_t>(rrCursor_));
            continue;
        }
        out = std::move(it->second.front());
        it->second.pop_front();
        ++rrCursor_; // round-robin: next client gets the next worker
        return true;
    }
    rrCursor_ = 0;
    return false;
}

void
SweepService::finish(const Pending& p, ServeResponse&& response)
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        switch (response.status) {
          case JobStatus::Ok:
            ++stats_.completed;
            if (response.storeHit)
                ++stats_.storeHits;
            break;
          case JobStatus::Error: ++stats_.failed; break;
          case JobStatus::Cancelled: ++stats_.cancelled; break;
          case JobStatus::DeadlineExpired: ++stats_.expired; break;
          case JobStatus::Rejected: ++stats_.rejected; break;
        }
    }
    p.done(response);
}

void
SweepService::workerLoop()
{
    for (;;) {
        std::unique_lock<std::mutex> lk(mu_);
        workCv_.wait(lk,
                     [this] { return queuedTotal_ > 0 || stopping_; });
        Pending p;
        if (!popFair(p)) {
            if (stopping_)
                return;
            continue;
        }
        --queuedTotal_;
        // The job counts as in flight until its callback has returned:
        // awaitIdle() (and thus shutdown) must not complete while a
        // response is still being delivered, or a front end could exit
        // with the last line unwritten.
        ++runningTotal_;

        ServeResponse r;
        r.clientId = p.job.clientId;
        r.id = p.job.id;
        r.index = p.job.index;
        const Clock::time_point started = Clock::now();
        r.waitMs = msBetween(p.enqueued, started);

        // A deadline that lapsed while queued: answer without running.
        // Tokens cancelled while pending (drain races) behave the same.
        if (started >= p.deadline || p.token->cancelled()) {
            const bool expired = started >= p.deadline;
            r.status = expired ? JobStatus::DeadlineExpired
                               : JobStatus::Cancelled;
            r.errorType = expired ? "DeadlineExpired" : "Cancelled";
            r.errorMessage = expired
                                 ? "deadline expired while queued"
                                 : "cancelled while queued";
            lk.unlock();
            finish(p, std::move(r));
            lk.lock();
            --runningTotal_;
            lk.unlock();
            idleCv_.notify_all();
            continue;
        }

        const RunningKey key{p.job.clientId, p.job.id, ++seq_};
        running_.emplace(key, p.token);
        lk.unlock();

        // --- Store fast path ---
        const std::string cfg_key =
            configKey(p.job.workload, p.job.config);
        bool executed = false;
        std::shared_ptr<const ObsReport> run_obs;
        std::optional<std::string> hit;
        if (store_ != nullptr && !p.job.noCache)
            hit = store_->lookup(cfg_key);
        if (hit.has_value()) {
            r.status = JobStatus::Ok;
            r.payload = std::move(*hit);
            r.storeHit = true;
        } else {
            // --- Fresh run, cancellable through the shared token ---
            executed = true;
            SweepJob sweep_job;
            sweep_job.workload = p.job.workload;
            sweep_job.config = p.job.config;
            sweep_job.config.cancel = p.token;
            sweep_job.label =
                p.job.clientId + '#' + std::to_string(p.job.id);
            const SweepOutcome out = runSweepJob(sweep_job);
            r.runMs = out.wallSeconds * 1e3;
            run_obs = out.result.obs;
            if (!out.ok()) {
                if (out.errorType == "Cancelled")
                    r.status = JobStatus::Cancelled;
                else if (out.errorType == "DeadlineExpired")
                    r.status = JobStatus::DeadlineExpired;
                else
                    r.status = JobStatus::Error;
                r.errorType = out.errorType;
                r.errorMessage = out.errorMessage;
            } else if (out.result.check != nullptr &&
                       !out.result.check->ok()) {
                // A differential-checker divergence is a per-job error;
                // the pool and the other grid points keep going, and
                // the diverged result is never published to the store.
                r.status = JobStatus::Error;
                r.errorType = "CheckDivergence";
                r.errorMessage =
                    out.result.check->findings.empty()
                        ? std::to_string(out.result.check->divergences) +
                              " divergence(s)"
                        : describe(out.result.check->findings.front());
            } else {
                r.status = JobStatus::Ok;
                r.payload = resultToJson(out.result, /*stats=*/true);
                if (store_ != nullptr)
                    store_->publish(cfg_key, r.payload);
            }
        }

        lk.lock();
        running_.erase(key);
        if (executed && r.status == JobStatus::Ok)
            avgRunMs_ = 0.8 * avgRunMs_ + 0.2 * r.runMs;
        if (executed && run_obs != nullptr)
            stats_.timelineDropped += run_obs->timelineDropped;
        lk.unlock();
        finish(p, std::move(r));
        lk.lock();
        --runningTotal_;
        lk.unlock();
        idleCv_.notify_all();
    }
}

void
SweepService::beginDrain(bool cancelPending)
{
    std::vector<Pending> dropped;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        draining_ = true;
        stats_.draining = true;
        if (cancelPending) {
            for (auto& [client, q] : queues_) {
                for (Pending& p : q)
                    dropped.push_back(std::move(p));
                q.clear();
            }
            queuedTotal_ = 0;
            // In flight until their responses are delivered below.
            runningTotal_ += dropped.size();
        }
    }
    for (Pending& p : dropped) {
        ServeResponse r;
        r.clientId = p.job.clientId;
        r.id = p.job.id;
        r.index = p.job.index;
        r.status = JobStatus::Cancelled;
        r.errorType = "ShuttingDown";
        r.errorMessage = "cancelled by server drain";
        r.waitMs = msBetween(p.enqueued, Clock::now());
        finish(p, std::move(r));
        const std::lock_guard<std::mutex> lock(mu_);
        --runningTotal_;
    }
    idleCv_.notify_all();
}

void
SweepService::awaitIdle()
{
    std::unique_lock<std::mutex> lk(mu_);
    idleCv_.wait(lk, [this] {
        return queuedTotal_ == 0 && runningTotal_ == 0;
    });
}

void
SweepService::shutdown(bool cancelPending)
{
    beginDrain(cancelPending);
    awaitIdle();
    if (store_ != nullptr)
        store_->flush();
    {
        const std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread& t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
}

ServiceStats
SweepService::stats() const
{
    ServiceStats out;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        out = stats_;
        out.queued = queuedTotal_;
        out.running = runningTotal_;
        out.draining = draining_;
    }
    if (store_ != nullptr)
        out.store = store_->stats();
    return out;
}

void
SweepService::recordVerbLatency(const std::string& verb,
                                std::uint64_t micros)
{
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.verbLatency[verb].record(micros);
}

void
SweepService::registerMetrics(MetricRegistry& reg) const
{
    // One coherent snapshot; every getter reads from the same copy.
    const auto snap = std::make_shared<const ServiceStats>(stats());
    const auto jobs = [&reg, &snap](const char* name,
                                    std::uint64_t ServiceStats::*field) {
        reg.counter(std::string("serve.jobs.") + name, "jobs",
                    [snap, field] {
                        return static_cast<double>((*snap).*field);
                    });
    };
    jobs("submitted", &ServiceStats::submitted);
    jobs("completed", &ServiceStats::completed);
    jobs("failed", &ServiceStats::failed);
    jobs("cancelled", &ServiceStats::cancelled);
    jobs("deadline_expired", &ServiceStats::expired);
    jobs("rejected", &ServiceStats::rejected);
    jobs("store_hits", &ServiceStats::storeHits);
    reg.gauge("serve.queue.depth", "jobs", [snap] {
        return static_cast<double>(snap->queued);
    });
    reg.gauge("serve.running", "jobs", [snap] {
        return static_cast<double>(snap->running);
    });
    reg.counter("serve.timeline.dropped_events", "events", [snap] {
        return static_cast<double>(snap->timelineDropped);
    });
    reg.counter("serve.store.lookups", "lookups", [snap] {
        return static_cast<double>(snap->store.lookups);
    });
    reg.counter("serve.store.publishes", "results", [snap] {
        return static_cast<double>(snap->store.publishes);
    });
    for (const auto& [verb, hist] : snap->verbLatency) {
        reg.counter("serve.verb." + verb + ".requests", "requests",
                    [count = hist.count()] {
                        return static_cast<double>(count);
                    });
        reg.gauge("serve.verb." + verb + ".latency_p99", "us",
                  [p99 = hist.percentile(0.99)] { return p99; });
    }
}

} // namespace gps
