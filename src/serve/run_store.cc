#include "serve/run_store.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace gps
{

namespace
{

constexpr std::uint32_t storeVersion = 1;
constexpr const char* tempInfix = ".tmp.";
constexpr const char* quarantineSuffix = ".quarantined";

/** FNV-1a 64-bit over the key bytes; the entry's file name. */
std::uint64_t
fnv1a64(const std::string& bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Entry checksum: key + '\n' + payload. */
std::uint32_t
entryCrc(const std::string& key, const std::string& payload)
{
    std::uint32_t crc = crc32Update(0, key.data(), key.size());
    crc = crc32Update(crc, "\n", 1);
    return crc32Update(crc, payload.data(), payload.size());
}

bool
fsyncFd(int fd)
{
    return ::fsync(fd) == 0;
}

} // namespace

RunStore::RunStore(std::string dir)
    : dir_(std::move(dir))
{
    gps_assert(!dir_.empty(), "run store directory must be non-empty");
    if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST)
        gps_fatal("cannot create run store directory '", dir_, "': ",
                  std::strerror(errno));

    // Probe writability up front so a read-only mount fails at startup,
    // not on the first publish hours later.
    const std::string probe = dir_ + "/.probe";
    if (std::FILE* f = std::fopen(probe.c_str(), "w")) {
        std::fclose(f);
        ::unlink(probe.c_str());
    } else {
        gps_fatal("run store directory '", dir_, "' is not writable: ",
                  std::strerror(errno));
    }

    // Sweep temp files orphaned by writers that died mid-publish. They
    // were never renamed into place, so deleting them cannot lose a
    // published entry.
    DIR* d = ::opendir(dir_.c_str());
    if (d == nullptr)
        gps_fatal("cannot open run store directory '", dir_, "': ",
                  std::strerror(errno));
    std::uint64_t swept = 0;
    while (const dirent* ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.find(tempInfix) == std::string::npos)
            continue;
        const std::string path = dir_ + '/' + name;
        if (::unlink(path.c_str()) == 0)
            ++swept;
    }
    ::closedir(d);
    if (swept > 0)
        gps_warn("run store '", dir_, "': swept ", swept,
                 " temp file(s) from interrupted writes");
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.tempsSwept = swept;
}

std::string
RunStore::entryName(const std::string& key)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64 ".gpsrun",
                  fnv1a64(key));
    return buf;
}

std::string
RunStore::entryPath(const std::string& key) const
{
    return dir_ + '/' + entryName(key);
}

std::optional<std::string>
RunStore::lookup(const std::string& key)
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.lookups;
    }
    const std::string path = entryPath(key);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return std::nullopt; // plain miss

    // Header line: magic, version, crc, key length, payload length.
    char magic[16] = {};
    unsigned version = 0;
    unsigned long crc_stored = 0;
    unsigned long long key_len = 0, payload_len = 0;
    const int got = std::fscanf(f, "%15s %u %lx %llu %llu", magic,
                                &version, &crc_stored, &key_len,
                                &payload_len);
    if (got != 5 || std::strcmp(magic, "GPSSTORE") != 0 ||
        version != storeVersion || std::fgetc(f) != '\n' ||
        key_len > (64u << 20) || payload_len > (256u << 20)) {
        std::fclose(f);
        quarantine(path);
        return std::nullopt;
    }

    std::string stored_key(key_len, '\0');
    std::string payload(payload_len, '\0');
    const bool body_ok =
        (key_len == 0 ||
         std::fread(stored_key.data(), 1, key_len, f) == key_len) &&
        std::fgetc(f) == '\n' &&
        (payload_len == 0 ||
         std::fread(payload.data(), 1, payload_len, f) == payload_len) &&
        std::fgetc(f) == EOF; // trailing junk is corruption too
    std::fclose(f);

    if (!body_ok || entryCrc(stored_key, payload) != crc_stored) {
        quarantine(path);
        return std::nullopt;
    }
    if (stored_key != key) {
        // Hash collision: a different key owns this file name. Treat
        // as a miss; the recompute will overwrite (last writer wins).
        gps_warn("run store '", dir_, "': key hash collision on ",
                 entryName(key));
        return std::nullopt;
    }
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    return payload;
}

void
RunStore::publish(const std::string& key, const std::string& payload)
{
    const std::string path = entryPath(key);
    std::uint64_t seq = 0;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        seq = ++tempSeq_;
    }
    // Unique temp name per process and publish, so concurrent writers
    // of the same key never scribble on each other's temp file.
    const std::string tmp = path + tempInfix +
                            std::to_string(::getpid()) + '.' +
                            std::to_string(seq);

    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        gps_warn("run store: cannot create '", tmp,
                 "': ", std::strerror(errno));
        return;
    }
    char header[96];
    const int header_len = std::snprintf(
        header, sizeof(header), "GPSSTORE %u %08x %zu %zu\n",
        storeVersion, entryCrc(key, payload), key.size(),
        payload.size());
    bool ok = header_len > 0 &&
              std::fwrite(header, 1, static_cast<std::size_t>(header_len),
                          f) == static_cast<std::size_t>(header_len) &&
              std::fwrite(key.data(), 1, key.size(), f) == key.size() &&
              std::fputc('\n', f) == '\n' &&
              std::fwrite(payload.data(), 1, payload.size(), f) ==
                  payload.size();
    // Flush user-space buffers, then push the bytes to the device
    // before the rename makes the entry visible: rename-before-data
    // could publish a torn entry after a power cut.
    ok = ok && std::fflush(f) == 0 && fsyncFd(::fileno(f));
    if (std::fclose(f) != 0)
        ok = false;
    if (!ok) {
        gps_warn("run store: write to '", tmp, "' failed: ",
                 std::strerror(errno));
        ::unlink(tmp.c_str());
        return;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        gps_warn("run store: cannot publish '", path,
                 "': ", std::strerror(errno));
        ::unlink(tmp.c_str());
        return;
    }
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.publishes;
}

void
RunStore::flush()
{
    const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    fsyncFd(fd);
    ::close(fd);
}

void
RunStore::quarantine(const std::string& path)
{
    {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.quarantined;
    }
    // Claim the first free aside slot with a no-replace link().
    // rename() silently replaces its target, so a recycled pid (or a
    // restarted process re-using the same sequence numbers) could
    // overwrite the forensic copy of an earlier corruption. link()
    // fails with EEXIST instead, and the loop probes the next slot, so
    // every quarantined generation of an entry is preserved.
    constexpr unsigned maxAsides = 10000;
    for (unsigned n = 0; n < maxAsides; ++n) {
        const std::string aside =
            path + quarantineSuffix + '.' + std::to_string(n);
        if (::link(path.c_str(), aside.c_str()) == 0) {
            if (::unlink(path.c_str()) != 0 && errno != ENOENT)
                gps_warn("run store: cannot remove quarantined '", path,
                         "': ", std::strerror(errno));
            gps_warn("run store: quarantined corrupt entry '", path,
                     "' -> '", aside, "'");
            return;
        }
        if (errno == EEXIST)
            continue; // slot taken by an earlier quarantine
        if (errno != ENOENT) // a concurrent reader may have moved it
            gps_warn("run store: cannot quarantine '", path,
                     "': ", std::strerror(errno));
        return;
    }
    gps_warn("run store: ", maxAsides, " quarantined copies of '", path,
             "' already exist; leaving it in place");
}

RunStoreStats
RunStore::stats() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace gps
