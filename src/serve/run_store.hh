/**
 * @file
 * Crash-safe content-addressed on-disk store of finished runs.
 *
 * Maps a full configKey() to the run's serialized RunResult JSON so a
 * repeated grid point — a CI perf gate, a parameter-exploration UI,
 * many clients hammering the same figure — is served from disk in
 * microseconds, byte-identical to a fresh run.
 *
 * Durability model:
 *  - Entries are published with write-to-temp + fsync + rename, so a
 *    reader only ever sees no entry or a complete entry, even while a
 *    writer is publishing and even across kill -9.
 *  - Every read re-checks the entry's length fields and CRC32 (the
 *    shared common/crc32 machinery); a truncated or bit-flipped entry
 *    is quarantined (renamed aside, never served) and reported as a
 *    miss so the caller recomputes and republishes it.
 *  - Orphaned temp files from crashed writers are swept on open.
 *
 * Entry format (one file per key, named by the key's FNV-1a-64 hash):
 *   line 1: "GPSSTORE <version> <crc32-hex> <key-bytes> <payload-bytes>\n"
 *   then the key bytes, '\n', and the payload bytes. The CRC covers
 *   key + '\n' + payload. The full key is stored and compared on read,
 *   so a hash collision degrades to a miss, never a wrong result.
 *
 * All members are safe to call from any thread; cross-process safety
 * comes from the atomic-rename publish protocol.
 */

#ifndef GPS_SERVE_RUN_STORE_HH
#define GPS_SERVE_RUN_STORE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace gps
{

/** Counters exported through the service stats endpoint. */
struct RunStoreStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t publishes = 0;

    /** Entries renamed aside because they failed validation. */
    std::uint64_t quarantined = 0;

    /** Orphaned temp files removed by the open-time sweep. */
    std::uint64_t tempsSwept = 0;
};

class RunStore
{
  public:
    /**
     * Open (creating if needed) the store rooted at @p dir and sweep
     * temp files left by crashed writers. Throws FatalError when the
     * directory cannot be created or is not writable.
     */
    explicit RunStore(std::string dir);

    RunStore(const RunStore&) = delete;
    RunStore& operator=(const RunStore&) = delete;

    /**
     * Fetch the payload stored for @p key.
     * @return the exact published bytes, or nullopt on miss or when
     *         the entry failed validation (it is quarantined first)
     */
    std::optional<std::string> lookup(const std::string& key);

    /**
     * Durably publish @p payload under @p key (last writer wins).
     * Failures are reported with gps_warn and swallowed: the store is
     * a cache, and the caller still holds the fresh result.
     */
    void publish(const std::string& key, const std::string& payload);

    /** fsync the store directory (entry renames become durable). */
    void flush();

    RunStoreStats stats() const;

    const std::string& dir() const { return dir_; }

    /** Filesystem name of @p key's entry (exposed for tests). */
    static std::string entryName(const std::string& key);

  private:
    std::string entryPath(const std::string& key) const;

    /** Rename a bad entry aside so it is never served again. */
    void quarantine(const std::string& path);

    std::string dir_;

    mutable std::mutex mu_; ///< guards stats_ and the temp counter
    RunStoreStats stats_;
    std::uint64_t tempSeq_ = 0;
};

} // namespace gps

#endif // GPS_SERVE_RUN_STORE_HH
