/**
 * @file
 * Line-delimited JSON request/response protocol for gpsim --serve.
 *
 * Each request is one JSON object on one line; each submitted job
 * produces exactly one JSON response line. See docs/service.md for
 * the full schema. Methods:
 *
 *   run      params: one job spec                -> one response
 *   batch    params.jobs: array of job specs     -> one response per
 *            job, each echoing the request id plus its "index"
 *   cancel   params.id: request id to cancel     -> one ack response
 *   stats    ->  scheduler + store counters + per-verb latencies
 *   metrics  ->  service MetricRegistry snapshot
 *   ping     ->  liveness ack
 *   shutdown ->  ack, then the front end drains and exits
 *
 * The protocol layer is transport-agnostic: the front end hands it
 * lines plus a write callback, and it drives the SweepService.
 */

#ifndef GPS_SERVE_PROTOCOL_HH
#define GPS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/service.hh"

namespace gps
{

class JsonValue;

/** Name -> InterconnectKind ("pcie3".."nvlink3", "infinite"). */
InterconnectKind interconnectFromName(const std::string& name);

/** Name -> ParadigmKind; accepts "Infinite" for InfiniteBw. */
ParadigmKind paradigmFromName(const std::string& name);

/** One parsed request line. */
struct ServeRequest
{
    std::uint64_t id = 0;
    std::string method;

    /** Jobs for run/batch (run parses into one element). */
    std::vector<ServeJob> jobs;

    /** Target request id for cancel. */
    std::uint64_t cancelId = 0;
};

/**
 * Parse one request line.
 * @return false with @p error set on malformed input; the id field is
 *         still recovered when possible so the error can be correlated
 */
bool parseServeRequest(const std::string& line, ServeRequest& out,
                       std::string& error);

/** Serialize a job response (the store payload is spliced verbatim). */
std::string responseToJson(const ServeResponse& response);

/** Serialize an error for a request that never became a job. */
std::string protocolErrorJson(std::uint64_t id, const std::string& type,
                              const std::string& message);

/** Serialize the stats snapshot. */
std::string statsToJson(std::uint64_t id, const ServiceStats& stats);

/** Serialize the service's metric-registry snapshot. */
std::string serveMetricsJson(std::uint64_t id,
                             const SweepService& service);

/**
 * Transport-independent request dispatcher: parses @p line, drives
 * @p service, and emits every response line through @p write (which
 * must be thread-safe — completions land on worker threads).
 */
class LineProtocol
{
  public:
    using Write = std::function<void(const std::string& line)>;

    explicit LineProtocol(SweepService& service)
        : service_(service)
    {}

    /** What the front end should do after handling a line. */
    enum class Action : std::uint8_t { None, Shutdown };

    Action handleLine(const std::string& clientId,
                      const std::string& line, Write write);

  private:
    /** handleLine body; sets @p verb for latency accounting. */
    Action dispatch(const std::string& clientId, const std::string& line,
                    Write& write, std::string& verb);

    SweepService& service_;
};

} // namespace gps

#endif // GPS_SERVE_PROTOCOL_HH
