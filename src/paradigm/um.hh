/**
 * @file
 * Baseline Unified Memory paradigm: fault-based page migration, no hints.
 */

#ifndef GPS_PARADIGM_UM_HH
#define GPS_PARADIGM_UM_HH

#include <unordered_set>

#include "driver/um_engine.hh"
#include "paradigm/paradigm.hh"

namespace gps
{

/** UM without hints: every remote touch faults and migrates the page. */
class UmParadigm : public Paradigm
{
  public:
    explicit UmParadigm(MultiGpuSystem& system, std::string name = "um")
        : Paradigm(std::move(name), system), engine_(system.driver())
    {}

    ParadigmKind kind() const override { return ParadigmKind::Um; }
    MemKind sharedKind() const override { return MemKind::Managed; }

    Tick atBarrier(KernelCounters& counters,
                   TrafficMatrix& barrier_traffic) override;

    void saveState(snapshot::Serializer& out) const override
    {
        out.section("paradigm:um");
        saveDirtyPages(out, dirtyPages_);
    }

    void restoreState(snapshot::Deserializer& in) override
    {
        in.section("paradigm:um");
        restoreDirtyPages(in, dirtyPages_);
    }

  protected:
    void accessShared(GpuId gpu, const MemAccess& access, PageNum vpn,
                      PageState& st, bool tlb_miss,
                      KernelCounters& counters,
                      TrafficMatrix& traffic) override;

    /** Hint-awareness toggle for the derived UM+hints paradigm. */
    virtual bool hintsMode() const { return false; }

    UmEngine& engine() { return engine_; }

  private:
    UmEngine engine_;

    /** Pages written since the last barrier (stale in peer caches). */
    std::unordered_set<PageNum> dirtyPages_;
};

} // namespace gps

#endif // GPS_PARADIGM_UM_HH
