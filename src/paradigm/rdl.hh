/**
 * @file
 * Remote Demand Loads (RDL): the expert peer-to-peer baseline. Stores go
 * to local memory; loads are issued to the GPU that most recently stored
 * to the page (oracle writer tracking, Section 6).
 */

#ifndef GPS_PARADIGM_RDL_HH
#define GPS_PARADIGM_RDL_HH

#include <unordered_set>

#include "paradigm/paradigm.hh"

namespace gps
{

/** RDL: local stores, demand loads from each page's last writer. */
class RdlParadigm : public Paradigm
{
  public:
    explicit RdlParadigm(MultiGpuSystem& system)
        : Paradigm("rdl", system)
    {}

    ParadigmKind kind() const override { return ParadigmKind::Rdl; }
    MemKind sharedKind() const override { return MemKind::Replicated; }

    Tick atBarrier(KernelCounters& counters,
                   TrafficMatrix& barrier_traffic) override;

    void saveState(snapshot::Serializer& out) const override
    {
        out.section("paradigm:rdl");
        saveDirtyPages(out, dirtyPages_);
    }

    void restoreState(snapshot::Deserializer& in) override
    {
        in.section("paradigm:rdl");
        restoreDirtyPages(in, dirtyPages_);
    }

  protected:
    void accessShared(GpuId gpu, const MemAccess& access, PageNum vpn,
                      PageState& st, bool tlb_miss,
                      KernelCounters& counters,
                      TrafficMatrix& traffic) override;

  private:
    /** Pages rewritten since the last barrier (stale in peer caches). */
    std::unordered_set<PageNum> dirtyPages_;
};

} // namespace gps

#endif // GPS_PARADIGM_RDL_HH
