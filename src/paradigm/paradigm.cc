#include "paradigm/paradigm.hh"

#include "common/logging.hh"
#include "core/gps_paradigm.hh"
#include "fault/fault_plan.hh"
#include "paradigm/infinite.hh"
#include "paradigm/memcpy_paradigm.hh"
#include "paradigm/rdl.hh"
#include "paradigm/um.hh"
#include "paradigm/um_hints.hh"

namespace gps
{

std::string
to_string(ParadigmKind kind)
{
    switch (kind) {
      case ParadigmKind::Um: return "UM";
      case ParadigmKind::UmHints: return "UM+hints";
      case ParadigmKind::Rdl: return "RDL";
      case ParadigmKind::Memcpy: return "Memcpy";
      case ParadigmKind::Gps: return "GPS";
      case ParadigmKind::InfiniteBw: return "Infinite BW";
    }
    return "?";
}

std::vector<ParadigmKind>
allParadigms()
{
    return {ParadigmKind::Um, ParadigmKind::UmHints, ParadigmKind::Rdl,
            ParadigmKind::Memcpy, ParadigmKind::Gps,
            ParadigmKind::InfiniteBw};
}

Paradigm::Paradigm(std::string name, MultiGpuSystem& system)
    : SimObject(std::move(name)), system_(&system)
{
}

std::uint32_t
Paradigm::lineBytes() const
{
    return system_->config().gpu.cacheLineBytes;
}

std::uint32_t
Paradigm::headerBytes() const
{
    return system_->topology().spec().headerBytes;
}

void
Paradigm::onFaultPageRetire(GpuId gpu, std::uint64_t count,
                            FaultReport& report)
{
    // Without replication there is nothing to unsubscribe: the fault
    // simply shrinks the GPU's allocatable memory.
    report.pagesRetired +=
        sys().gpu(gpu).memory().retireFrames(count);
}

void
Paradigm::access(GpuId gpu, const MemAccess& access, PageNum vpn,
                 bool tlb_miss, KernelCounters& counters,
                 TrafficMatrix& traffic)
{
    this->access(gpu, access, vpn, drv().state(vpn), tlb_miss, counters,
                 traffic);
}

void
Paradigm::access(GpuId gpu, const MemAccess& access, PageNum vpn,
                 PageState& st, bool tlb_miss, KernelCounters& counters,
                 TrafficMatrix& traffic)
{
    if (st.kind == MemKind::Pinned) {
        // Private allocations: local when owned, conventional peer
        // access otherwise (identical under every paradigm).
        if (st.location == gpu) {
            localAccess(gpu, access, counters);
        } else if (access.isLoad()) {
            remoteLoad(gpu, st.location, access, counters, traffic);
        } else if (access.isAtomic()) {
            remoteAtomic(gpu, st.location, access, counters, traffic);
        } else {
            remoteStore(gpu, st.location, access, counters, traffic);
        }
        return;
    }
    accessShared(gpu, access, vpn, st, tlb_miss, counters, traffic);
}

void
Paradigm::localAccess(GpuId gpu, const MemAccess& access,
                      KernelCounters& counters)
{
    sys().gpu(gpu).l2Path(access.vaddr, access.isWrite(), counters);
}

void
Paradigm::remoteLoad(GpuId gpu, GpuId owner, const MemAccess& access,
                     KernelCounters& counters, TrafficMatrix& traffic)
{
    gps_assert(owner != invalidGpu, "remote load with no owner");
    // Peer loads are cached in the local L2 once fetched; only misses
    // cross the interconnect.
    const CacheResult result =
        sys().gpu(gpu).l2().access(access.vaddr, false);
    if (result.hit) {
        ++counters.l2Hits;
    } else {
        ++counters.l2Misses;
        ++counters.remoteLoads;
        counters.remoteLoadBytes += lineBytes();
        traffic.add(gpu, owner, headerBytes(), 0);            // request
        traffic.add(owner, gpu, lineBytes() + headerBytes(),
                    lineBytes());                             // response
    }
    counters.dramBytes += result.writebackBytes;
}

void
Paradigm::remoteStore(GpuId gpu, GpuId owner, const MemAccess& access,
                      KernelCounters& counters, TrafficMatrix& traffic)
{
    gps_assert(owner != invalidGpu, "remote store with no owner");
    counters.pushedStoreBytes += access.size;
    traffic.add(gpu, owner, access.size + headerBytes(), access.size);
}

void
Paradigm::remoteAtomic(GpuId gpu, GpuId owner, const MemAccess& access,
                       KernelCounters& counters, TrafficMatrix& traffic)
{
    gps_assert(owner != invalidGpu, "remote atomic with no owner");
    // Round trip to the owner's memory: read-modify-write serialization
    // sustains far less parallelism than plain loads.
    ++counters.remoteAtomics;
    counters.remoteLoadBytes += access.size;
    traffic.add(gpu, owner, access.size + headerBytes(), access.size);
    traffic.add(owner, gpu, headerBytes(), 0);
}

std::unique_ptr<Paradigm>
makeParadigm(ParadigmKind kind, MultiGpuSystem& system)
{
    switch (kind) {
      case ParadigmKind::Um:
        return std::make_unique<UmParadigm>(system);
      case ParadigmKind::UmHints:
        return std::make_unique<UmHintsParadigm>(system);
      case ParadigmKind::Rdl:
        return std::make_unique<RdlParadigm>(system);
      case ParadigmKind::Memcpy:
        return std::make_unique<MemcpyParadigm>(system);
      case ParadigmKind::Gps:
        return std::make_unique<GpsParadigm>(system);
      case ParadigmKind::InfiniteBw:
        return std::make_unique<InfiniteBwParadigm>(system);
    }
    gps_panic("unknown paradigm kind");
}

} // namespace gps
