#include "paradigm/infinite.hh"

// InfiniteBwParadigm is fully defined in the header; this translation
// unit anchors it in the library.
