/**
 * @file
 * Memory-management paradigm framework.
 *
 * A Paradigm is the policy layer that decides where each traced access is
 * serviced and what driver-level activity (faults, migrations, broadcasts,
 * subscriptions) it triggers. The six paradigms of the paper's evaluation
 * (Section 6) all implement this interface: UM, UM+hints, RDL, Memcpy,
 * GPS and the infinite-bandwidth upper bound.
 */

#ifndef GPS_PARADIGM_PARADIGM_HH
#define GPS_PARADIGM_PARADIGM_HH

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "api/system.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/kernel_counters.hh"
#include "interconnect/topology.hh"
#include "sim/sim_object.hh"
#include "trace/access.hh"
#include "trace/kernel_trace.hh"

namespace gps
{

struct FaultReport;
class TimelineRecorder;
class ProfileCollector;
class GpsCheckSink;
class CausalRecorder;

/** The evaluated multi-GPU programming paradigms. */
enum class ParadigmKind : std::uint8_t {
    Um,          ///< Unified Memory, fault-based migration
    UmHints,     ///< UM with preferred-location/accessed-by/prefetch hints
    Rdl,         ///< remote demand loads (expert peer-to-peer reads)
    Memcpy,      ///< bulk-synchronous broadcast at barriers
    Gps,         ///< this paper's publish-subscribe proposal
    InfiniteBw,  ///< memcpy with all transfer costs elided
};

std::string to_string(ParadigmKind kind);

/** All paradigms in the order Figure 8 plots them. */
std::vector<ParadigmKind> allParadigms();

/** Base class for paradigm policies. */
class Paradigm : public SimObject
{
  public:
    Paradigm(std::string name, MultiGpuSystem& system);

    virtual ParadigmKind kind() const = 0;

    /** MemKind this paradigm gives to the workload's shared regions. */
    virtual MemKind sharedKind() const = 0;

    /** Called once after the workload allocated all of its regions. */
    virtual void onSetupComplete() {}

    /** Called at the start of each application iteration. */
    virtual void beginIteration(std::size_t iter) { (void)iter; }

    /**
     * Called before a phase's kernels start; UM+hints issues the phase's
     * prefetches here.
     * @return serialized pre-kernel overhead (transfer time is derived
     *         from @p prefetch_traffic by the runner)
     */
    virtual Tick
    beginPhase(const Phase& phase, KernelCounters& counters,
               TrafficMatrix& prefetch_traffic)
    {
        (void)phase;
        (void)counters;
        (void)prefetch_traffic;
        return 0;
    }

    /**
     * Route one traced access.
     * @param gpu issuing GPU
     * @param access the traced operation
     * @param vpn virtual page number of the access
     * @param tlb_miss whether the conventional TLB missed
     * @param counters issuing GPU's kernel counters
     * @param traffic the phase's interconnect traffic matrix
     */
    void access(GpuId gpu, const MemAccess& access, PageNum vpn,
                bool tlb_miss, KernelCounters& counters,
                TrafficMatrix& traffic);

    /**
     * Hot-path variant: the caller already holds the page's driver
     * state (the replay loop caches the PageState of the last-touched
     * VPN per kernel cursor, so same-page runs skip re-translation).
     */
    void access(GpuId gpu, const MemAccess& access, PageNum vpn,
                PageState& st, bool tlb_miss, KernelCounters& counters,
                TrafficMatrix& traffic);

    /** End of one GPU's kernel: the implicit grid-wide release point. */
    virtual void
    endKernel(GpuId gpu, KernelCounters& counters, TrafficMatrix& traffic)
    {
        (void)gpu;
        (void)counters;
        (void)traffic;
    }

    /**
     * The barrier closing a phase. Bulk-synchronous paradigms broadcast
     * dirty data here.
     * @return serialized overhead (transfer time is derived from
     *         @p barrier_traffic by the runner)
     */
    virtual Tick
    atBarrier(KernelCounters& counters, TrafficMatrix& barrier_traffic)
    {
        (void)counters;
        (void)barrier_traffic;
        return 0;
    }

    /**
     * Manual subscription hints (cuMemAdvise GPS flags); meaningful only
     * under GPS, no-ops elsewhere so workloads stay paradigm-agnostic.
     */
    virtual void
    adviseSubscribe(Addr base, std::uint64_t len, GpuId gpu)
    {
        (void)base;
        (void)len;
        (void)gpu;
    }

    /** @return false when refused (unsubscribing the last subscriber). */
    virtual bool
    adviseUnsubscribe(Addr base, std::uint64_t len, GpuId gpu)
    {
        (void)base;
        (void)len;
        (void)gpu;
        return true;
    }

    /**
     * Fault injection: @p count frames on @p gpu are retired. The base
     * implementation shrinks the GPU's free-frame pool; GPS additionally
     * evicts replicas when free frames don't cover the loss.
     */
    virtual void onFaultPageRetire(GpuId gpu, std::uint64_t count,
                                   FaultReport& report);

    /**
     * Fault injection: the remote write queue of @p gpu (or of every GPU
     * when @p gpu is invalidGpu) enters/leaves Saturated mode. Only GPS
     * has a write queue, so the base implementation is a no-op.
     */
    virtual void
    onFaultWqSaturate(GpuId gpu, bool saturated, FaultReport& report)
    {
        (void)gpu;
        (void)saturated;
        (void)report;
    }

    /** GPS profiling window (no-ops for other paradigms). */
    virtual void trackingStart() {}
    virtual void trackingStop(KernelCounters& counters)
    {
        (void)counters;
    }

    /**
     * Fill @p hist with the subscriber-count distribution of shared
     * pages (bucket = subscriber count); GPS only.
     * @return true if the paradigm produced data.
     */
    virtual bool
    fillSubscriberHistogram(Histogram& hist) const
    {
        (void)hist;
        return false;
    }

    /** Paradigm-specific stats. */
    void exportStats(StatSet& out) const override { (void)out; }

    /**
     * Attach the timeline recorder to paradigm-owned components (GPS
     * write queues); a no-op for paradigms without any.
     */
    virtual void attachRecorder(TimelineRecorder* recorder)
    {
        (void)recorder;
    }

    /**
     * Attach the profile collector to paradigm-owned components (GPS
     * write queues, subscription manager); a no-op for paradigms
     * without any.
     */
    virtual void attachProfile(ProfileCollector* profile)
    {
        (void)profile;
    }

    /**
     * Attach the differential-validation event sink (nullptr detaches);
     * GPS forwards it to the subscription manager so protocol events
     * reach the checker's reference model. A no-op for paradigms
     * without GPS machinery.
     */
    virtual void attachChecker(GpsCheckSink* sink) { (void)sink; }

    /**
     * Attach the causal dependency recorder to paradigm-owned
     * components (GPS write queues, re-subscription machinery); a
     * no-op for paradigms without any.
     */
    virtual void attachCausal(CausalRecorder* causal) { (void)causal; }

    /**
     * Serialize paradigm-owned mutable state (GPS queues and tables,
     * bulk-synchronous dirty tracking). The base implementation
     * persists nothing — stateless paradigms inherit it as-is.
     */
    virtual void saveState(snapshot::Serializer& out) const
    {
        out.section("paradigm:none");
    }

    /** Counterpart of saveState. */
    virtual void restoreState(snapshot::Deserializer& in)
    {
        in.section("paradigm:none");
    }

  protected:
    /** Policy hook for accesses to this paradigm's shared regions. */
    virtual void accessShared(GpuId gpu, const MemAccess& access,
                              PageNum vpn, PageState& st, bool tlb_miss,
                              KernelCounters& counters,
                              TrafficMatrix& traffic) = 0;

    /**
     * Serialize an unordered dirty-page set in ascending VPN order so
     * snapshot bytes never depend on hash iteration order (the sets
     * feed only commutative barrier work, so order is result-neutral).
     */
    static void
    saveDirtyPages(snapshot::Serializer& out,
                   const std::unordered_set<PageNum>& pages)
    {
        std::vector<PageNum> vpns(pages.begin(), pages.end());
        std::sort(vpns.begin(), vpns.end());
        out.u64(vpns.size());
        for (const PageNum vpn : vpns)
            out.u64(vpn);
    }

    /** Counterpart of saveDirtyPages. */
    static void
    restoreDirtyPages(snapshot::Deserializer& in,
                      std::unordered_set<PageNum>& pages)
    {
        pages.clear();
        const std::uint64_t n = in.count(1ULL << 40);
        pages.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
            pages.insert(in.u64());
    }

    MultiGpuSystem& sys() { return *system_; }
    const MultiGpuSystem& sys() const { return *system_; }
    Driver& drv() { return system_->driver(); }
    Topology& topo() { return system_->topology(); }
    std::uint32_t lineBytes() const;
    std::uint32_t headerBytes() const;

    /** Service an access from the issuing GPU's local L2/DRAM. */
    void localAccess(GpuId gpu, const MemAccess& access,
                     KernelCounters& counters);

    /** Demand load from @p owner's memory (stall-prone). */
    void remoteLoad(GpuId gpu, GpuId owner, const MemAccess& access,
                    KernelCounters& counters, TrafficMatrix& traffic);

    /** Proactive peer store to @p owner's memory (non-stalling). */
    void remoteStore(GpuId gpu, GpuId owner, const MemAccess& access,
                     KernelCounters& counters, TrafficMatrix& traffic);

    /** Remote atomic performed at @p owner (stalls like a load). */
    void remoteAtomic(GpuId gpu, GpuId owner, const MemAccess& access,
                      KernelCounters& counters, TrafficMatrix& traffic);

  private:
    MultiGpuSystem* system_;
};

/** Construct the paradigm implementation for @p kind. */
std::unique_ptr<Paradigm> makeParadigm(ParadigmKind kind,
                                       MultiGpuSystem& system);

} // namespace gps

#endif // GPS_PARADIGM_PARADIGM_HH
