/**
 * @file
 * Bulk-synchronous memcpy paradigm: every shared structure is replicated
 * on every GPU; the programmer's update set is broadcast with
 * cudaMemcpy-style DMA at each barrier, with no compute/transfer overlap
 * (Section 6).
 *
 * Workloads declare their update set per phase (Phase::barrierBroadcasts,
 * e.g. halo rows for a stencil); when a phase declares none, the paradigm
 * falls back to broadcasting every page dirtied since the last barrier.
 */

#ifndef GPS_PARADIGM_MEMCPY_PARADIGM_HH
#define GPS_PARADIGM_MEMCPY_PARADIGM_HH

#include <unordered_set>
#include <vector>

#include "paradigm/paradigm.hh"

namespace gps
{

/** Replicate everything; broadcast the update set at barriers. */
class MemcpyParadigm : public Paradigm
{
  public:
    explicit MemcpyParadigm(MultiGpuSystem& system,
                            std::string name = "memcpy")
        : Paradigm(std::move(name), system)
    {}

    ParadigmKind kind() const override { return ParadigmKind::Memcpy; }
    MemKind sharedKind() const override { return MemKind::Replicated; }

    Tick beginPhase(const Phase& phase, KernelCounters& counters,
                    TrafficMatrix& prefetch_traffic) override;

    Tick atBarrier(KernelCounters& counters,
                   TrafficMatrix& barrier_traffic) override;

    /** Bytes the most recent barrier broadcast (pre-replication). */
    std::uint64_t broadcastBytesLastBarrier() const
    {
        return lastBarrierBytes_;
    }

    void saveState(snapshot::Serializer& out) const override
    {
        out.section("paradigm:memcpy");
        out.u64(pendingBroadcasts_.size());
        for (const BroadcastRange& r : pendingBroadcasts_) {
            out.u32(r.src);
            out.u64(r.base);
            out.u64(r.len);
        }
        saveDirtyPages(out, dirtyPages_);
        out.u64(lastBarrierBytes_);
    }

    void restoreState(snapshot::Deserializer& in) override
    {
        in.section("paradigm:memcpy");
        pendingBroadcasts_.resize(in.count(1ULL << 24));
        for (BroadcastRange& r : pendingBroadcasts_) {
            r.src = static_cast<GpuId>(in.u32());
            r.base = in.u64();
            r.len = in.u64();
        }
        restoreDirtyPages(in, dirtyPages_);
        lastBarrierBytes_ = in.u64();
    }

  protected:
    void accessShared(GpuId gpu, const MemAccess& access, PageNum vpn,
                      PageState& st, bool tlb_miss,
                      KernelCounters& counters,
                      TrafficMatrix& traffic) override;

    /** Whether barrier DMA consumes interconnect time (Infinite: no). */
    virtual bool transfersCost() const { return true; }

    /**
     * Per-cudaMemcpyAsync launch overhead. Copies from different source
     * GPUs issue from different host threads/streams, so only the
     * longest per-source launch chain serializes with the barrier.
     */
    static constexpr Tick memcpyOverhead = usToTicks(2.0);

  private:
    std::vector<BroadcastRange> pendingBroadcasts_;
    std::unordered_set<PageNum> dirtyPages_;
    std::uint64_t lastBarrierBytes_ = 0;
};

} // namespace gps

#endif // GPS_PARADIGM_MEMCPY_PARADIGM_HH
