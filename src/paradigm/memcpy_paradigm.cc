#include "paradigm/memcpy_paradigm.hh"

#include <unordered_set>

namespace gps
{

Tick
MemcpyParadigm::beginPhase(const Phase& phase, KernelCounters& counters,
                           TrafficMatrix& prefetch_traffic)
{
    (void)counters;
    (void)prefetch_traffic;
    pendingBroadcasts_ = phase.barrierBroadcasts;
    return 0;
}

void
MemcpyParadigm::accessShared(GpuId gpu, const MemAccess& access,
                             PageNum vpn, PageState& st, bool tlb_miss,
                             KernelCounters& counters,
                             TrafficMatrix& traffic)
{
    (void)tlb_miss;
    (void)traffic;
    // Every GPU works on its local replica; no remote accesses during
    // kernels, no overlap of transfers with compute.
    if (access.isWrite()) {
        st.lastWriter = gpu;
        if (pendingBroadcasts_.empty() && !st.dirtySinceBarrier) {
            st.dirtySinceBarrier = true;
            dirtyPages_.insert(vpn);
        }
    }
    localAccess(gpu, access, counters);
}

Tick
MemcpyParadigm::atBarrier(KernelCounters& counters,
                          TrafficMatrix& barrier_traffic)
{
    const std::size_t n = drv().numGpus();
    const std::uint64_t hdr = headerBytes();

    std::uint64_t bytes = 0;
    std::vector<std::size_t> calls_per_src(n, 0);

    const PageGeometry& geo = drv().geometry();
    if (!pendingBroadcasts_.empty()) {
        // The tuned port: broadcast the declared update set. The DMA
        // writes invalidate the destinations' cached copies.
        for (const BroadcastRange& range : pendingBroadcasts_) {
            const PageNum first = geo.pageNum(range.base);
            const PageNum last =
                geo.pageNum(range.base + range.len - 1);
            for (GpuId g = 0; g < n; ++g) {
                if (g == range.src)
                    continue;
                if (transfersCost())
                    barrier_traffic.add(range.src, g, range.len + hdr,
                                        range.len);
                bytes += range.len;
                ++calls_per_src[range.src];
                for (PageNum vpn = first; vpn <= last; ++vpn) {
                    sys().gpu(g).l2().invalidatePage(geo.pageBase(vpn),
                                                     geo.bytes());
                }
            }
        }
        pendingBroadcasts_.clear();
    } else {
        // Fallback: broadcast every dirtied page from its last writer.
        const std::uint64_t page_bytes = drv().pageBytes();
        std::unordered_set<Addr> dirty_regions;
        for (const PageNum vpn : dirtyPages_) {
            PageState& st = drv().state(vpn);
            st.dirtySinceBarrier = false;
            const GpuId writer =
                st.lastWriter != invalidGpu ? st.lastWriter : GpuId(0);
            for (GpuId g = 0; g < n; ++g) {
                if (g == writer)
                    continue;
                if (transfersCost())
                    barrier_traffic.add(writer, g, page_bytes + hdr,
                                        page_bytes);
                bytes += page_bytes;
                sys().gpu(g).l2().invalidatePage(
                    geo.pageBase(vpn), page_bytes);
            }
            const Region* region =
                drv().regionOf(drv().geometry().pageBase(vpn));
            if (region != nullptr)
                dirty_regions.insert(region->base);
            ++calls_per_src[writer];
        }
        dirtyPages_.clear();
        // Page runs within a region coalesce into one DMA descriptor
        // chain; charge per dirty region instead of per page.
        for (auto& calls : calls_per_src) {
            calls = std::min<std::size_t>(
                calls, dirty_regions.size() * (n > 0 ? n - 1 : 0));
        }
    }

    lastBarrierBytes_ = bytes;
    counters.migrationBytes += bytes;

    if (!transfersCost())
        return 0;
    std::size_t worst_chain = 0;
    for (const std::size_t calls : calls_per_src)
        worst_chain = std::max(worst_chain, calls);
    return static_cast<Tick>(worst_chain) * memcpyOverhead;
}

} // namespace gps
