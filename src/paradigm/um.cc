#include "paradigm/um.hh"

namespace gps
{

void
UmParadigm::accessShared(GpuId gpu, const MemAccess& access, PageNum vpn,
                         PageState& st, bool tlb_miss,
                         KernelCounters& counters, TrafficMatrix& traffic)
{
    (void)tlb_miss;
    if (access.isWrite())
        dirtyPages_.insert(vpn);
    const UmDecision decision = engine_.access(
        gpu, access, vpn, st, hintsMode(), counters, traffic);
    switch (decision.route) {
      case UmRoute::Local:
        localAccess(gpu, access, counters);
        break;
      case UmRoute::RemoteLoad:
        remoteLoad(gpu, decision.owner, access, counters, traffic);
        break;
      case UmRoute::RemoteStore:
        remoteStore(gpu, decision.owner, access, counters, traffic);
        break;
      case UmRoute::RemoteAtomic:
        remoteAtomic(gpu, decision.owner, access, counters, traffic);
        break;
    }
}

Tick
UmParadigm::atBarrier(KernelCounters& counters,
                      TrafficMatrix& barrier_traffic)
{
    (void)counters;
    (void)barrier_traffic;
    // Peer caches holding lines of rewritten pages (fetched through
    // accessed-by remote mappings) are stale after synchronization.
    const std::uint64_t page_bytes = drv().pageBytes();
    for (const PageNum vpn : dirtyPages_) {
        const PageState& st = drv().state(vpn);
        const Addr base = drv().geometry().pageBase(vpn);
        for (GpuId g = 0; g < drv().numGpus(); ++g) {
            if (g != st.location)
                sys().gpu(g).l2().invalidatePage(base, page_bytes);
        }
    }
    dirtyPages_.clear();
    return 0;
}

} // namespace gps
