/**
 * @file
 * Infinite-bandwidth upper bound: the memcpy variant with all transfer
 * costs elided (Section 6). Establishes the available opportunity the
 * paper quotes GPS against.
 */

#ifndef GPS_PARADIGM_INFINITE_HH
#define GPS_PARADIGM_INFINITE_HH

#include "paradigm/memcpy_paradigm.hh"

namespace gps
{

/** Memcpy with free transfers: the strong-scaling opportunity bound. */
class InfiniteBwParadigm : public MemcpyParadigm
{
  public:
    explicit InfiniteBwParadigm(MultiGpuSystem& system)
        : MemcpyParadigm(system, "infinite_bw")
    {}

    ParadigmKind kind() const override
    {
        return ParadigmKind::InfiniteBw;
    }

  protected:
    bool transfersCost() const override { return false; }
};

} // namespace gps

#endif // GPS_PARADIGM_INFINITE_HH
