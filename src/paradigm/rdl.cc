#include "paradigm/rdl.hh"

namespace gps
{

void
RdlParadigm::accessShared(GpuId gpu, const MemAccess& access, PageNum vpn,
                          PageState& st, bool tlb_miss,
                          KernelCounters& counters, TrafficMatrix& traffic)
{
    (void)tlb_miss;

    if (access.isStore()) {
        // Stores always land in the local replica.
        st.lastWriter = gpu;
        dirtyPages_.insert(vpn);
        localAccess(gpu, access, counters);
        return;
    }

    if (access.isAtomic()) {
        // Atomics must hit the canonical copy to be meaningful; route to
        // the last writer when it is remote.
        if (st.lastWriter != invalidGpu && st.lastWriter != gpu) {
            remoteAtomic(gpu, st.lastWriter, access, counters, traffic);
        } else {
            st.lastWriter = gpu;
            localAccess(gpu, access, counters);
        }
        return;
    }

    // Loads: demand-read from the most recent writer's copy.
    if (st.lastWriter != invalidGpu && st.lastWriter != gpu) {
        remoteLoad(gpu, st.lastWriter, access, counters, traffic);
    } else {
        localAccess(gpu, access, counters);
    }
}

Tick
RdlParadigm::atBarrier(KernelCounters& counters,
                       TrafficMatrix& barrier_traffic)
{
    (void)counters;
    (void)barrier_traffic;
    // Synchronization makes peer-cached copies of rewritten pages
    // stale: the next demand load must cross the interconnect again.
    const std::uint64_t page_bytes = drv().pageBytes();
    for (const PageNum vpn : dirtyPages_) {
        const PageState& st = drv().state(vpn);
        const Addr base = drv().geometry().pageBase(vpn);
        for (GpuId g = 0; g < drv().numGpus(); ++g) {
            if (g != st.lastWriter)
                sys().gpu(g).l2().invalidatePage(base, page_bytes);
        }
    }
    dirtyPages_.clear();
    return 0;
}

} // namespace gps
