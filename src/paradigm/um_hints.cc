#include "paradigm/um_hints.hh"

#include <algorithm>
#include <map>

namespace gps
{

Tick
UmHintsParadigm::beginPhase(const Phase& phase, KernelCounters& counters,
                            TrafficMatrix& prefetch_traffic)
{
    // Prefetches from different GPUs issue on independent streams;
    // only the longest per-GPU launch chain serializes with the phase.
    std::map<GpuId, Tick> per_gpu;
    for (const PrefetchRange& range : phase.prefetches) {
        per_gpu[range.gpu] +=
            engine().prefetchRange(range.gpu, range.base, range.len,
                                   counters, prefetch_traffic);
    }
    Tick worst = 0;
    for (const auto& [gpu, overhead] : per_gpu)
        worst = std::max(worst, overhead);
    return worst;
}

} // namespace gps
