/**
 * @file
 * UM with hand-applied hints: preferred location, accessed-by and
 * per-phase prefetch ranges (Section 6, "Unified Memory with Hints").
 */

#ifndef GPS_PARADIGM_UM_HINTS_HH
#define GPS_PARADIGM_UM_HINTS_HH

#include "paradigm/um.hh"

namespace gps
{

/**
 * UM+hints: honors the workload's advised preferred locations and
 * accessed-by sets, and issues the workload's prefetch ranges before each
 * phase.
 */
class UmHintsParadigm : public UmParadigm
{
  public:
    explicit UmHintsParadigm(MultiGpuSystem& system)
        : UmParadigm(system, "um_hints")
    {}

    ParadigmKind kind() const override { return ParadigmKind::UmHints; }

    Tick beginPhase(const Phase& phase, KernelCounters& counters,
                    TrafficMatrix& prefetch_traffic) override;

  protected:
    bool hintsMode() const override { return true; }
};

} // namespace gps

#endif // GPS_PARADIGM_UM_HINTS_HH
