/**
 * @file
 * Replays a FaultPlan against a running MultiGpuSystem.
 *
 * The engine is pumped by the runner at phase boundaries: every plan event
 * whose time has arrived is scheduled on the event queue at the current
 * tick and applied through the paradigm's degradation hooks. Injection is
 * fully deterministic — event order comes from the sorted plan and any
 * victim selection uses the plan's seeded Rng.
 */

#ifndef GPS_FAULT_FAULT_ENGINE_HH
#define GPS_FAULT_FAULT_ENGINE_HH

#include <cstddef>

#include "common/rng.hh"
#include "fault/fault_plan.hh"

namespace gps
{

class EventQueue;
class MetricRegistry;
class MultiGpuSystem;
class Paradigm;
class TimelineRecorder;

/** Deterministic, seeded fault injector. */
class FaultEngine
{
  public:
    /** Validates targets against the system; fatal on out-of-range ids. */
    FaultEngine(FaultPlan plan, MultiGpuSystem& system);

    /**
     * Schedule every not-yet-fired event due at or before the queue's
     * current time and run it. Faults therefore take effect at phase
     * granularity, which keeps the runner's phase-time invariant intact.
     */
    void pump(EventQueue& events, Paradigm& paradigm);

    /** Whether every plan event has fired. */
    bool done() const { return next_ >= plan_.events.size(); }

    FaultReport& report() { return report_; }
    const FaultReport& report() const { return report_; }
    Rng& rng() { return rng_; }
    const FaultPlan& plan() const { return plan_; }

    /** Register the FaultReport counters under the "fault." prefix. */
    void registerMetrics(MetricRegistry& reg) const;

    /**
     * Attach the timeline recorder (nullptr detaches); each injected
     * fault is then recorded as an instant on the fault track.
     */
    void attachRecorder(TimelineRecorder* recorder)
    {
        recorder_ = recorder;
    }

  private:
    void apply(const FaultEvent& ev, Paradigm& paradigm);

    FaultPlan plan_;
    MultiGpuSystem* system_;
    Rng rng_;
    FaultReport report_;
    std::size_t next_ = 0;
    TimelineRecorder* recorder_ = nullptr;
};

} // namespace gps

#endif // GPS_FAULT_FAULT_ENGINE_HH
