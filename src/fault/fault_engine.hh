/**
 * @file
 * Replays a FaultPlan against a running MultiGpuSystem.
 *
 * The engine is pumped by the runner at phase boundaries: every plan event
 * whose time has arrived is scheduled on the event queue at the current
 * tick and applied through the paradigm's degradation hooks. Injection is
 * fully deterministic — event order comes from the sorted plan and any
 * victim selection uses the plan's seeded Rng.
 */

#ifndef GPS_FAULT_FAULT_ENGINE_HH
#define GPS_FAULT_FAULT_ENGINE_HH

#include <cstddef>

#include "common/rng.hh"
#include "fault/fault_plan.hh"
#include "snapshot/serial.hh"

namespace gps
{

class CausalRecorder;
class EventQueue;
class MetricRegistry;
class MultiGpuSystem;
class Paradigm;
class TimelineRecorder;

/** Deterministic, seeded fault injector. */
class FaultEngine
{
  public:
    /** Validates targets against the system; fatal on out-of-range ids. */
    FaultEngine(FaultPlan plan, MultiGpuSystem& system);

    /**
     * Schedule every not-yet-fired event due at or before the queue's
     * current time and run it. Faults therefore take effect at phase
     * granularity, which keeps the runner's phase-time invariant intact.
     */
    void pump(EventQueue& events, Paradigm& paradigm);

    /** Whether every plan event has fired. */
    bool done() const { return next_ >= plan_.events.size(); }

    FaultReport& report() { return report_; }
    const FaultReport& report() const { return report_; }
    Rng& rng() { return rng_; }
    const FaultPlan& plan() const { return plan_; }

    /** Register the FaultReport counters under the "fault." prefix. */
    void registerMetrics(MetricRegistry& reg) const;

    /**
     * Attach the timeline recorder (nullptr detaches); each injected
     * fault is then recorded as an instant on the fault track.
     */
    void attachRecorder(TimelineRecorder* recorder)
    {
        recorder_ = recorder;
    }

    /**
     * Attach the causal recorder (nullptr detaches); each injected
     * fault is then counted as a fault->reroute dependency edge.
     */
    void attachCausal(CausalRecorder* causal) { causal_ = causal; }

    /**
     * Serialize injection progress: RNG stream position, report
     * counters, and the next-event cursor. The plan itself is rebuilt
     * from the run configuration at restore.
     */
    void
    saveState(snapshot::Serializer& out) const
    {
        out.section("faults");
        std::uint64_t words[4];
        rng_.saveState(words);
        for (const std::uint64_t w : words)
            out.u64(w);
        out.u64(report_.faultsInjected);
        out.u64(report_.linksDown);
        out.u64(report_.linksDegraded);
        out.u64(report_.linksRestored);
        out.u64(report_.reroutes);
        out.u64(report_.reroutedBytes);
        out.u64(report_.pcieFallbacks);
        out.u64(report_.pcieFallbackBytes);
        out.u64(report_.pagesRetired);
        out.u64(report_.replicasLost);
        out.u64(report_.pagesDegraded);
        out.u64(report_.resubscribes);
        out.u64(report_.wqSaturations);
        out.u64(report_.wqSaturatedDrains);
        out.u64(report_.stallTicks);
        out.u64(next_);
    }

    /** Counterpart of saveState; the plan must already match. */
    void
    restoreState(snapshot::Deserializer& in)
    {
        in.section("faults");
        std::uint64_t words[4];
        for (std::uint64_t& w : words)
            w = in.u64();
        rng_.restoreState(words);
        report_.faultsInjected = in.u64();
        report_.linksDown = in.u64();
        report_.linksDegraded = in.u64();
        report_.linksRestored = in.u64();
        report_.reroutes = in.u64();
        report_.reroutedBytes = in.u64();
        report_.pcieFallbacks = in.u64();
        report_.pcieFallbackBytes = in.u64();
        report_.pagesRetired = in.u64();
        report_.replicasLost = in.u64();
        report_.pagesDegraded = in.u64();
        report_.resubscribes = in.u64();
        report_.wqSaturations = in.u64();
        report_.wqSaturatedDrains = in.u64();
        report_.stallTicks = in.u64();
        next_ = in.u64();
        if (next_ > plan_.events.size())
            throw snapshot::SnapshotError(
                "snapshot fault cursor exceeds the configured plan");
    }

  private:
    void apply(const FaultEvent& ev, Paradigm& paradigm);

    FaultPlan plan_;
    MultiGpuSystem* system_;
    Rng rng_;
    FaultReport report_;
    std::size_t next_ = 0;
    TimelineRecorder* recorder_ = nullptr;
    CausalRecorder* causal_ = nullptr;
};

} // namespace gps

#endif // GPS_FAULT_FAULT_ENGINE_HH
