#include "fault/fault_engine.hh"

#include "api/system.hh"
#include "common/logging.hh"
#include "interconnect/topology.hh"
#include "obs/causal/causal.hh"
#include "obs/metric_registry.hh"
#include "obs/timeline.hh"
#include "paradigm/paradigm.hh"
#include "sim/event_queue.hh"

namespace gps
{

FaultEngine::FaultEngine(FaultPlan plan, MultiGpuSystem& system)
    : plan_(std::move(plan)), system_(&system), rng_(plan_.seed)
{
    plan_.sort();
    const std::size_t num_gpus = system.numGpus();
    for (const FaultEvent& ev : plan_.events) {
        if (ev.a != invalidGpu && ev.a >= num_gpus)
            gps_fatal("fault '", ev.describe(), "' targets GPU ", ev.a,
                      " but the system has ", num_gpus, " GPUs");
        if (ev.b != invalidGpu && ev.b >= num_gpus)
            gps_fatal("fault '", ev.describe(), "' targets GPU ", ev.b,
                      " but the system has ", num_gpus, " GPUs");
        if (ev.kind == FaultKind::PageRetire && ev.a == invalidGpu)
            gps_fatal("fault '", ev.describe(),
                      "' needs a concrete GPU target");
    }
    system.topology().setPcieFallback(plan_.pcieFallback);
}

void
FaultEngine::pump(EventQueue& events, Paradigm& paradigm)
{
    bool scheduled = false;
    while (next_ < plan_.events.size() &&
           plan_.events[next_].time <= events.now()) {
        const FaultEvent& ev = plan_.events[next_++];
        events.schedule(events.now(), "fault:" + ev.describe(),
                        [this, &ev, &paradigm] { apply(ev, paradigm); });
        scheduled = true;
    }
    if (scheduled)
        events.run();
}

void
FaultEngine::apply(const FaultEvent& ev, Paradigm& paradigm)
{
    ++report_.faultsInjected;
    if (recorder_ != nullptr)
        recorder_->instant(TimelineRecorder::faultTid, ev.describe(),
                           "fault", ev.time);
    if (causal_ != nullptr)
        causal_->noteDep(CausalEdge::FaultToReroute);
    Topology& topo = system_->topology();

    const auto for_each_pair = [&](auto&& fn) {
        if (ev.b != invalidGpu) {
            fn(ev.a, ev.b);
            return;
        }
        for (std::size_t peer = 0; peer < system_->numGpus(); ++peer)
            if (peer != ev.a)
                fn(ev.a, static_cast<GpuId>(peer));
    };

    switch (ev.kind) {
    case FaultKind::LinkDown:
        for_each_pair([&](GpuId a, GpuId b) {
            topo.setPathState(a, b, PathHealth::Down);
            ++report_.linksDown;
        });
        break;
    case FaultKind::LinkDegrade:
        for_each_pair([&](GpuId a, GpuId b) {
            topo.setPathState(a, b, PathHealth::Degraded, ev.factor);
            ++report_.linksDegraded;
        });
        break;
    case FaultKind::LinkRestore:
        for_each_pair([&](GpuId a, GpuId b) {
            topo.setPathState(a, b, PathHealth::Healthy);
            ++report_.linksRestored;
        });
        break;
    case FaultKind::PageRetire:
        paradigm.onFaultPageRetire(ev.a, ev.count, report_);
        break;
    case FaultKind::WqSaturate:
        ++report_.wqSaturations;
        paradigm.onFaultWqSaturate(ev.a, true, report_);
        break;
    case FaultKind::WqRestore:
        paradigm.onFaultWqSaturate(ev.a, false, report_);
        break;
    }
}

void
FaultEngine::registerMetrics(MetricRegistry& reg) const
{
    const FaultReport& r = report_;
    reg.counter("fault.injected", "events",
                [&r] { return static_cast<double>(r.faultsInjected); });
    reg.counter("fault.links_down", "links",
                [&r] { return static_cast<double>(r.linksDown); });
    reg.counter("fault.links_degraded", "links",
                [&r] { return static_cast<double>(r.linksDegraded); });
    reg.counter("fault.links_restored", "links",
                [&r] { return static_cast<double>(r.linksRestored); });
    reg.counter("fault.reroutes", "flows",
                [&r] { return static_cast<double>(r.reroutes); });
    reg.counter("fault.rerouted_bytes", "bytes",
                [&r] { return static_cast<double>(r.reroutedBytes); });
    reg.counter("fault.pcie_fallbacks", "flows",
                [&r] { return static_cast<double>(r.pcieFallbacks); });
    reg.counter("fault.pages_retired", "pages",
                [&r] { return static_cast<double>(r.pagesRetired); });
    reg.counter("fault.replicas_lost", "pages",
                [&r] { return static_cast<double>(r.replicasLost); });
    reg.counter("fault.resubscribes", "pages",
                [&r] { return static_cast<double>(r.resubscribes); });
    reg.counter("fault.wq_saturations", "events",
                [&r] { return static_cast<double>(r.wqSaturations); });
}

} // namespace gps
