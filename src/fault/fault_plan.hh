/**
 * @file
 * Fault plans: deterministic, seeded schedules of injected adversity.
 *
 * A FaultPlan is an ordered list of FaultEvents (time + kind + target)
 * parsed from CLI specs ("link:down@2ms:gpu0-gpu1") or from a small JSON
 * plan file. The FaultEngine replays the plan against a running system;
 * FaultReport accumulates what was injected and how the system degraded
 * (reroutes, PCIe fallbacks, retired pages, write-queue stalls).
 */

#ifndef GPS_FAULT_FAULT_PLAN_HH
#define GPS_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace gps
{

class StatSet;

/** What kind of adversity a FaultEvent injects. */
enum class FaultKind : std::uint8_t {
    LinkDown,    ///< Path between two GPUs stops carrying traffic.
    LinkDegrade, ///< Path keeps working at a fraction of its bandwidth.
    LinkRestore, ///< Path returns to full health.
    PageRetire,  ///< Frames on one GPU are permanently taken out of service.
    WqSaturate,  ///< Remote write queue drains stall the producing SM.
    WqRestore,   ///< Remote write queue returns to normal draining.
};

const char* to_string(FaultKind kind);

/** One scheduled fault. Interpretation of the fields depends on kind. */
struct FaultEvent {
    Tick time = 0;           ///< Simulated time the fault fires.
    FaultKind kind = FaultKind::LinkDown;
    GpuId a = invalidGpu;    ///< Link endpoint / target GPU.
    GpuId b = invalidGpu;    ///< Second link endpoint; invalidGpu = wildcard.
    double factor = 1.0;     ///< Bandwidth fraction for LinkDegrade, (0, 1].
    std::uint64_t count = 1; ///< Frames to retire for PageRetire.

    /** Render back to the CLI spec grammar (for reports and logs). */
    std::string describe() const;
};

/** Everything the system did about the injected faults, for RunResult. */
struct FaultReport {
    std::uint64_t faultsInjected = 0;
    std::uint64_t linksDown = 0;
    std::uint64_t linksDegraded = 0;
    std::uint64_t linksRestored = 0;
    std::uint64_t reroutes = 0;
    std::uint64_t reroutedBytes = 0;
    std::uint64_t pcieFallbacks = 0;
    std::uint64_t pcieFallbackBytes = 0;
    std::uint64_t pagesRetired = 0;
    std::uint64_t replicasLost = 0;
    std::uint64_t pagesDegraded = 0;
    std::uint64_t resubscribes = 0;
    std::uint64_t wqSaturations = 0;
    std::uint64_t wqSaturatedDrains = 0;
    Tick stallTicks = 0;

    void exportStats(StatSet& out) const;
};

/** A parsed, time-sorted schedule of faults plus injection policy. */
struct FaultPlan {
    std::vector<FaultEvent> events;
    std::uint64_t seed = 0;
    bool pcieFallback = true; ///< Host-staged fallback for dead partitions.

    bool empty() const { return events.empty(); }

    /** Append one CLI spec, e.g. "link:down@2ms:gpu0-gpu1". Fatal on
     *  grammar errors. Call sort() once all specs are added. */
    void addSpec(const std::string& spec);

    /** Stable-sort events by time (CLI order breaks ties). */
    void sort();

    /** Parse a single CLI spec into an event. Fatal on grammar errors. */
    static FaultEvent parseSpec(const std::string& spec);

    /** Parse a JSON plan document (see docs/faults.md for the schema). */
    static FaultPlan fromJsonText(const std::string& text);

    /** Load and parse a JSON plan file. Fatal if unreadable. */
    static FaultPlan fromJsonFile(const std::string& path);
};

} // namespace gps

#endif // GPS_FAULT_FAULT_PLAN_HH
