#include "fault/fault_plan.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>

#include "common/gpu_mask.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/units.hh"

namespace gps
{

namespace
{

/** Split @p text on @p sep into non-empty-preserving tokens. */
std::vector<std::string>
split(const std::string& text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

bool
allDigits(const std::string& text)
{
    if (text.empty())
        return false;
    return std::all_of(text.begin(), text.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
    });
}

/** "2ms" / "500us" / "1.5s" / bare ticks. Fatal on anything else. */
Tick
parseTime(const std::string& text, const std::string& spec)
{
    std::size_t i = 0;
    while (i < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
            text[i] == '.'))
        ++i;
    if (i == 0)
        gps_fatal("fault spec '", spec, "': bad time '", text,
                  "' (expected e.g. 2ms, 500us, 3s or raw ticks)");
    double value = 0.0;
    try {
        value = std::stod(text.substr(0, i));
    } catch (const std::exception&) {
        gps_fatal("fault spec '", spec, "': bad time '", text, "'");
    }
    const std::string unit = text.substr(i);
    if (unit.empty())
        return static_cast<Tick>(value);
    if (unit == "ns")
        return nsToTicks(value);
    if (unit == "us")
        return usToTicks(value);
    if (unit == "ms")
        return secondsToTicks(value * 1e-3);
    if (unit == "s")
        return secondsToTicks(value);
    gps_fatal("fault spec '", spec, "': unknown time unit '", unit,
              "' (expected ns, us, ms or s)");
    return 0;
}

/** "gpu3" / "3" / "*" (wildcard, when @p allow_wildcard). */
GpuId
parseGpu(std::string token, const std::string& spec, bool allow_wildcard)
{
    if (token == "*") {
        if (!allow_wildcard)
            gps_fatal("fault spec '", spec,
                      "': wildcard '*' not allowed here");
        return invalidGpu;
    }
    if (token.rfind("gpu", 0) == 0)
        token = token.substr(3);
    if (!allDigits(token))
        gps_fatal("fault spec '", spec, "': bad GPU id '", token, "'");
    const unsigned long id = std::stoul(token);
    if (id >= maxGpus)
        gps_fatal("fault spec '", spec, "': GPU id ", id,
                  " out of range (max ", maxGpus - 1, ")");
    return static_cast<GpuId>(id);
}

double
parseFactor(const std::string& token, const std::string& spec)
{
    double value = 0.0;
    std::size_t consumed = 0;
    try {
        value = std::stod(token, &consumed);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (consumed != token.size() || value <= 0.0 || value > 1.0)
        gps_fatal("fault spec '", spec, "': degrade factor '", token,
                  "' must be a number in (0, 1]");
    return value;
}

} // namespace

const char*
to_string(FaultKind kind)
{
    switch (kind) {
    case FaultKind::LinkDown: return "link:down";
    case FaultKind::LinkDegrade: return "link:degrade";
    case FaultKind::LinkRestore: return "link:restore";
    case FaultKind::PageRetire: return "page:retire";
    case FaultKind::WqSaturate: return "wq:saturate";
    case FaultKind::WqRestore: return "wq:restore";
    }
    return "?";
}

std::string
FaultEvent::describe() const
{
    std::string text = std::string(to_string(kind)) + "@" +
                       std::to_string(time) + ":";
    const auto gpu_name = [](GpuId id) {
        return id == invalidGpu ? std::string("*")
                                : "gpu" + std::to_string(id);
    };
    switch (kind) {
    case FaultKind::LinkDown:
    case FaultKind::LinkRestore:
        text += gpu_name(a) + "-" + gpu_name(b);
        break;
    case FaultKind::LinkDegrade: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", factor);
        text += gpu_name(a) + "-" + gpu_name(b) + ":" + buf;
        break;
    }
    case FaultKind::PageRetire:
        text += gpu_name(a) + ":" + std::to_string(count);
        break;
    case FaultKind::WqSaturate:
    case FaultKind::WqRestore:
        text += gpu_name(a);
        break;
    }
    return text;
}

void
FaultReport::exportStats(StatSet& out) const
{
    out.set("faults.injected", static_cast<double>(faultsInjected));
    out.set("faults.links_down", static_cast<double>(linksDown));
    out.set("faults.links_degraded", static_cast<double>(linksDegraded));
    out.set("faults.links_restored", static_cast<double>(linksRestored));
    out.set("faults.reroutes", static_cast<double>(reroutes));
    out.set("faults.rerouted_bytes", static_cast<double>(reroutedBytes));
    out.set("faults.pcie_fallbacks", static_cast<double>(pcieFallbacks));
    out.set("faults.pcie_fallback_bytes",
            static_cast<double>(pcieFallbackBytes));
    out.set("faults.pages_retired", static_cast<double>(pagesRetired));
    out.set("faults.replicas_lost", static_cast<double>(replicasLost));
    out.set("faults.pages_degraded", static_cast<double>(pagesDegraded));
    out.set("faults.resubscribes", static_cast<double>(resubscribes));
    out.set("faults.wq_saturations", static_cast<double>(wqSaturations));
    out.set("faults.wq_saturated_drains",
            static_cast<double>(wqSaturatedDrains));
    out.set("faults.stall_ticks", static_cast<double>(stallTicks));
}

FaultEvent
FaultPlan::parseSpec(const std::string& spec)
{
    const std::size_t at = spec.find('@');
    if (at == std::string::npos)
        gps_fatal("fault spec '", spec,
                  "': missing '@' (grammar: kind@time:target...)");

    const std::string head = spec.substr(0, at);
    const std::vector<std::string> tail = split(spec.substr(at + 1), ':');
    if (tail.empty() || tail[0].empty())
        gps_fatal("fault spec '", spec, "': missing time");

    FaultEvent ev;
    ev.time = parseTime(tail[0], spec);

    const auto expect_args = [&](std::size_t lo, std::size_t hi) {
        const std::size_t args = tail.size() - 1;
        if (args < lo || args > hi)
            gps_fatal("fault spec '", spec, "': expected ", lo,
                      lo == hi ? "" : "-" + std::to_string(hi),
                      " target field(s), got ", args);
    };

    if (head == "link:down" || head == "link:restore" ||
        head == "link:degrade") {
        ev.kind = head == "link:down"      ? FaultKind::LinkDown
                  : head == "link:restore" ? FaultKind::LinkRestore
                                           : FaultKind::LinkDegrade;
        const bool degrade = ev.kind == FaultKind::LinkDegrade;
        expect_args(degrade ? 2 : 1, degrade ? 2 : 1);
        const std::vector<std::string> ends = split(tail[1], '-');
        if (ends.size() != 2)
            gps_fatal("fault spec '", spec, "': link target '", tail[1],
                      "' must be '<gpuA>-<gpuB>'");
        ev.a = parseGpu(ends[0], spec, /*allow_wildcard=*/false);
        ev.b = parseGpu(ends[1], spec, /*allow_wildcard=*/true);
        if (ev.a == ev.b)
            gps_fatal("fault spec '", spec,
                      "': link endpoints must differ");
        if (degrade)
            ev.factor = parseFactor(tail[2], spec);
    } else if (head == "page:retire") {
        ev.kind = FaultKind::PageRetire;
        expect_args(1, 2);
        ev.a = parseGpu(tail[1], spec, /*allow_wildcard=*/false);
        if (tail.size() == 3) {
            if (!allDigits(tail[2]))
                gps_fatal("fault spec '", spec, "': bad page count '",
                          tail[2], "'");
            ev.count = std::stoull(tail[2]);
            if (ev.count == 0)
                gps_fatal("fault spec '", spec,
                          "': page count must be positive");
        }
    } else if (head == "wq:saturate" || head == "wq:restore") {
        ev.kind = head == "wq:saturate" ? FaultKind::WqSaturate
                                        : FaultKind::WqRestore;
        expect_args(1, 1);
        ev.a = parseGpu(tail[1], spec, /*allow_wildcard=*/true);
    } else {
        gps_fatal("fault spec '", spec, "': unknown fault kind '", head,
                  "' (expected link:down, link:degrade, link:restore, ",
                  "page:retire, wq:saturate or wq:restore)");
    }
    return ev;
}

void
FaultPlan::addSpec(const std::string& spec)
{
    events.push_back(parseSpec(spec));
}

void
FaultPlan::sort()
{
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent& lhs, const FaultEvent& rhs) {
                         return lhs.time < rhs.time;
                     });
}

// ---------------------------------------------------------------------
// Minimal JSON reader for plan files. The schema is tiny (an object with
// "seed", "pcie_fallback" and an "events" array of spec strings), so a
// purpose-built recursive-descent reader avoids any external dependency.
// ---------------------------------------------------------------------

namespace
{

struct JsonReader {
    const std::string& text;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string& what) const
    {
        gps_fatal("fault plan JSON: ", what, " at offset ", pos);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])) != 0)
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', found '" +
                 text[pos] + "'");
        ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos >= text.size())
                    fail("unterminated escape");
                const char esc = text[pos++];
                switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                default: fail("unsupported escape sequence");
                }
            } else {
                out += c;
            }
        }
    }

    double
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '-' || text[pos] == '+'))
            ++pos;
        if (pos == start)
            fail("expected a number");
        try {
            return std::stod(text.substr(start, pos - start));
        } catch (const std::exception&) {
            fail("bad number '" + text.substr(start, pos - start) + "'");
        }
    }

    bool
    parseBool()
    {
        skipWs();
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            return false;
        }
        fail("expected true or false");
    }

    /** Skip any value (for unknown keys). */
    void
    skipValue()
    {
        const char c = peek();
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            ++pos;
            if (consume('}'))
                return;
            while (true) {
                parseString();
                expect(':');
                skipValue();
                if (!consume(','))
                    break;
            }
            expect('}');
        } else if (c == '[') {
            ++pos;
            if (consume(']'))
                return;
            while (true) {
                skipValue();
                if (!consume(','))
                    break;
            }
            expect(']');
        } else if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
        } else if (c == 't' || c == 'f') {
            parseBool();
        } else {
            parseNumber();
        }
    }
};

} // namespace

FaultPlan
FaultPlan::fromJsonText(const std::string& text)
{
    FaultPlan plan;
    JsonReader reader{text};
    reader.expect('{');
    if (!reader.consume('}')) {
        while (true) {
            const std::string key = reader.parseString();
            reader.expect(':');
            if (key == "seed") {
                const double seed = reader.parseNumber();
                if (seed < 0)
                    reader.fail("seed must be non-negative");
                plan.seed = static_cast<std::uint64_t>(seed);
            } else if (key == "pcie_fallback") {
                plan.pcieFallback = reader.parseBool();
            } else if (key == "events") {
                reader.expect('[');
                if (!reader.consume(']')) {
                    while (true) {
                        plan.addSpec(reader.parseString());
                        if (!reader.consume(','))
                            break;
                    }
                    reader.expect(']');
                }
            } else {
                reader.skipValue();
            }
            if (!reader.consume(','))
                break;
        }
        reader.expect('}');
    }
    reader.skipWs();
    if (reader.pos != text.size())
        reader.fail("trailing content after plan object");
    plan.sort();
    return plan;
}

FaultPlan
FaultPlan::fromJsonFile(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        gps_fatal("cannot open fault plan file '", path, "'");
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        text.append(buf, got);
    std::fclose(file);
    return fromJsonText(text);
}

} // namespace gps
