/**
 * @file
 * Kernel descriptors and procedural access streams.
 *
 * Workloads never materialize full traces; they hand the replay engine an
 * AccessStream that generates accesses on demand, keeping memory bounded
 * even for billion-access sweeps.
 */

#ifndef GPS_TRACE_KERNEL_TRACE_HH
#define GPS_TRACE_KERNEL_TRACE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "trace/access.hh"

namespace gps
{

/** Pull-based generator of memory accesses. */
class AccessStream
{
  public:
    virtual ~AccessStream() = default;

    /**
     * Produce the next access.
     * @return false when the stream is exhausted.
     */
    virtual bool next(MemAccess& out) = 0;

    /**
     * Batched pull: fill up to @p max accesses into @p out and return
     * the count produced. Returns less than @p max only at end of
     * stream, so the replay loop pays one virtual call per chunk
     * instead of one per access. The base implementation loops next();
     * vector-backed streams override it with a straight copy.
     */
    virtual std::size_t
    nextBatch(MemAccess* out, std::size_t max)
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }
};

/** Stream over a pre-built vector (tests, small kernels). */
class VectorStream : public AccessStream
{
  public:
    explicit VectorStream(std::vector<MemAccess> accesses)
        : accesses_(std::move(accesses))
    {}

    bool
    next(MemAccess& out) override
    {
        if (pos_ >= accesses_.size())
            return false;
        out = accesses_[pos_++];
        return true;
    }

    std::size_t
    nextBatch(MemAccess* out, std::size_t max) override
    {
        const std::size_t n =
            std::min(max, accesses_.size() - pos_);
        std::copy_n(accesses_.begin() +
                        static_cast<std::ptrdiff_t>(pos_),
                    n, out);
        pos_ += n;
        return n;
    }

  private:
    std::vector<MemAccess> accesses_;
    std::size_t pos_ = 0;
};

/** Stream driven by a callable; the callable returns false when done. */
class CallbackStream : public AccessStream
{
  public:
    using Fn = std::function<bool(MemAccess&)>;

    explicit CallbackStream(Fn fn)
        : fn_(std::move(fn))
    {}

    bool next(MemAccess& out) override { return fn_(out); }

  private:
    Fn fn_;
};

/** Concatenation of streams, drained in order. */
class ConcatStream : public AccessStream
{
  public:
    explicit ConcatStream(std::vector<std::unique_ptr<AccessStream>> parts)
        : parts_(std::move(parts))
    {}

    bool next(MemAccess& out) override;
    std::size_t nextBatch(MemAccess* out, std::size_t max) override;

  private:
    std::vector<std::unique_ptr<AccessStream>> parts_;
    std::size_t current_ = 0;
};

/**
 * One kernel launched on one GPU. computeInstrs is the aggregate count of
 * non-memory instructions across all threads of the grid; the GPU model
 * turns it into compute time through its issue throughput.
 *
 * prechargedDramBytes models memory traffic that is statistically flat —
 * e.g. the random per-edge gather of a graph kernel, whose cache hit
 * rate is negligible — without replaying millions of accesses; it feeds
 * the DRAM bandwidth term of the timing model directly.
 */
struct KernelLaunch
{
    GpuId gpu = 0;
    std::string name;
    std::uint64_t computeInstrs = 0;
    std::uint64_t prechargedDramBytes = 0;
    std::unique_ptr<AccessStream> stream;
};

/**
 * A programmer-supplied prefetch hint range (cudaMemPrefetchAsync
 * analogue), honored only by the UM+hints paradigm.
 */
struct PrefetchRange
{
    GpuId gpu = 0;       ///< destination GPU
    Addr base = 0;
    std::uint64_t len = 0;
};

/**
 * A programmer-directed bulk copy issued at the phase's closing barrier:
 * what a tuned memcpy port of the application broadcasts (e.g. halo rows,
 * the updated factor slab). Honored only by the memcpy-style paradigms.
 */
struct BroadcastRange
{
    GpuId src = 0;       ///< producing GPU
    Addr base = 0;
    std::uint64_t len = 0;
};

/**
 * A barrier-delimited phase: one kernel per participating GPU, all
 * launched concurrently, joined at the trailing barrier. Prefetch hints
 * are issued before the kernels start; barrier broadcasts after they end.
 */
struct Phase
{
    std::string name;
    std::vector<KernelLaunch> kernels;
    std::vector<PrefetchRange> prefetches;
    std::vector<BroadcastRange> barrierBroadcasts;
};

} // namespace gps

#endif // GPS_TRACE_KERNEL_TRACE_HH
