#include "trace/kernel_trace.hh"

namespace gps
{

bool
ConcatStream::next(MemAccess& out)
{
    while (current_ < parts_.size()) {
        if (parts_[current_]->next(out))
            return true;
        ++current_;
    }
    return false;
}

std::size_t
ConcatStream::nextBatch(MemAccess* out, std::size_t max)
{
    std::size_t n = 0;
    while (n < max && current_ < parts_.size()) {
        n += parts_[current_]->nextBatch(out + n, max - n);
        if (n < max)
            ++current_; // the part ran dry; move to the next one
    }
    return n;
}

} // namespace gps
