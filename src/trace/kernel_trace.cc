#include "trace/kernel_trace.hh"

namespace gps
{

bool
ConcatStream::next(MemAccess& out)
{
    while (current_ < parts_.size()) {
        if (parts_[current_]->next(out))
            return true;
        ++current_;
    }
    return false;
}

} // namespace gps
