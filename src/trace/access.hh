/**
 * @file
 * A single memory operation in an application trace.
 *
 * Traces mirror what NVBit-captured SASS traces provide the paper's
 * simulator: the access type, the (virtual) address, the access width and
 * the memory-model scope. Timing is reconstructed by the simulator.
 */

#ifndef GPS_TRACE_ACCESS_HH
#define GPS_TRACE_ACCESS_HH

#include <cstdint>

#include "common/types.hh"

namespace gps
{

/** One traced memory operation (16 bytes, hot-path friendly). */
struct MemAccess
{
    Addr vaddr = 0;
    std::uint32_t size = 4;
    AccessType type = AccessType::Load;
    Scope scope = Scope::Weak;

    static MemAccess
    load(Addr addr, std::uint32_t size = 4)
    {
        return {addr, size, AccessType::Load, Scope::Weak};
    }

    static MemAccess
    store(Addr addr, std::uint32_t size = 4)
    {
        return {addr, size, AccessType::Store, Scope::Weak};
    }

    static MemAccess
    atomic(Addr addr, std::uint32_t size = 4)
    {
        return {addr, size, AccessType::Atomic, Scope::Weak};
    }

    static MemAccess
    sysStore(Addr addr, std::uint32_t size = 4)
    {
        return {addr, size, AccessType::Store, Scope::Sys};
    }

    bool isLoad() const { return type == AccessType::Load; }
    bool isStore() const { return type == AccessType::Store; }
    bool isAtomic() const { return type == AccessType::Atomic; }

    /** Stores and atomics both produce write traffic. */
    bool isWrite() const { return !isLoad(); }
};

} // namespace gps

#endif // GPS_TRACE_ACCESS_HH
