#include "trace/trace_file.hh"

#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace gps
{

namespace
{

/** Fixed 24-byte header. */
struct TraceHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t crc32; ///< IEEE CRC32 over all record bytes.
    std::uint64_t records;
};

/** Fixed 16-byte on-disk record. */
struct TraceRecord
{
    std::uint64_t vaddr;
    std::uint32_t size;
    std::uint8_t type;
    std::uint8_t scope;
    std::uint16_t reserved;
};

static_assert(sizeof(TraceHeader) == 24, "header layout drifted");
static_assert(sizeof(TraceRecord) == 16, "record layout drifted");

} // namespace

TraceWriter::TraceWriter(const std::string& path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        gps_fatal("cannot open trace file '", path, "' for writing");
    // Placeholder header; close() rewrites it with the record count.
    TraceHeader header{};
    std::memcpy(header.magic, traceMagic, sizeof(traceMagic));
    header.version = traceVersion;
    header.records = 0;
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        gps_fatal("short write on trace header");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const MemAccess& access)
{
    gps_assert(file_ != nullptr, "append to closed trace writer");
    TraceRecord record{};
    record.vaddr = access.vaddr;
    record.size = access.size;
    record.type = static_cast<std::uint8_t>(access.type);
    record.scope = static_cast<std::uint8_t>(access.scope);
    if (std::fwrite(&record, sizeof(record), 1, file_) != 1)
        gps_fatal("short write on trace record");
    crc_ = crc32Update(crc_, &record, sizeof(record));
    ++records_;
}

std::uint64_t
TraceWriter::appendAll(AccessStream& stream)
{
    std::uint64_t written = 0;
    MemAccess access;
    while (stream.next(access)) {
        append(access);
        ++written;
    }
    return written;
}

void
TraceWriter::close()
{
    if (file_ == nullptr)
        return;
    // Record bytes must reach the kernel before the header rewrite, or a
    // write error found at fclose time would leave a valid-looking header
    // over a short file. Warn rather than throw: the destructor lands here.
    bool ok = std::fflush(file_) == 0;
    TraceHeader header{};
    std::memcpy(header.magic, traceMagic, sizeof(traceMagic));
    header.version = traceVersion;
    header.crc32 = crc_;
    header.records = records_;
    ok = ok && std::fseek(file_, 0, SEEK_SET) == 0;
    ok = ok && std::fwrite(&header, sizeof(header), 1, file_) == 1;
    ok = ok && std::fflush(file_) == 0;
    if (std::fclose(file_) != 0)
        ok = false;
    file_ = nullptr;
    if (!ok)
        gps_warn("failed to finalize trace file (", records_,
                 " records); the file is likely unreadable");
}

TraceFileStream::TraceFileStream(const std::string& path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        gps_fatal("cannot open trace file '", path, "'");
    TraceHeader header{};
    if (std::fread(&header, sizeof(header), 1, file_) != 1) {
        std::fclose(file_);
        file_ = nullptr;
        gps_fatal("trace file '", path, "' is truncated");
    }
    if (std::memcmp(header.magic, traceMagic, sizeof(traceMagic)) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        gps_fatal("'", path, "' is not a GPS trace file");
    }
    if (header.version != traceVersion) {
        std::fclose(file_);
        file_ = nullptr;
        gps_fatal("trace file version ", header.version,
                  " unsupported (expected ", traceVersion, ")");
    }
    records_ = header.records;

    // Validate the declared record count against the file size, then the
    // payload against the header checksum, before handing out a single
    // record. A trace that fails here would silently under-replay.
    std::fseek(file_, 0, SEEK_END);
    const long end = std::ftell(file_);
    const long expected = static_cast<long>(
        sizeof(TraceHeader) + records_ * sizeof(TraceRecord));
    if (end < 0 || end != expected) {
        std::fclose(file_);
        file_ = nullptr;
        gps_fatal("trace file '", path, "' is ", end, " bytes but its ",
                  "header declares ", records_, " records (", expected,
                  " bytes): truncated or corrupt");
    }
    std::fseek(file_, sizeof(TraceHeader), SEEK_SET);
    std::uint32_t crc = 0;
    TraceRecord record{};
    for (std::uint64_t i = 0; i < records_; ++i) {
        if (std::fread(&record, sizeof(record), 1, file_) != 1) {
            std::fclose(file_);
            file_ = nullptr;
            gps_fatal("read error in trace file '", path, "' at record ",
                      i);
        }
        crc = crc32Update(crc, &record, sizeof(record));
    }
    if (crc != header.crc32) {
        std::fclose(file_);
        file_ = nullptr;
        gps_fatal("trace file '", path, "' checksum mismatch (stored ",
                  header.crc32, ", computed ", crc,
                  "): the payload is corrupt");
    }
    std::fseek(file_, sizeof(TraceHeader), SEEK_SET);
    path_ = path;
}

TraceFileStream::~TraceFileStream()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceFileStream::next(MemAccess& out)
{
    if (file_ == nullptr || consumed_ >= records_)
        return false;
    TraceRecord record{};
    if (std::fread(&record, sizeof(record), 1, file_) != 1) {
        // The header promised more records than the file delivers —
        // returning false here would silently replay a partial trace.
        gps_fatal("trace file '", path_, "' truncated mid-stream: got ",
                  consumed_, " of ", records_, " records");
    }
    out.vaddr = record.vaddr;
    out.size = record.size;
    out.type = static_cast<AccessType>(record.type);
    out.scope = static_cast<Scope>(record.scope);
    ++consumed_;
    return true;
}

} // namespace gps
