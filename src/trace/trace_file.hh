/**
 * @file
 * On-disk access traces.
 *
 * The paper's methodology captures SASS-level traces with NVBit on real
 * hardware and replays them in the simulator. This module provides the
 * equivalent interchange point for this reproduction: any AccessStream
 * can be captured to a compact binary trace file, and a trace file
 * replays as an AccessStream. This makes runs reproducible bit-for-bit
 * across machines and lets externally captured traces (converted to
 * this format) drive the simulator directly.
 *
 * Format (little-endian):
 *   24-byte header: magic "GPSTRACE", u32 version, u32 CRC32 (IEEE, over
 *   all record bytes), u64 record count; then one 16-byte record per
 *   access: u64 vaddr, u32 size, u8 type, u8 scope, u16 reserved.
 *
 * Version 2 repurposed the formerly-zero reserved header word as the
 * payload checksum; version-1 files are rejected on open.
 */

#ifndef GPS_TRACE_TRACE_FILE_HH
#define GPS_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "trace/access.hh"
#include "trace/kernel_trace.hh"

namespace gps
{

/** Streams access records into a binary trace file. */
class TraceWriter
{
  public:
    /** Opens (truncates) @p path; throws FatalError on failure. */
    explicit TraceWriter(const std::string& path);
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /** Append one access. */
    void append(const MemAccess& access);

    /** Drain @p stream into the file.
     * @return records written. */
    std::uint64_t appendAll(AccessStream& stream);

    /** Finalize the header and close; called by the destructor too.
     * Flushes before the header rewrite and warns (never throws — the
     * destructor calls this) if any step fails. */
    void close();

    std::uint64_t recordsWritten() const { return records_; }

  private:
    std::FILE* file_ = nullptr;
    std::uint64_t records_ = 0;
    std::uint32_t crc_ = 0;
};

/** Replays a binary trace file as an AccessStream. */
class TraceFileStream : public AccessStream
{
  public:
    /** Opens and validates @p path; throws FatalError on bad files. */
    explicit TraceFileStream(const std::string& path);
    ~TraceFileStream() override;

    TraceFileStream(const TraceFileStream&) = delete;
    TraceFileStream& operator=(const TraceFileStream&) = delete;

    bool next(MemAccess& out) override;

    /** Total records the header declares. */
    std::uint64_t records() const { return records_; }

  private:
    std::FILE* file_ = nullptr;
    std::uint64_t records_ = 0;
    std::uint64_t consumed_ = 0;
    std::string path_; ///< For error messages after open.
};

/** Magic bytes at the start of every trace file. */
constexpr char traceMagic[8] = {'G', 'P', 'S', 'T', 'R', 'A', 'C', 'E'};

/** Current trace format version. */
constexpr std::uint32_t traceVersion = 2;

} // namespace gps

#endif // GPS_TRACE_TRACE_FILE_HH
