/**
 * @file
 * Figure 13: geometric-mean 4-GPU speedup of every paradigm while
 * sweeping the interconnect from PCIe 3.0 to projected PCIe 6.0.
 *
 * Paper headline: conventional paradigms stay flat-ish even as link
 * bandwidth grows 8x; GPS tracks the infinite-bandwidth bound ever more
 * closely.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

std::map<std::string, std::map<std::string, std::vector<double>>>
    samples; // interconnect -> paradigm -> speedups
BaselineCache baselines;

RunConfig
cellConfig(InterconnectKind interconnect, ParadigmKind paradigm)
{
    RunConfig config = defaultConfig();
    config.system.interconnect = interconnect;
    config.paradigm = paradigm;
    return config;
}

void
BM_fig13(benchmark::State& state, const std::string& workload,
         InterconnectKind interconnect, ParadigmKind paradigm)
{
    const RunConfig config = cellConfig(interconnect, paradigm);
    const RunHandle base_h = baselines.get(workload, config);
    const RunResult& base = *base_h;
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        const double speedup = speedupOver(base, result);
        samples[to_string(interconnect)][to_string(paradigm)].push_back(
            speedup);
        state.counters["speedup"] = speedup;
    }
}

void
printTable()
{
    Table table({"interconnect", "UM", "UM+hints", "RDL", "Memcpy",
                 "GPS", "InfBW"});
    for (const InterconnectKind ic : figure13Sweep()) {
        std::vector<std::string> row{to_string(ic)};
        for (const ParadigmKind paradigm : allParadigms())
            row.push_back(fmt(geomean(
                samples[to_string(ic)][to_string(paradigm)])));
        table.row(std::move(row));
    }
    table.print("Figure 13: geomean 4-GPU speedup vs interconnect "
                "(paper: GPS approaches the bound as bandwidth grows)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const InterconnectKind ic : gps::figure13Sweep()) {
        for (const std::string& app : gps::workloadNames()) {
            for (const gps::ParadigmKind paradigm :
                 gps::allParadigms()) {
                plan().addWithBaseline(
                    app, cellConfig(ic, paradigm),
                    "fig13/" + gps::to_string(ic) + "/" + app + "/" +
                        gps::to_string(paradigm));
                benchmark::RegisterBenchmark(
                    ("fig13/" + gps::to_string(ic) + "/" + app + "/" +
                     gps::to_string(paradigm))
                        .c_str(),
                    [app, ic, paradigm](benchmark::State& state) {
                        BM_fig13(state, app, ic, paradigm);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
