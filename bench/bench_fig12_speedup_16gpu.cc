/**
 * @file
 * Figure 12: 16-GPU speedup of every paradigm over one GPU, using the
 * projected PCIe 6.0 interconnect (128 GB/s).
 *
 * Paper headline: GPS averages 7.9x, capturing over 80% of the infinite
 * bandwidth opportunity, while conventional paradigms do not scale.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

std::map<std::string, std::map<std::string, double>> results;
BaselineCache baselines;

RunConfig
config16()
{
    RunConfig config = defaultConfig();
    config.system.numGpus = 16;
    config.system.interconnect = InterconnectKind::Pcie6;
    return config;
}

RunConfig
cellConfig(ParadigmKind paradigm)
{
    RunConfig config = config16();
    config.paradigm = paradigm;
    return config;
}

void
BM_fig12(benchmark::State& state, const std::string& workload,
         ParadigmKind paradigm)
{
    const RunConfig config = cellConfig(paradigm);
    const RunHandle base_h = baselines.get(workload, config);
    const RunResult& base = *base_h;
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        const double speedup = speedupOver(base, result);
        results[workload][to_string(paradigm)] = speedup;
        state.counters["speedup"] = speedup;
    }
}

void
printTable()
{
    Table table({"app", "UM", "UM+hints", "RDL", "Memcpy", "GPS",
                 "InfBW", "captured"});
    std::map<std::string, std::vector<double>> per_paradigm;
    for (const std::string& app : workloadNames()) {
        std::vector<std::string> row{app};
        for (const ParadigmKind paradigm : allParadigms()) {
            const double s = results[app][to_string(paradigm)];
            row.push_back(fmt(s));
            per_paradigm[to_string(paradigm)].push_back(s);
        }
        const double inf = results[app]["Infinite BW"];
        row.push_back(
            fmt(inf == 0.0 ? 0.0 : results[app]["GPS"] / inf * 100.0,
                0) +
            "%");
        table.row(std::move(row));
    }
    std::vector<std::string> geo{"geomean"};
    for (const ParadigmKind paradigm : allParadigms())
        geo.push_back(fmt(geomean(per_paradigm[to_string(paradigm)])));
    const double ginf = geomean(per_paradigm["Infinite BW"]);
    geo.push_back(
        fmt(ginf == 0.0 ? 0.0
                        : geomean(per_paradigm["GPS"]) / ginf * 100.0,
            0) +
        "%");
    table.row(std::move(geo));
    table.print("Figure 12: 16-GPU speedup on projected PCIe 6.0 "
                "(paper: GPS 7.9x avg, >80% of opportunity)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::string& app : gps::workloadNames()) {
        for (const gps::ParadigmKind paradigm : gps::allParadigms()) {
            plan().addWithBaseline(
                app, cellConfig(paradigm),
                "fig12/" + app + "/" + gps::to_string(paradigm));
            benchmark::RegisterBenchmark(
                ("fig12/" + app + "/" + gps::to_string(paradigm))
                    .c_str(),
                [app, paradigm](benchmark::State& state) {
                    BM_fig12(state, app, paradigm);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
