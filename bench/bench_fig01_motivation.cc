/**
 * @file
 * Figure 1: motivation — 4-GPU strong scaling of the applications under
 * a conventional multi-GPU port on PCIe 3.0, projected PCIe 6.0, and an
 * infinite-bandwidth interconnect. We use the bulk-synchronous memcpy
 * port, which Section 7.1 calls "the most common programming technique
 * today"; the paper's own Figure 1 used the apps' native ports.
 *
 * Paper headline: infinite bandwidth reaches ~3x, PCIe 6.0 ~2x, and on
 * PCIe 3.0 several applications run *slower* than one GPU (~0.7x avg).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

const std::vector<InterconnectKind> interconnects = {
    InterconnectKind::Pcie3, InterconnectKind::Pcie6};

std::map<std::string, std::map<std::string, double>> results;
BaselineCache baselines;

RunConfig
cellConfig(InterconnectKind interconnect, bool infinite)
{
    RunConfig config = defaultConfig();
    config.system.interconnect = interconnect;
    config.paradigm =
        infinite ? ParadigmKind::InfiniteBw : ParadigmKind::Memcpy;
    return config;
}

void
BM_fig1(benchmark::State& state, const std::string& workload,
        InterconnectKind interconnect, bool infinite)
{
    const RunConfig config = cellConfig(interconnect, infinite);
    const RunHandle base_h = baselines.get(workload, config);
    const RunResult& base = *base_h;
    for (auto _ : state) {
        const double best =
            speedupOver(base, *runCached(workload, config));
        const std::string column =
            infinite ? "Infinite" : to_string(interconnect);
        results[workload][column] = best;
        state.counters["speedup"] = best;
    }
}

void
printTable()
{
    Table table(
        {"app", "PCIe3.0", "PCIe6(proj)", "InfiniteBW"});
    std::map<std::string, std::vector<double>> cols;
    for (const std::string& app : workloadNames()) {
        std::vector<std::string> row{app};
        for (const std::string& col :
             {to_string(InterconnectKind::Pcie3),
              to_string(InterconnectKind::Pcie6), std::string("Infinite")}) {
            const double s = results[app][col];
            row.push_back(fmt(s));
            cols[col].push_back(s);
        }
        table.row(std::move(row));
    }
    table.row({"geomean",
               fmt(geomean(cols[to_string(InterconnectKind::Pcie3)])),
               fmt(geomean(cols[to_string(InterconnectKind::Pcie6)])),
               fmt(geomean(cols["Infinite"]))});
    table.print("Figure 1: conventional (memcpy) port, 4-GPU speedup "
                "(paper: ~0.7x / ~2x / ~3x)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::string& app : gps::workloadNames()) {
        for (const InterconnectKind ic : interconnects) {
            plan().addWithBaseline(
                app, cellConfig(ic, false),
                "fig1/" + app + "/" + gps::to_string(ic));
            benchmark::RegisterBenchmark(
                ("fig1/" + app + "/" + gps::to_string(ic)).c_str(),
                [app, ic](benchmark::State& state) {
                    BM_fig1(state, app, ic, false);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
        plan().addWithBaseline(app,
                               cellConfig(InterconnectKind::Pcie3, true),
                               "fig1/" + app + "/InfiniteBW");
        benchmark::RegisterBenchmark(
            ("fig1/" + app + "/InfiniteBW").c_str(),
            [app](benchmark::State& state) {
                BM_fig1(state, app, InterconnectKind::Pcie3, true);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
