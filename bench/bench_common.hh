/**
 * @file
 * Shared bench harness: runs (workload x paradigm) cells with a cached
 * single-GPU baseline and prints paper-style tables next to the paper's
 * reference values. Each bench binary regenerates one table or figure.
 *
 * Parallel sweeps: bench mains register their config grid in the shared
 * SweepPlan and call plan().run(jobs) before google-benchmark replays
 * the (now cached) cells serially. --jobs N / GPS_BENCH_JOBS=N fan the
 * grid across N worker threads; results are memoized by the full config
 * key, so the printed numbers are identical for every jobs value. Every
 * executed run is timed and the per-config replay throughput is written
 * to BENCH_perf.json at exit (see docs/perf.md).
 */

#ifndef GPS_BENCH_BENCH_COMMON_HH
#define GPS_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "api/runner.hh"
#include "api/sweep.hh"
#include "apps/workload.hh"
#include "apps/workload_cache.hh"
#include "common/env.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "obs/causal/whatif.hh"

namespace gps::bench
{

/** Default evaluated system: Table 1, 4 GPUs, PCIe 3.0. */
inline RunConfig
defaultConfig()
{
    RunConfig config;
    config.system.numGpus = 4;
    config.system.interconnect = InterconnectKind::Pcie3;
    config.scale = 1.0;
    return config;
}

/**
 * Canonical single-GPU reference for @p config: with one GPU every
 * paradigm degenerates to local execution (memcpy has no peers to
 * broadcast to), and references are always fault-free.
 */
inline RunConfig
baselineConfig(const RunConfig& config)
{
    RunConfig base = config;
    base.system.numGpus = 1;
    // A single GPU is a single node; keeping a multi-node split would
    // fail the divisibility check (and would be meaningless anyway).
    base.system.numNodes = 1;
    base.paradigm = ParadigmKind::Memcpy;
    base.faultPlan = FaultPlan{};
    // GPS structure knobs cannot affect a single-GPU memcpy run; reset
    // them so ablation sweeps share one reference per (workload, system).
    base.system.gps = GpsConfig{};
    return base;
}

/** One executed run's host-side cost, for BENCH_perf.json. */
struct PerfRow
{
    std::string label;
    double wallSeconds = 0.0;
    std::uint64_t accesses = 0;

    /** Simulated outcome of the run (BENCH_perf.json per-run totals). */
    double simMs = 0.0;
    std::uint64_t interconnectBytes = 0;

    /** Structured failure of the grid point, when it threw. */
    std::string errorType;
    std::string errorMessage;
};

/**
 * Shared handle to a memoized run. Hold it for as long as the result is
 * used: the cache is bounded and may evict the entry behind your back,
 * but the handle keeps the RunResult alive regardless.
 */
using RunHandle = std::shared_ptr<const RunResult>;

/**
 * Process-wide memo of finished runs, keyed by the full configKey().
 * get() runs on miss; prewarm() computes a batch of cells on a worker
 * pool so later get()s are hits.
 *
 * The cache is bounded (GPS_BENCH_CACHE_CAP entries, default 512,
 * 0 = caching disabled, every lookup recomputes) with LRU eviction, so
 * an arbitrarily large config grid cannot grow the resident set without
 * limit. Invalid GPS_BENCH_CACHE_CAP values warn and keep the default.
 * Entries are handed out as shared_ptr handles: eviction drops the
 * cache's reference, but a handle a bench still holds keeps its
 * RunResult alive — there is no way to dangle by interleaving get()
 * calls. Hit/miss/eviction counts land in BENCH_perf.json.
 *
 * prewarm() runs missing cells through the warm-started sweep runner
 * (runSweepWarm) unless GPS_BENCH_WARM_START=0, so grid points that
 * share a profile-boundary state fork from one warmup snapshot instead
 * of each re-simulating iteration 0.
 */
class RunCache
{
  public:
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    static RunCache&
    instance()
    {
        static RunCache cache;
        return cache;
    }

    RunHandle
    get(const std::string& workload, const RunConfig& config)
    {
        const std::string key = configKey(workload, config);
        {
            const std::lock_guard<std::mutex> lock(mu_);
            auto it = cache_.find(key);
            if (it != cache_.end()) {
                ++counters_.hits;
                touchLocked(it->second);
                return handleOf(it->second.outcome);
            }
            ++counters_.misses;
        }
        std::vector<SweepOutcome> out =
            runSweep({SweepJob{workload, config, workload}}, 1);
        return insert(key, std::move(out.front()));
    }

    /** Execute all not-yet-cached jobs on @p workers threads. */
    void
    prewarm(const std::vector<SweepJob>& jobs, std::size_t workers)
    {
        std::vector<SweepJob> missing;
        std::vector<std::string> keys;
        {
            const std::lock_guard<std::mutex> lock(mu_);
            for (const SweepJob& job : jobs) {
                const std::string key =
                    configKey(job.workload, job.config);
                auto it = cache_.find(key);
                if (it != cache_.end()) {
                    ++counters_.hits;
                    touchLocked(it->second);
                    continue;
                }
                bool queued = false;
                for (const std::string& k : keys)
                    queued = queued || k == key;
                if (queued)
                    continue;
                ++counters_.misses;
                missing.push_back(job);
                keys.push_back(key);
            }
        }
        const auto t0 = std::chrono::steady_clock::now();
        WarmSweepStats warm_stats;
        std::vector<SweepOutcome> outcomes =
            warmStartEnabled()
                ? runSweepWarm(missing, workers, &warm_stats)
                : runSweep(missing, workers);
        {
            const std::lock_guard<std::mutex> lock(mu_);
            sweepElapsed_ += std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
            warm_.groups += warm_stats.groups;
            warm_.leaders += warm_stats.leaders;
            warm_.followers += warm_stats.followers;
            warm_.coldFallbacks += warm_stats.coldFallbacks;
            warm_.leaderWallSeconds += warm_stats.leaderWallSeconds;
            warm_.followerWallSeconds += warm_stats.followerWallSeconds;
        }
        // Record every outcome (including failures, as error rows)
        // before surfacing the first failure — a failed grid point must
        // not hide its siblings' perf rows or abort the whole pool
        // silently.
        std::exception_ptr first_error;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (!outcomes[i].ok() && first_error == nullptr)
                first_error = outcomes[i].error;
            try {
                insert(keys[i], std::move(outcomes[i]));
            } catch (...) {
                // Already captured above; keep recording the rest.
            }
        }
        if (first_error != nullptr)
            std::rethrow_exception(first_error);
    }

    std::vector<PerfRow>
    perf() const
    {
        const std::lock_guard<std::mutex> lock(mu_);
        return perf_;
    }

    /** Wall-clock seconds spent inside prewarm() sweeps. */
    double
    sweepElapsed() const
    {
        const std::lock_guard<std::mutex> lock(mu_);
        return sweepElapsed_;
    }

    Counters
    counters() const
    {
        const std::lock_guard<std::mutex> lock(mu_);
        return counters_;
    }

    /** Accumulated warm-started sweep statistics. */
    WarmSweepStats
    warm() const
    {
        const std::lock_guard<std::mutex> lock(mu_);
        return warm_;
    }

    /** GPS_BENCH_WARM_START=0 disables warm-started forking. */
    static bool
    warmStartEnabled()
    {
        const char* env = std::getenv("GPS_BENCH_WARM_START");
        return env == nullptr || std::string(env) != "0";
    }

    std::size_t
    capacity() const
    {
        return capacity_;
    }

    std::size_t
    size() const
    {
        const std::lock_guard<std::mutex> lock(mu_);
        return cache_.size();
    }

    /** Rebound the cache, evicting LRU entries if needed (tests). */
    void
    setCapacity(std::size_t capacity)
    {
        const std::lock_guard<std::mutex> lock(mu_);
        capacity_ = capacity;
        while (cache_.size() > capacity_) {
            cache_.erase(lru_.back());
            lru_.pop_back();
            ++counters_.evictions;
        }
    }

    /** Drop every entry and zero the counters and perf rows (tests). */
    void
    clear()
    {
        const std::lock_guard<std::mutex> lock(mu_);
        cache_.clear();
        lru_.clear();
        counters_ = Counters{};
        perf_.clear();
        sweepElapsed_ = 0.0;
        warm_ = WarmSweepStats{};
    }

  private:
    struct Entry
    {
        std::shared_ptr<const SweepOutcome> outcome;
        std::list<std::string>::iterator lruIt;
    };

    RunCache()
    {
        // Validated parse: garbage or out-of-range values warn and keep
        // the default instead of silently becoming 0 (disabled) or a
        // wrapped-around huge capacity.
        capacity_ = envSizeT("GPS_BENCH_CACHE_CAP", capacity_,
                             std::size_t(1) << 20);
    }

    static RunHandle
    handleOf(const std::shared_ptr<const SweepOutcome>& outcome)
    {
        // Aliasing handle: shares the outcome's lifetime, points at
        // its embedded result.
        return RunHandle(outcome, &outcome->result);
    }

    /** Move @p entry to the most-recently-used position. */
    void
    touchLocked(Entry& entry)
    {
        lru_.splice(lru_.begin(), lru_, entry.lruIt);
    }

    void
    evictIfNeededLocked()
    {
        // capacity_ == 0 never stores entries, so this only trims the
        // bounded-LRU case.
        while (cache_.size() > capacity_ && capacity_ != 0) {
            cache_.erase(lru_.back());
            lru_.pop_back();
            ++counters_.evictions;
        }
    }

    RunHandle
    insert(const std::string& key, SweepOutcome&& outcome)
    {
        const std::lock_guard<std::mutex> lock(mu_);
        PerfRow row;
        row.label = outcome.label.empty() ? key : outcome.label;
        row.wallSeconds = outcome.wallSeconds;
        if (!outcome.ok()) {
            row.errorType = outcome.errorType;
            row.errorMessage = outcome.errorMessage;
            perf_.push_back(std::move(row));
            std::rethrow_exception(outcome.error);
        }
        row.accesses = outcome.result.totals.accesses;
        row.simMs = outcome.result.timeMs();
        row.interconnectBytes = outcome.result.interconnectBytes;
        perf_.push_back(std::move(row));

        if (capacity_ == 0) {
            // Capacity 0 = caching disabled: record the perf row and
            // hand out a handle, but store nothing — every future
            // lookup recomputes.
            return handleOf(std::make_shared<const SweepOutcome>(
                std::move(outcome)));
        }

        lru_.push_front(key);
        Entry entry{
            std::make_shared<const SweepOutcome>(std::move(outcome)),
            lru_.begin()};
        RunHandle handle = handleOf(entry.outcome);
        auto emplaced = cache_.emplace(key, std::move(entry));
        if (!emplaced.second) {
            // Raced with another inserter; keep the existing entry.
            lru_.pop_front();
            touchLocked(emplaced.first->second);
            return handleOf(emplaced.first->second.outcome);
        }
        evictIfNeededLocked();
        return handle;
    }

    std::size_t capacity_ = 512;
    mutable std::mutex mu_;
    std::list<std::string> lru_; ///< front = most recently used
    std::map<std::string, Entry> cache_;
    Counters counters_;
    std::vector<PerfRow> perf_;
    double sweepElapsed_ = 0.0;
    WarmSweepStats warm_;
};

/** Memoized runWorkload (see RunCache). */
inline RunHandle
runCached(const std::string& workload, const RunConfig& config)
{
    return RunCache::instance().get(workload, config);
}

/** Single-GPU reference runs, memoized like every other cell. */
class BaselineCache
{
  public:
    RunHandle
    get(const std::string& workload, const RunConfig& config)
    {
        return runCached(workload, baselineConfig(config));
    }
};

/** The bench binary's config grid, accumulated during registration. */
class SweepPlan
{
  public:
    void
    add(std::string workload, RunConfig config, std::string label)
    {
        jobs_.push_back(
            {std::move(workload), std::move(config), std::move(label)});
    }

    /** Add a cell plus its single-GPU reference. */
    void
    addWithBaseline(const std::string& workload, const RunConfig& config,
                    std::string label)
    {
        add(workload, baselineConfig(config), workload + "/base");
        add(workload, config, std::move(label));
    }

    /** Execute the accumulated grid on @p workers threads. */
    void
    run(std::size_t workers)
    {
        RunCache::instance().prewarm(jobs_, workers);
        jobs_.clear();
    }

  private:
    std::vector<SweepJob> jobs_;
};

inline SweepPlan&
plan()
{
    static SweepPlan p;
    return p;
}

/** Hard ceiling on sweep worker threads (see parseWorkerCount). */
inline constexpr std::size_t maxSweepJobs = 1024;

/**
 * Validated worker-count parse shared by --jobs, GPS_BENCH_JOBS and the
 * --snapshot CLI paths: "auto" = all cores; otherwise a strict decimal
 * in [1, maxSweepJobs]. Anything else — including "-1", which strtoul
 * used to wrap to 2^64-1 worker threads — warns and keeps @p fallback.
 */
inline std::size_t
parseWorkerCount(const std::string& text, std::size_t fallback)
{
    if (text == "auto")
        return defaultSweepJobs();
    const std::size_t n =
        parseSizeTOr(text, "jobs", fallback, maxSweepJobs);
    if (n == 0) {
        gps_warn("jobs value '", text, "' must be >= 1; keeping ",
                 fallback);
        return fallback;
    }
    return n;
}

/**
 * Parse and strip --jobs N / --jobs=N / --jobs auto from argv (before
 * benchmark::Initialize, which rejects unknown flags). Falls back to
 * the GPS_BENCH_JOBS environment variable; default 1.
 */
inline std::size_t
parseJobs(int& argc, char** argv)
{
    auto parse = [](const std::string& v) -> std::size_t {
        return parseWorkerCount(v, 1);
    };
    std::size_t jobs = 1;
    if (const char* env = std::getenv("GPS_BENCH_JOBS"))
        jobs = parse(env);
    for (int i = 1; i < argc;) {
        const std::string arg = argv[i];
        int eat = 0;
        if (arg == "--jobs" && i + 1 < argc) {
            jobs = parse(argv[i + 1]);
            eat = 2;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = parse(arg.substr(7));
            eat = 1;
        } else {
            ++i;
            continue;
        }
        for (int j = i; j + eat <= argc; ++j)
            argv[j] = j + eat < argc ? argv[j + eat] : nullptr;
        argc -= eat;
    }
    return jobs;
}

/** One what-if prediction validated against a real re-run. */
struct WhatIfRow
{
    std::string label;
    std::string spec;
    double baseMs = 0.0;
    double predictedMs = 0.0;
    double actualMs = 0.0;
    double predictedSpeedup = 1.0;
    double actualSpeedup = 1.0;
    double errorPct = 0.0;
};

/** Rows accumulated by recordWhatIf, emitted into BENCH_perf.json. */
inline std::vector<WhatIfRow>&
whatIfRows()
{
    static std::vector<WhatIfRow> rows;
    return rows;
}

/**
 * Close the causal-prediction loop for one bench cell: trace, predict
 * the effect of @p spec, re-run for real, and log the error into the
 * perf log's "whatif" section (perf_compare can ratchet it).
 */
inline void
recordWhatIf(const std::string& label, const std::string& workload,
             const RunConfig& config, const WhatIfSpec& spec)
{
    const WhatIfValidation v = validateWhatIf(workload, config, spec);
    WhatIfRow row;
    row.label = label;
    row.spec = to_string(spec);
    row.baseMs = ticksToMs(v.prediction.baseTime);
    row.predictedMs = ticksToMs(v.prediction.predictedTime);
    row.actualMs = ticksToMs(v.actualTime);
    row.predictedSpeedup = v.prediction.speedup;
    row.actualSpeedup = v.actualSpeedup;
    row.errorPct = v.errorPct;
    whatIfRows().push_back(std::move(row));
}

/**
 * Write BENCH_perf.json: per-config wall seconds and replay throughput
 * (million accesses per second), plus the aggregate over the parallel
 * sweep's elapsed time (this is where --jobs speedup shows up).
 */
inline void
writePerfLog(const std::string& path, std::size_t jobs)
{
    const RunCache& cache = RunCache::instance();
    const std::vector<PerfRow> rows = cache.perf();
    double total_wall = 0.0;
    std::uint64_t total_accesses = 0;
    JsonWriter w;
    w.beginObject();
    // Version stamp consumed by tools/perf_compare (schema check).
    w.field("schema", static_cast<std::uint64_t>(1));
    w.field("jobs", static_cast<std::uint64_t>(jobs));
    w.key("runs").beginArray();
    for (const PerfRow& row : rows) {
        total_wall += row.wallSeconds;
        total_accesses += row.accesses;
        w.beginObject();
        w.field("config", row.label);
        w.field("wall_s", row.wallSeconds);
        w.field("accesses", row.accesses);
        w.field("macc_per_s",
                row.wallSeconds > 0.0
                    ? static_cast<double>(row.accesses) /
                          row.wallSeconds / 1e6
                    : 0.0);
        w.field("sim_ms", row.simMs);
        w.field("interconnect_bytes", row.interconnectBytes);
        if (!row.errorType.empty() || !row.errorMessage.empty()) {
            w.key("error").beginObject();
            w.field("type", row.errorType);
            w.field("message", row.errorMessage);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.field("total_wall_s", total_wall);
    w.field("sweep_elapsed_s", cache.sweepElapsed());
    w.field("total_accesses", total_accesses);
    w.field("macc_per_s",
            cache.sweepElapsed() > 0.0
                ? static_cast<double>(total_accesses) /
                      cache.sweepElapsed() / 1e6
                : 0.0);
    const RunCache::Counters counters = cache.counters();
    w.key("cache").beginObject();
    w.field("capacity", static_cast<std::uint64_t>(cache.capacity()));
    w.field("entries", static_cast<std::uint64_t>(cache.size()));
    w.field("hits", counters.hits);
    w.field("misses", counters.misses);
    w.field("evictions", counters.evictions);
    w.endObject();
    // Warm-started sweep outcome: how many grid points forked from a
    // shared profile snapshot, and the mean leader-vs-follower wall
    // ratio (the warm-start speedup perf_compare ratchets).
    const WarmSweepStats warm = cache.warm();
    w.key("warm").beginObject();
    w.field("enabled",
            static_cast<std::uint64_t>(
                RunCache::warmStartEnabled() ? 1 : 0));
    w.field("groups", static_cast<std::uint64_t>(warm.groups));
    w.field("leaders", static_cast<std::uint64_t>(warm.leaders));
    w.field("followers", static_cast<std::uint64_t>(warm.followers));
    w.field("cold_fallbacks",
            static_cast<std::uint64_t>(warm.coldFallbacks));
    w.field("leader_wall_s", warm.leaderWallSeconds);
    w.field("follower_wall_s", warm.followerWallSeconds);
    w.field("fork_speedup", warm.forkSpeedup());
    w.endObject();
    // Generated-input memoization (graphs + publish sets): the misses'
    // build_s is generation wall time the hits did not have to pay.
    const apps::WorkloadCache& wcache = apps::WorkloadCache::instance();
    const apps::WorkloadCache::Counters wc = wcache.counters();
    w.key("workload_cache").beginObject();
    w.field("capacity", static_cast<std::uint64_t>(wcache.capacity()));
    w.field("entries", static_cast<std::uint64_t>(wcache.size()));
    w.field("hits", wc.hits);
    w.field("misses", wc.misses);
    w.field("evictions", wc.evictions);
    w.field("build_s", wc.buildSeconds);
    w.endObject();
    // Causal what-if predictions vs measured re-runs (error ratchet).
    if (!whatIfRows().empty()) {
        w.key("whatif").beginArray();
        for (const WhatIfRow& row : whatIfRows()) {
            w.beginObject();
            w.field("config", row.label);
            w.field("spec", row.spec);
            w.field("base_ms", row.baseMs);
            w.field("predicted_ms", row.predictedMs);
            w.field("actual_ms", row.actualMs);
            w.field("predicted_speedup", row.predictedSpeedup);
            w.field("actual_speedup", row.actualSpeedup);
            w.field("error_pct", row.errorPct);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        std::fputs(w.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "warn: cannot write %s\n", path.c_str());
    }
}

/** Fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns)
        : columns_(std::move(columns))
    {}

    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print(const std::string& title) const
    {
        std::printf("\n=== %s ===\n", title.c_str());
        printRow(columns_);
        for (const auto& row : rows_)
            printRow(row);
        std::fflush(stdout);
    }

  private:
    void
    printRow(const std::vector<std::string>& cells) const
    {
        for (std::size_t i = 0; i < cells.size(); ++i)
            std::printf("%-*s", i == 0 ? 12 : 14, cells[i].c_str());
        std::printf("\n");
    }

    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimals. */
inline std::string
fmt(double value, int digits = 2)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

} // namespace gps::bench

#endif // GPS_BENCH_BENCH_COMMON_HH
