/**
 * @file
 * Shared bench harness: runs (workload x paradigm) cells with a cached
 * single-GPU baseline and prints paper-style tables next to the paper's
 * reference values. Each bench binary regenerates one table or figure.
 *
 * Parallel sweeps: bench mains register their config grid in the shared
 * SweepPlan and call plan().run(jobs) before google-benchmark replays
 * the (now cached) cells serially. --jobs N / GPS_BENCH_JOBS=N fan the
 * grid across N worker threads; results are memoized by the full config
 * key, so the printed numbers are identical for every jobs value. Every
 * executed run is timed and the per-config replay throughput is written
 * to BENCH_perf.json at exit (see docs/perf.md).
 */

#ifndef GPS_BENCH_BENCH_COMMON_HH
#define GPS_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "api/runner.hh"
#include "api/sweep.hh"
#include "apps/workload.hh"
#include "common/json.hh"

namespace gps::bench
{

/** Default evaluated system: Table 1, 4 GPUs, PCIe 3.0. */
inline RunConfig
defaultConfig()
{
    RunConfig config;
    config.system.numGpus = 4;
    config.system.interconnect = InterconnectKind::Pcie3;
    config.scale = 1.0;
    return config;
}

/**
 * Canonical single-GPU reference for @p config: with one GPU every
 * paradigm degenerates to local execution (memcpy has no peers to
 * broadcast to), and references are always fault-free.
 */
inline RunConfig
baselineConfig(const RunConfig& config)
{
    RunConfig base = config;
    base.system.numGpus = 1;
    base.paradigm = ParadigmKind::Memcpy;
    base.faultPlan = FaultPlan{};
    // GPS structure knobs cannot affect a single-GPU memcpy run; reset
    // them so ablation sweeps share one reference per (workload, system).
    base.system.gps = GpsConfig{};
    return base;
}

/** One executed run's host-side cost, for BENCH_perf.json. */
struct PerfRow
{
    std::string label;
    double wallSeconds = 0.0;
    std::uint64_t accesses = 0;

    /** Simulated outcome of the run (BENCH_perf.json per-run totals). */
    double simMs = 0.0;
    std::uint64_t interconnectBytes = 0;
};

/**
 * Process-wide memo of finished runs, keyed by the full configKey().
 * get() runs on miss; prewarm() computes a batch of cells on a worker
 * pool so later get()s are hits. References are stable (std::map).
 */
class RunCache
{
  public:
    static RunCache&
    instance()
    {
        static RunCache cache;
        return cache;
    }

    const RunResult&
    get(const std::string& workload, const RunConfig& config)
    {
        const std::string key = configKey(workload, config);
        {
            const std::lock_guard<std::mutex> lock(mu_);
            auto it = cache_.find(key);
            if (it != cache_.end())
                return it->second.result;
        }
        std::vector<SweepOutcome> out =
            runSweep({SweepJob{workload, config, workload}}, 1);
        return insert(key, std::move(out.front()));
    }

    /** Execute all not-yet-cached jobs on @p workers threads. */
    void
    prewarm(const std::vector<SweepJob>& jobs, std::size_t workers)
    {
        std::vector<SweepJob> missing;
        std::vector<std::string> keys;
        {
            const std::lock_guard<std::mutex> lock(mu_);
            for (const SweepJob& job : jobs) {
                const std::string key =
                    configKey(job.workload, job.config);
                if (cache_.find(key) != cache_.end())
                    continue;
                bool queued = false;
                for (const std::string& k : keys)
                    queued = queued || k == key;
                if (queued)
                    continue;
                missing.push_back(job);
                keys.push_back(key);
            }
        }
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<SweepOutcome> outcomes = runSweep(missing, workers);
        sweepElapsed_ += std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        for (std::size_t i = 0; i < outcomes.size(); ++i)
            insert(keys[i], std::move(outcomes[i]));
    }

    std::vector<PerfRow>
    perf() const
    {
        const std::lock_guard<std::mutex> lock(mu_);
        return perf_;
    }

    /** Wall-clock seconds spent inside prewarm() sweeps. */
    double
    sweepElapsed() const
    {
        const std::lock_guard<std::mutex> lock(mu_);
        return sweepElapsed_;
    }

  private:
    const RunResult&
    insert(const std::string& key, SweepOutcome&& outcome)
    {
        if (!outcome.ok())
            std::rethrow_exception(outcome.error);
        const std::lock_guard<std::mutex> lock(mu_);
        perf_.push_back({outcome.label.empty() ? key : outcome.label,
                         outcome.wallSeconds,
                         outcome.result.totals.accesses,
                         outcome.result.timeMs(),
                         outcome.result.interconnectBytes});
        return cache_.emplace(key, std::move(outcome))
            .first->second.result;
    }

    mutable std::mutex mu_;
    std::map<std::string, SweepOutcome> cache_;
    std::vector<PerfRow> perf_;
    double sweepElapsed_ = 0.0;
};

/** Memoized runWorkload (see RunCache). */
inline const RunResult&
runCached(const std::string& workload, const RunConfig& config)
{
    return RunCache::instance().get(workload, config);
}

/** Single-GPU reference runs, memoized like every other cell. */
class BaselineCache
{
  public:
    const RunResult&
    get(const std::string& workload, const RunConfig& config)
    {
        return runCached(workload, baselineConfig(config));
    }
};

/** The bench binary's config grid, accumulated during registration. */
class SweepPlan
{
  public:
    void
    add(std::string workload, RunConfig config, std::string label)
    {
        jobs_.push_back(
            {std::move(workload), std::move(config), std::move(label)});
    }

    /** Add a cell plus its single-GPU reference. */
    void
    addWithBaseline(const std::string& workload, const RunConfig& config,
                    std::string label)
    {
        add(workload, baselineConfig(config), workload + "/base");
        add(workload, config, std::move(label));
    }

    /** Execute the accumulated grid on @p workers threads. */
    void
    run(std::size_t workers)
    {
        RunCache::instance().prewarm(jobs_, workers);
        jobs_.clear();
    }

  private:
    std::vector<SweepJob> jobs_;
};

inline SweepPlan&
plan()
{
    static SweepPlan p;
    return p;
}

/**
 * Parse and strip --jobs N / --jobs=N / --jobs auto from argv (before
 * benchmark::Initialize, which rejects unknown flags). Falls back to
 * the GPS_BENCH_JOBS environment variable; default 1.
 */
inline std::size_t
parseJobs(int& argc, char** argv)
{
    auto parse = [](const std::string& v) -> std::size_t {
        if (v == "auto")
            return defaultSweepJobs();
        const unsigned long n = std::strtoul(v.c_str(), nullptr, 10);
        return n < 1 ? 1 : static_cast<std::size_t>(n);
    };
    std::size_t jobs = 1;
    if (const char* env = std::getenv("GPS_BENCH_JOBS"))
        jobs = parse(env);
    for (int i = 1; i < argc;) {
        const std::string arg = argv[i];
        int eat = 0;
        if (arg == "--jobs" && i + 1 < argc) {
            jobs = parse(argv[i + 1]);
            eat = 2;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = parse(arg.substr(7));
            eat = 1;
        } else {
            ++i;
            continue;
        }
        for (int j = i; j + eat <= argc; ++j)
            argv[j] = j + eat < argc ? argv[j + eat] : nullptr;
        argc -= eat;
    }
    return jobs;
}

/**
 * Write BENCH_perf.json: per-config wall seconds and replay throughput
 * (million accesses per second), plus the aggregate over the parallel
 * sweep's elapsed time (this is where --jobs speedup shows up).
 */
inline void
writePerfLog(const std::string& path, std::size_t jobs)
{
    const RunCache& cache = RunCache::instance();
    const std::vector<PerfRow> rows = cache.perf();
    double total_wall = 0.0;
    std::uint64_t total_accesses = 0;
    JsonWriter w;
    w.beginObject();
    // Version stamp consumed by tools/perf_compare (schema check).
    w.field("schema", static_cast<std::uint64_t>(1));
    w.field("jobs", static_cast<std::uint64_t>(jobs));
    w.key("runs").beginArray();
    for (const PerfRow& row : rows) {
        total_wall += row.wallSeconds;
        total_accesses += row.accesses;
        w.beginObject();
        w.field("config", row.label);
        w.field("wall_s", row.wallSeconds);
        w.field("accesses", row.accesses);
        w.field("macc_per_s",
                row.wallSeconds > 0.0
                    ? static_cast<double>(row.accesses) /
                          row.wallSeconds / 1e6
                    : 0.0);
        w.field("sim_ms", row.simMs);
        w.field("interconnect_bytes", row.interconnectBytes);
        w.endObject();
    }
    w.endArray();
    w.field("total_wall_s", total_wall);
    w.field("sweep_elapsed_s", cache.sweepElapsed());
    w.field("total_accesses", total_accesses);
    w.field("macc_per_s",
            cache.sweepElapsed() > 0.0
                ? static_cast<double>(total_accesses) /
                      cache.sweepElapsed() / 1e6
                : 0.0);
    w.endObject();
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        std::fputs(w.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "warn: cannot write %s\n", path.c_str());
    }
}

/** Fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns)
        : columns_(std::move(columns))
    {}

    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print(const std::string& title) const
    {
        std::printf("\n=== %s ===\n", title.c_str());
        printRow(columns_);
        for (const auto& row : rows_)
            printRow(row);
        std::fflush(stdout);
    }

  private:
    void
    printRow(const std::vector<std::string>& cells) const
    {
        for (std::size_t i = 0; i < cells.size(); ++i)
            std::printf("%-*s", i == 0 ? 12 : 14, cells[i].c_str());
        std::printf("\n");
    }

    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimals. */
inline std::string
fmt(double value, int digits = 2)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

} // namespace gps::bench

#endif // GPS_BENCH_BENCH_COMMON_HH
