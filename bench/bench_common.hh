/**
 * @file
 * Shared bench harness: runs (workload x paradigm) cells with a cached
 * single-GPU baseline and prints paper-style tables next to the paper's
 * reference values. Each bench binary regenerates one table or figure.
 */

#ifndef GPS_BENCH_BENCH_COMMON_HH
#define GPS_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "api/runner.hh"
#include "apps/workload.hh"

namespace gps::bench
{

/** Default evaluated system: Table 1, 4 GPUs, PCIe 3.0. */
inline RunConfig
defaultConfig()
{
    RunConfig config;
    config.system.numGpus = 4;
    config.system.interconnect = InterconnectKind::Pcie3;
    config.scale = 1.0;
    return config;
}

/** Single-GPU reference runs, cached per (workload, scale). */
class BaselineCache
{
  public:
    const RunResult&
    get(const std::string& workload, const RunConfig& config)
    {
        const std::string key =
            workload + "@" + std::to_string(config.scale) + "@" +
            std::to_string(config.system.pageBytes);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            RunConfig base = config;
            base.system.numGpus = 1;
            // With one GPU every paradigm degenerates to local
            // execution; memcpy has no peers to broadcast to.
            base.paradigm = ParadigmKind::Memcpy;
            it = cache_.emplace(key, runWorkload(workload, base)).first;
        }
        return it->second;
    }

  private:
    std::map<std::string, RunResult> cache_;
};

/** Fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns)
        : columns_(std::move(columns))
    {}

    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print(const std::string& title) const
    {
        std::printf("\n=== %s ===\n", title.c_str());
        printRow(columns_);
        for (const auto& row : rows_)
            printRow(row);
        std::fflush(stdout);
    }

  private:
    void
    printRow(const std::vector<std::string>& cells) const
    {
        for (std::size_t i = 0; i < cells.size(); ++i)
            std::printf("%-*s", i == 0 ? 12 : 14, cells[i].c_str());
        std::printf("\n");
    }

    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimals. */
inline std::string
fmt(double value, int digits = 2)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

} // namespace gps::bench

#endif // GPS_BENCH_BENCH_COMMON_HH
