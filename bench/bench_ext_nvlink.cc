/**
 * @file
 * Extension bench (beyond the paper's PCIe-only evaluation): GPS and
 * the baselines on NVLink-class interconnects. Section 7.4 argues that
 * "as GPUs move to higher performance interconnects, GPS will approach
 * the limits of performance scalability"; this bench extends Figure 13
 * past PCIe to NVLink 2 (150 GB/s) and NVLink 3 (300 GB/s).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

const std::vector<InterconnectKind> sweep = {
    InterconnectKind::Pcie3, InterconnectKind::NvLink2,
    InterconnectKind::NvLink3};

std::map<std::string, std::map<std::string, std::vector<double>>>
    samples;
BaselineCache baselines;

RunConfig
cellConfig(InterconnectKind interconnect, ParadigmKind paradigm)
{
    RunConfig config = defaultConfig();
    config.system.interconnect = interconnect;
    config.paradigm = paradigm;
    return config;
}

void
BM_nvlink(benchmark::State& state, const std::string& workload,
          InterconnectKind interconnect, ParadigmKind paradigm)
{
    const RunConfig config = cellConfig(interconnect, paradigm);
    const RunHandle base_h = baselines.get(workload, config);
    const RunResult& base = *base_h;
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        const double speedup = speedupOver(base, result);
        samples[to_string(interconnect)][to_string(paradigm)].push_back(
            speedup);
        state.counters["speedup"] = speedup;
    }
}

void
printTable()
{
    Table table({"interconnect", "Memcpy", "RDL", "GPS", "InfBW"});
    for (const InterconnectKind ic : sweep) {
        std::vector<std::string> row{to_string(ic)};
        for (const ParadigmKind paradigm :
             {ParadigmKind::Memcpy, ParadigmKind::Rdl, ParadigmKind::Gps,
              ParadigmKind::InfiniteBw}) {
            row.push_back(fmt(geomean(
                samples[to_string(ic)][to_string(paradigm)])));
        }
        table.row(std::move(row));
    }
    table.print("Extension: geomean 4-GPU speedup on NVLink-class "
                "links (GPS should saturate the bound)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const InterconnectKind ic : sweep) {
        for (const std::string& app : gps::workloadNames()) {
            for (const gps::ParadigmKind paradigm :
                 {gps::ParadigmKind::Memcpy, gps::ParadigmKind::Rdl,
                  gps::ParadigmKind::Gps,
                  gps::ParadigmKind::InfiniteBw}) {
                plan().addWithBaseline(
                    app, cellConfig(ic, paradigm),
                    "ext_nvlink/" + gps::to_string(ic) + "/" + app +
                        "/" + gps::to_string(paradigm));
                benchmark::RegisterBenchmark(
                    ("ext_nvlink/" + gps::to_string(ic) + "/" + app +
                     "/" + gps::to_string(paradigm))
                        .c_str(),
                    [app, ic, paradigm](benchmark::State& state) {
                        BM_nvlink(state, app, ic, paradigm);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
