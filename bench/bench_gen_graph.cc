/**
 * @file
 * Generator micro-benchmark: host-side replay throughput of the graph
 * workloads (Pagerank, SSSP) next to the stencil reference (Jacobi).
 *
 * Graph apps used to run ~100x slower than Jacobi because trace
 * generation (per-vertex sort + std::pow Zipf + copy/sort/unique
 * distinct targets) dominated their wall time. This bench regenerates
 * the numbers that exposed that gap and gates the fix: each app runs
 * under two paradigms plus its single-GPU baseline: the first paradigm
 * cell runs cold (paying the one-time graph build), the second hits
 * the workload cache — the steady state every later sweep grid point
 * sees. The perf log lands in BENCH_gen_graph.json for
 * tools/perf_compare; on top of that, the bench hard-fails if either
 * graph app's steady-state throughput drops below 1/3 of Jacobi's —
 * the ratio is machine-relative, so it is stable where absolute
 * throughput is not.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

const std::vector<std::string> appNames = {"Jacobi", "Pagerank", "SSSP"};
const std::vector<ParadigmKind> paradigms = {ParadigmKind::Gps,
                                             ParadigmKind::Memcpy};

RunConfig
cellConfig(ParadigmKind paradigm)
{
    RunConfig config = defaultConfig();
    config.paradigm = paradigm;
    return config;
}

std::string
cellLabel(const std::string& app, ParadigmKind paradigm)
{
    return "gen/" + app + "/" + to_string(paradigm);
}

/** Macc/s of a perf row by label (0 when absent or unmeasurable). */
double
maccOf(const std::vector<PerfRow>& rows, const std::string& label)
{
    for (const PerfRow& row : rows) {
        if (row.label == label && row.wallSeconds > 0.0)
            return static_cast<double>(row.accesses) /
                   row.wallSeconds / 1e6;
    }
    return 0.0;
}

/** Print the table; returns false if a graph app misses the ratio bar. */
bool
printTable()
{
    const std::vector<PerfRow> rows = RunCache::instance().perf();
    // The first paradigm cell runs cold (it pays the one-time graph
    // build); the second hits the workload cache, so it measures the
    // steady-state replay throughput every later grid point sees.
    const double jacobi =
        maccOf(rows, cellLabel("Jacobi", paradigms[1]));

    Table table({"app", "cold_macc", "warm_macc", "vs_jacobi"});
    bool ok = true;
    for (const std::string& app : appNames) {
        const double cold = maccOf(rows, cellLabel(app, paradigms[0]));
        const double warm = maccOf(rows, cellLabel(app, paradigms[1]));
        const double ratio = jacobi > 0.0 ? warm / jacobi : 0.0;
        table.row({app, fmt(cold, 2), fmt(warm, 2), fmt(ratio, 3)});
        // Acceptance bar: graph apps within 3x of Jacobi once the
        // one-time generation is amortized.
        if (app != "Jacobi" && ratio < 1.0 / 3.0)
            ok = false;
    }
    table.print("Generator micro-bench: replay throughput (4 GPU)");

    const gps::apps::WorkloadCache::Counters wc =
        gps::apps::WorkloadCache::instance().counters();
    std::printf("workload cache: %llu hits, %llu misses, %.3fs "
                "generating\n",
                static_cast<unsigned long long>(wc.hits),
                static_cast<unsigned long long>(wc.misses),
                wc.buildSeconds);
    return ok;
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    benchmark::Initialize(&argc, argv);
    for (const std::string& app : appNames) {
        for (const ParadigmKind paradigm : paradigms)
            plan().addWithBaseline(app, cellConfig(paradigm),
                                   cellLabel(app, paradigm));
    }
    plan().run(jobs);
    benchmark::Shutdown();
    const bool ok = printTable();
    writePerfLog("BENCH_gen_graph.json", jobs);
    if (!ok) {
        std::fprintf(stderr,
                     "FAIL: steady-state graph-app replay throughput "
                     "below 1/3 of Jacobi's — trace generation or the "
                     "workload cache has regressed\n");
        return 1;
    }
    return 0;
}
