/**
 * @file
 * Figure 9: distribution of subscriber counts over shared pages (pages
 * with more than one subscriber) at the start of the GPS execution
 * phase, i.e. after the profiling iteration unsubscribed untouched GPUs.
 *
 * Paper headline: ALS/CT are dominated by 4-subscriber (all-to-all)
 * pages; Jacobi's halo exchange leaves almost exclusively 2-subscriber
 * pages; the graph workloads mix.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

struct Row
{
    double pct2 = 0.0, pct3 = 0.0, pct4 = 0.0;
    std::uint64_t sharedPages = 0;
};

std::map<std::string, Row> results;

RunConfig
cellConfig()
{
    RunConfig config = defaultConfig();
    config.paradigm = ParadigmKind::Gps;
    return config;
}

void
BM_fig9(benchmark::State& state, const std::string& workload)
{
    const RunConfig config = cellConfig();
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        Row row;
        if (result.hasSubscriberHist) {
            row.sharedPages = result.subscriberHist.total();
            row.pct2 = result.subscriberHist.fraction(2) * 100.0;
            row.pct3 = result.subscriberHist.fraction(3) * 100.0;
            row.pct4 = result.subscriberHist.fraction(4) * 100.0;
        }
        results[workload] = row;
        state.counters["pct_2sub"] = row.pct2;
        state.counters["pct_3sub"] = row.pct3;
        state.counters["pct_4sub"] = row.pct4;
    }
}

void
printTable()
{
    Table table({"app", "2_subs(%)", "3_subs(%)", "4_subs(%)",
                 "shared_pages"});
    for (const std::string& app : workloadNames()) {
        const Row& row = results[app];
        table.row({app, fmt(row.pct2, 1), fmt(row.pct3, 1),
                   fmt(row.pct4, 1),
                   std::to_string(row.sharedPages)});
    }
    table.print("Figure 9: subscriber distribution of shared pages "
                "(paper: Jacobi ~100% 2-sub, ALS/CT ~100% 4-sub)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::string& app : gps::workloadNames()) {
        plan().add(app, cellConfig(), "fig9/" + app);
        benchmark::RegisterBenchmark(
            ("fig9/" + app).c_str(),
            [app](benchmark::State& state) { BM_fig9(state, app); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
