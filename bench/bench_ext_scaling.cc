/**
 * @file
 * Extension bench: full strong-scaling curves (2, 4, 8, 16 GPUs) on
 * projected PCIe 6.0 for GPS, the memcpy baseline and the infinite
 * bandwidth bound. The paper reports the 4-GPU (Fig. 8) and 16-GPU
 * (Fig. 12) endpoints; this traces the curve between them.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

const std::vector<std::size_t> gpuCounts = {2, 4, 8, 16};
const std::vector<ParadigmKind> plotted = {
    ParadigmKind::Memcpy, ParadigmKind::Gps, ParadigmKind::InfiniteBw};

// gpus -> paradigm -> speedups
std::map<std::size_t, std::map<std::string, std::vector<double>>>
    samples;
BaselineCache baselines;

RunConfig
cellConfig(std::size_t gpus, ParadigmKind paradigm)
{
    RunConfig config = defaultConfig();
    config.system.numGpus = gpus;
    config.system.interconnect = InterconnectKind::Pcie6;
    config.paradigm = paradigm;
    return config;
}

void
BM_scaling(benchmark::State& state, const std::string& workload,
           std::size_t gpus, ParadigmKind paradigm)
{
    const RunConfig config = cellConfig(gpus, paradigm);
    const RunHandle base_h = baselines.get(workload, config);
    const RunResult& base = *base_h;
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        const double speedup = speedupOver(base, result);
        samples[gpus][to_string(paradigm)].push_back(speedup);
        state.counters["speedup"] = speedup;
    }
}

void
printTable()
{
    Table table({"gpus", "Memcpy", "GPS", "InfBW", "GPS_captured"});
    for (const std::size_t gpus : gpuCounts) {
        const double gps = geomean(samples[gpus]["GPS"]);
        const double inf = geomean(samples[gpus]["Infinite BW"]);
        table.row({std::to_string(gpus),
                   fmt(geomean(samples[gpus]["Memcpy"])), fmt(gps),
                   fmt(inf),
                   fmt(inf == 0.0 ? 0.0 : gps / inf * 100.0, 0) + "%"});
    }
    table.print("Extension: geomean strong-scaling curve, PCIe 6.0 "
                "(paper endpoints: Fig. 8 at 4, Fig. 12 at 16)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::size_t gpus : gpuCounts) {
        for (const std::string& app : gps::workloadNames()) {
            for (const gps::ParadigmKind paradigm : plotted) {
                plan().addWithBaseline(
                    app, cellConfig(gpus, paradigm),
                    "ext_scaling/g" + std::to_string(gpus) + "/" + app +
                        "/" + gps::to_string(paradigm));
                benchmark::RegisterBenchmark(
                    ("ext_scaling/g" + std::to_string(gpus) + "/" +
                     app + "/" + gps::to_string(paradigm))
                        .c_str(),
                    [app, gpus, paradigm](benchmark::State& state) {
                        BM_scaling(state, app, gpus, paradigm);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
