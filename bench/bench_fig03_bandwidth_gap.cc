/**
 * @file
 * Figure 3: local vs. remote memory bandwidth across five GPU platform
 * generations. Paper headline: remote bandwidth improved 38x from PCIe
 * 3.0 to NVLink3+NVSwitch, yet a ~3x local/remote gap persists.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "interconnect/platforms.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

void
BM_fig3(benchmark::State& state, const PlatformSpec& platform)
{
    for (auto _ : state) {
        state.counters["local_GBps"] = platform.localGBps;
        state.counters["remote_GBps"] = platform.remoteGBps;
        state.counters["gap"] = platform.gap();
        benchmark::DoNotOptimize(platform.gap());
    }
}

void
printTable()
{
    Table table({"platform", "local_GB/s", "remote_GB/s", "gap"});
    const auto& platforms = figure3Platforms();
    for (const PlatformSpec& p : platforms)
        table.row({p.name, fmt(p.localGBps, 0), fmt(p.remoteGBps, 0),
                   fmt(p.gap(), 1)});
    const double improvement =
        platforms.back().remoteGBps / platforms.front().remoteGBps;
    table.row({"remote improvement first->last", "", "",
               fmt(improvement, 1)});
    table.print("Figure 3: local vs remote bandwidth (paper: 38x remote "
                "improvement, ~3x persistent gap)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const PlatformSpec& platform : figure3Platforms()) {
        benchmark::RegisterBenchmark(
            ("fig3/" + platform.name).c_str(),
            [&platform](benchmark::State& state) {
                BM_fig3(state, platform);
            })
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
