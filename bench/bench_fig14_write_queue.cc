/**
 * @file
 * Figure 14: GPS remote write queue hit rate as a function of queue
 * capacity, for the store-dominated applications (CT, EQWP, Diffusion,
 * HIT).
 *
 * Paper headlines: hit rates ramp with capacity and saturate by 512
 * entries; Jacobi stays at 0% (spatial locality fully captured by the
 * SM-level coalescer) and Pagerank/ALS/SSSP stay at 0% (atomics are not
 * coalesced).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

const std::vector<std::uint32_t> queueSizes = {16,  32,  64,  128,
                                               256, 512, 1024};
const std::vector<std::string> rampApps = {"CT", "EQWP", "Diffusion",
                                           "HIT"};
const std::vector<std::string> zeroApps = {"Jacobi", "Pagerank", "SSSP",
                                           "ALS"};

std::map<std::string, std::map<std::uint32_t, double>> results;

RunConfig
cellConfig(std::uint32_t queue_entries)
{
    RunConfig config = defaultConfig();
    config.paradigm = ParadigmKind::Gps;
    config.system.gps.wqEntries = queue_entries;
    return config;
}

void
BM_fig14(benchmark::State& state, const std::string& workload,
         std::uint32_t queue_entries)
{
    const RunConfig config = cellConfig(queue_entries);
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        results[workload][queue_entries] = result.wqHitRate * 100.0;
        state.counters["wq_hit_pct"] = result.wqHitRate * 100.0;
    }
}

void
printTable()
{
    std::vector<std::string> columns{"app"};
    for (const std::uint32_t size : queueSizes)
        columns.push_back("q" + std::to_string(size));
    Table table(columns);
    for (const std::string& app : rampApps) {
        std::vector<std::string> row{app};
        for (const std::uint32_t size : queueSizes)
            row.push_back(fmt(results[app][size], 1));
        table.row(std::move(row));
    }
    for (const std::string& app : zeroApps) {
        std::vector<std::string> row{app};
        for (const std::uint32_t size : queueSizes)
            row.push_back(fmt(results[app][size], 1));
        table.row(std::move(row));
    }
    table.print("Figure 14: WQ hit rate (%) vs queue size (paper: "
                "ramps saturating by 512; Jacobi/PR/ALS/SSSP at 0%)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::string& app : rampApps) {
        for (const std::uint32_t size : queueSizes) {
            plan().add(app, cellConfig(size),
                       "fig14/" + app + "/q" + std::to_string(size));
            benchmark::RegisterBenchmark(
                ("fig14/" + app + "/q" + std::to_string(size)).c_str(),
                [app, size](benchmark::State& state) {
                    BM_fig14(state, app, size);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    // 0%-hit applications: measured once at the default 512 entries.
    for (const std::string& app : zeroApps) {
        plan().add(app, cellConfig(512), "fig14/" + app + "/q512");
        benchmark::RegisterBenchmark(
            ("fig14/" + app + "/q512").c_str(),
            [app](benchmark::State& state) {
                for (const std::uint32_t size : queueSizes)
                    results[app][size] = -1.0;
                BM_fig14(state, app, 512);
                for (const std::uint32_t size : queueSizes) {
                    if (results[app][size] < 0.0)
                        results[app][size] = results[app][512];
                }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    // Causal what-if check on one small fig14 cell: predict faster RWQ
    // drains on a store-dominated app, then measure the real thing.
    {
        RunConfig small = cellConfig(512);
        small.scale = 0.0625;
        WhatIfSpec spec;
        spec.rwqDrain = 2.0;
        recordWhatIf("fig14/CT/small", "CT", small, spec);
    }
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
