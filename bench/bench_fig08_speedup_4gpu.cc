/**
 * @file
 * Figure 8: 4-GPU speedup over one GPU for every paradigm (UM, UM+hints,
 * RDL, Memcpy, GPS, Infinite BW) on PCIe 3.0.
 *
 * Paper headline: GPS averages ~3.0x (of ~3.2x available), 2.3x over the
 * next best paradigm; EQWP exceeds 4x from the aggregate-L2 effect.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

// Approximate bar heights read off the paper's Figure 8.
const std::map<std::string, std::map<std::string, double>> paperFig8 = {
    {"Jacobi", {{"UM", 0.6}, {"UM+hints", 1.4}, {"RDL", 2.4},
                {"Memcpy", 1.2}, {"GPS", 3.2}, {"Infinite BW", 3.3}}},
    {"Pagerank", {{"UM", 0.3}, {"UM+hints", 0.9}, {"RDL", 1.4},
                  {"Memcpy", 0.9}, {"GPS", 3.0}, {"Infinite BW", 3.2}}},
    {"SSSP", {{"UM", 0.3}, {"UM+hints", 0.8}, {"RDL", 1.2},
              {"Memcpy", 0.8}, {"GPS", 2.9}, {"Infinite BW", 3.1}}},
    {"ALS", {{"UM", 0.4}, {"UM+hints", 0.9}, {"RDL", 1.1},
             {"Memcpy", 1.0}, {"GPS", 2.2}, {"Infinite BW", 3.0}}},
    {"CT", {{"UM", 0.5}, {"UM+hints", 1.1}, {"RDL", 1.3},
            {"Memcpy", 2.8}, {"GPS", 3.0}, {"Infinite BW", 3.3}}},
    {"EQWP", {{"UM", 0.7}, {"UM+hints", 1.5}, {"RDL", 1.8},
              {"Memcpy", 1.4}, {"GPS", 4.2}, {"Infinite BW", 4.4}}},
    {"Diffusion", {{"UM", 0.6}, {"UM+hints", 1.0}, {"RDL", 1.9},
                   {"Memcpy", 1.3}, {"GPS", 3.1}, {"Infinite BW", 3.3}}},
    {"HIT", {{"UM", 0.5}, {"UM+hints", 1.2}, {"RDL", 1.6},
             {"Memcpy", 1.1}, {"GPS", 3.0}, {"Infinite BW", 3.2}}},
};

struct Cell
{
    double speedup = 0.0;
};

std::map<std::string, std::map<std::string, Cell>> results;
BaselineCache baselines;

RunConfig
cellConfig(ParadigmKind paradigm)
{
    RunConfig config = defaultConfig();
    config.paradigm = paradigm;
    return config;
}

void
BM_fig8(benchmark::State& state, const std::string& workload,
        ParadigmKind paradigm)
{
    const RunConfig config = cellConfig(paradigm);
    const RunHandle base_h = baselines.get(workload, config);
    const RunResult& base = *base_h;
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        const double speedup = speedupOver(base, result);
        results[workload][to_string(paradigm)] = {speedup};
        state.counters["speedup"] = speedup;
        state.counters["traffic_MB"] =
            static_cast<double>(result.interconnectBytes) / 1e6;
    }
}

void
printTable()
{
    Table table({"app", "UM", "UM+hints", "RDL", "Memcpy", "GPS",
                 "InfBW", "paper_GPS"});
    std::map<std::string, std::vector<double>> per_paradigm;
    for (const std::string& app : workloadNames()) {
        std::vector<std::string> row{app};
        for (const ParadigmKind paradigm : allParadigms()) {
            const double s =
                results[app][to_string(paradigm)].speedup;
            row.push_back(fmt(s));
            per_paradigm[to_string(paradigm)].push_back(s);
        }
        row.push_back(fmt(paperFig8.at(app).at("GPS"), 1));
        table.row(std::move(row));
    }
    std::vector<std::string> geo{"geomean"};
    for (const ParadigmKind paradigm : allParadigms())
        geo.push_back(fmt(geomean(per_paradigm[to_string(paradigm)])));
    geo.push_back("3.0");
    table.row(std::move(geo));
    table.print("Figure 8: 4-GPU speedup over 1 GPU (PCIe 3.0)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::string& app : gps::workloadNames()) {
        for (const gps::ParadigmKind paradigm : gps::allParadigms()) {
            plan().addWithBaseline(
                app, cellConfig(paradigm),
                "fig8/" + app + "/" + gps::to_string(paradigm));
            benchmark::RegisterBenchmark(
                ("fig8/" + app + "/" + gps::to_string(paradigm)).c_str(),
                [app, paradigm](benchmark::State& state) {
                    BM_fig8(state, app, paradigm);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
