/**
 * @file
 * Table 2: the application suite with its predominant communication
 * patterns, cross-checked against measured subscriber distributions
 * (peer-to-peer apps should be dominated by 2-subscriber pages,
 * all-to-all apps by full-subscription pages).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

std::map<std::string, std::string> measured;

RunConfig
cellConfig()
{
    RunConfig config = defaultConfig();
    config.paradigm = ParadigmKind::Gps;
    return config;
}

void
BM_tab2(benchmark::State& state, const std::string& workload)
{
    const RunConfig config = cellConfig();
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        double best = 0.0;
        std::size_t best_bucket = 0;
        for (std::size_t b = 2; b <= config.system.numGpus; ++b) {
            if (result.subscriberHist.fraction(b) > best) {
                best = result.subscriberHist.fraction(b);
                best_bucket = b;
            }
        }
        measured[workload] =
            best_bucket == config.system.numGpus
                ? "All-to-all"
                : (best_bucket == 2 ? "Peer-to-peer" : "Many-to-many");
        state.counters["dominant_subs"] =
            static_cast<double>(best_bucket);
    }
}

void
printTable()
{
    Table table({"app", "paper_pattern", "measured_pattern",
                 "description"});
    for (const std::string& app : workloadNames()) {
        auto workload = makeWorkload(app);
        table.row({app, workload->commPattern(), measured[app],
                   workload->description().substr(0, 48)});
    }
    table.print("Table 2: applications under study");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::string& app : gps::workloadNames()) {
        plan().add(app, cellConfig(), "tab2/" + app);
        benchmark::RegisterBenchmark(
            ("tab2/" + app).c_str(),
            [app](benchmark::State& state) { BM_tab2(state, app); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
