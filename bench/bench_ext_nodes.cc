/**
 * @file
 * Extension bench: multi-node scaling (2 -> 256 GPUs, 8 GPUs per
 * NVLink 3.0 node, InfiniBand NDR uplinks). Compares the memcpy
 * baseline against GPS with flat per-subscriber forwarding and GPS
 * with hierarchical (per-node proxy) subscription. With the uplink an
 * order of magnitude thinner than the intra-node tier, flat forwarding
 * pays the uplink once per remote subscriber while hierarchical
 * subscription pays it once per remote node — the gap the table
 * traces. Past one node the hierarchical run must never be slower
 * than the flat run (hard assert; the simulator is deterministic).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

const std::vector<std::size_t> gpuCounts = {2, 4, 8, 16, 32, 64, 128,
                                            256};
constexpr std::size_t gpusPerNode = 8;

/** Traffic-heavy subset: one stencil, one dense pub-sub workload. */
const std::vector<std::string> appNames = {"Jacobi", "ALS"};

enum class Mode
{
    Memcpy,
    FlatGps,
    HierGps,
};

const std::vector<Mode> modes = {Mode::Memcpy, Mode::FlatGps,
                                 Mode::HierGps};

std::string
to_string(Mode mode)
{
    switch (mode) {
      case Mode::Memcpy:
        return "Memcpy";
      case Mode::FlatGps:
        return "FlatGPS";
      case Mode::HierGps:
        return "HierGPS";
    }
    return "?";
}

std::size_t
nodesFor(std::size_t gpus)
{
    return gpus > gpusPerNode ? gpus / gpusPerNode : 1;
}

RunConfig
cellConfig(std::size_t gpus, Mode mode)
{
    RunConfig config = defaultConfig();
    config.system.numGpus = gpus;
    config.system.interconnect = InterconnectKind::NvLink3;
    config.system.numNodes = nodesFor(gpus);
    config.system.interNode = InterconnectKind::IbNdr;
    config.paradigm =
        mode == Mode::Memcpy ? ParadigmKind::Memcpy : ParadigmKind::Gps;
    config.system.gps.hierarchicalSubscription = mode == Mode::HierGps;
    // Large fan-outs at a fixed per-GPU problem size: shrink the base
    // problem so the 256-GPU column stays tractable on CI hardware.
    config.scale = 0.25;
    return config;
}

// gpus -> mode -> per-app speedups (vs the 1-GPU memcpy reference)
std::map<std::size_t, std::map<std::string, std::vector<double>>>
    samples;
// gpus -> mode -> per-app simulated milliseconds
std::map<std::size_t, std::map<std::string, std::vector<double>>> simMs;
BaselineCache baselines;

void
BM_nodes(benchmark::State& state, const std::string& workload,
         std::size_t gpus, Mode mode)
{
    const RunConfig config = cellConfig(gpus, mode);
    const RunHandle base_h = baselines.get(workload, config);
    const RunResult& base = *base_h;
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        const double speedup = speedupOver(base, result);
        samples[gpus][to_string(mode)].push_back(speedup);
        simMs[gpus][to_string(mode)].push_back(result.timeMs());
        state.counters["speedup"] = speedup;
    }
}

void
printTable()
{
    Table table({"gpus", "nodes", "Memcpy", "FlatGPS", "HierGPS",
                 "Hier/Flat"});
    for (const std::size_t gpus : gpuCounts) {
        const double flat = geomean(samples[gpus]["FlatGPS"]);
        const double hier = geomean(samples[gpus]["HierGPS"]);
        table.row({std::to_string(gpus),
                   std::to_string(nodesFor(gpus)),
                   fmt(geomean(samples[gpus]["Memcpy"])), fmt(flat),
                   fmt(hier), fmt(flat == 0.0 ? 0.0 : hier / flat)});
    }
    table.print("Extension: multi-node scaling, NVLink 3.0 nodes of " +
                std::to_string(gpusPerNode) + " + InfiniBand NDR "
                "uplinks (speedup vs 1-GPU memcpy)");
}

/**
 * Past one node the uplink is the bottleneck and hierarchical
 * subscription crosses it once per remote node instead of once per
 * remote subscriber, so per cell it must be at least as fast as flat
 * forwarding. The simulator is deterministic — equality is the only
 * legitimate edge (no cross-node subscriber sets in the phase).
 */
void
assertHierWins()
{
    for (const std::size_t gpus : gpuCounts) {
        if (nodesFor(gpus) <= 1)
            continue;
        const auto& flat = simMs[gpus]["FlatGPS"];
        const auto& hier = simMs[gpus]["HierGPS"];
        gps_assert(flat.size() == hier.size(),
                   "mismatched cell counts at ", gpus, " GPUs");
        for (std::size_t i = 0; i < flat.size(); ++i)
            gps_assert(hier[i] <= flat[i],
                       "hierarchical subscription slower than flat at ",
                       gpus, " GPUs: ", hier[i], " ms vs ", flat[i],
                       " ms");
    }
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::size_t gpus : gpuCounts) {
        for (const std::string& app : appNames) {
            for (const Mode mode : modes) {
                const std::string label = "ext_nodes/g" +
                                          std::to_string(gpus) + "/" +
                                          app + "/" + to_string(mode);
                plan().addWithBaseline(app, cellConfig(gpus, mode),
                                       label);
                benchmark::RegisterBenchmark(
                    label.c_str(),
                    [app, gpus, mode](benchmark::State& state) {
                        BM_nodes(state, app, gpus, mode);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    assertHierWins();
    writePerfLog("BENCH_ext_nodes.json", jobs);
    return 0;
}
