/**
 * @file
 * Table 1: simulation settings. Dumps the default system configuration
 * (V100-class GPU parameters plus the GPS structure sizes) and checks
 * the derived quantities the paper quotes: the 126-bit minimum GPS-PTE
 * for a 4-GPU system, the ~68 KB write-queue SRAM and the 64 KB access
 * tracking bitmap for 32 GB of GPS address space.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "api/system.hh"
#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "core/access_tracker.hh"
#include "core/gps_page_table.hh"
#include "core/remote_write_queue.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

void
BM_tab1(benchmark::State& state)
{
    const SystemConfig config;
    MultiGpuSystem system(config);
    for (auto _ : state) {
        state.counters["gps_pte_bits_4gpu"] = static_cast<double>(
            GpsPageTable::pteBits(4, 33, 31));
        RemoteWriteQueue queue("wq", config.gps,
                               config.gpu.cacheLineBytes,
                               system.geometry());
        state.counters["wq_sram_KB"] =
            static_cast<double>(queue.sramBytes()) / 1024.0;
        state.counters["tracking_bitmap_KB"] = static_cast<double>(
            AccessTracker::bitmapBytes(32 * GiB, 64 * KiB)) / 1024.0;
        benchmark::DoNotOptimize(queue.sramBytes());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    (void)jobs; // no simulation grid to fan out
    benchmark::RegisterBenchmark("tab1/config", BM_tab1)->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const SystemConfig config;
    MultiGpuSystem system(config);
    std::printf("\n=== Table 1: simulation settings ===\n%s",
                system.configDump().render().c_str());
    std::printf("derived (paper cross-checks):\n");
    std::printf("  GPS-PTE bits (4 GPUs, 33b VPN, 31b PPN)  %llu "
                "(paper: 126)\n",
                static_cast<unsigned long long>(
                    gps::GpsPageTable::pteBits(4, 33, 31)));
    gps::RemoteWriteQueue queue("wq", config.gps,
                                config.gpu.cacheLineBytes,
                                system.geometry());
    std::printf("  write queue SRAM                         %.1f KB "
                "(paper: ~68 KB)\n",
                static_cast<double>(queue.sramBytes()) / 1024.0);
    std::printf("  tracking bitmap for 32 GB GPS VA         %.0f KB "
                "(paper: 64 KB)\n",
                static_cast<double>(gps::AccessTracker::bitmapBytes(
                    32 * gps::GiB, 64 * gps::KiB)) / 1024.0);
    return 0;
}
