/**
 * @file
 * Section 7.4 sensitivity: GPS-TLB size. The paper's finding is that the
 * GPS-TLB reaches ~100% hit rate at just 32 entries because it services
 * only coalesced remote writes to the GPS heap, never reads.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

const std::vector<std::uint32_t> tlbSizes = {4, 8, 16, 32, 64, 128};

std::map<std::string, std::map<std::uint32_t, double>> results;

RunConfig
cellConfig(std::uint32_t entries)
{
    RunConfig config = defaultConfig();
    config.paradigm = ParadigmKind::Gps;
    config.system.gps.gpsTlbEntries = entries;
    config.system.gps.gpsTlbWays = std::min<std::uint32_t>(entries, 8);
    return config;
}

void
BM_sens(benchmark::State& state, const std::string& workload,
        std::uint32_t entries)
{
    const RunConfig config = cellConfig(entries);
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        results[workload][entries] = result.gpsTlbHitRate * 100.0;
        state.counters["gps_tlb_hit_pct"] =
            result.gpsTlbHitRate * 100.0;
    }
}

void
printTable()
{
    std::vector<std::string> columns{"app"};
    for (const std::uint32_t size : tlbSizes)
        columns.push_back("e" + std::to_string(size));
    Table table(columns);
    for (const std::string& app : workloadNames()) {
        std::vector<std::string> row{app};
        for (const std::uint32_t size : tlbSizes)
            row.push_back(fmt(results[app][size], 1));
        table.row(std::move(row));
    }
    table.print("GPS-TLB hit rate (%) vs entries "
                "(paper: ~100% at 32 entries)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::string& app : gps::workloadNames()) {
        for (const std::uint32_t size : tlbSizes) {
            plan().add(app, cellConfig(size),
                       "sens_gps_tlb/" + app + "/e" +
                           std::to_string(size));
            benchmark::RegisterBenchmark(
                ("sens_gps_tlb/" + app + "/e" + std::to_string(size))
                    .c_str(),
                [app, size](benchmark::State& state) {
                    BM_sens(state, app, size);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
