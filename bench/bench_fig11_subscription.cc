/**
 * @file
 * Figure 11: performance sensitivity to subscription tracking — GPS with
 * automatic unsubscription vs. GPS left at the all-to-all subscription.
 *
 * Paper headline: unsubscription is the primary factor behind GPS's
 * scalability except for ALS and CT, whose pages are genuinely
 * subscribed by every GPU (all-to-all transfer patterns).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

std::map<std::string, std::map<bool, double>> results;
BaselineCache baselines;

RunConfig
cellConfig(bool with_subscription)
{
    RunConfig config = defaultConfig();
    config.paradigm = ParadigmKind::Gps;
    config.system.gps.autoUnsubscribe = with_subscription;
    return config;
}

void
BM_fig11(benchmark::State& state, const std::string& workload,
         bool with_subscription)
{
    const RunConfig config = cellConfig(with_subscription);
    const RunHandle base_h = baselines.get(workload, config);
    const RunResult& base = *base_h;
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        const double speedup = speedupOver(base, result);
        results[workload][with_subscription] = speedup;
        state.counters["speedup"] = speedup;
        state.counters["traffic_MB"] =
            static_cast<double>(result.interconnectBytes) / 1e6;
    }
}

void
printTable()
{
    Table table({"app", "no_subscription", "with_subscription",
                 "benefit"});
    std::vector<double> with, without;
    for (const std::string& app : workloadNames()) {
        const double off = results[app][false];
        const double on = results[app][true];
        without.push_back(off);
        with.push_back(on);
        table.row({app, fmt(off), fmt(on),
                   fmt(off == 0.0 ? 0.0 : on / off)});
    }
    table.row({"geomean", fmt(geomean(without)), fmt(geomean(with)),
               fmt(geomean(without) == 0.0
                       ? 0.0
                       : geomean(with) / geomean(without))});
    table.print("Figure 11: GPS with vs without subscription tracking "
                "(paper: large benefit except ALS/CT)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::string& app : gps::workloadNames()) {
        for (const bool with_subscription : {false, true}) {
            plan().addWithBaseline(
                app, cellConfig(with_subscription),
                "fig11/" + app +
                    (with_subscription ? "/subscribed" : "/all_to_all"));
            benchmark::RegisterBenchmark(
                ("fig11/" + app +
                 (with_subscription ? "/subscribed" : "/all_to_all"))
                    .c_str(),
                [app, with_subscription](benchmark::State& state) {
                    BM_fig11(state, app, with_subscription);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    // Causal what-if check on one small fig11 cell: predict doubled
    // link bandwidth, then measure it (error ratchets in perf_compare).
    {
        RunConfig small = cellConfig(true);
        small.scale = 0.0625;
        WhatIfSpec spec;
        spec.linkBw = 2.0;
        recordWhatIf("fig11/Jacobi/small", "Jacobi", small, spec);
    }
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
