/**
 * @file
 * Section 7.4 sensitivity: virtual memory page size. The paper finds
 * 64 KB is the sweet spot: 4 KB pages thrash every TLB (42% slower) and
 * 2 MB pages multiply false sharing and redundant remote transfers
 * (15% slower).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/units.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

const std::vector<std::uint64_t> pageSizes = {4 * KiB, 64 * KiB,
                                              2 * MiB};

std::map<std::uint64_t, std::vector<double>> speedups;
BaselineCache baselines;

RunConfig
cellConfig(std::uint64_t page_bytes)
{
    RunConfig config = defaultConfig();
    config.paradigm = ParadigmKind::Gps;
    config.system.pageBytes = page_bytes;
    return config;
}

void
BM_sens(benchmark::State& state, const std::string& workload,
        std::uint64_t page_bytes)
{
    const RunConfig config = cellConfig(page_bytes);
    const RunHandle base_h = baselines.get(workload, config);
    const RunResult& base = *base_h;
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        const double speedup = speedupOver(base, result);
        speedups[page_bytes].push_back(speedup);
        state.counters["speedup"] = speedup;
        state.counters["traffic_MB"] =
            static_cast<double>(result.interconnectBytes) / 1e6;
        state.counters["tlb_hit_pct"] = result.tlbHitRate * 100.0;
    }
}

void
printTable()
{
    Table table({"page_size", "geomean_speedup", "vs_64KB"});
    const double ref = geomean(speedups[64 * KiB]);
    for (const std::uint64_t size : pageSizes) {
        const double s = geomean(speedups[size]);
        table.row({std::to_string(size / KiB) + " KB", fmt(s),
                   fmt(ref == 0.0 ? 0.0 : (s / ref - 1.0) * 100.0, 1) +
                       "%"});
    }
    table.print("GPS page-size sensitivity (paper: 4 KB -42%, "
                "2 MB -15% vs 64 KB)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::uint64_t size : pageSizes) {
        for (const std::string& app : gps::workloadNames()) {
            plan().addWithBaseline(
                app, cellConfig(size),
                "sens_page_size/" + app + "/" +
                    std::to_string(size / gps::KiB) + "KB");
            benchmark::RegisterBenchmark(
                ("sens_page_size/" + app + "/" +
                 std::to_string(size / gps::KiB) + "KB")
                    .c_str(),
                [app, size](benchmark::State& state) {
                    BM_sens(state, app, size);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
