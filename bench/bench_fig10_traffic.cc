/**
 * @file
 * Figure 10: total data moved over the interconnect, normalized to the
 * memcpy paradigm (which ships each shared update set exactly once to
 * every GPU).
 *
 * Paper headlines: UM thrashes above memcpy except for Jacobi and CT
 * (where memcpy's broadcast to non-consumers dominates); UM+hints
 * beats UM everywhere except Diffusion (coarse prefetch over-fetch);
 * RDL beats memcpy except ALS (no temporal locality, refetches); GPS is
 * lowest for most applications but its uncoalescable atomics make ALS
 * the worst case (4.4x).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

const std::vector<ParadigmKind> plotted = {
    ParadigmKind::Um, ParadigmKind::UmHints, ParadigmKind::Rdl,
    ParadigmKind::Gps};

std::map<std::string, std::map<std::string, double>> ratio;
std::map<std::string, double> memcpyBytes;

RunConfig
cellConfig(ParadigmKind paradigm)
{
    RunConfig config = defaultConfig();
    config.paradigm = paradigm;
    return config;
}

double
memcpyBaseline(const std::string& workload)
{
    auto it = memcpyBytes.find(workload);
    if (it == memcpyBytes.end()) {
        const RunHandle result_h =
            runCached(workload, cellConfig(ParadigmKind::Memcpy));
        const RunResult& result = *result_h;
        it = memcpyBytes
                 .emplace(workload,
                          static_cast<double>(result.interconnectBytes))
                 .first;
    }
    return it->second;
}

void
BM_fig10(benchmark::State& state, const std::string& workload,
         ParadigmKind paradigm)
{
    const RunConfig config = cellConfig(paradigm);
    const double base = memcpyBaseline(workload);
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        const double r =
            base == 0.0
                ? 0.0
                : static_cast<double>(result.interconnectBytes) / base;
        ratio[workload][to_string(paradigm)] = r;
        state.counters["traffic_vs_memcpy"] = r;
        state.counters["traffic_MB"] =
            static_cast<double>(result.interconnectBytes) / 1e6;
    }
}

void
printTable()
{
    Table table({"app", "UM", "UM+hints", "RDL", "GPS", "memcpy_MB"});
    for (const std::string& app : workloadNames()) {
        table.row({app, fmt(ratio[app]["UM"]),
                   fmt(ratio[app]["UM+hints"]), fmt(ratio[app]["RDL"]),
                   fmt(ratio[app]["GPS"]),
                   fmt(memcpyBytes[app] / 1e6, 0)});
    }
    table.print("Figure 10: interconnect data moved / memcpy "
                "(paper: GPS lowest except ALS at 4.4)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::string& app : gps::workloadNames()) {
        plan().add(app, cellConfig(ParadigmKind::Memcpy),
                   "fig10/" + app + "/Memcpy");
        for (const ParadigmKind paradigm : plotted) {
            plan().add(app, cellConfig(paradigm),
                       "fig10/" + app + "/" + gps::to_string(paradigm));
            benchmark::RegisterBenchmark(
                ("fig10/" + app + "/" + gps::to_string(paradigm)).c_str(),
                [app, paradigm](benchmark::State& state) {
                    BM_fig10(state, app, paradigm);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
