/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out:
 *   - SM-level store coalescer in front of the remote write queue
 *   - virtually vs. physically addressed write queue (Section 5.3:
 *     physical addressing needs one entry per subscriber copy)
 * Reports geomean GPS speedup and interconnect traffic for each
 * configuration against the default.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

struct Variant
{
    std::string name;
    bool smCoalescer;
    bool virtualWq;
    std::uint32_t wqEntries;
};

const std::vector<Variant> variants = {
    {"default", true, true, 512},
    {"no_sm_coalescer", false, true, 512},
    {"physical_wq", true, false, 512},
    {"tiny_wq_2", true, true, 2},
};

std::map<std::string, std::vector<double>> speedups;
std::map<std::string, double> trafficMb;
BaselineCache baselines;

RunConfig
cellConfig(const Variant& variant)
{
    RunConfig config = defaultConfig();
    config.paradigm = ParadigmKind::Gps;
    config.system.gps.smCoalescerEnabled = variant.smCoalescer;
    config.system.gps.virtuallyAddressedWq = variant.virtualWq;
    config.system.gps.wqEntries = variant.wqEntries;
    return config;
}

void
BM_abl(benchmark::State& state, const std::string& workload,
       const Variant& variant)
{
    const RunConfig config = cellConfig(variant);
    const RunHandle base_h = baselines.get(workload, config);
    const RunResult& base = *base_h;
    for (auto _ : state) {
        const RunHandle result_h = runCached(workload, config);
        const RunResult& result = *result_h;
        const double speedup = speedupOver(base, result);
        speedups[variant.name].push_back(speedup);
        trafficMb[variant.name] +=
            static_cast<double>(result.interconnectBytes) / 1e6;
        state.counters["speedup"] = speedup;
        state.counters["wq_hit_pct"] = result.wqHitRate * 100.0;
    }
}

void
printTable()
{
    Table table({"variant", "geomean_speedup", "traffic_MB_total"});
    for (const Variant& variant : variants) {
        table.row({variant.name, fmt(geomean(speedups[variant.name])),
                   fmt(trafficMb[variant.name], 0)});
    }
    table.print("Ablation: SM coalescer & WQ addressing "
                "(virtual WQ and SM coalescing should win)");
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const Variant& variant : variants) {
        for (const std::string& app : gps::workloadNames()) {
            plan().addWithBaseline(app, cellConfig(variant),
                                   "abl/" + variant.name + "/" + app);
            benchmark::RegisterBenchmark(
                ("abl/" + variant.name + "/" + app).c_str(),
                [app, &variant](benchmark::State& state) {
                    BM_abl(state, app, variant);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
