/**
 * @file
 * Extension bench (beyond the paper's evaluation): graceful degradation
 * under injected faults. Each paradigm runs the same fault plans — a
 * dead link, a degraded link, saturated remote write queues and retired
 * frames — and reports its slowdown versus its own fault-free run. GPS
 * keeps working through every plan (rerouted broadcasts, remote-access
 * fallback for lost replicas, stalled-but-correct write queues); the
 * table quantifies what each fault costs each paradigm.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "common/logging.hh"

namespace
{

using namespace gps;
using namespace gps::bench;

struct PlanCell
{
    const char* name; ///< table row label
    const char* spec; ///< one CLI fault spec; empty = fault-free
};

const std::vector<PlanCell> plans = {
    {"fault-free", ""},
    {"link down 0-1", "link:down@0:0-1"},
    {"link 0-1 @25%", "link:degrade@0:0-1:0.25"},
    {"wq saturated", "wq:saturate@0:*"},
    {"retire 8 frames", "page:retire@0:gpu1:8"},
};

const std::vector<ParadigmKind> paradigms = {
    ParadigmKind::Um, ParadigmKind::Rdl, ParadigmKind::Memcpy,
    ParadigmKind::Gps};

const std::vector<std::string> appNames = {"Jacobi", "HIT"};

/** time_ms[app][plan][paradigm] */
std::map<std::string, std::map<std::string, std::map<std::string, double>>>
    samples;

RunConfig
planConfig(ParadigmKind paradigm, const char* spec)
{
    RunConfig config = defaultConfig();
    config.paradigm = paradigm;
    if (spec[0] != '\0') {
        config.faultPlan.addSpec(spec);
        config.faultPlan.seed = 7;
        config.faultPlan.sort();
    }
    return config;
}

void
BM_fault(benchmark::State& state, const std::string& app,
         const PlanCell& plan, ParadigmKind paradigm)
{
    const RunConfig config = planConfig(paradigm, plan.spec);
    for (auto _ : state) {
        const RunHandle result_h = runCached(app, config);
        const RunResult& result = *result_h;
        samples[app][plan.name][to_string(paradigm)] = result.timeMs();
        state.counters["time_ms"] = result.timeMs();
        if (result.hasFaultReport) {
            state.counters["reroutes"] =
                static_cast<double>(result.faultReport.reroutes);
            state.counters["stall_ms"] =
                ticksToMs(result.faultReport.stallTicks);
        }
    }
}

void
printTable()
{
    // The shared Table columns are too narrow for "123.45ms (12.34x)"
    // cells, so this bench formats its own rows.
    for (const std::string& app : appNames) {
        if (samples.find(app) == samples.end())
            continue; // app filtered out on the command line
        std::printf("\n=== Extension: %s under injected faults — "
                    "absolute time and slowdown vs each paradigm's "
                    "fault-free run ===\n",
                    app.c_str());
        std::printf("%-17s%-19s%-19s%-19s%-19s\n", "fault plan", "UM",
                    "RDL", "Memcpy", "GPS");
        for (const PlanCell& plan : plans) {
            std::printf("%-17s", plan.name);
            for (const ParadigmKind paradigm : paradigms) {
                const double t =
                    samples[app][plan.name][to_string(paradigm)];
                const double clean =
                    samples[app]["fault-free"][to_string(paradigm)];
                char cell[64];
                std::snprintf(cell, sizeof(cell), "%.2fms (%.2fx)", t,
                              clean > 0 ? t / clean : 0.0);
                std::printf("%-19s", cell);
            }
            std::printf("\n");
        }
        std::fflush(stdout);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    gps::setVerbose(false);
    const std::size_t jobs = parseJobs(argc, argv);
    for (const std::string& app : appNames) {
        for (const PlanCell& plan : plans) {
            for (const ParadigmKind paradigm : paradigms) {
                gps::bench::plan().add(
                    app, planConfig(paradigm, plan.spec),
                    "ext_faults/" + app + "/" + plan.name + "/" +
                        to_string(paradigm));
                benchmark::RegisterBenchmark(
                    ("ext_faults/" + app + "/" + plan.name + "/" +
                     to_string(paradigm))
                        .c_str(),
                    [&app, &plan, paradigm](benchmark::State& state) {
                        BM_fault(state, app, plan, paradigm);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::Initialize(&argc, argv);
    gps::bench::plan().run(jobs);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    writePerfLog("BENCH_perf.json", jobs);
    return 0;
}
