/**
 * @file
 * Unit and property tests for the set-associative TLB model (used both
 * as the conventional last-level TLB and the GPS-TLB).
 */

#include <gtest/gtest.h>

#include "mem/tlb.hh"

namespace gps
{
namespace
{

TEST(Tlb, ColdLookupMisses)
{
    Tlb tlb("tlb", 32, 8);
    EXPECT_FALSE(tlb.lookup(1));
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.hits(), 0u);
}

TEST(Tlb, FillThenHit)
{
    Tlb tlb("tlb", 32, 8);
    tlb.fill(1);
    EXPECT_TRUE(tlb.lookup(1));
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, LruEvictionWithinSet)
{
    // Fully associative 4-entry TLB: 5th distinct fill evicts the LRU.
    Tlb tlb("tlb", 4, 4);
    for (PageNum vpn = 0; vpn < 4; ++vpn) {
        tlb.fill(vpn * 4); // same set under vpn % sets_ when sets == 1
    }
    // Touch vpn 0 so vpn 4 becomes LRU... refresh entry 0's recency.
    EXPECT_TRUE(tlb.lookup(0));
    tlb.fill(100); // evicts the least recently used (vpn 4)
    EXPECT_TRUE(tlb.lookup(0));   // refreshed entry survived
    EXPECT_FALSE(tlb.lookup(4));  // LRU victim gone
}

TEST(Tlb, DoubleFillDoesNotDuplicate)
{
    Tlb tlb("tlb", 4, 4);
    tlb.fill(1);
    tlb.fill(1);
    tlb.fill(2);
    tlb.fill(3);
    tlb.fill(4);
    // If fill(1) had consumed two ways, a fifth fill would have evicted
    // vpn 1; it must still be resident.
    EXPECT_TRUE(tlb.contains(1));
}

TEST(Tlb, ContainsHasNoStatSideEffects)
{
    Tlb tlb("tlb", 32, 8);
    tlb.fill(9);
    EXPECT_TRUE(tlb.contains(9));
    EXPECT_FALSE(tlb.contains(10));
    EXPECT_EQ(tlb.hits(), 0u);
    EXPECT_EQ(tlb.misses(), 0u);
}

TEST(Tlb, InvalidateRemovesSingleEntry)
{
    Tlb tlb("tlb", 32, 8);
    tlb.fill(1);
    tlb.fill(2);
    tlb.invalidate(1);
    EXPECT_FALSE(tlb.contains(1));
    EXPECT_TRUE(tlb.contains(2));
}

TEST(Tlb, InvalidateAllFlushes)
{
    Tlb tlb("tlb", 32, 8);
    for (PageNum vpn = 0; vpn < 20; ++vpn)
        tlb.fill(vpn);
    tlb.invalidateAll();
    for (PageNum vpn = 0; vpn < 20; ++vpn)
        EXPECT_FALSE(tlb.contains(vpn));
}

TEST(Tlb, HitRateMath)
{
    Tlb tlb("tlb", 32, 8);
    tlb.fill(1);
    tlb.lookup(1); // hit
    tlb.lookup(2); // miss
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
}

TEST(Tlb, ResetStatsKeepsContents)
{
    Tlb tlb("tlb", 32, 8);
    tlb.fill(1);
    tlb.lookup(1);
    tlb.resetStats();
    EXPECT_EQ(tlb.hits(), 0u);
    EXPECT_TRUE(tlb.contains(1));
}

TEST(TlbDeath, EntriesMustBeMultipleOfWays)
{
    EXPECT_DEATH(Tlb("bad", 30, 8), "multiple");
}

/** Property: a working set no larger than the TLB always fits. */
class TlbCapacity
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{};

TEST_P(TlbCapacity, SequentialWorkingSetWithinCapacityAllHits)
{
    const auto [entries, ways] = GetParam();
    Tlb tlb("tlb", entries, ways);
    // Sequential VPNs spread uniformly over sets, so a working set of
    // exactly `entries` pages is conflict-free.
    for (PageNum vpn = 0; vpn < entries; ++vpn)
        tlb.fill(vpn);
    tlb.resetStats();
    for (PageNum vpn = 0; vpn < entries; ++vpn)
        EXPECT_TRUE(tlb.lookup(vpn)) << "vpn " << vpn;
    EXPECT_EQ(tlb.misses(), 0u);
}

TEST_P(TlbCapacity, OverCapacityWorkingSetMisses)
{
    const auto [entries, ways] = GetParam();
    Tlb tlb("tlb", entries, ways);
    const PageNum span = entries * 2;
    // Two streaming passes over twice the capacity: the second pass
    // cannot hit everywhere.
    for (PageNum vpn = 0; vpn < span; ++vpn) {
        tlb.lookup(vpn);
        tlb.fill(vpn);
    }
    const std::uint64_t first_pass_misses = tlb.misses();
    for (PageNum vpn = 0; vpn < span; ++vpn) {
        if (!tlb.lookup(vpn))
            tlb.fill(vpn);
    }
    EXPECT_GT(tlb.misses(), first_pass_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TlbCapacity,
    ::testing::Values(std::make_pair(32, 8), std::make_pair(256, 8),
                      std::make_pair(64, 1), std::make_pair(16, 16)));

} // namespace
} // namespace gps
