/**
 * @file
 * Unit tests for the hierarchical two-tier interconnect: node
 * assignment, uplink serialization and conservation, per-tier fault
 * injection, snapshot round-trips, and the flat-equivalence guarantees
 * (a single node behaves exactly like the flat switched topology, and
 * a checked multi-node GPS run must not diverge from the reference).
 */

#include <gtest/gtest.h>

#include "api/runner.hh"
#include "api/system.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "interconnect/node_topology.hh"
#include "interconnect/platforms.hh"
#include "interconnect/topology.hh"

namespace gps
{
namespace
{

/** 16 GPUs in 4 nodes of 4, NVLink intra, InfiniBand NDR uplinks. */
NodeTopology
makeTopo()
{
    return NodeTopology("ic", 16, 4, InterconnectKind::NvLink3,
                        InterconnectKind::IbNdr);
}

TEST(NodeTopology, NodesAreContiguousGpuRanges)
{
    NodeTopology topo = makeTopo();
    EXPECT_EQ(topo.numNodes(), 4u);
    EXPECT_EQ(topo.gpusPerNode(), 4u);
    EXPECT_EQ(topo.nodeOf(0), 0u);
    EXPECT_EQ(topo.nodeOf(3), 0u);
    EXPECT_EQ(topo.nodeOf(4), 1u);
    EXPECT_EQ(topo.nodeOf(15), 3u);
}

TEST(NodeTopology, RejectsIndivisibleGpuCount)
{
    EXPECT_THROW(NodeTopology("ic", 10, 4, InterconnectKind::NvLink3,
                              InterconnectKind::IbNdr),
                 FatalError);
}

TEST(NodeTopology, IntraNodeTrafficSkipsUplink)
{
    NodeTopology topo = makeTopo();
    Topology flat("flat", 16, InterconnectKind::NvLink3);
    TrafficMatrix traffic(16);
    traffic.add(0, 1, 16'000'000); // both in node 0
    traffic.add(5, 6, 8'000'000);  // both in node 1
    const Tick hier_t = topo.applyPhaseTraffic(traffic);
    const Tick flat_t = flat.applyPhaseTraffic(traffic);
    EXPECT_EQ(hier_t, flat_t);
    EXPECT_EQ(topo.totalCrossNodeBytes(), 0u);
    for (std::size_t n = 0; n < topo.numNodes(); ++n) {
        EXPECT_EQ(topo.uplinkEgress(n).totalBytes(), 0u);
        EXPECT_EQ(topo.uplinkIngress(n).totalBytes(), 0u);
    }
}

TEST(NodeTopology, CrossNodeFlowSerializesOnUplink)
{
    NodeTopology topo = makeTopo();
    Topology flat("flat", 16, InterconnectKind::NvLink3);
    TrafficMatrix traffic(16);
    traffic.add(0, 4, 16'000'000); // node 0 -> node 1
    const Tick hier_t = topo.applyPhaseTraffic(traffic);
    const Tick flat_t = flat.applyPhaseTraffic(traffic);
    // The IbNdr uplink is far thinner than an NVLink 3.0 link, so the
    // same flow takes longer through the node tier.
    EXPECT_GT(hier_t, flat_t);
    EXPECT_EQ(topo.crossNodeBytes(0, 1), 16'000'000u);
    EXPECT_EQ(topo.uplinkEgress(0).totalBytes(), 16'000'000u);
    EXPECT_EQ(topo.uplinkIngress(1).totalBytes(), 16'000'000u);
}

TEST(NodeTopology, UplinkConservationLaws)
{
    NodeTopology topo = makeTopo();
    TrafficMatrix traffic(16);
    traffic.add(0, 4, 1000);  // n0 -> n1
    traffic.add(0, 8, 2000);  // n0 -> n2
    traffic.add(5, 12, 4000); // n1 -> n3
    traffic.add(9, 1, 8000);  // n2 -> n0
    traffic.add(2, 3, 500);   // intra n0: must not touch uplinks
    topo.applyPhaseTraffic(traffic);
    topo.applyPhaseTraffic(traffic); // accumulate two phases

    std::uint64_t egress_sum = 0;
    std::uint64_t ingress_sum = 0;
    for (std::size_t n = 0; n < topo.numNodes(); ++n) {
        std::uint64_t row = 0;
        std::uint64_t col = 0;
        for (std::size_t m = 0; m < topo.numNodes(); ++m) {
            row += topo.crossNodeBytes(n, m);
            col += topo.crossNodeBytes(m, n);
        }
        EXPECT_EQ(topo.uplinkEgress(n).totalBytes(), row) << "node " << n;
        EXPECT_EQ(topo.uplinkIngress(n).totalBytes(), col)
            << "node " << n;
        egress_sum += row;
        ingress_sum += col;
    }
    EXPECT_EQ(egress_sum, ingress_sum);
    EXPECT_EQ(egress_sum, 2u * (1000 + 2000 + 4000 + 8000));
    EXPECT_EQ(topo.totalCrossNodeBytes(), egress_sum);
}

TEST(NodeTopology, EgressTimeIncludesUplinkSerialization)
{
    NodeTopology topo = makeTopo();
    TrafficMatrix traffic(16);
    traffic.add(0, 4, 16'000'000);
    // The per-GPU NVLink egress is fast; the shared uplink dominates.
    EXPECT_GT(topo.egressTime(traffic, 0),
              topo.linkTime(traffic.egress(0)));
    EXPECT_GT(topo.ingressTime(traffic, 4),
              topo.linkTime(traffic.ingress(4)));
    // GPUs in uninvolved nodes see no uplink component.
    EXPECT_EQ(topo.egressTime(traffic, 8),
              topo.linkTime(traffic.egress(8)));
}

TEST(NodeTopology, SharedUplinkContendsAcrossNodeMates)
{
    NodeTopology topo = makeTopo();
    TrafficMatrix traffic(16);
    // Four GPUs of node 0 each send to a distinct node-1 GPU: their
    // per-GPU links carry one flow each, but the shared uplink carries
    // all four.
    for (GpuId g = 0; g < 4; ++g)
        traffic.add(g, static_cast<GpuId>(4 + g), 4'000'000);
    const Tick single = topo.uplinkEgress(0).spec().infinite
                            ? 0
                            : topo.egressTime(traffic, 0);
    TrafficMatrix one(16);
    one.add(0, 4, 4'000'000);
    EXPECT_GT(single, topo.egressTime(one, 0));
}

TEST(NodeTopology, DegradedUplinkStretchesTransfer)
{
    NodeTopology topo = makeTopo();
    TrafficMatrix traffic(16);
    traffic.add(0, 4, 16'000'000);
    const Tick healthy = topo.egressTime(traffic, 0);
    topo.setUplinkState(0, PathHealth::Degraded, 0.25);
    const Tick degraded = topo.egressTime(traffic, 0);
    EXPECT_GT(degraded, healthy);
    EXPECT_EQ(topo.uplinkState(0).health, PathHealth::Degraded);
    topo.setUplinkState(0, PathHealth::Healthy);
    EXPECT_EQ(topo.egressTime(traffic, 0), healthy);
}

TEST(NodeTopology, DownUplinkFallsBackToPcie)
{
    NodeTopology topo = makeTopo();
    TrafficMatrix traffic(16);
    traffic.add(0, 4, 16'000'000);
    const Tick healthy = topo.egressTime(traffic, 0);
    topo.setUplinkState(0, PathHealth::Down);
    const Tick fallback = topo.egressTime(traffic, 0);
    EXPECT_GT(fallback, healthy);
    // With the host-staged fallback forbidden, a dead uplink makes the
    // partition unreachable: fatal, not silent.
    topo.setPcieFallback(false);
    EXPECT_THROW(topo.egressTime(traffic, 0), FatalError);
}

TEST(NodeTopology, SnapshotRoundTripIsByteIdentical)
{
    NodeTopology topo = makeTopo();
    TrafficMatrix traffic(16);
    traffic.add(0, 4, 1000);
    traffic.add(9, 1, 500);
    topo.applyPhaseTraffic(traffic);
    topo.setUplinkState(2, PathHealth::Degraded, 0.5);
    topo.setPathState(0, 1, PathHealth::Down);

    snapshot::Serializer out;
    topo.saveState(out);

    NodeTopology restored = makeTopo();
    snapshot::Deserializer in(out.bytes());
    restored.restoreState(in);
    EXPECT_TRUE(in.atEnd());
    EXPECT_EQ(restored.totalCrossNodeBytes(),
              topo.totalCrossNodeBytes());
    EXPECT_EQ(restored.uplinkState(2).health, PathHealth::Degraded);

    snapshot::Serializer again;
    restored.saveState(again);
    EXPECT_EQ(again.bytes(), out.bytes());
}

TEST(NodeTopology, RestoreRejectsCorruptUplinkHealth)
{
    NodeTopology topo = makeTopo();
    snapshot::Serializer out;
    topo.saveState(out);
    // The serialization ends with numNodes (health u8, factor f64)
    // records; corrupt the last node's health byte.
    std::string bytes = out.bytes();
    ASSERT_GE(bytes.size(), 9u);
    bytes[bytes.size() - 9] = 7;
    NodeTopology restored = makeTopo();
    snapshot::Deserializer in(bytes);
    EXPECT_THROW(restored.restoreState(in), snapshot::SnapshotError);
}

TEST(NodeTopology, RestoreRejectsWrongNodeCount)
{
    NodeTopology topo = makeTopo();
    snapshot::Serializer out;
    topo.saveState(out);
    NodeTopology other("ic", 16, 2, InterconnectKind::NvLink3,
                       InterconnectKind::IbNdr);
    snapshot::Deserializer in(out.bytes());
    EXPECT_THROW(other.restoreState(in), snapshot::SnapshotError);
}

TEST(NodeTopology, SingleNodeMatchesFlatTopology)
{
    NodeTopology hier("ic", 4, 1, InterconnectKind::Pcie3,
                      InterconnectKind::IbNdr);
    Topology flat("ic", 4, InterconnectKind::Pcie3);
    TrafficMatrix traffic(4);
    traffic.add(0, 1, 16'000'000);
    traffic.add(2, 3, 4'000'000);
    traffic.add(1, 2, 1'000'000);
    EXPECT_EQ(hier.applyPhaseTraffic(traffic),
              flat.applyPhaseTraffic(traffic));
    for (GpuId g = 0; g < 4; ++g) {
        EXPECT_EQ(hier.egressTime(traffic, g),
                  flat.egressTime(traffic, g));
        EXPECT_EQ(hier.ingressTime(traffic, g),
                  flat.ingressTime(traffic, g));
    }
    EXPECT_EQ(hier.totalCrossNodeBytes(), 0u);
}

// --- Regression tests for the flat-topology stats/restore fixes ---

TEST(Topology, ResetStatsClearsTotalPayload)
{
    Topology topo("ic", 2, InterconnectKind::Pcie3);
    TrafficMatrix traffic(2);
    traffic.add(0, 1, 1000, 900);
    topo.applyPhaseTraffic(traffic);
    ASSERT_EQ(topo.totalPayloadBytes(), 900u);
    topo.resetStats();
    EXPECT_EQ(topo.totalBytes(), 0u);
    EXPECT_EQ(topo.totalPayloadBytes(), 0u);
}

TEST(Topology, ExportStatsIncludesTotalPayloadBytes)
{
    Topology topo("ic", 2, InterconnectKind::Pcie3);
    TrafficMatrix traffic(2);
    traffic.add(0, 1, 1000, 900);
    topo.applyPhaseTraffic(traffic);
    StatSet stats;
    topo.exportStats(stats);
    ASSERT_TRUE(stats.has("ic.total_payload_bytes"));
    EXPECT_DOUBLE_EQ(stats.get("ic.total_payload_bytes"), 900.0);
    EXPECT_DOUBLE_EQ(stats.get("ic.total_bytes"), 1000.0);
}

TEST(Topology, RestoreRejectsCorruptPathHealth)
{
    Topology topo("ic", 2, InterconnectKind::Pcie3);
    topo.setPathState(0, 1, PathHealth::Degraded, 0.5);
    snapshot::Serializer out;
    topo.saveState(out);
    // Layout tail: ... u8(health) f64(factor) b(pcieFallback), so the
    // health byte of the single path record sits 10 bytes from the end.
    std::string bytes = out.bytes();
    ASSERT_GE(bytes.size(), 10u);
    bytes[bytes.size() - 10] = 9;
    Topology restored("ic", 2, InterconnectKind::Pcie3);
    snapshot::Deserializer in(bytes);
    EXPECT_THROW(restored.restoreState(in), snapshot::SnapshotError);
}

// --- System wiring and end-to-end equivalence ---

TEST(NodeSystem, SingleNodeBuildsFlatTopology)
{
    SystemConfig config;
    config.numGpus = 4;
    config.numNodes = 1;
    MultiGpuSystem system(config);
    EXPECT_EQ(dynamic_cast<NodeTopology*>(&system.topology()), nullptr);
}

TEST(NodeSystem, MultiNodeBuildsNodeTopology)
{
    SystemConfig config;
    config.numGpus = 4;
    config.numNodes = 2;
    MultiGpuSystem system(config);
    auto* topo = dynamic_cast<NodeTopology*>(&system.topology());
    ASSERT_NE(topo, nullptr);
    EXPECT_EQ(topo->numNodes(), 2u);
    EXPECT_EQ(topo->gpusPerNode(), 2u);
}

TEST(NodeSystem, MultiNodeRejectsIndivisibleGpuCount)
{
    SystemConfig config;
    config.numGpus = 6;
    config.numNodes = 4;
    EXPECT_THROW(MultiGpuSystem system(config), FatalError);
}

RunConfig
nodeRunConfig(std::size_t gpus, std::size_t nodes, bool hierarchical)
{
    RunConfig config;
    config.system.numGpus = gpus;
    config.system.interconnect = InterconnectKind::NvLink3;
    config.system.numNodes = nodes;
    config.system.interNode = InterconnectKind::IbNdr;
    config.system.gps.hierarchicalSubscription = hierarchical;
    config.paradigm = ParadigmKind::Gps;
    config.scale = 0.05;
    return config;
}

TEST(NodeSystem, SingleNodeRunIsByteIdenticalToFlat)
{
    RunConfig flat;
    flat.system.numGpus = 4;
    flat.system.interconnect = InterconnectKind::NvLink3;
    flat.paradigm = ParadigmKind::Gps;
    flat.scale = 0.05;
    // numNodes = 1 must be indistinguishable from a build without the
    // node tier, whatever the (unused) inter-node fabric says.
    RunConfig single = flat;
    single.system.numNodes = 1;
    single.system.interNode = InterconnectKind::IbHdr;

    const RunResult a = runWorkload("Jacobi", flat);
    const RunResult b = runWorkload("Jacobi", single);
    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.interconnectBytes, b.interconnectBytes);
    EXPECT_EQ(a.totals.pushedStoreBytes, b.totals.pushedStoreBytes);
    EXPECT_DOUBLE_EQ(a.stats.get("gps.uplink_forwards"), 0.0);
    EXPECT_DOUBLE_EQ(b.stats.get("gps.uplink_forwards"), 0.0);
}

TEST(NodeSystem, HierarchicalNeverSlowerAndPaysUplinkOncePerNode)
{
    const RunResult flat = runWorkload("Jacobi",
                                       nodeRunConfig(8, 2, false));
    const RunResult hier = runWorkload("Jacobi",
                                       nodeRunConfig(8, 2, true));
    // Same data delivered either way; only wire placement differs.
    EXPECT_EQ(hier.totals.pushedStoreBytes, flat.totals.pushedStoreBytes);
    EXPECT_LE(hier.totalTime, flat.totalTime);
    // Proxy fan-out crosses the boundary at most once per remote node,
    // so it can never produce more uplink messages than flat forwarding.
    const double flat_up = flat.stats.get("gps.uplink_forwards");
    const double hier_up = hier.stats.get("gps.uplink_forwards");
    EXPECT_GT(flat_up, 0.0);
    EXPECT_GT(hier_up, 0.0);
    EXPECT_LE(hier_up, flat_up);
}

TEST(NodeSystem, CheckedMultiNodeRunsDoNotDiverge)
{
    for (const bool hierarchical : {false, true}) {
        RunConfig config = nodeRunConfig(4, 2, hierarchical);
        config.check.enabled = true;
        const RunResult result = runWorkload("Jacobi", config);
        ASSERT_NE(result.check, nullptr);
        EXPECT_EQ(result.check->divergences, 0u)
            << (hierarchical ? "hierarchical" : "flat")
            << " forwarding diverged: "
            << (result.check->findings.empty()
                    ? std::string("(no findings captured)")
                    : describe(result.check->findings.front()));
    }
}

} // namespace
} // namespace gps
