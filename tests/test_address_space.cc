/**
 * @file
 * Unit tests for the shared VA-space allocator.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"

namespace gps
{
namespace
{

TEST(AddressSpace, AllocationsArePageAligned)
{
    AddressSpace vas(PageGeometry(64 * KiB));
    const Region& r = vas.allocate(100, MemKind::Pinned, "a", 0);
    EXPECT_EQ(r.base % (64 * KiB), 0u);
    EXPECT_EQ(r.size, 64 * KiB);
}

TEST(AddressSpace, SizeRoundsUpToPages)
{
    AddressSpace vas(PageGeometry(64 * KiB));
    const Region& r =
        vas.allocate(64 * KiB + 1, MemKind::Pinned, "a", 0);
    EXPECT_EQ(r.size, 2 * 64 * KiB);
}

TEST(AddressSpace, RegionsDoNotOverlap)
{
    AddressSpace vas(PageGeometry(64 * KiB));
    const Region& a = vas.allocate(64 * KiB, MemKind::Pinned, "a", 0);
    const Region& b = vas.allocate(64 * KiB, MemKind::Pinned, "b", 0);
    EXPECT_GE(b.base, a.end());
}

TEST(AddressSpace, GuardGapSeparatesRegions)
{
    AddressSpace vas(PageGeometry(64 * KiB));
    const Region& a = vas.allocate(64 * KiB, MemKind::Pinned, "a", 0);
    const Region& b = vas.allocate(64 * KiB, MemKind::Pinned, "b", 0);
    // One guard page: an off-by-one overrun never lands in region b.
    EXPECT_EQ(b.base - a.end(), 64 * KiB);
}

TEST(AddressSpace, RegionOfFindsContainingRegion)
{
    AddressSpace vas(PageGeometry(64 * KiB));
    const Region& a = vas.allocate(2 * 64 * KiB, MemKind::Gps, "a", 1);
    EXPECT_EQ(vas.regionOf(a.base), &a);
    EXPECT_EQ(vas.regionOf(a.base + a.size - 1), &a);
    EXPECT_EQ(vas.regionOf(a.end()), nullptr);
    EXPECT_EQ(vas.regionOf(a.base - 1), nullptr);
}

TEST(AddressSpace, RegionCarriesMetadata)
{
    AddressSpace vas(PageGeometry(64 * KiB));
    const Region& r =
        vas.allocate(64 * KiB, MemKind::Gps, "weights", 2, true);
    EXPECT_EQ(r.kind, MemKind::Gps);
    EXPECT_EQ(r.label, "weights");
    EXPECT_EQ(r.home, 2);
    EXPECT_TRUE(r.manualSubscription);
}

TEST(AddressSpace, ReleaseRemovesRegion)
{
    AddressSpace vas(PageGeometry(64 * KiB));
    const Region& r = vas.allocate(64 * KiB, MemKind::Pinned, "a", 0);
    const Addr base = r.base;
    EXPECT_EQ(vas.bytesAllocated(), 64 * KiB);
    vas.release(base);
    EXPECT_EQ(vas.regionOf(base), nullptr);
    EXPECT_EQ(vas.bytesAllocated(), 0u);
}

TEST(AddressSpaceDeath, ZeroByteAllocationPanics)
{
    AddressSpace vas(PageGeometry(64 * KiB));
    EXPECT_DEATH(vas.allocate(0, MemKind::Pinned, "zero", 0), "zero");
}

TEST(AddressSpaceDeath, ReleaseOfUnknownBasePanics)
{
    AddressSpace vas(PageGeometry(64 * KiB));
    EXPECT_DEATH(vas.release(0x1234), "unknown");
}

TEST(AddressSpace, MemKindNames)
{
    EXPECT_EQ(to_string(MemKind::Pinned), "pinned");
    EXPECT_EQ(to_string(MemKind::Managed), "managed");
    EXPECT_EQ(to_string(MemKind::Gps), "gps");
    EXPECT_EQ(to_string(MemKind::Replicated), "replicated");
}

} // namespace
} // namespace gps
