/**
 * @file
 * Unit tests for the per-GPU physical frame allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/physical_memory.hh"

namespace gps
{
namespace
{

PhysicalMemory
makeMemory(std::uint64_t frames)
{
    return PhysicalMemory("mem", frames * 64 * KiB, PageGeometry(64 * KiB));
}

TEST(PhysicalMemory, CapacityDerivesFrameCount)
{
    auto mem = makeMemory(16);
    EXPECT_EQ(mem.totalFrames(), 16u);
    EXPECT_EQ(mem.framesFree(), 16u);
}

TEST(PhysicalMemory, AllocatesDistinctFrames)
{
    auto mem = makeMemory(8);
    std::set<PageNum> seen;
    for (int i = 0; i < 8; ++i) {
        auto ppn = mem.allocFrame();
        ASSERT_TRUE(ppn.has_value());
        EXPECT_TRUE(seen.insert(*ppn).second);
    }
    EXPECT_EQ(mem.framesInUse(), 8u);
}

TEST(PhysicalMemory, ExhaustionReturnsNullopt)
{
    auto mem = makeMemory(2);
    ASSERT_TRUE(mem.allocFrame().has_value());
    ASSERT_TRUE(mem.allocFrame().has_value());
    EXPECT_FALSE(mem.allocFrame().has_value());
}

TEST(PhysicalMemory, FreedFramesAreReused)
{
    auto mem = makeMemory(2);
    const PageNum a = *mem.allocFrame();
    ASSERT_TRUE(mem.allocFrame().has_value());
    mem.freeFrame(a);
    auto again = mem.allocFrame();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, a);
}

TEST(PhysicalMemory, AllocatedTracksLiveness)
{
    auto mem = makeMemory(4);
    const PageNum a = *mem.allocFrame();
    EXPECT_TRUE(mem.allocated(a));
    mem.freeFrame(a);
    EXPECT_FALSE(mem.allocated(a));
    EXPECT_FALSE(mem.allocated(999));
}

TEST(PhysicalMemoryDeath, DoubleFreePanics)
{
    auto mem = makeMemory(4);
    const PageNum a = *mem.allocFrame();
    mem.freeFrame(a);
    EXPECT_DEATH(mem.freeFrame(a), "double free");
}

TEST(PhysicalMemory, StatsTrackPeakUsage)
{
    auto mem = makeMemory(4);
    const PageNum a = *mem.allocFrame();
    const PageNum b = *mem.allocFrame();
    mem.freeFrame(a);
    mem.freeFrame(b);
    StatSet stats;
    mem.exportStats(stats);
    EXPECT_DOUBLE_EQ(stats.get("mem.frames_peak"), 2.0);
    EXPECT_DOUBLE_EQ(stats.get("mem.frames_in_use"), 0.0);
}

TEST(PhysicalMemory, RetiringRecycledFrameChargesCapacityOnce)
{
    // Regression: retiring a frame off the free list used to shrink
    // both the free list and the bump region (the retired frame was
    // double-charged), silently losing an extra frame of capacity.
    auto mem = makeMemory(4);
    const PageNum a = *mem.allocFrame();
    mem.freeFrame(a);
    EXPECT_EQ(mem.retireFrames(1), 1u);
    EXPECT_EQ(mem.totalFrames(), 3u);
    EXPECT_EQ(mem.framesFree(), 3u);
    // All three surviving frames must still be allocatable.
    EXPECT_TRUE(mem.allocFrame().has_value());
    EXPECT_TRUE(mem.allocFrame().has_value());
    EXPECT_TRUE(mem.allocFrame().has_value());
    EXPECT_FALSE(mem.allocFrame().has_value());
}

TEST(PhysicalMemory, RetirementLedgerBalances)
{
    auto mem = makeMemory(8);
    const PageNum a = *mem.allocFrame();
    const PageNum b = *mem.allocFrame();
    mem.freeFrame(a);
    mem.freeFrame(b);
    EXPECT_EQ(mem.retireFrames(3), 3u);
    EXPECT_EQ(mem.initialFrames(),
              mem.totalFrames() + mem.framesRetired());
    EXPECT_EQ(mem.framesFree(), mem.allocatableFrames());
}

TEST(PhysicalMemory, RetireNeverTouchesFramesInUse)
{
    auto mem = makeMemory(4);
    std::vector<PageNum> held;
    for (int i = 0; i < 3; ++i)
        held.push_back(*mem.allocFrame());
    // Only one frame is free; a larger request retires just that one.
    EXPECT_EQ(mem.retireFrames(3), 1u);
    EXPECT_EQ(mem.framesInUse(), 3u);
    EXPECT_EQ(mem.framesFree(), 0u);
    EXPECT_EQ(mem.framesFree(), mem.allocatableFrames());
    for (const PageNum ppn : held)
        EXPECT_TRUE(mem.allocated(ppn));
}

TEST(PhysicalMemory, FullDrainAndRefill)
{
    auto mem = makeMemory(32);
    std::vector<PageNum> frames;
    while (auto ppn = mem.allocFrame())
        frames.push_back(*ppn);
    EXPECT_EQ(frames.size(), 32u);
    for (const PageNum ppn : frames)
        mem.freeFrame(ppn);
    EXPECT_EQ(mem.framesFree(), 32u);
    EXPECT_TRUE(mem.allocFrame().has_value());
}

} // namespace
} // namespace gps
