/**
 * @file
 * Tests for causal critical-path tracing and what-if prediction: spec
 * parsing, identity-replay exactness, critical-path accounting,
 * disabled-path byte-identity, bounded recording, and closed-loop
 * validation of scaled-resource predictions against real re-runs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "api/result_export.hh"
#include "api/runner.hh"
#include "obs/causal/whatif.hh"
#include "obs/observability.hh"

namespace gps
{
namespace
{

/** Small fig11-style config: 4 GPUs on PCIe-class links. */
RunConfig
causalConfig()
{
    RunConfig config;
    config.system.numGpus = 4;
    config.scale = 0.0625;
    config.paradigm = ParadigmKind::Gps;
    return config;
}

TEST(WhatIfSpec, ParsesFactorsWithOptionalSuffix)
{
    WhatIfSpec spec;
    std::string error;
    ASSERT_TRUE(parseWhatIfSpec("link_bw=2x,rwq_drain=1.5", spec, error))
        << error;
    EXPECT_DOUBLE_EQ(spec.linkBw, 2.0);
    EXPECT_DOUBLE_EQ(spec.rwqDrain, 1.5);
    EXPECT_FALSE(spec.identity());

    WhatIfSpec bare;
    ASSERT_TRUE(parseWhatIfSpec("link_bw=0.5", bare, error)) << error;
    EXPECT_DOUBLE_EQ(bare.linkBw, 0.5);
    EXPECT_DOUBLE_EQ(bare.rwqDrain, 1.0);

    EXPECT_NE(to_string(spec).find("link_bw=2"), std::string::npos);
}

TEST(WhatIfSpec, RejectsUnknownKeysAndBadFactors)
{
    WhatIfSpec spec;
    std::string error;
    EXPECT_FALSE(parseWhatIfSpec("dram_bw=2x", spec, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseWhatIfSpec("link_bw=0", spec, error));
    EXPECT_FALSE(parseWhatIfSpec("link_bw=-1", spec, error));
    EXPECT_FALSE(parseWhatIfSpec("link_bw=fast", spec, error));

    // An empty spec is the identity hypothesis, not an error.
    WhatIfSpec empty;
    ASSERT_TRUE(parseWhatIfSpec("", empty, error)) << error;
    EXPECT_TRUE(empty.identity());
}

TEST(Causal, TracingDoesNotPerturbTheRun)
{
    const RunResult plain = runWorkload("Jacobi", causalConfig());
    RunConfig traced = causalConfig();
    traced.obs.causal = true;
    const RunResult observed = runWorkload("Jacobi", traced);

    EXPECT_EQ(plain.obs, nullptr);
    ASSERT_NE(observed.obs, nullptr);
    EXPECT_TRUE(observed.obs->hasCausal);
    // The full exported result (counters, times, stats) must be
    // byte-identical with tracing on.
    EXPECT_EQ(resultToJson(plain, true), resultToJson(observed, true));
}

TEST(Causal, RecordsPhasesIterationsAndEdges)
{
    RunConfig config = causalConfig();
    config.obs.causal = true;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);
    const CausalReport& report = result.obs->causal;

    EXPECT_FALSE(report.phases.empty());
    EXPECT_FALSE(report.iterations.empty());
    EXPECT_EQ(report.droppedPhases, 0u);
    EXPECT_DOUBLE_EQ(report.model.wqDrainScale, 1.0);
    EXPECT_EQ(report.model.numGpus, 4u);
    // Every phase carries one kernel record per participating GPU and
    // per-GPU barrier wire bytes.
    for (const CausalPhase& phase : report.phases) {
        EXPECT_FALSE(phase.kernels.empty()) << phase.name;
        EXPECT_EQ(phase.barrierEgress.size(), 4u);
        EXPECT_EQ(phase.barrierIngress.size(), 4u);
        EXPECT_GT(phase.phaseTime, 0u) << phase.name;
    }
    // Kernel completions feed barrier edges; GPS traffic crosses the
    // link into remote write queues.
    const auto edge = [&report](CausalEdge kind) {
        return report.edges[static_cast<std::size_t>(kind)];
    };
    EXPECT_GT(edge(CausalEdge::KernelToPhase), 0u);
    EXPECT_GT(edge(CausalEdge::LinkToRwqInsert), 0u);
    EXPECT_GT(edge(CausalEdge::RwqInsertToDrain), 0u);
}

TEST(Causal, IdentityPredictionReproducesTheRunExactly)
{
    RunConfig config = causalConfig();
    config.obs.causal = true;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);

    const WhatIfPrediction pred =
        predictWhatIf(result.obs->causal, WhatIfSpec{});
    EXPECT_EQ(pred.baseTime, result.totalTime);
    EXPECT_EQ(pred.predictedTime, result.totalTime);
    EXPECT_DOUBLE_EQ(pred.speedup, 1.0);
}

TEST(Causal, CriticalPathCoversTheSimulatedWindow)
{
    RunConfig config = causalConfig();
    config.obs.causal = true;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);

    const CriticalPathReport path =
        analyzeCriticalPath(result.obs->causal);
    ASSERT_FALSE(path.segments.empty());
    ASSERT_FALSE(path.laneTicks.empty());

    Tick segment_sum = 0;
    for (const CriticalSegment& seg : path.segments)
        segment_sum += seg.ticks;
    EXPECT_EQ(segment_sum, path.totalTicks);

    Tick lane_sum = 0;
    for (const auto& [lane, ticks] : path.laneTicks)
        lane_sum += ticks;
    EXPECT_EQ(lane_sum, path.totalTicks);

    // The window equals the recorded iteration span.
    const CausalReport& report = result.obs->causal;
    EXPECT_EQ(path.totalTicks, report.iterations.back().end -
                                   report.iterations.front().start);
}

TEST(Causal, JsonExportIsWellFormedAndComplete)
{
    RunConfig config = causalConfig();
    config.obs.causal = true;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);

    const std::string json = causalToJson(result.obs->causal);
    std::int64_t depth = 0;
    bool in_string = false, escaped = false;
    for (const char c : json) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
    EXPECT_NE(json.find("\"phases\":["), std::string::npos);
    EXPECT_NE(json.find("\"critical_path\":"), std::string::npos);
    EXPECT_NE(json.find("\"edges\":"), std::string::npos);
    EXPECT_NE(json.find("kernel_to_phase"), std::string::npos);
}

TEST(Causal, FlowArrowsLandOnTheTimeline)
{
    RunConfig config = causalConfig();
    config.obs.causal = true;
    config.obs.timeline = true;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);

    std::uint64_t starts = 0, finishes = 0;
    for (const TraceEvent& ev : result.obs->timeline) {
        if (ev.cat != "causal")
            continue;
        if (ev.ph == 's')
            ++starts;
        if (ev.ph == 'f') {
            ++finishes;
            EXPECT_EQ(ev.tid, TimelineRecorder::systemTid);
        }
    }
    EXPECT_GT(starts, 0u);
    EXPECT_EQ(starts, finishes);
    // The exported trace carries flow bindings.
    const std::string json = timelineToJson(*result.obs);
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(Causal, PhaseCapCountsDrops)
{
    RunConfig config = causalConfig();
    config.obs.causal = true;
    config.obs.maxCausalPhases = 2;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);
    const CausalReport& report = result.obs->causal;
    EXPECT_EQ(report.phases.size(), 2u);
    EXPECT_GT(report.droppedPhases, 0u);
    EXPECT_NE(causalToJson(report).find("\"dropped_phases\":"),
              std::string::npos);
}

TEST(Causal, UnitScalesAreByteIdentical)
{
    const RunResult plain = runWorkload("Jacobi", causalConfig());
    RunConfig scaled = causalConfig();
    scaled.system.linkBandwidthScale = 1.0;
    scaled.system.gps.wqDrainScale = 1.0;
    const RunResult same = runWorkload("Jacobi", scaled);
    EXPECT_EQ(resultToJson(plain, true), resultToJson(same, true));
}

TEST(Causal, LinkBandwidthScaleChangesTheRun)
{
    const RunResult base = runWorkload("Jacobi", causalConfig());
    RunConfig fast = causalConfig();
    fast.system.linkBandwidthScale = 2.0;
    const RunResult faster = runWorkload("Jacobi", fast);
    EXPECT_LT(faster.totalTime, base.totalTime);
}

TEST(WhatIf, LinkBandwidthPredictionWithinTolerance)
{
    WhatIfSpec spec;
    spec.linkBw = 2.0;
    const WhatIfValidation v =
        validateWhatIf("Jacobi", causalConfig(), spec);
    EXPECT_GT(v.prediction.speedup, 1.0);
    EXPECT_LE(v.errorPct, 10.0)
        << "predicted " << v.prediction.predictedTime << " actual "
        << v.actualTime;
}

TEST(WhatIf, RwqDrainPredictionUnderSaturation)
{
    RunConfig config = causalConfig();
    config.faultPlan.addSpec("wq:saturate@0:*");
    config.faultPlan.sort();
    WhatIfSpec spec;
    spec.rwqDrain = 2.0;
    const WhatIfValidation v = validateWhatIf("Jacobi", config, spec);
    EXPECT_LE(v.errorPct, 10.0)
        << "predicted " << v.prediction.predictedTime << " actual "
        << v.actualTime;
}

TEST(WhatIf, SlowerLinksPredictSlowdownWithinTolerance)
{
    WhatIfSpec spec;
    spec.linkBw = 0.5;
    const WhatIfValidation v =
        validateWhatIf("Jacobi", causalConfig(), spec);
    EXPECT_LT(v.prediction.speedup, 1.0);
    EXPECT_LE(v.errorPct, 10.0)
        << "predicted " << v.prediction.predictedTime << " actual "
        << v.actualTime;
}

} // namespace
} // namespace gps
