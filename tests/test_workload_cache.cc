/**
 * @file
 * Tests for the cross-run workload-input cache: hit byte-identity
 * against an uncached build, bounded LRU eviction, in-flight dedup and
 * determinism under concurrent access (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "apps/graph.hh"
#include "apps/workload_cache.hh"

namespace gps::apps
{
namespace
{

GraphParams
cacheParams(std::uint64_t seed = 7)
{
    GraphParams params;
    params.numVertices = 4096;
    params.avgDegree = 4;
    params.numParts = 4;
    params.locality = 0.8;
    params.hubSkew = 0.75;
    params.seed = seed;
    return params;
}

class WorkloadCacheTest : public ::testing::Test
{
  protected:
    WorkloadCacheTest()
    {
        WorkloadCache::instance().clear();
        WorkloadCache::instance().setCapacity(32);
    }
    ~WorkloadCacheTest() override
    {
        WorkloadCache::instance().clear();
        WorkloadCache::instance().setCapacity(32);
    }
};

TEST_F(WorkloadCacheTest, HitIsByteIdenticalToUncachedBuild)
{
    WorkloadCache& cache = WorkloadCache::instance();
    const GraphParams params = cacheParams();

    const auto cold = cache.graphBundle(params, 32);
    const auto warm = cache.graphBundle(params, 32);

    // A hit hands back the very object the cold build produced.
    EXPECT_EQ(cold.get(), warm.get());

    // And that object matches a from-scratch, non-cached build.
    const Graph direct = makePowerLawGraph(params);
    EXPECT_EQ(cold->graph.rowPtr, direct.rowPtr);
    EXPECT_EQ(cold->graph.targets, direct.targets);
    ASSERT_EQ(cold->targetGroups.size(), params.numParts);
    for (std::size_t p = 0; p < params.numParts; ++p)
        EXPECT_EQ(cold->targetGroups[p],
                  distinctTargetGroups(direct, p, 32));

    const WorkloadCache::Counters counters = cache.counters();
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_GT(counters.buildSeconds, 0.0);
}

TEST_F(WorkloadCacheTest, KeySeparatesEveryGenerationField)
{
    const GraphParams base = cacheParams();
    EXPECT_EQ(graphBundleKey(base, 32), graphBundleKey(base, 32));
    EXPECT_NE(graphBundleKey(base, 32), graphBundleKey(base, 1));

    GraphParams other = base;
    other.seed = base.seed + 1;
    EXPECT_NE(graphBundleKey(base, 32), graphBundleKey(other, 32));
    other = base;
    other.locality = 0.8000001;
    EXPECT_NE(graphBundleKey(base, 32), graphBundleKey(other, 32));
    other = base;
    other.numParts = 2;
    EXPECT_NE(graphBundleKey(base, 32), graphBundleKey(other, 32));
}

TEST_F(WorkloadCacheTest, DistinctKeysGetDistinctEntries)
{
    WorkloadCache& cache = WorkloadCache::instance();
    const auto a = cache.graphBundle(cacheParams(1), 32);
    const auto b = cache.graphBundle(cacheParams(2), 32);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a->graph.targets, b->graph.targets);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.counters().misses, 2u);
}

TEST_F(WorkloadCacheTest, EvictionIsBoundedAndLru)
{
    WorkloadCache& cache = WorkloadCache::instance();
    cache.setCapacity(2);

    const auto a = cache.graphBundle(cacheParams(1), 32);
    (void)cache.graphBundle(cacheParams(2), 32);
    (void)cache.graphBundle(cacheParams(1), 32); // touch: 1 is now MRU
    (void)cache.graphBundle(cacheParams(3), 32); // evicts 2, not 1
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.counters().evictions, 1u);

    // Seed 1 survived the eviction: re-requesting it is a hit that
    // returns the original object...
    const std::uint64_t hits_before = cache.counters().hits;
    const auto a2 = cache.graphBundle(cacheParams(1), 32);
    EXPECT_EQ(a.get(), a2.get());
    EXPECT_EQ(cache.counters().hits, hits_before + 1);

    // ...while seed 2 was evicted and rebuilds to identical bytes.
    const std::uint64_t misses_before = cache.counters().misses;
    const auto b2 = cache.graphBundle(cacheParams(2), 32);
    EXPECT_EQ(cache.counters().misses, misses_before + 1);
    EXPECT_EQ(b2->graph.targets,
              makePowerLawGraph(cacheParams(2)).targets);
}

TEST_F(WorkloadCacheTest, EvictedHandleStaysAlive)
{
    WorkloadCache& cache = WorkloadCache::instance();
    cache.setCapacity(1);
    const auto held = cache.graphBundle(cacheParams(1), 32);
    (void)cache.graphBundle(cacheParams(2), 32); // evicts seed 1
    EXPECT_EQ(cache.size(), 1u);
    // The evicted bundle is still fully usable through the handle.
    EXPECT_EQ(held->graph.numVertices, cacheParams(1).numVertices);
    EXPECT_FALSE(held->graph.targets.empty());
}

TEST_F(WorkloadCacheTest, ConcurrentRequestsShareOneBuild)
{
    WorkloadCache& cache = WorkloadCache::instance();
    const GraphParams params = cacheParams();

    constexpr std::size_t numThreads = 8;
    std::vector<std::shared_ptr<const GraphBundle>> results(numThreads);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < numThreads; ++t)
        threads.emplace_back([&cache, &results, &params, t] {
            results[t] = cache.graphBundle(params, 32);
        });
    for (std::thread& thread : threads)
        thread.join();

    // Exactly one build ran; every thread got the same object.
    const WorkloadCache::Counters counters = cache.counters();
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.hits, numThreads - 1);
    for (const auto& result : results) {
        ASSERT_NE(result, nullptr);
        EXPECT_EQ(result.get(), results[0].get());
    }

    // And the shared bytes equal a single-threaded build.
    const Graph direct = makePowerLawGraph(params);
    EXPECT_EQ(results[0]->graph.targets, direct.targets);
    EXPECT_EQ(results[0]->graph.rowPtr, direct.rowPtr);
}

TEST_F(WorkloadCacheTest, ConcurrentDistinctKeysAllComplete)
{
    WorkloadCache& cache = WorkloadCache::instance();
    constexpr std::size_t numThreads = 6;
    std::vector<std::shared_ptr<const GraphBundle>> results(numThreads);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < numThreads; ++t)
        threads.emplace_back([&cache, &results, t] {
            // Three keys, two requesters each.
            results[t] =
                cache.graphBundle(cacheParams(1 + t % 3), 32);
        });
    for (std::thread& thread : threads)
        thread.join();
    for (std::size_t t = 0; t < numThreads; ++t) {
        ASSERT_NE(results[t], nullptr);
        EXPECT_EQ(results[t].get(), results[t % 3].get());
    }
    EXPECT_EQ(cache.counters().misses, 3u);
    EXPECT_EQ(cache.size(), 3u);
}

TEST_F(WorkloadCacheTest, CapacityZeroDisablesCaching)
{
    // GPS_WORKLOAD_CACHE_CAP=0 means "cache disabled", not "unbounded":
    // every request builds fresh, stores nothing, and the bytes still
    // match a direct build.
    WorkloadCache& cache = WorkloadCache::instance();
    cache.setCapacity(0);
    const GraphParams params = cacheParams();

    const auto first = cache.graphBundle(params, 32);
    const auto second = cache.graphBundle(params, 32);
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_NE(first.get(), second.get()); // no sharing when disabled
    EXPECT_EQ(first->graph.rowPtr, second->graph.rowPtr);
    EXPECT_EQ(first->graph.targets, second->graph.targets);

    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.counters().misses, 2u);
    EXPECT_EQ(cache.counters().hits, 0u);
}

TEST_F(WorkloadCacheTest, SetCapacityZeroDrainsResidentEntries)
{
    WorkloadCache& cache = WorkloadCache::instance();
    (void)cache.graphBundle(cacheParams(1), 32);
    (void)cache.graphBundle(cacheParams(2), 32);
    EXPECT_EQ(cache.size(), 2u);
    cache.setCapacity(0);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.counters().evictions, 2u);
}

} // namespace
} // namespace gps::apps
