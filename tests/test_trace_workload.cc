/**
 * @file
 * Integration tests for the capture/replay loop: a workload captured to
 * trace files + manifest must replay with the identical access stream
 * and VA layout, under any paradigm.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "api/runner.hh"
#include "apps/trace_workload.hh"
#include "common/logging.hh"
#include "trace/trace_file.hh"

namespace gps
{
namespace
{

class TraceReplayTest : public ::testing::Test
{
  protected:
    TraceReplayTest()
    {
        prefix_ = ::testing::TempDir() + "gps_replay_test";
        capture("Jacobi", 2, 0.0625);
    }

    ~TraceReplayTest() override
    {
        // Best-effort cleanup of the capture artifacts.
        std::remove((prefix_ + ".manifest").c_str());
        for (int iter = 0; iter < 2; ++iter) {
            for (int phase = 0; phase < 4; ++phase) {
                for (int gpu = 0; gpu < 2; ++gpu) {
                    std::remove(tracePath(iter, phase, gpu).c_str());
                }
            }
        }
    }

    std::string
    tracePath(int iter, int phase, int gpu) const
    {
        return prefix_ + ".iter" + std::to_string(iter) + ".phase" +
               std::to_string(phase) + ".gpu" + std::to_string(gpu) +
               ".trc";
    }

    /** Minimal reimplementation of `gps-trace capture`. */
    void
    capture(const std::string& app, std::size_t gpus, double scale)
    {
        SystemConfig config;
        config.numGpus = gpus;
        MultiGpuSystem system(config);
        auto paradigm = makeParadigm(ParadigmKind::Memcpy, system);
        WorkloadContext ctx(system, *paradigm);
        auto workload = makeWorkload(app);
        workload->setScale(scale);
        workload->setup(ctx);

        std::ofstream manifest(prefix_ + ".manifest");
        manifest << "gps-trace-manifest 1\n";
        manifest << "page_bytes " << system.geometry().bytes() << "\n";
        manifest << "gpus " << gpus << "\n";
        manifest << "iterations 2\n";
        for (const auto& [base, region] :
             system.addressSpace().regions()) {
            manifest << "region " << region.base << " " << region.size
                     << " "
                     << (region.kind == MemKind::Pinned ? "private"
                                                        : "shared")
                     << " " << region.home << " " << region.label
                     << "\n";
        }
        std::string kernels;
        std::size_t phase_count = 0;
        for (std::size_t iter = 0; iter < 2; ++iter) {
            std::vector<Phase> phases = workload->iteration(iter, ctx);
            if (iter == 0)
                phase_count = phases.size();
            for (std::size_t p = 0; p < phases.size(); ++p) {
                for (KernelLaunch& kernel : phases[p].kernels) {
                    TraceWriter writer(tracePath(
                        static_cast<int>(iter), static_cast<int>(p),
                        kernel.gpu));
                    const std::uint64_t written =
                        writer.appendAll(*kernel.stream);
                    capturedRecords_ += written;
                    kernels += "kernel " + std::to_string(iter) + " " +
                               std::to_string(p) + " " +
                               std::to_string(kernel.gpu) + " " +
                               std::to_string(written) + " " +
                               std::to_string(kernel.computeInstrs) +
                               " 0\n";
                }
            }
        }
        manifest << "phases " << phase_count << "\n" << kernels;
    }

    std::string prefix_;
    std::uint64_t capturedRecords_ = 0;
};

TEST_F(TraceReplayTest, ManifestRoundTrips)
{
    apps::TraceReplayWorkload workload(prefix_);
    EXPECT_EQ(workload.capturedGpus(), 2u);
    EXPECT_EQ(workload.pageBytes(), 64 * KiB);
    EXPECT_EQ(workload.capturedIterations(), 2u);
}

TEST_F(TraceReplayTest, ReplayReproducesTheAccessStream)
{
    apps::TraceReplayWorkload workload(prefix_);
    RunConfig config;
    config.system.numGpus = 2;
    config.paradigm = ParadigmKind::Memcpy;
    // 5 simulated iterations: iteration 0 replays the captured
    // profiling iteration, 1..4 replay the captured steady one.
    Runner runner(config);
    const RunResult result = runner.run(workload);
    const std::uint64_t per_iter = capturedRecords_ / 2;
    EXPECT_EQ(result.totals.accesses, 5 * per_iter);
}

TEST_F(TraceReplayTest, ReplayWorksUnderGps)
{
    apps::TraceReplayWorkload workload(prefix_);
    RunConfig config;
    config.system.numGpus = 2;
    config.paradigm = ParadigmKind::Gps;
    const RunResult result = Runner(config).run(workload);
    EXPECT_TRUE(result.hasSubscriberHist);
    EXPECT_GT(result.totals.wqDrains, 0u);
}

TEST_F(TraceReplayTest, ReplayedParadigmOrderingMatchesDirectRuns)
{
    RunConfig config;
    config.system.numGpus = 2;
    config.paradigm = ParadigmKind::Gps;
    apps::TraceReplayWorkload gps_workload(prefix_);
    const RunResult gps_result = Runner(config).run(gps_workload);
    config.paradigm = ParadigmKind::Um;
    apps::TraceReplayWorkload um_workload(prefix_);
    const RunResult um_result = Runner(config).run(um_workload);
    EXPECT_LT(gps_result.totalTime, um_result.totalTime);
}

TEST_F(TraceReplayTest, GpuCountMismatchIsRejected)
{
    apps::TraceReplayWorkload workload(prefix_);
    RunConfig config;
    config.system.numGpus = 4; // captured on 2
    EXPECT_THROW(Runner(config).run(workload), FatalError);
}

TEST_F(TraceReplayTest, PageSizeMismatchIsRejected)
{
    apps::TraceReplayWorkload workload(prefix_);
    RunConfig config;
    config.system.numGpus = 2;
    config.system.pageBytes = 4 * KiB;
    EXPECT_THROW(Runner(config).run(workload), FatalError);
}

TEST(TraceReplayErrors, MissingManifestIsRejected)
{
    EXPECT_THROW(
        { apps::TraceReplayWorkload w("/nonexistent/prefix"); },
        FatalError);
}

TEST(TraceReplayErrors, WrongHeaderIsRejected)
{
    const std::string prefix = ::testing::TempDir() + "bad_manifest";
    {
        std::ofstream out(prefix + ".manifest");
        out << "not-a-manifest\n";
    }
    EXPECT_THROW({ apps::TraceReplayWorkload w(prefix); },
                 FatalError);
    std::remove((prefix + ".manifest").c_str());
}

} // namespace
} // namespace gps
