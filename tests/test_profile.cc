/**
 * @file
 * Tests for the bottleneck-attribution profiler: share accounting,
 * hot-page top-N extraction, the kernel-time breakdown refactor, and the
 * end-to-end profile a GPS run produces.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "api/runner.hh"
#include "common/json.hh"
#include "obs/observability.hh"

namespace gps
{
namespace
{

TEST(BottleneckProfile, SharesSumToOneAndNameTheLimiter)
{
    BottleneckProfile p;
    p.tCompute = 100;
    p.tDram = 300;
    p.tEgress = 50;
    const auto shares = p.shares();
    double sum = 0.0;
    for (const double s : shares)
        sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_STREQ(p.limiter(), "dram");

    BottleneckProfile idle;
    const auto idle_shares = idle.shares();
    EXPECT_DOUBLE_EQ(idle_shares[0], 1.0); // all-compute by convention
    EXPECT_STREQ(idle.limiter(), "compute");
}

TEST(BottleneckProfile, AchievedBandwidthUsesWallTime)
{
    BottleneckProfile p;
    p.total = ticksPerSecond; // one simulated second
    p.dramBytes = 5'000'000'000ull;
    p.egressBytes = 1'000'000'000ull;
    EXPECT_DOUBLE_EQ(p.achievedDramBps(), 5e9);
    EXPECT_DOUBLE_EQ(p.achievedLinkBps(), 1e9);

    BottleneckProfile zero;
    zero.dramBytes = 1;
    EXPECT_DOUBLE_EQ(zero.achievedDramBps(), 0.0);
}

TEST(ProfileCollector, BucketsHeatAndExtractsTopN)
{
    ProfileCollector collector(/*pages_per_bucket=*/4, /*top_n=*/2);
    // Pages 0..3 share bucket 0; page 8 is bucket 2; page 100 bucket 25.
    collector.noteRemoteWriteForward(0, 64);
    collector.noteRemoteWriteForward(3, 64);
    collector.noteRemoteWriteForward(8, 256);
    collector.noteRemoteWriteForward(100, 32);
    collector.noteSubscriptionFlip(1);
    collector.noteMigration(8);
    collector.setRegionResolver(
        [](PageNum vpn) { return "r" + std::to_string(vpn); });

    const ProfileReport report = collector.finalize();
    EXPECT_EQ(report.totalHotBuckets, 3u);
    EXPECT_EQ(report.pagesPerBucket, 4u);
    ASSERT_EQ(report.hotPages.size(), 2u); // top-N truncation
    // Bucket 2 (page 8) leads on rwq_bytes.
    EXPECT_EQ(report.hotPages[0].firstVpn, 8u);
    EXPECT_EQ(report.hotPages[0].heat.rwqBytes, 256u);
    EXPECT_EQ(report.hotPages[0].heat.migrations, 1u);
    EXPECT_EQ(report.hotPages[0].region, "r8");
    EXPECT_EQ(report.hotPages[1].firstVpn, 0u);
    EXPECT_EQ(report.hotPages[1].heat.remoteWritesForwarded, 2u);
    EXPECT_EQ(report.hotPages[1].heat.subFlips, 1u);
}

TEST(ProfileCollector, ReportCarriesTheThreeHistograms)
{
    ProfileCollector collector(1, 20);
    collector.noteRwqOccupancy(3);
    collector.noteRwqOccupancy(9);
    collector.noteRwqDrainResidency(5);
    collector.noteLinkBusy(1000);

    const ProfileReport report = collector.finalize();
    ASSERT_EQ(report.histograms.size(), 3u);
    EXPECT_EQ(report.histograms[0].name, "rwq_occupancy");
    EXPECT_EQ(report.histograms[0].hist.count(), 2u);
    EXPECT_EQ(report.histograms[1].name, "rwq_drain_residency");
    EXPECT_EQ(report.histograms[1].hist.count(), 1u);
    EXPECT_EQ(report.histograms[2].name, "link_busy");
    EXPECT_EQ(report.histograms[2].hist.max(), 1000u);
}

RunConfig
profiledConfig()
{
    RunConfig config;
    config.system.numGpus = 2;
    config.scale = 0.0625;
    config.paradigm = ParadigmKind::Gps;
    config.obs.profile = true;
    return config;
}

TEST(ProfileEndToEnd, GpsRunProducesAFullProfile)
{
    const RunResult result = runWorkload("Jacobi", profiledConfig());
    ASSERT_NE(result.obs, nullptr);
    ASSERT_TRUE(result.obs->hasProfile);
    const ProfileReport& prof = result.obs->profile;

    // One profile per (phase, gpu) kernel execution, shares summing
    // to 1 and the total matching the breakdown's wall time.
    ASSERT_FALSE(prof.kernels.empty());
    for (const BottleneckProfile& k : prof.kernels) {
        EXPECT_FALSE(k.phase.empty());
        EXPECT_LT(k.gpu, 2u);
        EXPECT_GT(k.total, 0u);
        double sum = 0.0;
        for (const double s : k.shares())
            sum += s;
        EXPECT_NEAR(sum, 1.0, 1e-9) << k.phase;
    }

    // A GPS Jacobi run forwards halo writes, so heat must exist and the
    // resolver must label the buckets with real region names.
    EXPECT_GT(prof.totalHotBuckets, 0u);
    ASSERT_FALSE(prof.hotPages.empty());
    for (const HotPage& page : prof.hotPages) {
        EXPECT_FALSE(page.region.empty());
        EXPECT_NE(page.region, "<unmapped>");
    }
    for (std::size_t i = 1; i < prof.hotPages.size(); ++i)
        EXPECT_GE(prof.hotPages[i - 1].heat.rwqBytes,
                  prof.hotPages[i].heat.rwqBytes);

    // Histograms: populated where GPS activity exists, monotone
    // percentiles everywhere.
    ASSERT_EQ(prof.histograms.size(), 3u);
    for (const NamedHistogram& h : prof.histograms) {
        const double p50 = h.hist.percentile(0.50);
        const double p90 = h.hist.percentile(0.90);
        const double p99 = h.hist.percentile(0.99);
        EXPECT_LE(p50, p90) << h.name;
        EXPECT_LE(p90, p99) << h.name;
        EXPECT_LE(p99, static_cast<double>(h.hist.max())) << h.name;
    }
    EXPECT_FALSE(prof.histograms[0].hist.empty()); // rwq_occupancy
    EXPECT_FALSE(prof.histograms[2].hist.empty()); // link_busy
}

TEST(ProfileEndToEnd, JsonParsesAndCarriesTheSchema)
{
    const RunResult result = runWorkload("Jacobi", profiledConfig());
    ASSERT_NE(result.obs, nullptr);
    const std::string json = profileToJson(*result.obs);

    std::string error;
    const auto doc = parseJson(json, error);
    ASSERT_NE(doc, nullptr) << error;
    ASSERT_TRUE(doc->isObject());

    const JsonValue* kernels = doc->find("kernels");
    ASSERT_NE(kernels, nullptr);
    ASSERT_TRUE(kernels->isArray());
    ASSERT_FALSE(kernels->items().empty());
    const JsonValue& k0 = kernels->items().front();
    EXPECT_NE(k0.find("limiter"), nullptr);
    const JsonValue* shares = k0.find("shares");
    ASSERT_NE(shares, nullptr);
    double sum = 0.0;
    for (const auto& [name, value] : shares->members())
        sum += value.asNumber();
    EXPECT_NEAR(sum, 1.0, 1e-9);

    const JsonValue* hot = doc->find("hot_pages");
    ASSERT_NE(hot, nullptr);
    ASSERT_NE(hot->find("top"), nullptr);
    EXPECT_FALSE(hot->find("top")->items().empty());

    const JsonValue* hists = doc->find("histograms");
    ASSERT_NE(hists, nullptr);
    EXPECT_EQ(hists->items().size(), 3u);
    for (const JsonValue& h : hists->items()) {
        EXPECT_LE(h.number("p50"), h.number("p90"));
        EXPECT_LE(h.number("p90"), h.number("p99"));
    }
}

TEST(KernelTimeBreakdown, TotalMatchesKernelTime)
{
    // The breakdown refactor must be exact: kernelTime() is defined as
    // the breakdown's total, and both must be reproducible.
    RunConfig config = profiledConfig();
    config.obs = ObsConfig{};
    const RunResult a = runWorkload("Jacobi", config);
    const RunResult b = runWorkload("Jacobi", config);
    EXPECT_EQ(a.totalTime, b.totalTime);
}

} // namespace
} // namespace gps
