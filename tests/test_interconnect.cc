/**
 * @file
 * Unit tests for interconnect specs, the Figure 3 platform survey,
 * traffic matrices and the topology timing model.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "interconnect/pcie.hh"
#include "interconnect/platforms.hh"
#include "interconnect/topology.hh"

namespace gps
{
namespace
{

TEST(InterconnectSpec, PcieGenerationsDoublePerGen)
{
    EXPECT_DOUBLE_EQ(interconnectSpec(InterconnectKind::Pcie3).bandwidth,
                     16.0 * GBps);
    EXPECT_DOUBLE_EQ(interconnectSpec(InterconnectKind::Pcie4).bandwidth,
                     32.0 * GBps);
    EXPECT_DOUBLE_EQ(interconnectSpec(InterconnectKind::Pcie5).bandwidth,
                     64.0 * GBps);
    // The paper's projected PCIe 6.0 operates at 128 GB/s.
    EXPECT_DOUBLE_EQ(interconnectSpec(InterconnectKind::Pcie6).bandwidth,
                     128.0 * GBps);
}

TEST(InterconnectSpec, InfiniteIsFlagged)
{
    const InterconnectSpec& spec =
        interconnectSpec(InterconnectKind::Infinite);
    EXPECT_TRUE(spec.infinite);
    EXPECT_EQ(spec.latency, 0u);
}

TEST(InterconnectSpec, Figure13SweepIsPcie3To6)
{
    const auto sweep = figure13Sweep();
    ASSERT_EQ(sweep.size(), 4u);
    EXPECT_EQ(sweep.front(), InterconnectKind::Pcie3);
    EXPECT_EQ(sweep.back(), InterconnectKind::Pcie6);
}

TEST(Platforms, RemoteBandwidthImproved38x)
{
    const auto& platforms = figure3Platforms();
    ASSERT_EQ(platforms.size(), 5u);
    const double improvement =
        platforms.back().remoteGBps / platforms.front().remoteGBps;
    EXPECT_NEAR(improvement, 38.0, 1.0);
}

TEST(Platforms, LocalRemoteGapPersistsNear3x)
{
    // The paper's Figure 3 point: a ~3x gap persists on every platform.
    for (const PlatformSpec& p : figure3Platforms()) {
        EXPECT_GE(p.gap(), 2.5) << p.name;
        EXPECT_LE(p.gap(), 20.0) << p.name;
    }
    EXPECT_NEAR(figure3Platforms().back().gap(), 3.0, 0.5);
}

TEST(TrafficMatrix, EgressIngressRowColumnSums)
{
    TrafficMatrix traffic(3);
    traffic.add(0, 1, 100);
    traffic.add(0, 2, 50);
    traffic.add(2, 1, 25);
    EXPECT_EQ(traffic.egress(0), 150u);
    EXPECT_EQ(traffic.ingress(1), 125u);
    EXPECT_EQ(traffic.total(), 175u);
    EXPECT_EQ(traffic.at(0, 1), 100u);
}

TEST(TrafficMatrix, PayloadDefaultsToWireBytes)
{
    TrafficMatrix traffic(2);
    traffic.add(0, 1, 100);
    EXPECT_EQ(traffic.payload(), 100u);
}

TEST(TrafficMatrix, PayloadTracksSeparately)
{
    TrafficMatrix traffic(2);
    traffic.add(0, 1, 152, 128);
    traffic.add(0, 1, 24, 0);
    EXPECT_EQ(traffic.total(), 176u);
    EXPECT_EQ(traffic.payload(), 128u);
}

TEST(TrafficMatrix, ClearResetsEverything)
{
    TrafficMatrix traffic(2);
    traffic.add(0, 1, 100, 90);
    traffic.clear();
    EXPECT_EQ(traffic.total(), 0u);
    EXPECT_EQ(traffic.payload(), 0u);
}

TEST(Topology, LinkTimeMatchesBandwidth)
{
    Topology topo("ic", 4, InterconnectKind::Pcie3);
    // 16 MB at 16 GB/s = 1 ms.
    const Tick t = topo.linkTime(16'000'000);
    EXPECT_NEAR(ticksToMs(t), 1.0, 1e-6);
}

TEST(Topology, InfiniteBandwidthIsFree)
{
    Topology topo("ic", 4, InterconnectKind::Infinite);
    EXPECT_EQ(topo.linkTime(1 << 30), 0u);
}

TEST(Topology, PhaseTimeIsBusiestLink)
{
    Topology topo("ic", 4, InterconnectKind::Pcie3);
    TrafficMatrix traffic(4);
    // GPU0 broadcasts 16 MB to each peer: its egress (48 MB) dominates
    // any single ingress (16 MB).
    for (GpuId g = 1; g < 4; ++g)
        traffic.add(0, g, 16'000'000);
    const Tick t = topo.applyPhaseTraffic(traffic);
    EXPECT_NEAR(ticksToMs(t), 3.0, 1e-6);
}

TEST(Topology, IngressContentionDominatesWhenConverging)
{
    Topology topo("ic", 4, InterconnectKind::Pcie3);
    TrafficMatrix traffic(4);
    // All three peers send 16 MB to GPU0: its ingress serializes.
    for (GpuId g = 1; g < 4; ++g)
        traffic.add(g, 0, 16'000'000);
    const Tick t = topo.applyPhaseTraffic(traffic);
    EXPECT_NEAR(ticksToMs(t), 3.0, 1e-6);
}

TEST(Topology, TotalBytesAccumulateAcrossPhases)
{
    Topology topo("ic", 2, InterconnectKind::Pcie3);
    TrafficMatrix traffic(2);
    traffic.add(0, 1, 1000, 900);
    topo.applyPhaseTraffic(traffic);
    topo.applyPhaseTraffic(traffic);
    EXPECT_EQ(topo.totalBytes(), 2000u);
    EXPECT_EQ(topo.totalPayloadBytes(), 1800u);
}

TEST(Topology, LatencyComesFromSpec)
{
    Topology pcie("p", 2, InterconnectKind::Pcie3);
    Topology nvlink("n", 2, InterconnectKind::NvLink3);
    EXPECT_GT(pcie.latency(), nvlink.latency());
}

} // namespace
} // namespace gps
