/**
 * @file
 * Integration tests asserting the paper's qualitative evaluation claims
 * at reduced scale — the regression net for the benches: if one of
 * these fails after a change, a published result no longer reproduces.
 */

#include <gtest/gtest.h>

#include "api/runner.hh"

namespace gps
{
namespace
{

// The paper's claims are statements about realistically sized runs;
// several (aggregate-L2, TLB pressure, halo:interior ratios) vanish at
// toy scales, so this suite runs the benches' full scale.
constexpr double scale = 1.0;

RunResult
run(const std::string& app, ParadigmKind paradigm,
    std::size_t gpus = 4,
    InterconnectKind ic = InterconnectKind::Pcie3)
{
    RunConfig config;
    config.system.numGpus = gpus;
    config.system.interconnect = ic;
    config.scale = scale;
    config.paradigm = paradigm;
    return runWorkload(app, config);
}

RunResult
baseline(const std::string& app)
{
    RunConfig config;
    config.system.numGpus = 1;
    config.scale = scale;
    config.paradigm = ParadigmKind::Memcpy;
    return runWorkload(app, config);
}

TEST(PaperSection71, GpsBeatsEveryConventionalParadigmOnJacobi)
{
    const RunResult base = baseline("Jacobi");
    const double gps = speedupOver(base, run("Jacobi", ParadigmKind::Gps));
    for (const ParadigmKind paradigm :
         {ParadigmKind::Um, ParadigmKind::UmHints, ParadigmKind::Rdl,
          ParadigmKind::Memcpy}) {
        EXPECT_GT(gps, speedupOver(base, run("Jacobi", paradigm)))
            << to_string(paradigm);
    }
    EXPECT_GT(gps, 2.0); // strong scaling, not just winning
}

TEST(PaperSection71, UnifiedMemoryIsSlowerThanOneGpuOnHaloApps)
{
    for (const std::string app : {"Jacobi", "Diffusion", "HIT"}) {
        const RunResult base = baseline(app);
        EXPECT_LT(speedupOver(base, run(app, ParadigmKind::Um)), 1.0)
            << app;
    }
}

TEST(PaperSection71, MemcpyIsCompetitiveOnCt)
{
    // "memcpy at kernel boundaries performs well for CT".
    const RunResult base = baseline("CT");
    const double memcpy_speedup =
        speedupOver(base, run("CT", ParadigmKind::Memcpy));
    EXPECT_GT(memcpy_speedup, 1.5);
}

TEST(PaperSection71, EqwpGetsTheAggregateL2Boost)
{
    // The L2 hit rate rises when the working set splits four ways.
    const RunResult one = baseline("EQWP");
    const RunResult four = run("EQWP", ParadigmKind::Gps);
    EXPECT_GT(four.l2HitRate, one.l2HitRate + 0.05);
}

TEST(PaperSection72, SubscriptionTrackingCutsHaloTraffic)
{
    RunConfig config;
    config.system.numGpus = 4;
    config.scale = scale;
    config.paradigm = ParadigmKind::Gps;
    const RunResult with_subs = runWorkload("Diffusion", config);
    config.system.gps.autoUnsubscribe = false;
    const RunResult without = runWorkload("Diffusion", config);
    // "drastically reduces the total data transferred".
    EXPECT_LT(static_cast<double>(with_subs.interconnectBytes),
              0.25 * static_cast<double>(without.interconnectBytes));
}

TEST(PaperSection72, SubscriptionBarelyMattersForAllToAllApps)
{
    RunConfig config;
    config.system.numGpus = 4;
    config.scale = scale;
    config.paradigm = ParadigmKind::Gps;
    const RunResult with_subs = runWorkload("CT", config);
    config.system.gps.autoUnsubscribe = false;
    const RunResult without = runWorkload("CT", config);
    // CT subscribes everything anyway; traffic within 2x.
    EXPECT_LT(static_cast<double>(without.interconnectBytes),
              2.0 * static_cast<double>(with_subs.interconnectBytes));
}

TEST(PaperSection72, UmMovesMoreDataThanMemcpyOnAtomicApps)
{
    const RunResult um = run("Pagerank", ParadigmKind::Um);
    const RunResult memcpy_result =
        run("Pagerank", ParadigmKind::Memcpy);
    EXPECT_GT(um.interconnectBytes, memcpy_result.interconnectBytes);
}

TEST(PaperSection72, MemcpyMovesMoreDataThanUmOnJacobi)
{
    // The Figure 10 exception: memcpy needlessly broadcasts halos to
    // GPUs that never read them.
    const RunResult um = run("Jacobi", ParadigmKind::Um);
    const RunResult memcpy_result = run("Jacobi", ParadigmKind::Memcpy);
    EXPECT_LT(um.interconnectBytes, memcpy_result.interconnectBytes);
}

TEST(PaperSection72, HintsOverfetchOnDiffusion)
{
    // The other Figure 10 exception: UM+hints moves more than UM for
    // Diffusion (coarse prefetch ranges).
    const RunResult um = run("Diffusion", ParadigmKind::Um);
    const RunResult hints = run("Diffusion", ParadigmKind::UmHints);
    EXPECT_GT(hints.interconnectBytes, um.interconnectBytes);
}

TEST(PaperSection73, GpsScalesTo16Gpus)
{
    RunConfig config;
    config.system.numGpus = 1;
    config.scale = scale;
    config.paradigm = ParadigmKind::Memcpy;
    config.system.interconnect = InterconnectKind::Pcie6;
    const RunResult base = runWorkload("EQWP", config);
    const RunResult gps16 =
        run("EQWP", ParadigmKind::Gps, 16, InterconnectKind::Pcie6);
    const RunResult inf16 =
        run("EQWP", ParadigmKind::InfiniteBw, 16,
            InterconnectKind::Pcie6);
    const double gps = speedupOver(base, gps16);
    const double bound = speedupOver(base, inf16);
    EXPECT_GT(gps, 3.0);
    // "captures over 80% of the hypothetical performance".
    EXPECT_GT(gps / bound, 0.8);
}

TEST(PaperSection74, GpsImprovesWithInterconnectBandwidth)
{
    const RunResult base = baseline("Pagerank");
    const double pcie3 = speedupOver(
        base, run("Pagerank", ParadigmKind::Gps, 4,
                  InterconnectKind::Pcie3));
    const double pcie6 = speedupOver(
        base, run("Pagerank", ParadigmKind::Gps, 4,
                  InterconnectKind::Pcie6));
    EXPECT_GE(pcie6, pcie3);
}

TEST(PaperSection74, WriteQueueHitRatesSplitByStoreVsAtomicApps)
{
    // Store-dominated apps coalesce; atomic apps are pinned at 0%.
    EXPECT_GT(run("CT", ParadigmKind::Gps).wqHitRate, 0.2);
    EXPECT_GT(run("EQWP", ParadigmKind::Gps).wqHitRate, 0.2);
    EXPECT_DOUBLE_EQ(run("Pagerank", ParadigmKind::Gps).wqHitRate, 0.0);
    EXPECT_DOUBLE_EQ(run("ALS", ParadigmKind::Gps).wqHitRate, 0.0);
    EXPECT_DOUBLE_EQ(run("Jacobi", ParadigmKind::Gps).wqHitRate, 0.0);
}

TEST(PaperSection74, GpsTlbIsNearPerfectAt32Entries)
{
    for (const std::string app : {"Jacobi", "CT"}) {
        const RunResult result = run(app, ParadigmKind::Gps);
        EXPECT_GT(result.gpsTlbHitRate, 0.95) << app;
    }
}

TEST(PaperSection74, SixtyFourKilobytePagesAreTheSweetSpot)
{
    RunConfig config;
    config.system.numGpus = 4;
    config.scale = scale;
    config.paradigm = ParadigmKind::Gps;

    auto speedup_at = [&](std::uint64_t page_bytes) {
        config.system.pageBytes = page_bytes;
        RunConfig base = config;
        base.system.numGpus = 1;
        base.paradigm = ParadigmKind::Memcpy;
        const RunResult b = runWorkload("EQWP", base);
        return speedupOver(b, runWorkload("EQWP", config));
    };
    const double at64k = speedup_at(64 * KiB);
    // The 2 MB penalty (false sharing, redundant remote transfers)
    // reproduces robustly; the 4 KB TLB penalty is checked at the
    // geomean level by bench_sens_page_size because per-app footprints
    // at reduced scale sit on either side of the TLB reach.
    EXPECT_GT(at64k, speedup_at(2 * MiB));
}

TEST(PaperSection6, GpsMatchesNativePortsOnComputeBoundApps)
{
    // Section 6: Tartan apps not bound by inter-GPU communication see
    // "the same performance as the native version" under GPS, which is
    // why the paper omits them. Our compute-bound N-body control shows
    // the same: every paradigm except fault-driven UM lands within a
    // few percent.
    const RunResult base = baseline("Nbody");
    const double gps =
        speedupOver(base, run("Nbody", ParadigmKind::Gps));
    const double memcpy_speedup =
        speedupOver(base, run("Nbody", ParadigmKind::Memcpy));
    const double rdl =
        speedupOver(base, run("Nbody", ParadigmKind::Rdl));
    EXPECT_NEAR(gps / memcpy_speedup, 1.0, 0.1);
    EXPECT_NEAR(gps / rdl, 1.0, 0.1);
    EXPECT_GT(gps, 3.0); // and it genuinely strong-scales
}

TEST(PaperFigure9, HaloAppsAreTwoSubscriberApps)
{
    const RunResult jacobi = run("Jacobi", ParadigmKind::Gps);
    ASSERT_TRUE(jacobi.hasSubscriberHist);
    EXPECT_GT(jacobi.subscriberHist.fraction(2), 0.9);
    const RunResult als = run("ALS", ParadigmKind::Gps);
    EXPECT_GT(als.subscriberHist.fraction(4), 0.9);
}

} // namespace
} // namespace gps
