/**
 * @file
 * Golden-string tests for resultToJson: the exported schema is consumed
 * by plotting scripts, so any field rename or reorder must be a
 * deliberate diff here, not an accident.
 */

#include <gtest/gtest.h>

#include <string>

#include "api/result_export.hh"

namespace gps
{
namespace
{

RunResult
makeResult()
{
    RunResult result;
    result.workload = "Toy";
    result.paradigm = "GPS";
    result.numGpus = 2;
    result.totalTime = 2500000000; // 2.5 ms
    result.interconnectBytes = 123456789;
    result.totals.accesses = 1000;
    result.totals.loads = 600;
    result.totals.stores = 390;
    result.totals.atomics = 10;
    result.totals.pageFaults = 7;
    result.totals.pageMigrations = 3;
    result.totals.remoteLoads = 42;
    result.totals.remoteAtomics = 5;
    result.totals.pushedStoreBytes = 4096;
    result.totals.wqInserts = 128;
    result.totals.wqCoalesced = 64;
    result.totals.wqDrains = 32;
    result.totals.sysCollapses = 1;
    result.l2HitRate = 0.5;
    result.tlbHitRate = 0.25;
    result.wqHitRate = 0.75;
    result.gpsTlbHitRate = 1.0;
    return result;
}

TEST(ResultExport, GoldenHeadlineDocument)
{
    const std::string expected =
        "{\"workload\":\"Toy\",\"paradigm\":\"GPS\",\"num_gpus\":2,"
        "\"total_time_ms\":2.5,\"interconnect_bytes\":123456789,"
        "\"l2_hit_rate\":0.5,\"tlb_hit_rate\":0.25,\"wq_hit_rate\":0.75,"
        "\"gps_tlb_hit_rate\":1,"
        "\"totals\":{\"accesses\":1000,\"loads\":600,\"stores\":390,"
        "\"atomics\":10,\"page_faults\":7,\"page_migrations\":3,"
        "\"remote_loads\":42,\"remote_atomics\":5,"
        "\"pushed_store_bytes\":4096,\"wq_inserts\":128,"
        "\"wq_coalesced\":64,\"wq_drains\":32,\"sys_collapses\":1}}";
    EXPECT_EQ(resultToJson(makeResult()), expected);
}

TEST(ResultExport, GoldenOptionalSections)
{
    RunResult result = makeResult();
    result.hasSubscriberHist = true;
    result.subscriberHist.sample(1, 5);
    result.subscriberHist.sample(2, 3);
    result.hasFaultReport = true;
    result.faultReport.faultsInjected = 2;
    result.faultReport.linksDown = 1;
    result.faultReport.reroutes = 9;
    result.faultReport.reroutedBytes = 512;
    result.faultReport.stallTicks = 1000000000; // 1 ms
    result.stats.set("gpu0.l2.hits", 12.0);
    result.stats.set("gpu1.l2.hits", 8.5);

    // 33 histogram buckets (maxGpus + 1): only 1 and 2 are populated.
    std::string hist = "\"subscriber_histogram\":[0,5,3";
    for (std::size_t b = 3; b <= maxGpus; ++b)
        hist += ",0";
    hist += "]";

    const std::string expected =
        "{\"workload\":\"Toy\",\"paradigm\":\"GPS\",\"num_gpus\":2,"
        "\"total_time_ms\":2.5,\"interconnect_bytes\":123456789,"
        "\"l2_hit_rate\":0.5,\"tlb_hit_rate\":0.25,\"wq_hit_rate\":0.75,"
        "\"gps_tlb_hit_rate\":1,"
        "\"totals\":{\"accesses\":1000,\"loads\":600,\"stores\":390,"
        "\"atomics\":10,\"page_faults\":7,\"page_migrations\":3,"
        "\"remote_loads\":42,\"remote_atomics\":5,"
        "\"pushed_store_bytes\":4096,\"wq_inserts\":128,"
        "\"wq_coalesced\":64,\"wq_drains\":32,\"sys_collapses\":1}," +
        hist +
        ",\"faults\":{\"injected\":2,\"links_down\":1,"
        "\"links_degraded\":0,\"links_restored\":0,\"reroutes\":9,"
        "\"rerouted_bytes\":512,\"pcie_fallbacks\":0,"
        "\"pcie_fallback_bytes\":0,\"pages_retired\":0,"
        "\"replicas_lost\":0,\"pages_degraded\":0,\"resubscribes\":0,"
        "\"wq_saturations\":0,\"wq_saturated_drains\":0,"
        "\"stall_time_ms\":1},"
        "\"stats\":{\"gpu0.l2.hits\":12,\"gpu1.l2.hits\":8.5}}";
    EXPECT_EQ(resultToJson(result, true), expected);
}

} // namespace
} // namespace gps
