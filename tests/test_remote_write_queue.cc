/**
 * @file
 * Unit and property tests for the GPS remote write queue: coalescing,
 * FIFO watermark draining, page flushes, hit-rate accounting and the
 * physically-addressed ablation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/remote_write_queue.hh"

namespace gps
{
namespace
{

class WqTest : public ::testing::Test
{
  protected:
    RemoteWriteQueue&
    makeQueue(std::uint32_t entries, bool virtually_addressed = true)
    {
        config.wqEntries = entries;
        config.virtuallyAddressedWq = virtually_addressed;
        queue_ = std::make_unique<RemoteWriteQueue>(
            "wq", config, 128, PageGeometry(64 * KiB));
        queue_->setDrainCallback(
            [this](const WqEntry& e) { drained.push_back(e); });
        return *queue_;
    }

    std::unique_ptr<RemoteWriteQueue> queue_;

    GpsConfig config;
    std::vector<WqEntry> drained;
};

TEST_F(WqTest, FirstStoreAllocatesEntry)
{
    auto& queue = makeQueue(16);
    EXPECT_FALSE(queue.insert(0x1000, 4, 1));
    EXPECT_EQ(queue.occupancy(), 1u);
    EXPECT_EQ(queue.inserts(), 1u);
}

TEST_F(WqTest, SameLineStoresCoalesce)
{
    auto& queue = makeQueue(16);
    queue.insert(0x1000, 4, 1);
    EXPECT_TRUE(queue.insert(0x1004, 4, 1));
    EXPECT_TRUE(queue.insert(0x1040, 8, 1));
    EXPECT_EQ(queue.occupancy(), 1u);
    EXPECT_EQ(queue.coalesced(), 2u);
}

TEST_F(WqTest, NonConsecutiveSameLineStoresStillCoalesce)
{
    // Section 3.3: stores need not be consecutive to coalesce.
    auto& queue = makeQueue(16);
    queue.insert(0x1000, 4, 1);
    queue.insert(0x2000, 4, 1);
    queue.insert(0x3000, 4, 1);
    EXPECT_TRUE(queue.insert(0x1008, 4, 1));
}

TEST_F(WqTest, WatermarkDrainsLeastRecentlyAdded)
{
    auto& queue = makeQueue(4); // watermark = 3
    queue.insert(0 * 128, 4, 1);
    queue.insert(1 * 128, 4, 1);
    queue.insert(2 * 128, 4, 1);
    EXPECT_TRUE(drained.empty());
    queue.insert(3 * 128, 4, 1); // occupancy 4 > 3: drain the oldest
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].line, 0u);
}

TEST_F(WqTest, CoalescingIntoOldEntryDoesNotRefreshItsAge)
{
    auto& queue = makeQueue(4);
    queue.insert(0 * 128, 4, 1);
    queue.insert(1 * 128, 4, 1);
    queue.insert(2 * 128, 4, 1);
    queue.insert(0 * 128 + 4, 4, 1); // coalesces; age unchanged
    queue.insert(3 * 128, 4, 1);     // drain: line 0 is still oldest
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].line, 0u);
    EXPECT_EQ(drained[0].mergedStores, 2u);
}

TEST_F(WqTest, DrainAllFlushesInFifoOrder)
{
    auto& queue = makeQueue(16);
    queue.insert(2 * 128, 4, 1);
    queue.insert(0 * 128, 4, 1);
    queue.insert(1 * 128, 4, 1);
    queue.drainAll();
    ASSERT_EQ(drained.size(), 3u);
    EXPECT_EQ(drained[0].line, 2 * 128u);
    EXPECT_EQ(drained[1].line, 0u);
    EXPECT_EQ(drained[2].line, 1 * 128u);
    EXPECT_EQ(queue.occupancy(), 0u);
}

TEST_F(WqTest, DrainPageFlushesOnlyThatPage)
{
    auto& queue = makeQueue(16);
    const Addr page0 = 0;
    const Addr page1 = 64 * KiB;
    queue.insert(page0, 4, 1);
    queue.insert(page1, 4, 1);
    queue.insert(page0 + 128, 4, 1);
    queue.drainPage(0);
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_EQ(queue.occupancy(), 1u);
    EXPECT_TRUE(queue.contains(page1));
    EXPECT_FALSE(queue.contains(page0));
}

TEST_F(WqTest, ContainsChecksLineResidency)
{
    auto& queue = makeQueue(16);
    queue.insert(0x1000, 4, 1);
    EXPECT_TRUE(queue.contains(0x1000));
    EXPECT_TRUE(queue.contains(0x107F));
    EXPECT_FALSE(queue.contains(0x1080));
}

TEST_F(WqTest, BytesWrittenAccumulateAndCapAtLine)
{
    auto& queue = makeQueue(16);
    queue.insert(0x1000, 100, 1);
    queue.insert(0x1000, 100, 1);
    queue.drainAll();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].bytesWritten, 128u);
}

TEST_F(WqTest, HitRateIncludesAtomicBypasses)
{
    // Section 7.4: atomics are not coalesced and count as misses.
    auto& queue = makeQueue(16);
    queue.insert(0x1000, 4, 1); // miss
    queue.insert(0x1004, 4, 1); // hit
    queue.noteAtomicBypass();
    queue.noteAtomicBypass();
    EXPECT_DOUBLE_EQ(queue.hitRate(), 0.25);
}

TEST_F(WqTest, PhysicallyAddressedEntriesWeighPerSubscriber)
{
    // Section 5.3 ablation: one entry per (line, subscriber) shrinks
    // effective capacity.
    auto& queue = makeQueue(8, false);
    queue.insert(0, 4, 3);   // weight 3
    queue.insert(128, 4, 3); // weight 3
    EXPECT_EQ(queue.occupancy(), 6u);
    queue.insert(256, 4, 3); // occupancy 9 > watermark 7: drains
    EXPECT_FALSE(drained.empty());
}

TEST_F(WqTest, VirtualAddressingKeepsOneEntryRegardless)
{
    auto& queue = makeQueue(8, true);
    queue.insert(0, 4, 3);
    EXPECT_EQ(queue.occupancy(), 1u);
}

TEST_F(WqTest, CoalescingRefreshesWeightWhenCopiesGrow)
{
    // Physically addressed: an entry's weight is the subscriber copy
    // count, which can change between the allocating store and a later
    // coalescing one. The coalesce must re-charge occupancy.
    auto& queue = makeQueue(16, false);
    queue.insert(0, 4, 1);
    EXPECT_EQ(queue.occupancy(), 1u);
    EXPECT_TRUE(queue.insert(4, 4, 3));
    EXPECT_EQ(queue.occupancy(), 3u);
    EXPECT_EQ(queue.weightSum(), queue.occupancy());
}

TEST_F(WqTest, CoalescingRefreshesWeightWhenCopiesShrink)
{
    auto& queue = makeQueue(16, false);
    queue.insert(0, 4, 3);
    EXPECT_EQ(queue.occupancy(), 3u);
    EXPECT_TRUE(queue.insert(4, 4, 1));
    EXPECT_EQ(queue.occupancy(), 1u);
    EXPECT_EQ(queue.weightSum(), queue.occupancy());
}

TEST_F(WqTest, WeightGrowthOnCoalesceCanForceWatermarkDrain)
{
    auto& queue = makeQueue(4, false); // watermark = 3
    queue.insert(0 * 128, 4, 1);
    queue.insert(1 * 128, 4, 1);
    queue.insert(2 * 128, 4, 1);
    EXPECT_TRUE(drained.empty());
    // Coalesce into line 0 with more copies: occupancy 5 > watermark 3.
    EXPECT_TRUE(queue.insert(0 * 128 + 4, 4, 3));
    EXPECT_FALSE(drained.empty());
    EXPECT_LE(queue.occupancy(), 3u);
    EXPECT_EQ(queue.inserts(),
              queue.drains() + queue.residentEntries());
    EXPECT_EQ(queue.weightSum(), queue.occupancy());
}

TEST_F(WqTest, VirtualWqIgnoresCopiesOnCoalesce)
{
    auto& queue = makeQueue(16, true);
    queue.insert(0, 4, 1);
    EXPECT_TRUE(queue.insert(4, 4, 3));
    EXPECT_EQ(queue.occupancy(), 1u);
    EXPECT_EQ(queue.weightSum(), 1u);
}

TEST_F(WqTest, DrainPageInterleavedWithWatermarkKeepsConservation)
{
    // drainPage in the middle of watermark-driven churn must keep the
    // books balanced: inserts == drains + resident, occupancy == Σ w.
    auto& queue = makeQueue(4, false);
    const Addr page1 = 64 * KiB;
    queue.insert(0 * 128, 4, 2);        // page 0, weight 2
    queue.insert(page1 + 0 * 128, 4, 1); // page 1
    queue.drainPage(0);                  // flush page 0 only
    queue.insert(page1 + 1 * 128, 4, 2);
    queue.insert(0 * 128, 4, 2);         // page 0 again; forces drains
    queue.insert(page1 + 2 * 128, 4, 1);
    queue.drainPage(1);
    queue.insert(0 * 128 + 8, 4, 2);     // coalesce or realloc
    EXPECT_EQ(queue.inserts(),
              queue.drains() + queue.residentEntries());
    EXPECT_EQ(queue.weightSum(), queue.occupancy());
    queue.drainAll();
    EXPECT_EQ(queue.inserts(), queue.drains());
    EXPECT_EQ(queue.occupancy(), 0u);
    EXPECT_EQ(queue.residentEntries(), 0u);
}

TEST_F(WqTest, ForwardHitsCountAndExport)
{
    auto& queue = makeQueue(16);
    queue.insert(0x1000, 4, 1);
    queue.noteForwardHit();
    queue.noteForwardHit();
    EXPECT_EQ(queue.forwardHits(), 2u);
    StatSet stats;
    queue.exportStats(stats);
    EXPECT_DOUBLE_EQ(stats.get("wq.forward_hits"), 2.0);
}

TEST_F(WqTest, SramFootprintMatchesTable1)
{
    auto& queue = makeQueue(512);
    // 512 entries x 135 B = 69120 B ~ 68 KB (Section 5.2).
    EXPECT_EQ(queue.sramBytes(), 512u * 135u);
    EXPECT_NEAR(static_cast<double>(queue.sramBytes()) / 1024.0, 67.5,
                0.1);
}

/** Property: occupancy never exceeds the watermark after an insert. */
class WqCapacity : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(WqCapacity, OccupancyBoundedByWatermark)
{
    GpsConfig config;
    config.wqEntries = GetParam();
    RemoteWriteQueue queue("wq", config, 128, PageGeometry(64 * KiB));
    queue.setDrainCallback([](const WqEntry&) {});
    for (Addr line = 0; line < 4096; ++line) {
        queue.insert(line * 128, 4, 3);
        ASSERT_LE(queue.occupancy(), config.highWatermark());
    }
}

TEST_P(WqCapacity, EveryInsertEventuallyDrainsExactlyOnce)
{
    GpsConfig config;
    config.wqEntries = GetParam();
    RemoteWriteQueue queue("wq", config, 128, PageGeometry(64 * KiB));
    std::uint64_t drains = 0;
    queue.setDrainCallback([&](const WqEntry&) { ++drains; });
    const std::uint64_t lines = 1000;
    for (Addr line = 0; line < lines; ++line)
        queue.insert(line * 128, 4, 1);
    queue.drainAll();
    EXPECT_EQ(drains, lines);
    EXPECT_EQ(queue.occupancy(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WqCapacity,
                         ::testing::Values(4, 16, 64, 512, 1024));

} // namespace
} // namespace gps
